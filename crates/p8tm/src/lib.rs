//! # p8tm — P8TM-style comparator (Issa et al., DISC '17)
//!
//! P8TM ("Extending Hardware Transactional Memory Capacity via Rollback-
//! Only Transactions and Suspend/Resume") is the closest prior work to
//! SI-HTM: it also runs update transactions as ROTs and also quiesces
//! writers before `HTMEnd` — but it offers full **serializability**, which
//! it can only do by **instrumenting every shared read in software**. That
//! per-read cost is exactly what the SI-HTM paper contrasts against
//! ("costly software instrumentation of each read (in P8TM)", §5), and it
//! is what this implementation reproduces:
//!
//! * every read — in update *and* read-only transactions — logs the cache
//!   line and its current commit version;
//! * update transactions validate their read log at commit (after the
//!   quiescence wait) and bump the versions of their written lines;
//! * read-only transactions run non-transactionally but must validate
//!   their read log too, retrying on failure.
//!
//! Simplifications relative to the DISC '17 system (documented in
//! DESIGN.md): per-cache-line version counters stand in for P8TM's exact
//! read-tracking structures, and validation+version-bump is serialised by
//! a short commit-section lock. The paper's evaluation disables P8TM's
//! self-tuning, which is therefore not modelled either. The cost profile —
//! instrumented reads, quiescence waits, serializability aborts — is
//! preserved.

use htm_sim::util::{spin_wait, spin_wait_deadline, IntMap, IntSet};
use htm_sim::{AbortReason, Htm, HtmConfig, HtmThread, NonTxClass, TxMode};
use parking_lot::Mutex;
use si_htm::sgl::Sgl;
use si_htm::state::StateArray;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;
use tm_api::{
    policy::RetryState, Abort, BackoffPolicy, ContentionManager, Outcome, RetryPolicy, ThreadStats,
    TmBackend, TmThread, Tx, TxBody, TxKind, Watchdog,
};
use txmem::hooks::{self, AbortCode, Event};
use txmem::{line_of, Addr, Line, TxMemory};

/// Anti-convoy jitter ceiling before an SGL (re-)attempt (see si-htm).
const SGL_ADMISSION_JITTER_NS: u64 = 2_000;

/// Tunables of the P8TM layer.
#[derive(Debug, Clone, Default)]
pub struct P8tmConfig {
    /// Hardware retry budget before the SGL fall-back.
    pub retry: RetryPolicy,
    /// Deadlines on the quiescence and SGL-drain waits (see DESIGN.md §9).
    /// Degrading past a straggler is *still serializable* here: P8TM
    /// validates every read log, so a reader whose snapshot was broken by
    /// a degraded commit simply fails validation and retries.
    pub watchdog: Watchdog,
    /// Randomized exponential backoff between hardware retries.
    pub backoff: BackoffPolicy,
}

struct Inner {
    htm: Arc<Htm>,
    state: StateArray,
    sgl: Sgl,
    /// Per-cache-line commit version counters (the software read-tracking
    /// substitute; see crate docs).
    versions: Box<[AtomicU64]>,
    /// Serialises validate+bump so concurrent commits cannot mutually miss
    /// each other's writes (write-skew between two completed writers).
    commit_lock: Mutex<()>,
    config: P8tmConfig,
}

/// The P8TM backend. Cheap to clone.
#[derive(Clone)]
pub struct P8tm {
    inner: Arc<Inner>,
}

impl P8tm {
    pub fn new(htm_config: HtmConfig, memory_words: usize, config: P8tmConfig) -> Self {
        let htm = Htm::new(htm_config, memory_words);
        let threads = htm.config().max_threads();
        let lines = htm.memory().lines();
        let mut versions = Vec::with_capacity(lines);
        versions.resize_with(lines, || AtomicU64::new(0));
        P8tm {
            inner: Arc::new(Inner {
                htm,
                state: StateArray::new(threads),
                sgl: Sgl::new(),
                versions: versions.into_boxed_slice(),
                commit_lock: Mutex::new(()),
                config,
            }),
        }
    }

    pub fn with_defaults(memory_words: usize) -> Self {
        Self::new(HtmConfig::default(), memory_words, P8tmConfig::default())
    }

    pub fn htm(&self) -> &Arc<Htm> {
        &self.inner.htm
    }
}

impl TmBackend for P8tm {
    type Thread = P8tmThread;

    fn name(&self) -> &'static str {
        "P8TM"
    }

    fn register_thread(&self) -> P8tmThread {
        let thr = self.inner.htm.register_thread();
        let tid = thr.tid();
        let cm = ContentionManager::new(self.inner.config.backoff, 0x9871 ^ tid as u64);
        P8tmThread {
            inner: Arc::clone(&self.inner),
            thr,
            tid,
            stats: ThreadStats::default(),
            cm,
            degrade_to_sgl: false,
            snapshot: Vec::new(),
            read_log: Vec::new(),
            seen: IntSet::default(),
            write_lines: IntSet::default(),
        }
    }

    fn memory(&self) -> &TxMemory {
        self.inner.htm.memory()
    }
}

impl std::fmt::Debug for P8tm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("P8tm").field("config", &self.inner.config).finish()
    }
}

/// A worker thread of the P8TM backend.
pub struct P8tmThread {
    inner: Arc<Inner>,
    thr: HtmThread,
    tid: usize,
    stats: ThreadStats,
    cm: ContentionManager,
    /// Quiescence watchdog tripped: stop retrying ROTs, serialise now.
    degrade_to_sgl: bool,
    snapshot: Vec<(usize, u64)>,
    // Reused per-transaction buffers (the software read instrumentation).
    read_log: Vec<(Line, u64)>,
    seen: IntSet<Line>,
    write_lines: IntSet<Line>,
}

impl P8tmThread {
    fn sync_with_gl(&mut self) {
        loop {
            let ts = self.inner.htm.clock().now();
            self.inner.state.set_active(self.tid, ts);
            if !self.inner.sgl.is_locked() {
                return;
            }
            self.inner.state.set_inactive(self.tid);
            spin_wait(|| !self.inner.sgl.is_locked());
        }
    }

    /// Read log still consistent with the current versions?
    fn validate(&self) -> bool {
        self.read_log
            .iter()
            .all(|&(line, v)| self.inner.versions[line as usize].load(Ordering::Acquire) == v)
    }

    fn bump_write_versions(&self) {
        for &line in &self.write_lines {
            self.inner.versions[line as usize].fetch_add(1, Ordering::Release);
        }
    }

    /// Quiescence + validation + `HTMEnd` for update transactions.
    fn tx_end(&mut self) -> Result<(), AbortReason> {
        self.thr.suspend();
        self.inner.state.set_completed(self.tid);
        self.thr.resume()?;

        // Quiescence (as in SI-HTM's Algorithm 1), O(active) via the
        // active-thread registry.
        let mut snapshot = std::mem::take(&mut self.snapshot);
        self.inner.state.snapshot_active_into(&mut snapshot);
        self.stats.quiesce_polled += snapshot.len() as u64;
        let mut waited = false;
        let mut doomed = false;
        let mut tripped = false;
        let deadline = self.inner.config.watchdog.quiesce;
        for &(c, observed) in &snapshot {
            if c == self.tid {
                continue;
            }
            let report = spin_wait_deadline(
                || {
                    if self.inner.state.poll(c) != observed {
                        return true;
                    }
                    waited = true;
                    if self.thr.doomed().is_some() {
                        doomed = true;
                        return true;
                    }
                    false
                },
                deadline,
            );
            self.stats.max_wait_ns = self.stats.max_wait_ns.max(report.waited_ns);
            if report.timed_out {
                // Watchdog trip: kill the straggler if killable, stop
                // waiting either way, and degrade to the SGL-serialized
                // slow path (see si-htm; for P8TM the degraded commit is
                // even benign — read-log validation catches any reader
                // whose snapshot it breaks).
                self.inner.htm.kill_active(c, AbortReason::Conflict);
                self.stats.watchdog_quiesce_trips += 1;
                tripped = true;
                break;
            }
            if doomed {
                break;
            }
        }
        self.snapshot = snapshot;
        if waited {
            self.stats.quiesce_waits += 1;
        }
        if tripped {
            self.degrade_to_sgl = true;
            return Err(self.thr.abort());
        }
        if doomed {
            return Err(self.thr.abort());
        }

        // Serializability: validate the instrumented read set, then publish
        // new versions for the write set, atomically w.r.t. other commits.
        {
            let guard = self.inner.commit_lock.lock();
            if !self.validate() {
                drop(guard);
                self.thr.abort();
                return Err(AbortReason::Conflict);
            }
            self.bump_write_versions();
        }
        self.thr.commit()
    }

    fn exec_update(&mut self, body: TxBody<'_>) -> Outcome {
        let policy = self.inner.config.retry;
        let mut retry = RetryState::new(&policy);
        self.cm.reset();
        self.degrade_to_sgl = false;
        loop {
            self.sync_with_gl();
            self.read_log.clear();
            self.seen.clear();
            self.write_lines.clear();
            self.thr.begin(TxMode::Rot);
            let (result, reason) = {
                let mut tx = UpdateTx {
                    thr: &mut self.thr,
                    versions: &self.inner.versions,
                    read_log: &mut self.read_log,
                    seen: &mut self.seen,
                    write_lines: &mut self.write_lines,
                    reason: None,
                };
                let r = body(&mut tx);
                (r, tx.reason)
            };
            match result {
                Ok(()) => match self.tx_end() {
                    Ok(()) => {
                        self.inner.state.set_inactive(self.tid);
                        self.stats.commits += 1;
                        return Outcome::Committed;
                    }
                    Err(reason) => {
                        self.inner.state.set_inactive(self.tid);
                        self.stats.record_abort(reason);
                        if self.degrade_to_sgl || !retry.on_abort(&policy, reason) {
                            break;
                        }
                        if self.cm.backoff(reason) > 0 {
                            self.stats.backoffs += 1;
                        }
                    }
                },
                Err(Abort::Backend) => {
                    let reason = reason.expect("backend abort without recorded reason");
                    self.inner.state.set_inactive(self.tid);
                    self.stats.record_abort(reason);
                    if !retry.on_abort(&policy, reason) {
                        break;
                    }
                    if self.cm.backoff(reason) > 0 {
                        self.stats.backoffs += 1;
                    }
                }
                Err(Abort::User) => {
                    if self.thr.in_tx() {
                        self.thr.abort();
                    }
                    self.inner.state.set_inactive(self.tid);
                    self.stats.user_aborts += 1;
                    return Outcome::UserAborted;
                }
            }
        }
        self.exec_sgl(body)
    }

    /// Read-only transactions: non-transactional reads with software read
    /// instrumentation and commit-time validation; retry on failure.
    fn exec_ro(&mut self, body: TxBody<'_>) -> Outcome {
        let policy = self.inner.config.retry;
        let mut retry = RetryState::new(&policy);
        self.cm.reset();
        loop {
            self.sync_with_gl();
            self.thr.refresh_hooks();
            hooks::emit(Event::RoBegin);
            self.read_log.clear();
            self.seen.clear();
            let r = {
                let mut tx = RoTx {
                    thr: &mut self.thr,
                    versions: &self.inner.versions,
                    read_log: &mut self.read_log,
                    seen: &mut self.seen,
                };
                body(&mut tx)
            };
            fence(Ordering::Release); // lwsync before un-publishing
            match r {
                Ok(()) => {
                    if self.validate() {
                        self.inner.state.set_inactive(self.tid);
                        self.stats.commits += 1;
                        self.stats.ro_commits += 1;
                        hooks::emit(Event::RoCommit);
                        return Outcome::Committed;
                    }
                    self.inner.state.set_inactive(self.tid);
                    self.stats.record_abort(AbortReason::Conflict);
                    hooks::emit(Event::Abort { reason: AbortCode::Conflict });
                    if !retry.on_abort(&policy, AbortReason::Conflict) {
                        return self.exec_sgl(body);
                    }
                    if self.cm.backoff(AbortReason::Conflict) > 0 {
                        self.stats.backoffs += 1;
                    }
                }
                Err(Abort::User) => {
                    self.inner.state.set_inactive(self.tid);
                    self.stats.user_aborts += 1;
                    hooks::emit(Event::Abort { reason: AbortCode::Explicit });
                    return Outcome::UserAborted;
                }
                Err(Abort::Backend) => {
                    unreachable!("the read-only path cannot incur backend aborts")
                }
            }
        }
    }

    fn exec_sgl(&mut self, body: TxBody<'_>) -> Outcome {
        debug_assert!(!self.thr.in_tx());
        self.inner.state.set_inactive(self.tid);
        if self.cm.admission_jitter(SGL_ADMISSION_JITTER_NS) > 0 {
            self.stats.backoffs += 1;
        }
        self.inner.sgl.lock(self.tid);
        self.stats.sgl_acquisitions += 1;
        let report = spin_wait_deadline(
            || self.inner.state.all_inactive_except(self.tid),
            self.inner.config.watchdog.drain,
        );
        self.stats.max_wait_ns = self.stats.max_wait_ns.max(report.waited_ns);
        if report.timed_out {
            // Proceed serialized past the wedged straggler (reported).
            self.stats.watchdog_drain_trips += 1;
        }
        self.thr.refresh_hooks();
        hooks::emit(Event::SglLock);
        self.write_lines.clear();
        let (result, wbuf) = {
            let mut tx = SglTx {
                thr: &mut self.thr,
                wbuf: IntMap::default(),
                write_lines: &mut self.write_lines,
            };
            let r = body(&mut tx);
            (r, tx.wbuf)
        };
        let outcome = match result {
            Ok(()) => {
                for (addr, val) in wbuf {
                    self.thr.write_notx(addr, val, NonTxClass::Sgl);
                }
                // Keep the version counters truthful for later validations.
                self.bump_write_versions();
                self.stats.commits += 1;
                self.stats.sgl_commits += 1;
                Outcome::Committed
            }
            Err(Abort::User) => {
                self.stats.user_aborts += 1;
                Outcome::UserAborted
            }
            Err(Abort::Backend) => unreachable!("the SGL path cannot incur backend aborts"),
        };
        self.inner.sgl.unlock(self.tid);
        hooks::emit(Event::SglUnlock { committed: outcome == Outcome::Committed });
        outcome
    }
}

/// Panic safety (see `SiHtmThread`'s Drop): roll back the in-flight
/// hardware transaction, un-publish the `state[]` entry peers quiesce on,
/// release the SGL if held, then let the panic propagate.
impl Drop for P8tmThread {
    fn drop(&mut self) {
        if self.thr.in_tx() {
            self.thr.abort();
        }
        self.inner.state.set_inactive(self.tid);
        if self.inner.sgl.is_held_by(self.tid) {
            self.inner.sgl.unlock(self.tid);
        }
    }
}

impl TmThread for P8tmThread {
    fn exec(&mut self, kind: TxKind, body: TxBody<'_>) -> Outcome {
        match kind {
            TxKind::ReadOnly => self.exec_ro(body),
            TxKind::Update => self.exec_update(body),
        }
    }

    fn exec_escalated(&mut self, body: TxBody<'_>) -> Outcome {
        self.exec_sgl(body)
    }

    fn stats(&self) -> &ThreadStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = ThreadStats::default();
    }
}

/// Update-transaction access handle: ROT accesses + read instrumentation.
struct UpdateTx<'a> {
    thr: &'a mut HtmThread,
    versions: &'a [AtomicU64],
    read_log: &'a mut Vec<(Line, u64)>,
    seen: &'a mut IntSet<Line>,
    write_lines: &'a mut IntSet<Line>,
    reason: Option<AbortReason>,
}

impl Tx for UpdateTx<'_> {
    fn read(&mut self, addr: Addr) -> Result<u64, Abort> {
        let line = line_of(addr);
        // The software instrumentation P8TM pays on every read: record the
        // line's commit version on first encounter.
        if !self.write_lines.contains(&line) && self.seen.insert(line) {
            let v = self.versions[line as usize].load(Ordering::Acquire);
            self.read_log.push((line, v));
        }
        self.thr.read(addr).map_err(|r| {
            self.reason = Some(r);
            Abort::Backend
        })
    }

    fn write(&mut self, addr: Addr, val: u64) -> Result<(), Abort> {
        self.write_lines.insert(line_of(addr));
        self.thr.write(addr, val).map_err(|r| {
            self.reason = Some(r);
            Abort::Backend
        })
    }
}

/// Read-only access handle: non-transactional reads + instrumentation.
struct RoTx<'a> {
    thr: &'a mut HtmThread,
    versions: &'a [AtomicU64],
    read_log: &'a mut Vec<(Line, u64)>,
    seen: &'a mut IntSet<Line>,
}

impl Tx for RoTx<'_> {
    fn read(&mut self, addr: Addr) -> Result<u64, Abort> {
        let line = line_of(addr);
        if self.seen.insert(line) {
            let v = self.versions[line as usize].load(Ordering::Acquire);
            self.read_log.push((line, v));
        }
        Ok(self.thr.read_notx(addr, NonTxClass::Data))
    }

    fn write(&mut self, _addr: Addr, _val: u64) -> Result<(), Abort> {
        panic!("transaction declared ReadOnly performed a write (P8TM)");
    }
}

/// SGL-path access handle (exclusive, buffered writes).
struct SglTx<'a> {
    thr: &'a mut HtmThread,
    wbuf: IntMap<Addr, u64>,
    write_lines: &'a mut IntSet<Line>,
}

impl Tx for SglTx<'_> {
    fn read(&mut self, addr: Addr) -> Result<u64, Abort> {
        if let Some(v) = self.wbuf.get(&addr) {
            return Ok(*v);
        }
        Ok(self.thr.read_notx(addr, NonTxClass::Sgl))
    }

    fn write(&mut self, addr: Addr, val: u64) -> Result<(), Abort> {
        self.write_lines.insert(line_of(addr));
        self.wbuf.insert(addr, val);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> P8tm {
        P8tm::new(HtmConfig::small(), 4096, P8tmConfig::default())
    }

    #[test]
    fn update_and_ro_commit() {
        let b = small();
        let mut t = b.register_thread();
        assert_eq!(
            t.exec(TxKind::Update, &mut |tx| {
                let v = tx.read(0)?;
                tx.write(0, v + 2)
            }),
            Outcome::Committed
        );
        let mut seen = 0;
        assert_eq!(
            t.exec(TxKind::ReadOnly, &mut |tx| {
                seen = tx.read(0)?;
                Ok(())
            }),
            Outcome::Committed
        );
        assert_eq!(seen, 2);
        assert_eq!(t.stats().commits, 2);
        assert_eq!(t.stats().ro_commits, 1);
    }

    #[test]
    fn versions_bump_on_commit() {
        let b = small();
        let mut t = b.register_thread();
        let v0 = b.inner.versions[0].load(Ordering::Relaxed);
        t.exec(TxKind::Update, &mut |tx| tx.write(3, 1));
        assert_eq!(b.inner.versions[0].load(Ordering::Relaxed), v0 + 1);
    }

    #[test]
    fn unbounded_reads_for_updates() {
        let b = P8tm::new(
            HtmConfig { cores: 1, smt: 2, tmcam_lines: 8, ..HtmConfig::default() },
            16 * 128,
            P8tmConfig::default(),
        );
        let mut t = b.register_thread();
        let out = t.exec(TxKind::Update, &mut |tx| {
            let mut sum = 0;
            for i in 0..100u64 {
                sum += tx.read(i * 16)?;
            }
            tx.write(0, sum + 1)
        });
        assert_eq!(out, Outcome::Committed);
        assert_eq!(t.stats().aborts_capacity, 0);
        assert_eq!(t.stats().sgl_commits, 0);
    }

    #[test]
    fn write_skew_is_prevented() {
        // Two transactions: T1 reads A writes B; T2 reads B writes A, each
        // setting its target to 0 only when the source is 1. Starting from
        // A = B = 1, serializability forbids ending at A = B = 0. P8TM's
        // read validation must abort one of them.
        const A: Addr = 0;
        const B: Addr = 16;
        for _ in 0..50 {
            let b = P8tm::new(HtmConfig::small(), 256, P8tmConfig::default());
            b.memory().store(A, 1);
            b.memory().store(B, 1);
            crossbeam_utils::thread::scope(|s| {
                let b1 = b.clone();
                s.spawn(move |_| {
                    let mut t = b1.register_thread();
                    t.exec(TxKind::Update, &mut |tx| {
                        if tx.read(A)? == 1 {
                            tx.write(B, 0)?;
                        }
                        Ok(())
                    });
                });
                let b2 = b.clone();
                s.spawn(move |_| {
                    let mut t = b2.register_thread();
                    t.exec(TxKind::Update, &mut |tx| {
                        if tx.read(B)? == 1 {
                            tx.write(A, 0)?;
                        }
                        Ok(())
                    });
                });
            })
            .unwrap();
            let a = b.memory().load(A);
            let bb = b.memory().load(B);
            assert!(a + bb >= 1, "write skew slipped through: A={a} B={bb}");
        }
    }

    #[test]
    fn concurrent_increments_serialize() {
        let b = P8tm::new(
            HtmConfig { cores: 2, smt: 2, ..HtmConfig::default() },
            256,
            P8tmConfig::default(),
        );
        crossbeam_utils::thread::scope(|s| {
            for _ in 0..4 {
                let b = b.clone();
                s.spawn(move |_| {
                    let mut t = b.register_thread();
                    for _ in 0..200 {
                        tm_api::increment(&mut t, 0);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(b.memory().load(0), 800);
    }
}
