//! Runtime chaos injector: config-driven probabilistic faults on *real*
//! OS threads, riding the same [`emit`](super::emit)/[`inject`](super::inject)
//! seam that `tm-check` uses for deterministic exploration.
//!
//! Where `tm-check` serializes the whole stack onto one cooperative
//! scheduler, chaos mode leaves the threads free-running and instead rolls
//! dice at each seam crossing: injected capacity/conflict aborts at access
//! and commit points, randomized stalls inside the windows the resilience
//! layer must survive (suspend/quiescence entry, the RO fast path, commit),
//! and optional panics in the middle of transaction bodies. The `chaos-soak`
//! bench binary sweeps these knobs across backends and asserts liveness and
//! workload invariants.
//!
//! Cost when disarmed: [`on_event`]/[`on_inject`] read one global relaxed
//! `AtomicBool` and return — no thread-local probe, no lock. The backends
//! go further on their per-access paths: they cache
//! [`active`](super::active) at transaction begin and skip the hook calls
//! entirely while it is false (two per-access atomic loads measured at
//! double-digit percent on this simulator's access-dominated benchmarks).
//! Arming therefore takes effect at each thread's next transaction begin.
//! When armed, each thread caches the active `Arc<ChaosState>` keyed by a
//! global install epoch, so the shared `RwLock` is touched once per thread
//! per (re)install, not per event.
//!
//! Injected aborts are restricted to `Conflict` and `Capacity`: `Explicit`
//! is a semantic signal some backends treat specially (htm-sgl's lock
//! subscription reports the "saw the SGL locked" retry as an explicit
//! abort that does not burn retry budget), so injecting it would manufacture
//! livelocks the real hardware cannot produce.

use super::{AbortCode, Event, InjectPoint};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Probabilities and magnitudes for the injector. All probabilities are in
/// `[0, 1]` and independent; the default is all-zero (no faults even when
/// installed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Base seed mixed into each thread's private RNG stream.
    pub seed: u64,
    /// Probability that a transactional access is forced to abort.
    pub abort_access: f64,
    /// Probability that a commit attempt is forced to abort.
    pub abort_commit: f64,
    /// Of the injected aborts, the share reported as `Capacity` (the rest
    /// are `Conflict`). Capacity aborts burn retry budget faster, so this
    /// knob steers how quickly threads are pushed onto the SGL path.
    pub capacity_share: f64,
    /// Probability of a random stall at each stall site (suspend, RO
    /// begin, commit point, SGL acquisition).
    pub stall: f64,
    /// Upper bound for one injected stall, in microseconds. The actual
    /// stall is uniform in `[0, stall_max_us]`.
    pub stall_max_us: u64,
    /// Probability that a transactional access *panics* instead of
    /// aborting, exercising the unwind-safety of the whole stack. Only
    /// harnesses that catch worker panics (chaos-soak, the panic-safety
    /// tests) should set this.
    pub panic: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0x5EED,
            abort_access: 0.0,
            abort_commit: 0.0,
            capacity_share: 0.5,
            stall: 0.0,
            stall_max_us: 50,
            panic: 0.0,
        }
    }
}

/// Tallies of what the injector actually did (read via [`ChaosGuard`]).
#[derive(Debug, Default)]
struct Counters {
    aborts: AtomicU64,
    stalls: AtomicU64,
    panics: AtomicU64,
}

/// Snapshot of the injector's activity counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosReport {
    /// Aborts forced at access/commit points.
    pub injected_aborts: u64,
    /// Randomized stalls executed.
    pub injected_stalls: u64,
    /// Panics raised inside transaction bodies.
    pub injected_panics: u64,
}

struct ChaosState {
    config: ChaosConfig,
    counters: Counters,
}

/// Armed flag: the only thing the disarmed fast path reads.
static ARMED: AtomicBool = AtomicBool::new(false);
/// Bumped on every install/uninstall so per-thread caches revalidate.
static EPOCH: AtomicU64 = AtomicU64::new(0);
static STATE: RwLock<Option<Arc<ChaosState>>> = RwLock::new(None);
/// Distinct RNG stream per participating thread.
static THREAD_SALT: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CACHE: RefCell<(u64, Option<Arc<ChaosState>>)> = const { RefCell::new((0, None)) };
    static RNG: Cell<u64> = const { Cell::new(0) };
}

/// Arm the injector process-wide with `config`. Returns a guard that
/// disarms on drop. Panics if chaos is already installed (runs must not
/// overlap — the soak harness installs one config at a time).
pub fn install(config: ChaosConfig) -> ChaosGuard {
    let mut slot = STATE.write().unwrap_or_else(|e| e.into_inner());
    assert!(slot.is_none(), "chaos already installed");
    let state = Arc::new(ChaosState { config, counters: Counters::default() });
    *slot = Some(state.clone());
    EPOCH.fetch_add(1, Ordering::Release);
    ARMED.store(true, Ordering::Release);
    ChaosGuard { state }
}

/// Whether the injector is currently armed (drivers may report it).
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Disarm-on-drop guard returned by [`install`]; also the handle for
/// reading the activity counters.
pub struct ChaosGuard {
    state: Arc<ChaosState>,
}

impl ChaosGuard {
    /// Snapshot what the injector has done so far.
    pub fn report(&self) -> ChaosReport {
        ChaosReport {
            injected_aborts: self.state.counters.aborts.load(Ordering::Relaxed),
            injected_stalls: self.state.counters.stalls.load(Ordering::Relaxed),
            injected_panics: self.state.counters.panics.load(Ordering::Relaxed),
        }
    }
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::Release);
        let mut slot = STATE.write().unwrap_or_else(|e| e.into_inner());
        *slot = None;
        EPOCH.fetch_add(1, Ordering::Release);
    }
}

/// Fetch this thread's cached view of the armed state, revalidating
/// against the install epoch.
fn current() -> Option<Arc<ChaosState>> {
    let epoch = EPOCH.load(Ordering::Acquire);
    CACHE.with(|c| {
        let mut c = c.borrow_mut();
        if c.0 != epoch {
            c.1 = STATE.read().unwrap_or_else(|e| e.into_inner()).clone();
            c.0 = epoch;
        }
        c.1.clone()
    })
}

/// xorshift64*: private stream per thread, derived from the config seed
/// and a process-wide salt so concurrent threads diverge.
fn next_rand(seed: u64) -> u64 {
    RNG.with(|r| {
        let mut x = r.get();
        if x == 0 {
            let salt = THREAD_SALT.fetch_add(1, Ordering::Relaxed);
            x = (seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        r.set(x);
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    })
}

/// Roll a probability in `[0, 1]`.
fn roll(seed: u64, p: f64) -> bool {
    p > 0.0 && (next_rand(seed) >> 11) as f64 / ((1u64 << 53) as f64) < p
}

fn maybe_stall(state: &ChaosState) {
    let cfg = &state.config;
    if roll(cfg.seed, cfg.stall) {
        state.counters.stalls.fetch_add(1, Ordering::Relaxed);
        let us =
            if cfg.stall_max_us == 0 { 0 } else { next_rand(cfg.seed) % (cfg.stall_max_us + 1) };
        std::thread::sleep(Duration::from_micros(us));
    }
}

/// Event-side hook: stall injection inside the windows the watchdog and
/// drain deadlines protect. Disarmed cost: one relaxed load.
#[inline]
pub(super) fn on_event(ev: Event) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    on_event_slow(ev);
}

#[cold]
fn on_event_slow(ev: Event) {
    let Some(state) = current() else { return };
    match ev {
        // The windows peers wait out: a suspended writer inside the
        // quiescence protocol, a read-only fast-path reader holding its
        // published state, a drained SGL holder.
        Event::Suspend | Event::RoBegin | Event::SglLock => maybe_stall(&state),
        _ => {}
    }
}

/// Inject-side hook: forced aborts and panics. Disarmed cost: one relaxed
/// load.
#[inline]
pub(super) fn on_inject(point: InjectPoint) -> Option<AbortCode> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    on_inject_slow(point)
}

#[cold]
fn on_inject_slow(point: InjectPoint) -> Option<AbortCode> {
    let state = current()?;
    let cfg = &state.config;
    let abort_p = match point {
        InjectPoint::Access => {
            if roll(cfg.seed, cfg.panic) {
                state.counters.panics.fetch_add(1, Ordering::Relaxed);
                panic!("chaos: injected panic inside transaction body");
            }
            cfg.abort_access
        }
        InjectPoint::Commit => {
            maybe_stall(&state);
            cfg.abort_commit
        }
    };
    if roll(cfg.seed, abort_p) {
        state.counters.aborts.fetch_add(1, Ordering::Relaxed);
        let code = if roll(cfg.seed, cfg.capacity_share) {
            AbortCode::Capacity
        } else {
            AbortCode::Conflict
        };
        return Some(code);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    // Chaos state is process-global, so the tests that arm it share one
    // lock to avoid cross-test interference under the parallel test
    // runner.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disarmed_injects_nothing() {
        let _t = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!armed());
        assert_eq!(super::super::inject(InjectPoint::Access), None);
        super::super::emit(Event::Suspend);
    }

    #[test]
    fn certain_abort_probability_always_fires() {
        let _t = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let guard = install(ChaosConfig {
            abort_access: 1.0,
            abort_commit: 1.0,
            capacity_share: 1.0,
            ..ChaosConfig::default()
        });
        assert!(armed());
        assert_eq!(super::super::inject(InjectPoint::Access), Some(AbortCode::Capacity));
        assert_eq!(super::super::inject(InjectPoint::Commit), Some(AbortCode::Capacity));
        assert_eq!(guard.report().injected_aborts, 2);
        drop(guard);
        assert!(!armed());
        assert_eq!(super::super::inject(InjectPoint::Access), None);
    }

    #[test]
    fn probabilities_are_roughly_honored() {
        let _t = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let guard = install(ChaosConfig {
            abort_access: 0.25,
            capacity_share: 0.0,
            ..ChaosConfig::default()
        });
        let mut hits = 0u32;
        for _ in 0..10_000 {
            if let Some(code) = super::super::inject(InjectPoint::Access) {
                assert_eq!(code, AbortCode::Conflict);
                hits += 1;
            }
        }
        assert!((1500..3500).contains(&hits), "0.25 rate wildly off: {hits}/10000");
        assert_eq!(guard.report().injected_aborts as u32, hits);
    }

    #[test]
    fn panic_injection_unwinds_and_counts() {
        let _t = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let guard = install(ChaosConfig { panic: 1.0, ..ChaosConfig::default() });
        let caught = std::panic::catch_unwind(|| super::super::inject(InjectPoint::Access));
        assert!(caught.is_err());
        assert_eq!(guard.report().injected_panics, 1);
    }
}
