//! Monotonic virtual clock — the stand-in for the POWER time base register.
//!
//! SI-HTM's Algorithm 1 publishes `currentTime()` (clock cycles) in the
//! per-thread `state[]` array; the only property the algorithm needs is
//! strict monotonicity plus the ability to distinguish the two reserved
//! values `inactive = 0` and `completed = 1`. [`VirtualClock`] provides a
//! process-wide monotonic counter that always returns values `>= 2`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Reserved `state[]` value: thread runs no transaction.
pub const INACTIVE: u64 = 0;
/// Reserved `state[]` value: transaction completed, waiting for safe commit.
pub const COMPLETED: u64 = 1;
/// First valid timestamp (`> COMPLETED`, so any timestamp means "active").
pub const FIRST_TIMESTAMP: u64 = 2;

/// Process-wide monotonic virtual clock.
///
/// `now()` is a single `fetch_add`, mirroring the cost profile of reading
/// the POWER time base (cheap, uncontended most of the time) while
/// guaranteeing strictly increasing, unique timestamps — which real cycle
/// counters also give within one SMP domain.
#[derive(Debug)]
pub struct VirtualClock {
    ticks: AtomicU64,
}

impl VirtualClock {
    /// A fresh clock starting at [`FIRST_TIMESTAMP`].
    pub const fn new() -> Self {
        VirtualClock { ticks: AtomicU64::new(FIRST_TIMESTAMP) }
    }

    /// Strictly-increasing unique timestamp, always `>= FIRST_TIMESTAMP`.
    #[inline]
    pub fn now(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed)
    }

    /// Latest timestamp handed out (approximate under concurrency).
    #[inline]
    pub fn peek(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_values_are_distinct() {
        let values = [INACTIVE, COMPLETED, FIRST_TIMESTAMP];
        assert!(values.windows(2).all(|w| w[0] < w[1]), "reserved values must ascend");
    }

    #[test]
    fn timestamps_are_strictly_increasing() {
        let c = VirtualClock::new();
        let a = c.now();
        let b = c.now();
        assert!(a >= FIRST_TIMESTAMP);
        assert!(b > a);
    }

    #[test]
    fn timestamps_are_unique_across_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let c = VirtualClock::new();
        let seen = Mutex::new(HashSet::new());
        crossbeam_utils::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    let mut local = Vec::with_capacity(1000);
                    for _ in 0..1000 {
                        local.push(c.now());
                    }
                    let mut g = seen.lock().unwrap();
                    for t in local {
                        assert!(g.insert(t), "duplicate timestamp {t}");
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(seen.lock().unwrap().len(), 4000);
    }
}
