//! Cache-line-aligned concurrent bump allocator over a [`crate::TxMemory`] region.
//!
//! Workloads use this to lay out their data structures (hash-map nodes,
//! TPC-C rows) with controlled *cache-line footprints*: the simulator's
//! TMCAM capacity model counts distinct 128-byte lines touched, so placing
//! each node/row on its own line(s) reproduces the footprint the paper's
//! C benchmarks have on real POWER8 hardware.

use crate::{round_up_to_line, Addr, WORDS_PER_LINE};
use std::sync::atomic::{AtomicU64, Ordering};

/// Concurrent bump allocator handing out cache-line-aligned word ranges
/// from `[base, base + capacity_words)` of some [`crate::TxMemory`].
///
/// Never frees; the workloads that need reuse (hash-map remove/insert
/// cycles) maintain their own free lists *inside* simulated memory, which
/// is also what the paper's benchmarks do.
#[derive(Debug)]
pub struct LineAlloc {
    base: Addr,
    next: AtomicU64,
    end: Addr,
}

impl LineAlloc {
    /// Create an allocator over `[base, base + capacity_words)`. `base` must
    /// be line-aligned.
    pub fn new(base: Addr, capacity_words: u64) -> Self {
        assert!(
            base.is_multiple_of(WORDS_PER_LINE as u64),
            "LineAlloc base must be cache-line aligned"
        );
        LineAlloc { base, next: AtomicU64::new(base), end: base + capacity_words }
    }

    /// Allocate `words` words rounded up to whole cache lines, returning the
    /// line-aligned base address.
    ///
    /// Panics on exhaustion: the workloads size their arenas up front and an
    /// overflow indicates a mis-sized experiment, not a runtime condition.
    pub fn alloc(&self, words: u64) -> Addr {
        let sz = round_up_to_line(words.max(1));
        let got = self.next.fetch_add(sz, Ordering::Relaxed);
        assert!(
            got + sz <= self.end,
            "LineAlloc exhausted: asked {} words at {}, arena ends at {}",
            sz,
            got,
            self.end
        );
        got
    }

    /// Allocate a whole number of cache lines.
    pub fn alloc_lines(&self, lines: u64) -> Addr {
        self.alloc(lines * WORDS_PER_LINE as u64)
    }

    /// Words handed out so far.
    pub fn used(&self) -> u64 {
        self.next.load(Ordering::Relaxed) - self.base
    }

    /// Words still available.
    pub fn remaining(&self) -> u64 {
        self.end - self.next.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line_of;

    #[test]
    fn allocations_are_line_aligned_and_disjoint() {
        let a = LineAlloc::new(0, 16 * 64);
        let x = a.alloc(3);
        let y = a.alloc(17);
        let z = a.alloc(16);
        assert_eq!(x % 16, 0);
        assert_eq!(y % 16, 0);
        assert_eq!(z % 16, 0);
        // 3 words round to one line, 17 to two.
        assert_eq!(y - x, 16);
        assert_eq!(z - y, 32);
        assert_ne!(line_of(x), line_of(y));
    }

    #[test]
    fn usage_accounting() {
        let a = LineAlloc::new(32, 16 * 8);
        assert_eq!(a.used(), 0);
        a.alloc_lines(2);
        assert_eq!(a.used(), 32);
        assert_eq!(a.remaining(), 16 * 8 - 32);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let a = LineAlloc::new(0, 16);
        a.alloc_lines(1);
        a.alloc_lines(1);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn unaligned_base_rejected() {
        let _ = LineAlloc::new(3, 64);
    }

    #[test]
    fn concurrent_allocs_disjoint() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let a = LineAlloc::new(0, 16 * 1024);
        let seen = Mutex::new(HashSet::new());
        crossbeam_utils::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    for _ in 0..128 {
                        let addr = a.alloc_lines(2);
                        assert!(seen.lock().unwrap().insert(addr), "overlapping allocation");
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(seen.lock().unwrap().len(), 512);
    }
}
