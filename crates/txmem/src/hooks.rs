//! Check-time observation hooks: the `Recorder` seam between the simulator
//! stack and the `tm-check` deterministic harness — plus the always-built
//! [`chaos`] injector that reuses the same seam with *real* OS threads.
//!
//! Every layer above `txmem` (the P8-HTM engine, the four backends) calls
//! [`emit`] at each simulated memory access and backend state transition,
//! and [`inject`] at the points where best-effort hardware may abort
//! spuriously. With the `check` cargo feature **disabled** (the default),
//! the check-harness half compiles out entirely; a bare [`emit`]/[`inject`]
//! then costs one relaxed atomic load (the chaos gate, see [`chaos`]) and a
//! predicted-not-taken branch — and the per-access call sites avoid even
//! that by caching [`active`] at transaction begin and skipping the calls
//! outright while nothing is listening. With `check` enabled, a harness installs a
//! per-OS-thread [`CheckHooks`] object; [`emit`] then doubles as a *yield
//! point* for `tm-check`'s cooperative scheduler, and [`inject`] lets it
//! force capacity/conflict aborts deterministically.
//!
//! The event vocabulary lives here — the lowest layer — so that every crate
//! in the stack can speak it without dependency cycles. Hardware abort
//! reasons are therefore mirrored as the plain [`AbortCode`] (the engine's
//! `AbortReason` lives upstream in `htm-sim`, which provides `From` impls
//! in both directions).

use crate::Addr;

/// Mirror of `htm_sim::AbortReason` expressible at this layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortCode {
    /// Data conflict (killed by another transaction, or forced).
    Conflict,
    /// Killed by a non-transactional access (SGL-class stomp).
    NonTx,
    /// TMCAM/LVDIR capacity exhausted (or forced overflow).
    Capacity,
    /// Explicit `tabort.`.
    Explicit,
}

/// Where a fault-injection decision is being requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectPoint {
    /// Before a transactional read or write retires.
    Access,
    /// At `tend.`, before the commit transition.
    Commit,
}

/// One observable step of the simulated stack.
///
/// Events carry no thread id: the installed hook object is per-OS-thread
/// and attaches its own identity. `tx: false` on `Read`/`Write` marks
/// non-transactional accesses (RO fast path, SGL path, suspend windows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A hardware (or software-unbounded) transaction began.
    Begin { rot: bool },
    /// The running transaction committed; its buffered writes are visible.
    Commit,
    /// The running transaction aborted and rolled back.
    Abort { reason: AbortCode },
    /// A read retired with the value it observed.
    Read { addr: Addr, val: u64, tx: bool },
    /// A write retired (buffered if `tx`, immediately visible otherwise).
    Write { addr: Addr, val: u64, tx: bool },
    /// `tsuspend.`.
    Suspend,
    /// `tresume.`.
    Resume,
    /// One iteration of a spin/backoff loop (quiescence wait, commit
    /// stall, SGL drain, lock acquisition). Pure yield point: recorded
    /// schedules skip it, but the scheduler must see it or a descheduled
    /// spinner would never let its wake-up condition become true.
    Poll,
    /// A read-only fast-path transaction began (SI-HTM/P8TM Alg. 2).
    RoBegin,
    /// The read-only fast-path transaction finished successfully.
    RoCommit,
    /// The single global lock was acquired and the system drained.
    SglLock,
    /// The single global lock was released; `committed` tells whether the
    /// SGL-path transaction applied its writes or user-aborted.
    SglUnlock { committed: bool },
}

/// The harness side of the seam. Implemented by `tm-check`'s scheduler.
pub trait CheckHooks {
    /// Called at every yield point with the event that just retired.
    fn on_event(&self, ev: Event);

    /// Called at fault-injection points; `Some(code)` forces the current
    /// transaction to abort with that code.
    fn inject(&self, point: InjectPoint) -> Option<AbortCode> {
        let _ = point;
        None
    }
}

#[cfg(feature = "check")]
mod enabled {
    use super::{AbortCode, CheckHooks, Event, InjectPoint};
    use std::cell::{Cell, RefCell};
    use std::rc::Rc;

    thread_local! {
        static INSTALLED: Cell<bool> = const { Cell::new(false) };
        static HOOKS: RefCell<Option<Rc<dyn CheckHooks>>> = const { RefCell::new(None) };
    }

    /// Install `hooks` for the current OS thread. Returns a guard that
    /// uninstalls on drop (also on panic, so a dying worker releases its
    /// scheduler slot).
    pub fn install(hooks: Rc<dyn CheckHooks>) -> Installed {
        HOOKS.with(|h| *h.borrow_mut() = Some(hooks));
        INSTALLED.with(|c| c.set(true));
        Installed(())
    }

    /// Uninstall guard returned by [`install`].
    pub struct Installed(());

    impl Drop for Installed {
        fn drop(&mut self) {
            INSTALLED.with(|c| c.set(false));
            HOOKS.with(|h| *h.borrow_mut() = None);
        }
    }

    #[inline]
    pub fn emit(ev: Event) {
        if !INSTALLED.with(|c| c.get()) {
            return;
        }
        // Clone out of the RefCell before calling: the hook blocks (it is
        // the scheduler's yield point) and must not hold the borrow.
        let hooks = HOOKS.with(|h| h.borrow().clone());
        if let Some(h) = hooks {
            h.on_event(ev);
        }
    }

    #[inline]
    pub fn inject(point: InjectPoint) -> Option<AbortCode> {
        if !INSTALLED.with(|c| c.get()) {
            return None;
        }
        let hooks = HOOKS.with(|h| h.borrow().clone());
        hooks.and_then(|h| h.inject(point))
    }

    #[inline]
    pub fn installed() -> bool {
        INSTALLED.with(|c| c.get())
    }
}

#[cfg(feature = "check")]
pub use enabled::{install, Installed};

pub mod chaos;

/// Yield point / recorder notification. Consulted by the `tm-check`
/// harness (with the `check` feature) and by the [`chaos`] injector (all
/// builds). With neither active this is one relaxed load and a branch.
#[inline]
pub fn emit(ev: Event) {
    #[cfg(feature = "check")]
    enabled::emit(ev);
    chaos::on_event(ev);
}

/// Fault-injection query: `Some(code)` forces the running transaction to
/// abort with that code. The check harness (if installed on this thread)
/// takes precedence over the chaos injector.
#[inline]
pub fn inject(point: InjectPoint) -> Option<AbortCode> {
    #[cfg(feature = "check")]
    if let Some(code) = enabled::inject(point) {
        return Some(code);
    }
    chaos::on_inject(point)
}

/// True when any per-access hook consumer is live on this thread: the
/// chaos injector (process-wide) or, with the `check` feature, an
/// installed check harness. Backends cache this at transaction begin and
/// skip the per-access [`emit`]/[`inject`] calls entirely when false, so
/// the disarmed per-access cost is one test of an already-hot flag
/// instead of per-site atomic loads (which showed up at double-digit
/// percent on access-dominated benchmarks). Consequence: arming the
/// injector takes effect at each thread's *next* transaction begin;
/// accesses of transactions already in flight are not instrumented.
#[inline]
pub fn active() -> bool {
    #[cfg(feature = "check")]
    if enabled::installed() {
        return true;
    }
    chaos::armed()
}

#[cfg(all(test, feature = "check"))]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Sink {
        events: RefCell<Vec<Event>>,
    }

    impl CheckHooks for Sink {
        fn on_event(&self, ev: Event) {
            self.events.borrow_mut().push(ev);
        }

        fn inject(&self, _point: InjectPoint) -> Option<AbortCode> {
            Some(AbortCode::Capacity)
        }
    }

    #[test]
    fn emit_reaches_installed_hooks_and_stops_after_drop() {
        let sink = Rc::new(Sink { events: RefCell::new(Vec::new()) });
        emit(Event::Poll); // not installed: dropped
        {
            let _guard = install(sink.clone());
            emit(Event::Begin { rot: true });
            assert_eq!(inject(InjectPoint::Access), Some(AbortCode::Capacity));
        }
        emit(Event::Commit); // uninstalled again: dropped
        assert_eq!(&*sink.events.borrow(), &[Event::Begin { rot: true }]);
        assert_eq!(inject(InjectPoint::Commit), None);
    }
}
