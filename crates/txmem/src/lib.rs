//! Simulated word-addressable shared memory with IBM POWER8 cache-line
//! geometry.
//!
//! Every transactional-memory backend in this workspace (the simulated
//! P8-HTM, SI-HTM, P8TM, Silo, the SGL fall-back paths) operates on one
//! shared [`TxMemory`]: a flat array of 64-bit words grouped into 128-byte
//! cache lines, the conflict-detection granularity of the POWER8 TMCAM.
//!
//! The crate deliberately knows nothing about transactions. It provides:
//!
//! * [`TxMemory`] — the word array with raw (non-transactional) access,
//! * [`Addr`] / [`Line`] — address arithmetic at POWER8 geometry,
//! * [`LineAlloc`] — a concurrent, cache-line-aligned bump allocator used by
//!   the workloads to lay out nodes/rows so that their *cache-line footprint*
//!   matches what the paper's benchmarks produce on real hardware,
//! * [`VirtualClock`] — the monotonic "time base register" stand-in used for
//!   the `currentTime()` calls of SI-HTM's Algorithm 1.

pub mod alloc;
pub mod clock;
pub mod hooks;

pub use alloc::LineAlloc;
pub use clock::VirtualClock;

use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes per cache line on POWER8 (the TMCAM tracks 128-byte lines).
pub const LINE_BYTES: usize = 128;
/// 64-bit words per cache line.
pub const WORDS_PER_LINE: usize = LINE_BYTES / 8;
/// log2(WORDS_PER_LINE), used for address→line shifts.
pub const LINE_SHIFT: u32 = WORDS_PER_LINE.trailing_zeros();

/// A word address inside a [`TxMemory`]: an index into the word array.
///
/// Using a plain index (rather than raw pointers) keeps the simulator safe
/// Rust and makes addresses stable across backends.
pub type Addr = u64;

/// A cache-line identifier: `addr >> LINE_SHIFT`.
pub type Line = u64;

/// Map a word address to the cache line containing it.
#[inline(always)]
pub fn line_of(addr: Addr) -> Line {
    addr >> LINE_SHIFT
}

/// First word address of a cache line.
#[inline(always)]
pub fn line_base(line: Line) -> Addr {
    line << LINE_SHIFT
}

/// Number of distinct cache lines spanned by `[addr, addr + words)`.
#[inline]
pub fn lines_spanned(addr: Addr, words: u64) -> u64 {
    if words == 0 {
        return 0;
    }
    line_of(addr + words - 1) - line_of(addr) + 1
}

/// Round a word count up to a whole number of cache lines.
#[inline]
pub fn round_up_to_line(words: u64) -> u64 {
    let wpl = WORDS_PER_LINE as u64;
    words.div_ceil(wpl) * wpl
}

/// The simulated shared memory: a fixed-size array of atomic 64-bit words.
///
/// All accesses here are *raw*: they bypass any transactional protocol.
/// Transactional backends layer their conflict detection on top and only
/// touch memory through these primitives once their protocol allows it.
/// Plain `Relaxed` orderings are used for data words; the protocols provide
/// the necessary happens-before edges through their own locks and CASes.
pub struct TxMemory {
    words: Box<[AtomicU64]>,
}

impl TxMemory {
    /// Allocate a memory of `words` 64-bit words, zero-initialised, rounded
    /// up to a whole cache line.
    pub fn new(words: usize) -> Self {
        let n = round_up_to_line(words as u64) as usize;
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU64::new(0));
        TxMemory { words: v.into_boxed_slice() }
    }

    /// Allocate a memory sized in cache lines.
    pub fn with_lines(lines: usize) -> Self {
        Self::new(lines * WORDS_PER_LINE)
    }

    /// Total number of words.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the memory has zero words.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Total number of cache lines.
    #[inline]
    pub fn lines(&self) -> usize {
        self.words.len() / WORDS_PER_LINE
    }

    /// Raw (non-transactional) load.
    ///
    /// Panics if `addr` is out of bounds — out-of-bounds simulated accesses
    /// are always a harness bug, never a workload condition.
    #[inline(always)]
    pub fn load(&self, addr: Addr) -> u64 {
        self.words[addr as usize].load(Ordering::Relaxed)
    }

    /// Raw (non-transactional) store.
    #[inline(always)]
    pub fn store(&self, addr: Addr, val: u64) {
        self.words[addr as usize].store(val, Ordering::Relaxed);
    }

    /// Raw load with acquire ordering (used by protocols that publish data
    /// through memory words themselves, e.g. the SGL subscription word).
    #[inline(always)]
    pub fn load_acquire(&self, addr: Addr) -> u64 {
        self.words[addr as usize].load(Ordering::Acquire)
    }

    /// Raw store with release ordering.
    #[inline(always)]
    pub fn store_release(&self, addr: Addr, val: u64) {
        self.words[addr as usize].store(val, Ordering::Release);
    }

    /// Raw compare-and-swap on a word. Returns `Ok(previous)` on success.
    #[inline]
    pub fn compare_exchange(&self, addr: Addr, current: u64, new: u64) -> Result<u64, u64> {
        self.words[addr as usize].compare_exchange(
            current,
            new,
            Ordering::AcqRel,
            Ordering::Acquire,
        )
    }

    /// Raw fetch-add on a word.
    #[inline]
    pub fn fetch_add(&self, addr: Addr, val: u64) -> u64 {
        self.words[addr as usize].fetch_add(val, Ordering::AcqRel)
    }

    /// Checks whether an address is within bounds.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        (addr as usize) < self.words.len()
    }
}

impl std::fmt::Debug for TxMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxMemory")
            .field("words", &self.words.len())
            .field("lines", &self.lines())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants() {
        assert_eq!(LINE_BYTES, 128);
        assert_eq!(WORDS_PER_LINE, 16);
        assert_eq!(LINE_SHIFT, 4);
    }

    #[test]
    fn line_mapping() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(15), 0);
        assert_eq!(line_of(16), 1);
        assert_eq!(line_base(3), 48);
        assert_eq!(line_of(line_base(7)), 7);
    }

    #[test]
    fn lines_spanned_counts() {
        assert_eq!(lines_spanned(0, 0), 0);
        assert_eq!(lines_spanned(0, 1), 1);
        assert_eq!(lines_spanned(0, 16), 1);
        assert_eq!(lines_spanned(0, 17), 2);
        assert_eq!(lines_spanned(15, 2), 2);
        assert_eq!(lines_spanned(8, 16), 2);
    }

    #[test]
    fn round_up() {
        assert_eq!(round_up_to_line(0), 0);
        assert_eq!(round_up_to_line(1), 16);
        assert_eq!(round_up_to_line(16), 16);
        assert_eq!(round_up_to_line(17), 32);
    }

    #[test]
    fn memory_rounds_to_lines() {
        let m = TxMemory::new(17);
        assert_eq!(m.len(), 32);
        assert_eq!(m.lines(), 2);
    }

    #[test]
    fn load_store_roundtrip() {
        let m = TxMemory::new(64);
        assert_eq!(m.load(5), 0);
        m.store(5, 42);
        assert_eq!(m.load(5), 42);
        m.store_release(6, 7);
        assert_eq!(m.load_acquire(6), 7);
    }

    #[test]
    fn cas_and_fetch_add() {
        let m = TxMemory::new(16);
        assert_eq!(m.compare_exchange(0, 0, 9), Ok(0));
        assert_eq!(m.compare_exchange(0, 0, 1), Err(9));
        assert_eq!(m.fetch_add(0, 1), 9);
        assert_eq!(m.load(0), 10);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_load_panics() {
        let m = TxMemory::new(16);
        let _ = m.load(16);
    }

    #[test]
    fn concurrent_raw_stores_are_safe() {
        let m = TxMemory::new(WORDS_PER_LINE * 4);
        crossbeam_utils::thread::scope(|s| {
            for t in 0..4u64 {
                let m = &m;
                s.spawn(move |_| {
                    for i in 0..1000u64 {
                        m.store(t, i);
                        let _ = m.load((t + 1) % 4);
                    }
                });
            }
        })
        .unwrap();
    }
}
