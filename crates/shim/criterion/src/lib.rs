//! Offline stand-in for `criterion` with the API shape the workspace's
//! benches use. It runs each benchmark for a handful of timed iterations
//! and prints a single mean-per-iteration line — enough for a quick local
//! perf read and for `cargo test`/`cargo clippy --all-targets` to build
//! the bench targets without crates.io access. (Real statistics live in
//! the `bench` crate's own binaries, which don't go through criterion.)

use std::fmt;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub mod measurement {
    /// Marker measurement type (the only one the repo names).
    pub struct WallTime;
}

/// Benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    /// Under `cargo test` the harness passes `--test`; run one iteration.
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--test");
        Criterion { quick }
    }
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(
        &mut self,
        name: S,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            quick: self.quick,
            _criterion: PhantomData,
            _measurement: PhantomData,
        }
    }
}

/// Group of related benchmarks; configuration methods are accepted and
/// (mostly) ignored — the shim always runs a short fixed schedule.
pub struct BenchmarkGroup<'a, M> {
    name: String,
    quick: bool,
    _criterion: PhantomData<&'a mut Criterion>,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: IntoBenchmarkName,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: if self.quick { 1 } else { 25 }, spent: Duration::ZERO };
        f(&mut b);
        self.report(&id.into_name(), &b);
        self
    }

    pub fn bench_with_input<S, I, F>(&mut self, id: S, input: &I, mut f: F) -> &mut Self
    where
        S: IntoBenchmarkName,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { iters: if self.quick { 1 } else { 25 }, spent: Duration::ZERO };
        f(&mut b, input);
        self.report(&id.into_name(), &b);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let per_iter = b.spent.as_nanos() as f64 / b.iters.max(1) as f64;
        println!("bench {}/{id}: {per_iter:.0} ns/iter ({} iters)", self.name, b.iters);
    }
}

/// Throughput declaration (accepted, ignored).
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    spent: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.spent = start.elapsed();
    }

    /// Criterion's escape hatch: the closure times `iters` iterations itself.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.spent = f(self.iters);
    }
}

/// Benchmark identifier composed of a function name and a parameter.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: fmt::Display>(name: S, parameter: P) -> BenchmarkId {
        BenchmarkId { name: format!("{}/{parameter}", name.into()) }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// Conversion of the various id types `bench_function` accepts.
pub trait IntoBenchmarkName {
    fn into_name(self) -> String;
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkName for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_name(self) -> String {
        self
    }
}

/// Prevent the optimizer from deleting a computed value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion { quick: false };
        let mut g = c.benchmark_group("g");
        let mut runs = 0u64;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 25);
        g.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &x| b.iter(|| x * 2));
        g.finish();
    }
}
