//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the parking_lot API shape the workspace uses: infallible
//! `lock()` (poisoning is ignored — parking_lot has no poisoning) and
//! guards that deref to the protected value.

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    #[inline]
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner }
    }

    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(inner) => Some(MutexGuard { inner }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard { inner: e.into_inner() }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_is_infallible_and_derefs() {
        let m = Mutex::new(3u64);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert!(m.try_lock().is_some());
    }
}
