//! Value-generation strategies: ranges, tuples, `Just`, `any`, `prop_map`,
//! boxing and weighted unions. All strategies are `Clone` (the repo clones
//! them freely when composing) and generation is a pure function of the
//! [`TestRng`] stream.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy: Clone {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }

    /// Type-erase (needed to store heterogeneous strategies in one union).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` — uniform over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// Mapped strategy (`prop_map`).
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

trait ErasedStrategy<V> {
    fn generate_erased(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn generate_erased(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn ErasedStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_erased(rng)
    }
}

/// Weighted choice between strategies of one value type (`prop_oneof!`).
pub struct WeightedUnion<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Clone for WeightedUnion<V> {
    fn clone(&self) -> Self {
        WeightedUnion { arms: self.arms.clone(), total: self.total }
    }
}

impl<V> WeightedUnion<V> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        WeightedUnion { arms, total }
    }
}

impl<V> Strategy for WeightedUnion<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut roll = rng.below(self.total);
        for (w, s) in &self.arms {
            if roll < *w as u64 {
                return s.generate(rng);
            }
            roll -= *w as u64;
        }
        unreachable!("weighted roll exceeded total")
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
}
