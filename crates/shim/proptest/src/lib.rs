//! Offline mini property-testing framework exposing the slice of the
//! `proptest` surface this workspace uses: `proptest!`, `prop_oneof!`,
//! `prop_assert!`/`prop_assert_eq!`, `any`, `Just`, ranges and tuples as
//! strategies, `prop_map`, weighted unions and `collection::vec`.
//!
//! Differences from upstream: generation is driven by a fixed-seed
//! deterministic RNG (runs are reproducible by construction) and failing
//! cases are *not* shrunk — the failing values are printed instead. That
//! trade keeps the runner ~300 lines and dependency-free, which is what an
//! offline build needs.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declare property tests. Supports the upstream form used in this repo:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0..10u64, ys in collection::vec(0..5u64, 1..20)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                let __values =
                    ($($crate::strategy::Strategy::generate(&$strat, &mut __rng),)+);
                let ($($arg,)+) = __values;
                $body
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// Assert inside a property body (no shrinking, so this is `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted (or unweighted) union of strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0..10u64, y in 3..=5usize) {
            prop_assert!(x < 10);
            prop_assert!((3..=5).contains(&y));
        }

        #[test]
        fn unions_and_vecs_compose(
            v in crate::collection::vec(
                prop_oneof![3 => Just(1u64), 1 => 10..20u64], 1..50)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            prop_assert!(v.iter().all(|&x| x == 1 || (10..20).contains(&x)));
        }

        #[test]
        fn maps_and_tuples(p in (0..4u64, any::<bool>()).prop_map(|(a, b)| (a * 2, !b))) {
            prop_assert!(p.0 % 2 == 0 && p.0 < 8);
        }
    }
}
