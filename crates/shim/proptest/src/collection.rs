//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Lengths a generated collection may take.
#[derive(Debug, Clone)]
pub struct SizeRange {
    start: usize,
    end: usize, // exclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { start: r.start, end: r.end }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { start: n, end: n + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
