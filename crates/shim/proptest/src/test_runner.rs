//! Runner configuration and the deterministic RNG driving generation.

/// Mirror of `proptest::test_runner::Config` (the fields this repo touches).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator (SplitMix64). Seeded from the test name so
/// distinct properties explore distinct sequences, reproducibly.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h ^ 0x9E37_79B9_7F4A_7C15 }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)`; `span > 0`.
    #[inline]
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }
}
