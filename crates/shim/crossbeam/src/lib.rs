//! Offline stand-in for the `crossbeam` facade crate. Only the pieces the
//! workspace uses are present, re-exported from the `crossbeam-utils` shim.

pub use crossbeam_utils as utils;

pub mod thread {
    pub use crossbeam_utils::thread::{scope, Scope, ScopedJoinHandle};
}
