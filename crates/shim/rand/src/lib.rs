//! Offline stand-in for the `rand 0.8` API surface this workspace uses:
//! `SmallRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` over integer
//! ranges and `f64`, and `seq::SliceRandom::shuffle`.
//!
//! The generator is xoshiro256** seeded via SplitMix64 — the same family
//! real `SmallRng` uses on 64-bit targets — so workload distributions keep
//! their statistical character. It is *not* a drop-in reproduction of
//! upstream value streams, which the workspace never relies on.

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic seeding, the only construction path the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Lemire-style unbiased bounded sample in `[0, span)`; `span > 0`.
#[inline]
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling over the top `span`-multiple of the u64 range.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Integers uniformly samplable via an order-preserving map to `u64`
/// (signed types are biased by the sign bit). Mirrors rand's
/// `SampleUniform` just enough for a single blanket `SampleRange` impl —
/// which is what lets integer-literal ranges infer their type from the
/// surrounding expression, as with the real crate.
pub trait SampleUniform: Copy + PartialOrd {
    fn to_key(self) -> u64;
    fn from_key(key: u64) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_key(self) -> u64 { self as u64 }
            #[inline]
            fn from_key(key: u64) -> $t { key as $t }
        }
    )*};
}
impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_key(self) -> u64 { (self as i64 as u64) ^ (1 << 63) }
            #[inline]
            fn from_key(key: u64) -> $t { (key ^ (1 << 63)) as i64 as $t }
        }
    )*};
}
impl_uniform_signed!(i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_key(), self.end.to_key());
        assert!(lo < hi, "gen_range: empty range");
        T::from_key(lo + bounded(rng, hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_key(), self.end().to_key());
        assert!(lo <= hi, "gen_range: empty range");
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            // Full 64-bit domain.
            return T::from_key(rng.next_u64());
        }
        T::from_key(lo + bounded(rng, span))
    }
}

/// The user-facing random-value trait, blanket-implemented for every core.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast RNG: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers (`shuffle` is the only one the workspace uses).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (super::bounded(rng, (i + 1) as u64)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                let i = super::bounded(rng, self.len() as u64) as usize;
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let a = rng.gen_range(0..10u64);
            assert!(a < 10);
            let b = rng.gen_range(5..=15u64);
            assert!((5..=15).contains(&b));
            let c = rng.gen_range(0..7usize);
            assert!(c < 7);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0..u64::MAX), b.gen_range(0..u64::MAX));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u64> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements should not shuffle to identity");
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b} far from uniform");
        }
    }
}
