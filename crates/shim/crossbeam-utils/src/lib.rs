//! Offline stand-in for the `crossbeam-utils` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of crossbeam-utils it actually uses:
//! [`Backoff`], [`CachePadded`] and [`thread::scope`]. The semantics match
//! the upstream crate closely enough for the simulator's spin loops and
//! test harnesses; none of this code is on a measured fast path.

pub mod thread;

use core::cell::Cell;
use core::fmt;
use core::ops::{Deref, DerefMut};

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

/// Exponential backoff for spin loops, mirroring `crossbeam_utils::Backoff`.
pub struct Backoff {
    step: Cell<u32>,
}

impl Backoff {
    #[inline]
    pub fn new() -> Self {
        Backoff { step: Cell::new(0) }
    }

    #[inline]
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Busy-wait for a short bounded time (no yielding).
    #[inline]
    pub fn spin(&self) {
        for _ in 0..1u32 << self.step.get().min(SPIN_LIMIT) {
            core::hint::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Back off, yielding the thread once the spin budget is exhausted.
    #[inline]
    pub fn snooze(&self) {
        if self.step.get() <= SPIN_LIMIT {
            for _ in 0..1u32 << self.step.get() {
                core::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step.get() <= YIELD_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// `true` once the caller should switch to parking / OS yielding.
    #[inline]
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::new()
    }
}

impl fmt::Debug for Backoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Backoff").field("step", &self.step.get()).finish()
    }
}

/// Pads and aligns a value to 128 bytes, like `crossbeam_utils::CachePadded`.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    #[inline]
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.value.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_completes_after_yield_limit() {
        let b = Backoff::new();
        for _ in 0..=YIELD_LIMIT {
            assert!(!b.is_completed());
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn cache_padded_is_aligned() {
        let v = CachePadded::new(7u64);
        assert_eq!(*v, 7);
        assert_eq!((&v as *const _ as usize) % 128, 0);
    }
}
