//! Scoped threads compatible with `crossbeam_utils::thread::scope`.
//!
//! Implemented over `std::thread` by erasing the closure lifetime; safety
//! comes from the scope joining every spawned thread before it returns
//! (including threads spawned by other scoped threads), exactly the
//! contract upstream relies on.

use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

struct Record {
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
    panicked: AtomicBool,
    observed: AtomicBool,
}

/// Handle to a scope in which threads borrowing `'env` data may run.
pub struct Scope<'env> {
    records: Mutex<Vec<Arc<Record>>>,
    _marker: PhantomData<&'env mut &'env ()>,
}

struct SendPtr<T>(*const T);
unsafe impl<T> Send for SendPtr<T> {}

impl<'env> Scope<'env> {
    /// Spawn a thread that may borrow from `'env`. The closure receives the
    /// scope itself so it can spawn further siblings.
    pub fn spawn<'scope, F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'env>) -> T + Send + 'env,
        T: Send + 'env,
    {
        let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
        let record = Arc::new(Record {
            handle: Mutex::new(None),
            panicked: AtomicBool::new(false),
            observed: AtomicBool::new(false),
        });

        let their_result = Arc::clone(&result);
        let their_record = Arc::clone(&record);
        let scope_ptr = SendPtr(self as *const Scope<'env>);
        let closure = move || {
            let scope_ptr = scope_ptr;
            // SAFETY: `scope()` joins this thread before the `Scope` (and
            // anything borrowed from `'env`) is dropped.
            let scope: &Scope<'env> = unsafe { &*scope_ptr.0 };
            let r = catch_unwind(AssertUnwindSafe(|| f(scope)));
            if r.is_err() {
                their_record.panicked.store(true, Ordering::Release);
            }
            *their_result.lock().unwrap() = Some(r);
        };
        let closure: Box<dyn FnOnce() + Send + 'env> = Box::new(closure);
        // SAFETY: lifetime erasure; the join-before-return discipline above
        // guarantees the closure never outlives `'env`.
        let closure: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(closure) };

        let handle = std::thread::spawn(closure);
        *record.handle.lock().unwrap() = Some(handle);
        self.records.lock().unwrap().push(Arc::clone(&record));

        ScopedJoinHandle { record, result, _marker: PhantomData }
    }
}

/// Handle to a scoped thread; joining yields the closure's return value.
pub struct ScopedJoinHandle<'scope, T> {
    record: Arc<Record>,
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
    _marker: PhantomData<&'scope ()>,
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> std::thread::Result<T> {
        self.record.observed.store(true, Ordering::Release);
        let handle = self.record.handle.lock().unwrap().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
        self.result.lock().unwrap().take().expect("scoped thread finished without storing a result")
    }
}

/// Create a scope for spawning threads that borrow from the environment.
/// Returns `Err` if the closure panicked or any *unjoined* scoped thread
/// panicked, matching crossbeam's behaviour.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let scope = Scope { records: Mutex::new(Vec::new()), _marker: PhantomData };
    let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));

    // Join everything, looping because running threads may spawn more.
    let mut unhandled_panic = false;
    loop {
        let batch: Vec<Arc<Record>> = std::mem::take(&mut *scope.records.lock().unwrap());
        if batch.is_empty() {
            break;
        }
        for record in batch {
            let handle = record.handle.lock().unwrap().take();
            if let Some(h) = handle {
                let _ = h.join();
            }
            if record.panicked.load(Ordering::Acquire) && !record.observed.load(Ordering::Acquire) {
                unhandled_panic = true;
            }
        }
    }

    match result {
        Err(e) => Err(e),
        Ok(_) if unhandled_panic => Err(Box::new("a scoped thread panicked")),
        Ok(v) => Ok(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let counter = AtomicU64::new(0);
        scope(|s| {
            let handles: Vec<_> =
                (0..4).map(|_| s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed))).collect();
            for h in handles {
                h.join().unwrap();
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn join_returns_closure_value() {
        let r = scope(|s| s.spawn(|_| 41 + 1).join().unwrap()).unwrap();
        assert_eq!(r, 42);
    }

    #[test]
    fn unjoined_panics_surface_at_scope_exit() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_from_scoped_thread() {
        let counter = AtomicU64::new(0);
        scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
