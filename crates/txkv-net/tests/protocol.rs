//! Protocol robustness: hostile and torn input must never panic the
//! server, stall an executor, or leak a connection — every outcome is a
//! typed protocol error or a clean close, and the server keeps serving
//! fresh connections afterwards.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use tm_api::TmBackend;
use txkv::{KvOp, KvReply, KvStore, Pipeline, PipelineConfig};
use txkv_net::frame::{self, Kind, ProtoCode, MAX_PAYLOAD};
use txkv_net::{NetClient, NetError, NetServer, NetServerConfig, ShedConfig, TenantSpec};

const TENANT: u64 = 1;
const TOKEN: u64 = 0xBEEF;

fn tenant_spec() -> TenantSpec {
    TenantSpec { id: TENANT, token: TOKEN, priority: 0, rate: 1_000_000, burst: 1_000_000 }
}

fn start_service() -> (Pipeline<si_htm::SiHtm>, NetServer) {
    let backend = si_htm::SiHtm::with_defaults(1 << 16);
    let store = KvStore::create(backend.memory(), 0, 1 << 16);
    let pipeline = Pipeline::start(backend, store, PipelineConfig::quick());
    let server = NetServer::start(
        pipeline.client(),
        NetServerConfig {
            tcp: Some("127.0.0.1:0".into()),
            uds: Some(uds_path()),
            window: 64,
            tenants: vec![tenant_spec()],
            shed: ShedConfig::new(),
        },
    )
    .expect("server start");
    (pipeline, server)
}

fn uds_path() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "txkv-net-test-{}-{}.sock",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The liveness probe: a fresh, well-behaved connection must round-trip.
fn assert_alive(server: &NetServer) {
    let client =
        NetClient::connect_tcp(server.tcp_addr().unwrap(), TENANT, TOKEN).expect("connect");
    assert_eq!(
        client.call(&KvOp::Put { key: 999, val: 1 }).unwrap(),
        KvReply::Done { changed: true }
    );
    assert_eq!(client.call(&KvOp::Get { key: 999 }).unwrap(), KvReply::Value(Some(1)));
    assert_eq!(client.call(&KvOp::Delete { key: 999 }).unwrap(), KvReply::Done { changed: true });
}

/// Read frames from a raw socket until one decodes (or EOF / timeout).
fn read_frame(sock: &mut TcpStream) -> Option<frame::Frame> {
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = Vec::new();
    loop {
        match frame::decode_frame(&buf) {
            Ok(Some((f, used))) => {
                buf.drain(..used);
                return Some(f);
            }
            Ok(None) => {}
            Err(_) => panic!("server sent an undecodable frame"),
        }
        let mut chunk = [0u8; 4096];
        match sock.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
}

fn expect_proto_error(sock: &mut TcpStream, code: ProtoCode) {
    let f = read_frame(sock).expect("expected a ProtoError frame before close");
    assert_eq!(f.kind, Kind::ProtoError as u8, "expected ProtoError, got kind {}", f.kind);
    assert_eq!(frame::decode_proto_error(&f.payload).unwrap(), code);
}

fn expect_eof(sock: &mut TcpStream) {
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut chunk = [0u8; 64];
    loop {
        match sock.read(&mut chunk) {
            Ok(0) => return,
            Ok(_) => continue, // drain whatever the server flushed first
            Err(e) => panic!("expected clean close, got {e}"),
        }
    }
}

fn raw_conn(server: &NetServer) -> TcpStream {
    TcpStream::connect(server.tcp_addr().unwrap()).expect("raw connect")
}

fn hello_frame() -> Vec<u8> {
    let mut payload = Vec::new();
    frame::encode_hello(TENANT, TOKEN, &mut payload);
    let mut wire = Vec::new();
    frame::encode_frame(Kind::Hello, 0, &payload, &mut wire);
    wire
}

#[test]
fn roundtrip_over_tcp_and_uds() {
    let (pipeline, server) = start_service();
    for make in [true, false] {
        let client = if make {
            NetClient::connect_tcp(server.tcp_addr().unwrap(), TENANT, TOKEN).unwrap()
        } else {
            NetClient::connect_uds(server.uds_path().unwrap(), TENANT, TOKEN).unwrap()
        };
        let base = if make { 0u64 } else { 1000 };
        assert_eq!(
            client.call(&KvOp::Put { key: base + 1, val: 11 }).unwrap(),
            KvReply::Done { changed: true }
        );
        assert_eq!(
            client.call(&KvOp::Cas { key: base + 1, expect: Some(11), new: 12 }).unwrap(),
            KvReply::CasOk
        );
        assert_eq!(
            client.call(&KvOp::MultiGet { keys: vec![base + 1, base + 2] }).unwrap(),
            KvReply::Values(vec![Some(12), None])
        );
        assert_eq!(
            client.call(&KvOp::MultiPut { pairs: vec![(base + 2, 2), (base + 3, 3)] }).unwrap(),
            KvReply::Done { changed: true }
        );
        match client.call(&KvOp::ScanRange { from: base, to: base + 10, limit: 100 }).unwrap() {
            KvReply::Scan { count, sum } => {
                assert_eq!(count, 3);
                assert_eq!(sum, 12 + 2 + 3);
            }
            other => panic!("scan answered {other:?}"),
        }
        // No procedures registered: Call is answered CallAborted, typed.
        assert_eq!(
            client
                .call(&KvOp::Call {
                    proc: 9,
                    args: vec![],
                    footprint: vec![base],
                    read_only: false
                })
                .unwrap(),
            KvReply::CallAborted
        );
    }
    let report = pipeline.shutdown();
    assert_eq!(report.starved_executors, 0);
    let net = server.shutdown();
    assert_eq!(net.proto_errors, 0);
    assert_eq!(net.accepted, net.answered());
}

#[test]
fn pipelined_requests_demultiplex_by_correlation_id() {
    let (pipeline, server) = start_service();
    let client = NetClient::connect_tcp(server.tcp_addr().unwrap(), TENANT, TOKEN).unwrap();
    for k in 0..200u64 {
        client.call(&KvOp::Put { key: k, val: k * 7 }).unwrap();
    }
    // Fire a full window of gets without waiting, then match them all.
    let pending: Vec<_> =
        (0..200u64).map(|k| (k, client.submit(&KvOp::Get { key: k }).unwrap())).collect();
    for (k, p) in pending {
        assert_eq!(p.wait().unwrap(), KvReply::Value(Some(k * 7)), "corr mixed up key {k}");
    }
    pipeline.shutdown();
    server.shutdown();
}

#[test]
fn bad_magic_answers_typed_error_and_closes() {
    let (pipeline, server) = start_service();
    let mut sock = raw_conn(&server);
    sock.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    expect_proto_error(&mut sock, ProtoCode::BadMagic);
    expect_eof(&mut sock);
    assert_alive(&server);
    pipeline.shutdown();
    let net = server.shutdown();
    assert!(net.proto_errors >= 1);
}

#[test]
fn oversized_length_is_refused_before_buffering() {
    let (pipeline, server) = start_service();
    let mut sock = raw_conn(&server);
    let mut wire = hello_frame();
    // Corrupt the hello into an oversized frame: len > MAX_PAYLOAD.
    wire[16..20].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    sock.write_all(&wire).unwrap();
    expect_proto_error(&mut sock, ProtoCode::Oversize);
    expect_eof(&mut sock);
    assert_alive(&server);
    pipeline.shutdown();
    server.shutdown();
}

#[test]
fn crc_mismatch_is_refused() {
    let (pipeline, server) = start_service();
    let mut sock = raw_conn(&server);
    let mut wire = hello_frame();
    let last = wire.len() - 1;
    wire[last] ^= 0x40; // flip one payload bit; header still parses
    sock.write_all(&wire).unwrap();
    expect_proto_error(&mut sock, ProtoCode::BadCrc);
    expect_eof(&mut sock);
    assert_alive(&server);
    pipeline.shutdown();
    server.shutdown();
}

#[test]
fn wrong_version_is_refused() {
    let (pipeline, server) = start_service();
    let mut sock = raw_conn(&server);
    let mut wire = hello_frame();
    wire[4] = 99;
    sock.write_all(&wire).unwrap();
    expect_proto_error(&mut sock, ProtoCode::BadVersion);
    expect_eof(&mut sock);
    assert_alive(&server);
    pipeline.shutdown();
    server.shutdown();
}

#[test]
fn truncated_frame_then_disconnect_is_harmless() {
    let (pipeline, server) = start_service();
    for cut in [1usize, 4, 10, 23] {
        let mut sock = raw_conn(&server);
        let wire = hello_frame();
        sock.write_all(&wire[..cut]).unwrap();
        drop(sock); // mid-frame disconnect
    }
    // Also: a valid hello followed by half a request, then disconnect.
    let mut sock = raw_conn(&server);
    sock.write_all(&hello_frame()).unwrap();
    let mut payload = Vec::new();
    frame::encode_op(&KvOp::Put { key: 1, val: 2 }, &mut payload);
    let mut req = Vec::new();
    frame::encode_frame(Kind::Request, 42, &payload, &mut req);
    sock.write_all(&req[..req.len() / 2]).unwrap();
    drop(sock);
    assert_alive(&server);
    let report = pipeline.shutdown();
    assert_eq!(report.starved_executors, 0);
    assert_eq!(report.panicked_executors, 0);
    server.shutdown();
}

#[test]
fn request_before_hello_is_refused() {
    let (pipeline, server) = start_service();
    let mut sock = raw_conn(&server);
    let mut payload = Vec::new();
    frame::encode_op(&KvOp::Get { key: 1 }, &mut payload);
    let mut wire = Vec::new();
    frame::encode_frame(Kind::Request, 7, &payload, &mut wire);
    sock.write_all(&wire).unwrap();
    expect_proto_error(&mut sock, ProtoCode::NotAuthed);
    expect_eof(&mut sock);
    assert_alive(&server);
    pipeline.shutdown();
    server.shutdown();
}

#[test]
fn bad_token_is_auth_failed() {
    let (pipeline, server) = start_service();
    match NetClient::connect_tcp(server.tcp_addr().unwrap(), TENANT, TOKEN ^ 1).map(|_| ()) {
        Err(NetError::AuthFailed) => {}
        other => panic!("wrong token must fail auth, got {other:?}"),
    }
    match NetClient::connect_tcp(server.tcp_addr().unwrap(), 777, TOKEN).map(|_| ()) {
        Err(NetError::AuthFailed) => {}
        other => panic!("unknown tenant must fail auth, got {other:?}"),
    }
    assert_alive(&server);
    pipeline.shutdown();
    let net = server.shutdown();
    assert_eq!(net.auth_failures, 2);
}

#[test]
fn bad_payload_answers_per_request_and_connection_survives() {
    let (pipeline, server) = start_service();
    let mut sock = raw_conn(&server);
    sock.write_all(&hello_frame()).unwrap();
    let hello_ok = read_frame(&mut sock).expect("hello answered");
    assert_eq!(hello_ok.kind, Kind::HelloOk as u8);
    // Well-framed request whose payload is garbage for every op tag.
    let mut wire = Vec::new();
    frame::encode_frame(Kind::Request, 55, &[0xFF, 0xEE], &mut wire);
    sock.write_all(&wire).unwrap();
    let err = read_frame(&mut sock).expect("bad payload answered");
    assert_eq!(err.kind, Kind::ProtoError as u8);
    assert_eq!(err.corr, 55, "payload errors correlate to the offending request");
    assert_eq!(frame::decode_proto_error(&err.payload).unwrap(), ProtoCode::BadPayload);
    // Same connection still serves valid requests afterwards.
    let mut payload = Vec::new();
    frame::encode_op(&KvOp::Put { key: 5, val: 6 }, &mut payload);
    let mut wire = Vec::new();
    frame::encode_frame(Kind::Request, 56, &payload, &mut wire);
    sock.write_all(&wire).unwrap();
    let ok = read_frame(&mut sock).expect("valid request after bad payload answered");
    assert_eq!(ok.kind, Kind::Reply as u8);
    assert_eq!(ok.corr, 56);
    assert_eq!(frame::decode_reply(&ok.payload).unwrap(), KvReply::Done { changed: true });
    pipeline.shutdown();
    server.shutdown();
}

/// Seeded frame fuzzer: random byte soup, frame-shaped garbage, and
/// truncated-valid-frame prefixes, interleaved with liveness probes.
/// The server must answer or close every fuzz connection and keep
/// serving well-behaved clients throughout.
#[test]
fn seeded_frame_fuzzer_never_wedges_the_server() {
    let (pipeline, server) = start_service();
    let mut rng = 0x5EED_F00D_u64;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let deadline = Instant::now() + Duration::from_secs(15);
    for round in 0..60 {
        if Instant::now() > deadline {
            break; // stay bounded on slow machines; coverage is per-round
        }
        let mut sock = raw_conn(&server);
        let style = round % 3;
        let mut bytes = Vec::new();
        match style {
            // Pure noise.
            0 => {
                for _ in 0..(next() % 512 + 1) {
                    bytes.push(next() as u8);
                }
            }
            // Frame-shaped: valid magic + version, random rest; CRC is
            // correct half the time so payload decoding gets exercised.
            1 => {
                let kind = (next() % 8) as u8;
                let corr = next();
                let n = (next() % 64) as usize;
                let payload: Vec<u8> = (0..n).map(|_| next() as u8).collect();
                match Kind::from_u8(kind % 6) {
                    Some(k) if next() % 2 == 0 => {
                        frame::encode_frame(k, corr, &payload, &mut bytes)
                    }
                    _ => {
                        frame::encode_frame(Kind::Request, corr, &payload, &mut bytes);
                        bytes[5] = kind; // undo kind validity, keep framing
                        let len = bytes.len();
                        bytes[len - 1] ^= (next() % 255 + 1) as u8; // break crc sometimes
                    }
                }
            }
            // Valid hello + truncated valid request.
            _ => {
                bytes.extend_from_slice(&hello_frame());
                let mut payload = Vec::new();
                frame::encode_op(&KvOp::MultiGet { keys: vec![1, 2, 3] }, &mut payload);
                let mut req = Vec::new();
                frame::encode_frame(Kind::Request, next(), &payload, &mut req);
                let cut = (next() as usize % req.len()).max(1);
                bytes.extend_from_slice(&req[..cut]);
            }
        }
        let _ = sock.write_all(&bytes);
        if next() % 2 == 0 {
            drop(sock); // slam the door
        } else {
            // Politely read whatever the server answers until close or a
            // short timeout, then drop.
            sock.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
            let mut chunk = [0u8; 1024];
            while matches!(sock.read(&mut chunk), Ok(n) if n > 0) {}
        }
        if round % 10 == 9 {
            assert_alive(&server);
        }
    }
    assert_alive(&server);
    let report = pipeline.shutdown();
    assert_eq!(report.starved_executors, 0, "fuzzing must not stall an executor");
    assert_eq!(report.panicked_executors, 0, "fuzzing must not panic an executor");
    let net = server.shutdown();
    assert_eq!(net.accepted, net.answered(), "every accepted request answered-or-shed");
}
