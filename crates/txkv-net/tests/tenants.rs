//! Multi-tenant admission semantics at the wire: a noisy neighbor is
//! throttled with *typed, per-tenant* refusals while the protected
//! tenant's accepted requests are all answered; the answered-or-shed
//! invariant holds across disconnects; and nothing starves an executor —
//! with and without chaos injection underneath the pipeline.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use tm_api::TmBackend;
use txkv::{KvOp, KvReply, KvStore, Pipeline, PipelineConfig};
use txkv_net::{
    NetClient, NetError, NetReport, NetServer, NetServerConfig, RefusalScope, RefusedKind,
    ShedConfig, TenantSpec,
};

const PROT: u64 = 1;
const PROT_TOKEN: u64 = 0xAAAA;
const NOISY: u64 = 2;
const NOISY_TOKEN: u64 = 0xBBBB;

fn start(
    noisy_rate: u64,
    noisy_burst: u64,
    shed: ShedConfig,
    window: usize,
) -> (Pipeline<si_htm::SiHtm>, NetServer) {
    let backend = si_htm::SiHtm::with_defaults(1 << 16);
    let store = KvStore::create(backend.memory(), 0, 1 << 16);
    let pipeline = Pipeline::start(backend, store, PipelineConfig::quick());
    let server = NetServer::start(
        pipeline.client(),
        NetServerConfig {
            tcp: Some("127.0.0.1:0".into()),
            uds: None,
            window,
            tenants: vec![
                TenantSpec {
                    id: PROT,
                    token: PROT_TOKEN,
                    priority: 0,
                    rate: 10_000_000,
                    burst: 10_000_000,
                },
                TenantSpec {
                    id: NOISY,
                    token: NOISY_TOKEN,
                    priority: 2,
                    rate: noisy_rate,
                    burst: noisy_burst,
                },
            ],
            shed,
        },
    )
    .expect("server start");
    (pipeline, server)
}

fn tenant(report: &NetReport, id: u64) -> &txkv_net::TenantReport {
    report.tenants.iter().find(|t| t.tenant == id).expect("tenant in report")
}

/// Drive one noisy connection open-loop (as fast as the window admits)
/// until `stop`; returns (ok, refused) counts and asserts every refusal
/// is typed, per-tenant `Overloaded` from the quota or pressure gate.
fn noisy_flood(server: &NetServer, stop: &AtomicBool) -> (u64, u64) {
    let client = NetClient::connect_tcp(server.tcp_addr().unwrap(), NOISY, NOISY_TOKEN).unwrap();
    let (mut ok, mut refused) = (0u64, 0u64);
    let mut k = 0u64;
    while !stop.load(Ordering::Relaxed) {
        // Mix classes so shed ordering has something to choose between.
        let op = match k % 4 {
            0 => KvOp::Put { key: 1_000_000 + (k % 512), val: k },
            1 => KvOp::Get { key: 1_000_000 + (k % 512) },
            2 => KvOp::MultiGet { keys: vec![1_000_000, 1_000_001, 1_000_002] },
            _ => KvOp::ScanPrefix { prefix: 1_000_000 >> 8, shift: 8, limit: 16 },
        };
        k += 1;
        match client.call(&op) {
            Ok(_) => ok += 1,
            Err(NetError::Refused(r)) => {
                refused += 1;
                assert_eq!(r.tenant, NOISY, "refusal must name the refused tenant");
                assert_eq!(r.kind, RefusedKind::Overloaded, "admission refusals are Overloaded");
                assert!(
                    matches!(
                        r.scope,
                        RefusalScope::Quota | RefusalScope::Pressure | RefusalScope::Queue
                    ),
                    "unexpected scope {:?}",
                    r.scope
                );
                assert!(r.class.is_some(), "admission refusals carry the op class");
            }
            Err(e) => panic!("noisy tenant saw a non-refusal error: {e}"),
        }
    }
    (ok, refused)
}

/// The protected tenant's closed loop: every call must be answered with
/// a served reply — never refused, never shed.
fn protected_loop(server: &NetServer, ops: u64) {
    let client = NetClient::connect_tcp(server.tcp_addr().unwrap(), PROT, PROT_TOKEN).unwrap();
    for i in 0..ops {
        let op = if i % 2 == 0 {
            KvOp::Put { key: i % 1024, val: i }
        } else {
            KvOp::Get { key: i % 1024 }
        };
        match client.call(&op) {
            Ok(KvReply::Shed) => panic!("protected tenant's accepted request was shed"),
            Ok(_) => {}
            Err(e) => panic!("protected tenant refused: {e}"),
        }
    }
}

#[test]
fn noisy_neighbor_is_throttled_with_typed_per_tenant_refusals() {
    // Tight quota for the noisy tenant: refusals are guaranteed once the
    // burst allowance is spent, long before the backend queues fill.
    let (pipeline, server) = start(2_000, 200, ShedConfig::new(), 64);
    let stop = AtomicBool::new(false);
    let (noisy_out, _) = std::thread::scope(|s| {
        let noisy = s.spawn(|| noisy_flood(&server, &stop));
        let prot = s.spawn(|| protected_loop(&server, 3_000));
        prot.join().expect("protected loop");
        std::thread::sleep(Duration::from_millis(300)); // keep flooding past the quiet tenant
        stop.store(true, Ordering::Relaxed);
        (noisy.join().expect("noisy loop"), ())
    });
    let (noisy_ok, noisy_refused) = noisy_out;
    assert!(noisy_refused > 0, "noisy tenant must have been refused (ok={noisy_ok})");
    assert!(noisy_ok > 0, "throttling is not a blackhole: within quota it is served");

    let report = pipeline.shutdown();
    assert_eq!(report.starved_executors, 0, "no executor starves under a noisy neighbor");
    assert_eq!(report.panicked_executors, 0);

    let net = server.shutdown();
    assert_eq!(net.accepted, net.answered(), "every accepted request answered-or-shed");
    let noisy = tenant(&net, NOISY);
    assert!(noisy.refused_quota + noisy.refused_pressure > 0, "refusals typed per tenant");
    assert!(noisy.refused_class.iter().sum::<u64>() >= noisy.refused_quota);
    let prot = tenant(&net, PROT);
    assert_eq!(prot.refused(), 0, "protected tenant is never refused here");
    assert_eq!(prot.shed, 0, "protected tenant is never shed here");
    assert_eq!(prot.answered, prot.accepted);
    assert!(prot.e2e.count() > 0, "per-tenant latency is recorded");
}

#[test]
fn answered_or_shed_holds_across_disconnect_with_inflight_requests() {
    let (pipeline, server) = start(10_000_000, 10_000_000, ShedConfig::new(), 128);
    for round in 0..4 {
        let client =
            NetClient::connect_tcp(server.tcp_addr().unwrap(), NOISY, NOISY_TOKEN).unwrap();
        let mut pending = Vec::new();
        for i in 0..120u64 {
            match client.submit(&KvOp::Put { key: round * 1000 + i, val: i }) {
                Ok(p) => pending.push(p),
                Err(e) => panic!("submit failed: {e}"),
            }
        }
        // Drop the connection with most replies still in flight. The
        // server must resolve every one of them (delivered or counted
        // against the dead connection) without leaking a slot.
        drop(pending);
        drop(client);
    }
    // A fresh connection still works while the corpses are cleaned up.
    protected_loop(&server, 100);
    let report = pipeline.shutdown();
    assert_eq!(report.starved_executors, 0);
    assert_eq!(report.panicked_executors, 0);
    let net = server.shutdown();
    assert_eq!(
        net.accepted,
        net.answered(),
        "in-flight replies of dropped connections must still resolve \
         (replies_to_dead={})",
        net.replies_to_dead
    );
    assert_eq!(net.conns_accepted, net.conns_closed);
}

#[test]
fn server_window_bounds_inflight_and_preserves_correlation() {
    let (pipeline, server) = start(10_000_000, 10_000_000, ShedConfig::new(), 4);
    let client = NetClient::connect_tcp(server.tcp_addr().unwrap(), PROT, PROT_TOKEN).unwrap();
    assert_eq!(client.window(), 4, "client adopts the server-advertised window");
    for k in 0..64u64 {
        client.call(&KvOp::Put { key: k, val: k * 3 }).unwrap();
    }
    let pending: Vec<_> =
        (0..64u64).map(|k| (k, client.submit(&KvOp::Get { key: k }).unwrap())).collect();
    for (k, p) in pending {
        assert_eq!(p.wait().unwrap(), KvReply::Value(Some(k * 3)));
    }
    pipeline.shutdown();
    server.shutdown();
}

/// Chaos-armed variant: injected aborts and stalls under the pipeline
/// slow the executors until real queueing appears, so the pressure gate
/// (not just the token bucket) does the shedding — and every invariant
/// still holds: protected tenant untouched, noisy tenant typed-refused,
/// answered-or-shed exact, zero starved executors.
#[test]
fn noisy_neighbor_under_chaos_keeps_invariants() {
    let _guard = txmem::hooks::chaos::install(txmem::hooks::chaos::ChaosConfig {
        seed: 0xC0FFEE,
        abort_access: 0.02,
        abort_commit: 0.05,
        capacity_share: 0.5,
        stall: 0.3,
        stall_max_us: 300,
        ..Default::default()
    });
    assert!(txmem::hooks::chaos::armed());
    // Huge quota: the token bucket never refuses, so any shedding comes
    // from the pressure gate watching real backend queue depth.
    let (pipeline, server) = start(50_000_000, 50_000_000, ShedConfig { low: 8, high: 64 }, 64);
    let stop = AtomicBool::new(false);
    let deadline = Instant::now() + Duration::from_secs(2);
    let ((noisy_ok, noisy_refused), ()) = std::thread::scope(|s| {
        let noisy_a = s.spawn(|| noisy_flood(&server, &stop));
        let noisy_b = s.spawn(|| noisy_flood(&server, &stop));
        let prot = s.spawn(|| protected_loop(&server, 400));
        prot.join().expect("protected loop under chaos");
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        stop.store(true, Ordering::Relaxed);
        let a = noisy_a.join().expect("noisy a");
        let b = noisy_b.join().expect("noisy b");
        ((a.0 + b.0, a.1 + b.1), ())
    });
    let report = pipeline.shutdown();
    assert_eq!(report.starved_executors, 0, "chaos must not starve an executor");
    assert_eq!(report.panicked_executors, 0);
    let net = server.shutdown();
    assert_eq!(net.accepted, net.answered(), "answered-or-shed must survive chaos");
    let prot = tenant(&net, PROT);
    assert_eq!(prot.refused(), 0, "protected tenant never refused, even under chaos");
    let noisy = tenant(&net, NOISY);
    assert_eq!(noisy.refused_quota, 0, "quota was sized out of the picture");
    assert!(noisy_ok > 0, "noisy tenant still gets service under chaos (refused={noisy_refused})");
    // Pressure shedding is load-dependent; when it fired, it must be
    // attributed to the pressure gate of the noisy tenant only.
    assert_eq!(noisy.refused_pressure + noisy.refused_backend, noisy.refused());
}
