//! Multi-tenant admission: per-tenant token-bucket quotas, arrival-rate
//! noisiness tracking, and the SLO-aware pressure-shed policy.
//!
//! Admission for a network request runs three gates, cheapest first:
//!
//! 1. **Quota** — the tenant's token bucket, refilled at `rate` tokens/s
//!    up to `burst`, debited per request by a per-class cost (a scan
//!    costs more than a point get). An empty bucket is a typed per-tenant
//!    `Overloaded` with [`RefusalScope::Quota`]. Quotas bound what any
//!    one tenant can *offer* to the shared pipeline regardless of how
//!    fast it pipelines requests on its connections.
//! 2. **Pressure shed** — when the backend submission queues deepen past
//!    the configured watermarks, the server starts refusing work it
//!    *could* enqueue, to keep queueing delay (and thus every tenant's
//!    p99) bounded. Shedding is SLO-aware: it drops the cheapest-to-shed
//!    classes of the *noisiest* tenant first (see [`shed_rank`]), widens
//!    to other non-protected tenants only as pressure keeps rising, and
//!    never sheds a protected (priority 0) tenant.
//! 3. **Backend admission** — the pipeline's own typed refusals
//!    (queue-full `Overloaded`, `TooLarge`, `Unavailable`), forwarded to
//!    the wire with tenant context attached.
//!
//! "Noisiest" is an EWMA of the tenant's *offered* arrival rate (counted
//! before any gate refuses, so throttling does not launder noisiness)
//! normalized by its quota rate: the tenant most over its contracted
//! rate sheds first, which is the only ordering a tenant can predict
//! from its own contract.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use tm_api::LatencyHist;
use txkv::OpClass;

use crate::frame::Refusal;

/// Static description of one tenant, installed at server start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSpec {
    /// Wire-visible tenant id (the `Hello` frame names it).
    pub id: u64,
    /// Shared-secret auth token presented in `Hello`.
    pub token: u64,
    /// 0 = protected: never pressure-shed. Higher values shed earlier
    /// when the noisiness ordering ties.
    pub priority: u8,
    /// Token-bucket refill, tokens per second.
    pub rate: u64,
    /// Token-bucket capacity (burst allowance).
    pub burst: u64,
}

impl TenantSpec {
    /// Whether this tenant is exempt from pressure shedding.
    pub fn protected(&self) -> bool {
        self.priority == 0
    }
}

/// Queue-depth watermarks driving pressure shedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedConfig {
    /// Combined backend queue depth at which the noisiest non-protected
    /// tenant starts losing its cheapest-to-shed class.
    pub low: usize,
    /// Depth at which every non-protected tenant sheds every class.
    pub high: usize,
}

impl ShedConfig {
    pub fn new() -> Self {
        ShedConfig { low: 256, high: 1024 }
    }
}

impl Default for ShedConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Token cost of admitting one op of `class` — roughly proportional to
/// service cost, so a scan-heavy tenant exhausts its quota sooner than a
/// point-read tenant at the same request rate.
pub fn class_cost(class: OpClass) -> u64 {
    match class {
        OpClass::Get | OpClass::Put | OpClass::Delete | OpClass::Cas => 1,
        OpClass::MultiGet | OpClass::MultiPut | OpClass::MultiAdd => 2,
        OpClass::Scan | OpClass::Call => 4,
    }
}

/// Shed order under pressure: lower rank is dropped first. Scans shed
/// first — they are the cheapest to shed (pure reads, retryable, no
/// transactional state) while being the most expensive to serve;
/// procedure calls shed last (they carry the most client-side context
/// per request).
pub fn shed_rank(class: OpClass) -> u8 {
    match class {
        OpClass::Scan => 0,
        OpClass::MultiGet => 1,
        OpClass::Get => 2,
        OpClass::Delete | OpClass::Put => 3,
        OpClass::Cas | OpClass::MultiPut | OpClass::MultiAdd => 4,
        OpClass::Call => 5,
    }
}

/// One past the largest [`shed_rank`]: the level at which everything
/// (of a non-protected tenant) sheds.
const RANK_CEIL: f64 = 6.0;

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Exponentially-weighted arrival rate estimate (ops/s), time-decayed
/// with a ~1 s half-life so a tenant that went quiet stops counting as
/// noisy within a couple of seconds.
struct Ewma {
    rate: f64,
    last: Instant,
}

impl Ewma {
    /// Decay factor per second: rate halves every second of silence.
    const DECAY_PER_SEC: f64 = 0.5;

    fn observe(&mut self, now: Instant) {
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        let decay = Self::DECAY_PER_SEC.powf(dt);
        // One arrival now on top of the decayed rate; dt-normalized so
        // the steady-state value converges to the true arrival rate.
        self.rate = self.rate * decay + 1.0 / dt.max(1e-6) * (1.0 - decay);
    }

    fn current(&self, now: Instant) -> f64 {
        let dt = now.duration_since(self.last).as_secs_f64();
        self.rate * Self::DECAY_PER_SEC.powf(dt)
    }
}

/// Per-tenant live state: spec, bucket, noisiness, stats.
pub(crate) struct TenantState {
    pub(crate) spec: TenantSpec,
    bucket: Mutex<Bucket>,
    arrival: Mutex<Ewma>,
    /// Offered requests (before any gate).
    pub(crate) offered: AtomicU64,
    /// Accepted into the pipeline.
    pub(crate) accepted: AtomicU64,
    /// Answered with a real (served) reply.
    pub(crate) answered: AtomicU64,
    /// Answered `Shed` by the pipeline (accepted, then shed at drain).
    pub(crate) shed: AtomicU64,
    /// Refused by the quota gate.
    pub(crate) refused_quota: AtomicU64,
    /// Refused by the pressure-shed gate.
    pub(crate) refused_pressure: AtomicU64,
    /// Refused by backend admission (queue full / TooLarge / Unavailable).
    pub(crate) refused_backend: AtomicU64,
    /// Per-class refusals, all gates combined (index = `OpClass::index`).
    pub(crate) refused_class: [AtomicU64; 9],
    /// Receive-to-reply latency measured at the server edge.
    pub(crate) e2e: Mutex<LatencyHist>,
}

impl TenantState {
    fn new(spec: TenantSpec, now: Instant) -> Self {
        TenantState {
            spec,
            bucket: Mutex::new(Bucket { tokens: spec.burst as f64, last: now }),
            arrival: Mutex::new(Ewma { rate: 0.0, last: now }),
            offered: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            answered: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            refused_quota: AtomicU64::new(0),
            refused_pressure: AtomicU64::new(0),
            refused_backend: AtomicU64::new(0),
            refused_class: Default::default(),
            e2e: Mutex::new(LatencyHist::new()),
        }
    }

    /// Debit the bucket for one op of `class`; `false` = quota refusal.
    fn try_debit(&self, class: OpClass, now: Instant) -> bool {
        let mut b = self.bucket.lock().unwrap();
        let dt = now.duration_since(b.last).as_secs_f64();
        b.last = now;
        b.tokens = (b.tokens + dt * self.spec.rate as f64).min(self.spec.burst as f64);
        let cost = class_cost(class) as f64;
        if b.tokens >= cost {
            b.tokens -= cost;
            true
        } else {
            false
        }
    }

    /// Offered-rate over quota-rate: > 1 means the tenant is pushing past
    /// its contract. Protected tenants still report it (for the stats),
    /// but are never shed on it.
    fn noisiness(&self, now: Instant) -> f64 {
        let rate = self.arrival.lock().unwrap().current(now);
        rate / (self.spec.rate as f64).max(1.0)
    }
}

/// What the admission gates decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Hand the op to the pipeline.
    Admit,
    /// Refuse with this typed, per-tenant refusal.
    Refuse(Refusal),
}

/// The tenant directory plus the shared shed policy.
pub(crate) struct TenantTable {
    pub(crate) tenants: Vec<TenantState>,
    shed: ShedConfig,
}

impl TenantTable {
    pub(crate) fn new(specs: &[TenantSpec], shed: ShedConfig) -> TenantTable {
        let now = Instant::now();
        TenantTable { tenants: specs.iter().map(|&s| TenantState::new(s, now)).collect(), shed }
    }

    /// Authenticate a `Hello`; returns the tenant's index in the table.
    pub(crate) fn auth(&self, id: u64, token: u64) -> Option<usize> {
        self.tenants.iter().position(|t| t.spec.id == id && t.spec.token == token)
    }

    /// Index of the noisiest non-protected tenant, if any is currently
    /// over its contracted rate at all.
    fn noisiest(&self, now: Instant) -> Option<usize> {
        self.tenants
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.spec.protected())
            .map(|(i, t)| (i, t.noisiness(now)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
    }

    /// Run the quota + pressure gates for one request. `depth` is the
    /// backend's current combined submission-queue depth (the pressure
    /// signal). Always records the arrival (noisiness tracks *offered*
    /// load), and tallies the refusal when one is returned.
    pub(crate) fn admit(&self, tenant_ix: usize, class: OpClass, depth: usize) -> Gate {
        let now = Instant::now();
        let t = &self.tenants[tenant_ix];
        t.offered.fetch_add(1, Ordering::Relaxed);
        t.arrival.lock().unwrap().observe(now);

        if !t.try_debit(class, now) {
            t.refused_quota.fetch_add(1, Ordering::Relaxed);
            t.refused_class[class.index()].fetch_add(1, Ordering::Relaxed);
            return Gate::Refuse(Refusal::quota(t.spec.id, class));
        }

        if self.pressure_shed(tenant_ix, class, depth, now) {
            t.refused_pressure.fetch_add(1, Ordering::Relaxed);
            t.refused_class[class.index()].fetch_add(1, Ordering::Relaxed);
            return Gate::Refuse(Refusal::pressure(t.spec.id, class));
        }

        Gate::Admit
    }

    /// Record a backend refusal against the tenant (gate 3 lives in the
    /// server, which owns the `KvClient`).
    pub(crate) fn note_backend_refusal(&self, tenant_ix: usize, class: Option<OpClass>) {
        let t = &self.tenants[tenant_ix];
        t.refused_backend.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = class {
            t.refused_class[c.index()].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The SLO-aware shed decision. Pressure maps linearly from the
    /// `low..high` depth band onto shed levels `1..=6`; a request sheds
    /// when its class's [`shed_rank`] is below the level that applies to
    /// its tenant. The noisiest tenant feels the full level; everyone
    /// else (non-protected) only starts shedding past the midpoint of
    /// the band, ordered by priority (higher numeric priority sheds at
    /// a lower threshold). Protected tenants never shed here.
    fn pressure_shed(&self, tenant_ix: usize, class: OpClass, depth: usize, now: Instant) -> bool {
        let t = &self.tenants[tenant_ix];
        if t.spec.protected() || depth < self.shed.low {
            return false;
        }
        let span = (self.shed.high.saturating_sub(self.shed.low)).max(1) as f64;
        let frac = ((depth - self.shed.low) as f64 / span).min(1.0);
        let level = |f: f64| (f * RANK_CEIL).ceil().min(RANK_CEIL) as u8;
        if self.noisiest(now) == Some(tenant_ix) {
            return shed_rank(class) < level(frac);
        }
        // Quieter tenants: no shedding in the lower half of the band;
        // the upper half ramps 0..full, slightly earlier for lower
        // priority (higher `priority` value).
        let prio_bias = f64::from(t.spec.priority.min(4)) * 0.05;
        let f = ((frac - 0.5 + prio_bias) * 2.0).max(0.0);
        if f <= 0.0 {
            return false;
        }
        shed_rank(class) < level(f.min(1.0))
    }
}

/// Per-tenant slice of the final [`crate::NetReport`].
#[derive(Debug, Clone)]
pub struct TenantReport {
    pub tenant: u64,
    pub priority: u8,
    pub offered: u64,
    pub accepted: u64,
    /// Answered with a served reply (everything accepted minus `shed`).
    pub answered: u64,
    /// Accepted but answered `Shed` (pipeline drain / executor loss).
    pub shed: u64,
    pub refused_quota: u64,
    pub refused_pressure: u64,
    pub refused_backend: u64,
    /// Per-class refusals, indexed like [`OpClass::ALL`].
    pub refused_class: [u64; 9],
    /// Receive-to-reply latency at the server edge.
    pub e2e: LatencyHist,
}

impl TenantReport {
    pub(crate) fn from_state(t: &TenantState) -> TenantReport {
        TenantReport {
            tenant: t.spec.id,
            priority: t.spec.priority,
            offered: t.offered.load(Ordering::Relaxed),
            accepted: t.accepted.load(Ordering::Relaxed),
            answered: t.answered.load(Ordering::Relaxed),
            shed: t.shed.load(Ordering::Relaxed),
            refused_quota: t.refused_quota.load(Ordering::Relaxed),
            refused_pressure: t.refused_pressure.load(Ordering::Relaxed),
            refused_backend: t.refused_backend.load(Ordering::Relaxed),
            refused_class: std::array::from_fn(|i| t.refused_class[i].load(Ordering::Relaxed)),
            e2e: t.e2e.lock().unwrap().clone(),
        }
    }

    /// Total typed refusals across all gates.
    pub fn refused(&self) -> u64 {
        self.refused_quota + self.refused_pressure + self.refused_backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::RefusalScope;

    fn spec(id: u64, priority: u8, rate: u64, burst: u64) -> TenantSpec {
        TenantSpec { id, token: id ^ 0xA5, priority, rate, burst }
    }

    #[test]
    fn auth_checks_both_id_and_token() {
        let t = TenantTable::new(&[spec(1, 0, 100, 10)], ShedConfig::new());
        assert_eq!(t.auth(1, 1 ^ 0xA5), Some(0));
        assert_eq!(t.auth(1, 0), None);
        assert_eq!(t.auth(2, 2 ^ 0xA5), None);
    }

    #[test]
    fn bucket_exhausts_and_refills() {
        let t = TenantTable::new(&[spec(1, 0, 1_000, 4)], ShedConfig::new());
        // Burst of 4 single-cost ops drains the bucket; the 5th refuses.
        for _ in 0..4 {
            assert_eq!(t.admit(0, OpClass::Get, 0), Gate::Admit);
        }
        assert!(matches!(t.admit(0, OpClass::Get, 0), Gate::Refuse(r)
            if r.scope == RefusalScope::Quota && r.tenant == 1));
        // Refill at 1000/s: a few ms buys the next token.
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(t.admit(0, OpClass::Get, 0), Gate::Admit);
    }

    #[test]
    fn scans_cost_more_than_gets() {
        let t = TenantTable::new(&[spec(1, 0, 1, 4)], ShedConfig::new());
        // One scan (cost 4) drains what four gets would.
        assert_eq!(t.admit(0, OpClass::Scan, 0), Gate::Admit);
        assert!(matches!(t.admit(0, OpClass::Get, 0), Gate::Refuse(_)));
    }

    #[test]
    fn protected_tenants_never_pressure_shed() {
        let shed = ShedConfig { low: 10, high: 20 };
        let t = TenantTable::new(&[spec(1, 0, 1_000_000, 1_000_000)], shed);
        for _ in 0..100 {
            assert_eq!(t.admit(0, OpClass::Scan, usize::MAX / 2), Gate::Admit);
        }
    }

    #[test]
    fn noisiest_tenant_sheds_cheapest_class_first() {
        let shed = ShedConfig { low: 100, high: 700 };
        let specs = [
            spec(1, 0, 1_000_000, 1_000_000),
            spec(2, 1, 10, 1_000_000),
            spec(3, 1, 1_000_000, 1_000_000),
        ];
        let t = TenantTable::new(&specs, shed);
        // Make tenant 2 (index 1) visibly noisy: hammer arrivals so its
        // EWMA rate dwarfs its tiny contracted rate of 10/s.
        for _ in 0..2_000 {
            let _ = t.admit(1, OpClass::Get, 0);
        }
        let now = Instant::now();
        assert_eq!(t.noisiest(now), Some(1), "tenant 2 must rank noisiest");
        // Depth just past `low`: level 1 — only rank-0 (Scan) sheds, and
        // only for the noisiest tenant.
        assert!(t.pressure_shed(1, OpClass::Scan, 101, now));
        assert!(!t.pressure_shed(1, OpClass::Get, 101, now));
        assert!(!t.pressure_shed(2, OpClass::Scan, 101, now), "quiet tenant keeps scans");
        // Full band: the noisy tenant loses everything; the quiet
        // non-protected tenant sheds too; protected tenant never does.
        assert!(t.pressure_shed(1, OpClass::Call, 700, now));
        assert!(t.pressure_shed(2, OpClass::Call, 700, now));
        assert!(!t.pressure_shed(0, OpClass::Scan, 700, now));
    }

    #[test]
    fn shed_rank_orders_scans_before_calls() {
        assert!(shed_rank(OpClass::Scan) < shed_rank(OpClass::Get));
        assert!(shed_rank(OpClass::Get) < shed_rank(OpClass::Put));
        assert!(shed_rank(OpClass::Put) < shed_rank(OpClass::Call));
    }
}
