//! The serving side: listeners, connection state machines, admission,
//! and the executor→reactor completion path.
//!
//! One reactor thread owns every socket. Inbound bytes are framed
//! ([`crate::frame`]), each `Request` runs the tenant gates
//! ([`crate::tenant`]) and is then submitted to the [`KvClient`]; the
//! reply comes back through [`txkv::PendingReply::on_reply`] — the
//! executor that filled the slot encodes the reply frame, appends it to
//! the connection's outbound buffer and wakes the reactor. No thread is
//! parked per in-flight request anywhere on the server.
//!
//! ## Backpressure
//!
//! Two per-connection brakes, both of which *stop reading the socket*
//! instead of buffering unboundedly:
//!
//! * **window** — at most `window` requests in flight per connection;
//!   while full, inbound bytes stay in the kernel socket buffer and the
//!   peer's TCP window closes end-to-end.
//! * **outbound high-water mark** — a peer that sends requests but never
//!   reads replies would otherwise grow the outbound buffer without
//!   bound (refusals are generated at read time); past [`OUT_HWM`] the
//!   connection stops reading until the peer drains.
//!
//! ## Disconnects
//!
//! A dropped connection marks its outbound half dead and frees the
//! buffer. In-flight requests keep their reply slots — the pipeline's
//! answered-or-shed invariant is untouched — and each late reply runs
//! its hook, observes the dead connection, and is counted in
//! [`NetReport::replies_to_dead`] instead of leaking or blocking.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use txkv::{KvClient, KvReply};

use crate::frame::{self, Frame, Kind, ProtoCode, Refusal, RefusalScope};
use crate::reactor::{Event, Interest, Poller, Waker};
use crate::tenant::{Gate, ShedConfig, TenantReport, TenantSpec, TenantTable};

/// Outbound-buffer high-water mark per connection: past this the server
/// stops reading from the peer until it drains what it already owes.
const OUT_HWM: usize = 1 << 20;
/// Chunk size for socket reads.
const READ_CHUNK: usize = 64 * 1024;

const TOK_WAKE: usize = 0;
const TOK_TCP: usize = 1;
const TOK_UDS: usize = 2;
const TOK_CONN0: usize = 3;

/// Server configuration. At least one of `tcp`/`uds` must be set.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// TCP listen address, e.g. `"127.0.0.1:0"` (0 = ephemeral port,
    /// read back via [`NetServer::tcp_addr`]).
    pub tcp: Option<String>,
    /// Unix-domain socket path; any stale file is replaced.
    pub uds: Option<PathBuf>,
    /// Per-connection in-flight request window.
    pub window: usize,
    /// Tenant directory; a `Hello` for an unlisted tenant is refused.
    pub tenants: Vec<TenantSpec>,
    /// Pressure-shed watermarks.
    pub shed: ShedConfig,
}

impl NetServerConfig {
    pub fn new() -> Self {
        NetServerConfig {
            tcp: None,
            uds: None,
            window: 128,
            tenants: Vec::new(),
            shed: ShedConfig::new(),
        }
    }
}

impl Default for NetServerConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Aggregate serving stats, returned by [`NetServer::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct NetReport {
    pub conns_accepted: u64,
    pub conns_closed: u64,
    pub frames_in: u64,
    pub frames_out: u64,
    /// Protocol errors answered (framing + payload + auth-state).
    pub proto_errors: u64,
    /// Well-formed requests from authenticated tenants.
    pub requests: u64,
    /// Requests accepted into the pipeline.
    pub accepted: u64,
    /// Typed refusals by gate.
    pub refused_quota: u64,
    pub refused_pressure: u64,
    pub refused_backend: u64,
    /// `Hello` frames that failed authentication.
    pub auth_failures: u64,
    /// Replies whose connection was already gone when they landed; the
    /// reply slot was still answered (never leaked), just undeliverable.
    pub replies_to_dead: u64,
    /// Per-tenant breakdown.
    pub tenants: Vec<TenantReport>,
}

impl NetReport {
    /// Answered-or-shed accounting at the wire: every request accepted
    /// into the pipeline must have produced exactly one reply hook run
    /// (served, shed, or delivered-to-dead-connection).
    pub fn answered(&self) -> u64 {
        self.tenants.iter().map(|t| t.answered + t.shed).sum()
    }
}

// ------------------------------------------------------------- sockets

enum Sock {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Sock {
    fn raw_fd(&self) -> RawFd {
        match self {
            Sock::Tcp(s) => s.as_raw_fd(),
            Sock::Uds(s) => s.as_raw_fd(),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.read(buf),
            Sock::Uds(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.write(buf),
            Sock::Uds(s) => s.write(buf),
        }
    }
}

// -------------------------------------------------------- shared state

/// The half of a connection that reply hooks touch from executor
/// threads: outbound bytes and the in-flight count.
struct ConnOut {
    state: Mutex<OutState>,
    inflight: AtomicUsize,
}

struct OutState {
    buf: VecDeque<u8>,
    dead: bool,
}

struct Shared {
    client: KvClient,
    tenants: TenantTable,
    window: usize,
    stop: AtomicBool,
    waker: Waker,
    /// Connection tokens that need reactor attention (queued output,
    /// reopened window). Pushed by hooks, drained by the reactor.
    dirty: Mutex<Vec<usize>>,
    conns_accepted: AtomicU64,
    conns_closed: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    proto_errors: AtomicU64,
    requests: AtomicU64,
    accepted: AtomicU64,
    refused_quota: AtomicU64,
    refused_pressure: AtomicU64,
    refused_backend: AtomicU64,
    auth_failures: AtomicU64,
    replies_to_dead: AtomicU64,
}

impl Shared {
    fn mark_dirty(&self, token: usize) {
        self.dirty.lock().unwrap().push(token);
        self.waker.wake();
    }

    fn report(&self) -> NetReport {
        NetReport {
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_closed: self.conns_closed.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            proto_errors: self.proto_errors.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            refused_quota: self.refused_quota.load(Ordering::Relaxed),
            refused_pressure: self.refused_pressure.load(Ordering::Relaxed),
            refused_backend: self.refused_backend.load(Ordering::Relaxed),
            auth_failures: self.auth_failures.load(Ordering::Relaxed),
            replies_to_dead: self.replies_to_dead.load(Ordering::Relaxed),
            tenants: self.tenants.tenants.iter().map(TenantReport::from_state).collect(),
        }
    }
}

// --------------------------------------------------------- connections

struct Conn {
    sock: Sock,
    rbuf: Vec<u8>,
    out: Arc<ConnOut>,
    /// Authenticated tenant (index into the table), set by `Hello`.
    tenant: Option<usize>,
    /// Currently-registered poller interest.
    interest: Interest,
    /// Flush remaining output, then close (stream-poisoning error or
    /// auth failure).
    closing: bool,
}

/// The wire front end. Owns the reactor thread; [`shutdown`] returns the
/// final [`NetReport`].
///
/// To deliver every in-flight reply before the sockets close, shut the
/// *pipeline* down first (its drain fills every slot, pushing the frames
/// into connection buffers), then the server.
///
/// [`shutdown`]: NetServer::shutdown
pub struct NetServer {
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    uds_path: Option<PathBuf>,
}

impl NetServer {
    /// Bind listeners and start the reactor. `client` is the pipeline
    /// submission handle the served requests flow into.
    pub fn start(client: KvClient, cfg: NetServerConfig) -> io::Result<NetServer> {
        assert!(cfg.tcp.is_some() || cfg.uds.is_some(), "NetServerConfig needs tcp or uds");
        assert!(cfg.window > 0, "window must be positive");
        let tcp = match &cfg.tcp {
            Some(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let uds = match &cfg.uds {
            Some(path) => {
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let tcp_addr = tcp.as_ref().map(|l| l.local_addr()).transpose()?;
        let (waker, wake_rx) = Waker::new()?;
        let shared = Arc::new(Shared {
            client,
            tenants: TenantTable::new(&cfg.tenants, cfg.shed),
            window: cfg.window,
            stop: AtomicBool::new(false),
            waker,
            dirty: Mutex::new(Vec::new()),
            conns_accepted: AtomicU64::new(0),
            conns_closed: AtomicU64::new(0),
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            proto_errors: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            refused_quota: AtomicU64::new(0),
            refused_pressure: AtomicU64::new(0),
            refused_backend: AtomicU64::new(0),
            auth_failures: AtomicU64::new(0),
            replies_to_dead: AtomicU64::new(0),
        });
        let reactor = Reactor {
            shared: shared.clone(),
            poller: Poller::new()?,
            wake_rx,
            tcp,
            uds,
            conns: Vec::new(),
            free: Vec::new(),
            depth_cache: (0, Instant::now() - Duration::from_secs(1)),
        };
        reactor.poller.register(reactor.wake_rx.as_raw_fd(), TOK_WAKE, Interest::READ)?;
        if let Some(l) = &reactor.tcp {
            reactor.poller.register(l.as_raw_fd(), TOK_TCP, Interest::READ)?;
        }
        if let Some(l) = &reactor.uds {
            reactor.poller.register(l.as_raw_fd(), TOK_UDS, Interest::READ)?;
        }
        let thread = std::thread::Builder::new()
            .name("txkv-net-reactor".into())
            .spawn(move || reactor.run())
            .expect("spawn reactor");
        Ok(NetServer { shared, thread: Some(thread), tcp_addr, uds_path: cfg.uds })
    }

    /// Bound TCP address (the real port when configured with port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    pub fn uds_path(&self) -> Option<&PathBuf> {
        self.uds_path.as_ref()
    }

    /// Stop accepting, close every connection, and return the totals.
    pub fn shutdown(mut self) -> NetReport {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        if let Some(p) = &self.uds_path {
            let _ = std::fs::remove_file(p);
        }
        self.shared.report()
    }

    /// Live snapshot of the counters (the reactor keeps running).
    pub fn report(&self) -> NetReport {
        self.shared.report()
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

// ------------------------------------------------------------- reactor

struct Reactor {
    shared: Arc<Shared>,
    poller: Poller,
    wake_rx: UnixStream,
    tcp: Option<TcpListener>,
    uds: Option<UnixListener>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// (combined queue depth, refreshed-at): the pressure signal is read
    /// at most once per millisecond, not per request.
    depth_cache: (usize, Instant),
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            if self.poller.wait(&mut events, Some(Duration::from_millis(100))).is_err() {
                break;
            }
            let batch: Vec<Event> = std::mem::take(&mut events);
            for ev in batch {
                match ev.token {
                    TOK_WAKE => Waker::drain(&self.wake_rx),
                    TOK_TCP => self.accept_tcp(),
                    TOK_UDS => self.accept_uds(),
                    t => {
                        // Level-triggered: pump handles read+write+close
                        // in one pass; a hangup still pumps first so
                        // buffered frames are answered before the close.
                        self.pump(t, ev.hangup);
                    }
                }
            }
            let dirty: Vec<usize> = std::mem::take(&mut *self.shared.dirty.lock().unwrap());
            for t in dirty {
                self.pump(t, false);
            }
        }
        // Shutdown: every connection's outbound half goes dead so late
        // reply hooks account to `replies_to_dead` instead of buffering.
        for ix in 0..self.conns.len() {
            self.close_conn(TOK_CONN0 + ix);
        }
    }

    fn accept_tcp(&mut self) {
        while let Some(l) = &self.tcp {
            match l.accept() {
                Ok((s, _)) => {
                    let _ = s.set_nodelay(true);
                    if s.set_nonblocking(true).is_ok() {
                        self.install_conn(Sock::Tcp(s));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn accept_uds(&mut self) {
        while let Some(l) = &self.uds {
            match l.accept() {
                Ok((s, _)) => {
                    if s.set_nonblocking(true).is_ok() {
                        self.install_conn(Sock::Uds(s));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn install_conn(&mut self, sock: Sock) {
        let conn = Conn {
            sock,
            rbuf: Vec::new(),
            out: Arc::new(ConnOut {
                state: Mutex::new(OutState { buf: VecDeque::new(), dead: false }),
                inflight: AtomicUsize::new(0),
            }),
            tenant: None,
            interest: Interest::READ,
            closing: false,
        };
        let ix = match self.free.pop() {
            Some(ix) => {
                self.conns[ix] = Some(conn);
                ix
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        let token = TOK_CONN0 + ix;
        let c = self.conns[ix].as_ref().unwrap();
        if self.poller.register(c.sock.raw_fd(), token, Interest::READ).is_err() {
            self.conns[ix] = None;
            self.free.push(ix);
            return;
        }
        self.shared.conns_accepted.fetch_add(1, Ordering::Relaxed);
    }

    fn close_conn(&mut self, token: usize) {
        let ix = token - TOK_CONN0;
        let Some(conn) = self.conns.get_mut(ix).and_then(Option::take) else {
            return;
        };
        {
            let mut st = conn.out.state.lock().unwrap();
            st.dead = true;
            st.buf.clear();
        }
        let _ = self.poller.deregister(conn.sock.raw_fd());
        self.free.push(ix);
        self.shared.conns_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Pressure signal, refreshed at most every millisecond.
    fn queue_depth(&mut self) -> usize {
        if self.depth_cache.1.elapsed() > Duration::from_millis(1) {
            let (ro, rw) = self.shared.client.queue_depths();
            self.depth_cache = (ro + rw, Instant::now());
        }
        self.depth_cache.0
    }

    /// One full service pass over a connection: parse + admit buffered
    /// frames while the window and outbound buffer allow, read more,
    /// flush output, recompute poller interest, close if due.
    fn pump(&mut self, token: usize, hangup: bool) {
        let ix = token - TOK_CONN0;
        if self.conns.get(ix).map(|c| c.is_none()).unwrap_or(true) {
            return; // stale dirty token for an already-closed conn
        }
        let mut eof = false;
        loop {
            self.drain_frames(ix);
            if self.conn(ix).closing || eof {
                break;
            }
            // Window or HWM closed: leave bytes in the kernel buffer.
            if !self.may_read(ix) {
                break;
            }
            let mut chunk = [0u8; READ_CHUNK];
            match self.conn_mut(ix).sock.read(&mut chunk) {
                Ok(0) => eof = true,
                Ok(n) => {
                    self.conn_mut(ix).rbuf.extend_from_slice(&chunk[..n]);
                    continue;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => eof = true,
            }
            if eof {
                // Answer whatever full frames already arrived, then close.
                self.drain_frames(ix);
                break;
            }
        }
        let flushed = self.flush(ix);
        let c = self.conn(ix);
        let out_empty = flushed && c.out.state.lock().unwrap().buf.is_empty();
        if eof || hangup || (c.closing && out_empty) || !flushed {
            self.close_conn(token);
            return;
        }
        let want = Interest { readable: !c.closing && self.may_read(ix), writable: !out_empty };
        let c = self.conn_mut(ix);
        if want != c.interest {
            c.interest = want;
            let fd = c.sock.raw_fd();
            let _ = self.poller.modify(fd, token, want);
        }
    }

    fn conn(&self, ix: usize) -> &Conn {
        self.conns[ix].as_ref().unwrap()
    }

    fn conn_mut(&mut self, ix: usize) -> &mut Conn {
        self.conns[ix].as_mut().unwrap()
    }

    fn may_read(&self, ix: usize) -> bool {
        let c = self.conn(ix);
        c.out.inflight.load(Ordering::Acquire) < self.shared.window
            && c.out.state.lock().unwrap().buf.len() < OUT_HWM
    }

    /// Parse and handle complete frames from the connection's read
    /// buffer, stopping at the admission window / HWM / poison.
    fn drain_frames(&mut self, ix: usize) {
        loop {
            if self.conn(ix).closing || !self.may_read(ix) {
                return;
            }
            let parsed = frame::decode_frame(&self.conn(ix).rbuf);
            match parsed {
                Ok(None) => return,
                Ok(Some((frame, used))) => {
                    self.conn_mut(ix).rbuf.drain(..used);
                    self.shared.frames_in.fetch_add(1, Ordering::Relaxed);
                    self.handle_frame(ix, frame);
                }
                Err(e) => {
                    // Stream poisoned: answer with the typed error and
                    // flush-then-close. corr 0 (no frame to correlate).
                    self.proto_error(ix, 0, e.code());
                    return;
                }
            }
        }
    }

    fn proto_error(&mut self, ix: usize, corr: u64, code: ProtoCode) {
        self.shared.proto_errors.fetch_add(1, Ordering::Relaxed);
        let mut payload = Vec::new();
        frame::encode_proto_error(code, &mut payload);
        self.send(ix, Kind::ProtoError, corr, &payload);
        if code.poisons_stream()
            || matches!(
                code,
                ProtoCode::NotAuthed
                    | ProtoCode::AuthFailed
                    | ProtoCode::DuplicateHello
                    | ProtoCode::BadKind
            )
        {
            self.conn_mut(ix).closing = true;
        }
    }

    /// Append one frame to the connection's outbound buffer.
    fn send(&mut self, ix: usize, kind: Kind, corr: u64, payload: &[u8]) {
        let mut bytes = Vec::with_capacity(frame::HEADER_LEN + payload.len());
        frame::encode_frame(kind, corr, payload, &mut bytes);
        self.shared.frames_out.fetch_add(1, Ordering::Relaxed);
        let mut st = self.conn(ix).out.state.lock().unwrap();
        if !st.dead {
            st.buf.extend(bytes);
        }
    }

    fn handle_frame(&mut self, ix: usize, f: Frame) {
        match Kind::from_u8(f.kind) {
            Some(Kind::Hello) => self.handle_hello(ix, f),
            Some(Kind::Request) => self.handle_request(ix, f),
            _ => self.proto_error(ix, f.corr, ProtoCode::BadKind),
        }
    }

    fn handle_hello(&mut self, ix: usize, f: Frame) {
        if self.conn(ix).tenant.is_some() {
            self.proto_error(ix, f.corr, ProtoCode::DuplicateHello);
            return;
        }
        let Ok((id, token)) = frame::decode_hello(&f.payload) else {
            self.proto_error(ix, f.corr, ProtoCode::BadPayload);
            return;
        };
        match self.shared.tenants.auth(id, token) {
            Some(tix) => {
                self.conn_mut(ix).tenant = Some(tix);
                let mut payload = Vec::new();
                frame::encode_hello_ok(self.shared.window as u32, &mut payload);
                self.send(ix, Kind::HelloOk, f.corr, &payload);
            }
            None => {
                self.shared.auth_failures.fetch_add(1, Ordering::Relaxed);
                self.proto_error(ix, f.corr, ProtoCode::AuthFailed);
            }
        }
    }

    fn handle_request(&mut self, ix: usize, f: Frame) {
        let Some(tix) = self.conn(ix).tenant else {
            self.proto_error(ix, f.corr, ProtoCode::NotAuthed);
            return;
        };
        let Ok(op) = frame::decode_op(&f.payload) else {
            self.proto_error(ix, f.corr, ProtoCode::BadPayload);
            return;
        };
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        let class = op.class();
        let depth = self.queue_depth();
        match self.shared.tenants.admit(tix, class, depth) {
            Gate::Admit => {}
            Gate::Refuse(r) => {
                match r.scope {
                    RefusalScope::Quota => {
                        self.shared.refused_quota.fetch_add(1, Ordering::Relaxed)
                    }
                    _ => self.shared.refused_pressure.fetch_add(1, Ordering::Relaxed),
                };
                self.refuse(ix, f.corr, &r);
                return;
            }
        }
        let t0 = Instant::now();
        match self.shared.client.submit(op) {
            Ok(pending) => {
                let tenant_state = &self.shared.tenants.tenants[tix];
                tenant_state.accepted.fetch_add(1, Ordering::Relaxed);
                self.shared.accepted.fetch_add(1, Ordering::Relaxed);
                let out = self.conn(ix).out.clone();
                out.inflight.fetch_add(1, Ordering::AcqRel);
                let shared = self.shared.clone();
                let token = TOK_CONN0 + ix;
                let corr = f.corr;
                pending.on_reply(move |reply| {
                    deliver(&shared, &out, token, tix, corr, t0, reply);
                });
            }
            Err(e) => {
                let tenant_id = self.shared.tenants.tenants[tix].spec.id;
                self.shared.tenants.note_backend_refusal(tix, e.class());
                self.shared.refused_backend.fetch_add(1, Ordering::Relaxed);
                self.refuse(ix, f.corr, &Refusal::from_kv(e, tenant_id));
            }
        }
    }

    fn refuse(&mut self, ix: usize, corr: u64, r: &Refusal) {
        let mut payload = Vec::new();
        frame::encode_refusal(r, &mut payload);
        self.send(ix, Kind::Refused, corr, &payload);
    }

    /// Write as much queued output as the socket takes. `false` = the
    /// connection died mid-write.
    fn flush(&mut self, ix: usize) -> bool {
        loop {
            // Take a contiguous run under the lock, write outside it.
            let chunk: Vec<u8> = {
                let st = self.conn(ix).out.state.lock().unwrap();
                if st.buf.is_empty() {
                    return true;
                }
                let (a, _) = st.buf.as_slices();
                a[..a.len().min(READ_CHUNK)].to_vec()
            };
            match self.conn_mut(ix).sock.write(&chunk) {
                Ok(0) => return false,
                Ok(n) => {
                    let mut st = self.conn(ix).out.state.lock().unwrap();
                    let take = n.min(st.buf.len());
                    st.buf.drain(..take);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }
}

/// The executor-side completion: encode, enqueue, account, wake. Runs on
/// whichever thread filled the reply slot; never blocks on the network.
fn deliver(
    shared: &Arc<Shared>,
    out: &Arc<ConnOut>,
    token: usize,
    tix: usize,
    corr: u64,
    t0: Instant,
    reply: KvReply,
) {
    let t = &shared.tenants.tenants[tix];
    if matches!(reply, KvReply::Shed) {
        t.shed.fetch_add(1, Ordering::Relaxed);
    } else {
        t.answered.fetch_add(1, Ordering::Relaxed);
    }
    t.e2e.lock().unwrap().record(t0.elapsed());
    let mut payload = Vec::new();
    frame::encode_reply(&reply, &mut payload);
    let mut bytes = Vec::with_capacity(frame::HEADER_LEN + payload.len());
    frame::encode_frame(Kind::Reply, corr, &payload, &mut bytes);
    let delivered = {
        let mut st = out.state.lock().unwrap();
        if st.dead {
            false
        } else {
            st.buf.extend(bytes);
            true
        }
    };
    // The window slot frees regardless of deliverability — and only
    // after the bytes are queued, so a reopened window can't overtake
    // its own reply.
    out.inflight.fetch_sub(1, Ordering::AcqRel);
    if delivered {
        shared.frames_out.fetch_add(1, Ordering::Relaxed);
    } else {
        shared.replies_to_dead.fetch_add(1, Ordering::Relaxed);
    }
    shared.mark_dirty(token);
}
