//! Wire format: length-prefixed, CRC-guarded binary frames.
//!
//! Every frame is
//!
//! ```text
//! offset  size  field
//!      0     4  magic      0x54584B56 ("TXKV" big-endian bytes, LE word)
//!      4     1  version    1
//!      5     1  kind       [`Kind`]
//!      6     2  flags      reserved, must be 0
//!      8     8  corr       correlation id, echoed verbatim in the answer
//!     16     4  len        payload length, <= [`MAX_PAYLOAD`]
//!     20     4  crc        CRC-32 (ISO-HDLC) over bytes [4, 20) + payload
//!     24   len  payload
//! ```
//!
//! all little-endian. The CRC covers everything except the magic (a fixed
//! resync marker) and the CRC field itself, so a torn or bit-flipped frame
//! is detected before any payload is interpreted. Framing errors (bad
//! magic, unsupported version, oversized length, CRC mismatch) poison the
//! *stream* — the reader can no longer trust where the next frame starts —
//! so the server answers with a [`Kind::ProtoError`] frame and closes.
//! Payload errors inside a well-framed request (unknown op tag, short
//! payload) are answered per-correlation-id and the connection lives on.
//!
//! Payload codecs for [`KvOp`] / [`KvReply`] mirror the in-process enums
//! one-to-one; every variable-length vector is validated against the
//! *remaining* payload length before allocation, so a fuzzer-supplied
//! length field cannot trigger an out-of-memory allocation.

use txkv::{KvError, KvOp, KvReply, OpClass};

/// Frame magic: `b"VKXT"` little-endian, i.e. the bytes `TXKV` reversed on
/// the wire so a hexdump of a frame starts `56 4B 58 54`.
pub const MAGIC: u32 = 0x5458_4B56;
/// Protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Fixed frame header size in bytes (payload follows).
pub const HEADER_LEN: usize = 24;
/// Hard payload bound; a `len` beyond this is a framing error regardless
/// of how many bytes actually arrived (protects the read buffer).
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Frame kinds. Client-to-server: `Hello`, `Request`. Server-to-client:
/// `HelloOk`, `Reply`, `Refused`, `ProtoError`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Kind {
    /// First client frame: tenant id + auth token.
    Hello = 0,
    /// One [`KvOp`], answered by exactly one `Reply`, `Refused` or
    /// `ProtoError` carrying the same correlation id.
    Request = 1,
    /// Successful auth; payload carries the server's per-connection
    /// outstanding-request window.
    HelloOk = 2,
    /// A [`KvReply`].
    Reply = 3,
    /// Typed admission refusal ([`Refusal`]): the request was *answered*,
    /// not dropped — per-tenant `Overloaded`/`TooLarge`/`Unavailable`
    /// carried over the wire.
    Refused = 4,
    /// Protocol-level failure ([`ProtoCode`]). Stream-poisoning codes are
    /// followed by server-side close.
    ProtoError = 5,
}

impl Kind {
    pub fn from_u8(v: u8) -> Option<Kind> {
        match v {
            0 => Some(Kind::Hello),
            1 => Some(Kind::Request),
            2 => Some(Kind::HelloOk),
            3 => Some(Kind::Reply),
            4 => Some(Kind::Refused),
            5 => Some(Kind::ProtoError),
            _ => None,
        }
    }
}

/// Why a frame could not be interpreted at the protocol level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ProtoCode {
    /// Version byte differs from [`VERSION`]. Stream-poisoning.
    BadVersion = 1,
    /// CRC mismatch: torn or corrupted frame. Stream-poisoning.
    BadCrc = 2,
    /// `len` exceeds [`MAX_PAYLOAD`]. Stream-poisoning.
    Oversize = 3,
    /// Unknown `kind` byte (well-framed; answered, connection lives).
    BadKind = 4,
    /// Payload did not decode for the declared kind (answered, lives).
    BadPayload = 5,
    /// A `Request` arrived before a successful `Hello`.
    NotAuthed = 6,
    /// `Hello` named an unknown tenant or a wrong token.
    AuthFailed = 7,
    /// Magic mismatch: the reader lost framing entirely. Stream-poisoning.
    BadMagic = 8,
    /// A second `Hello` on an authenticated connection.
    DuplicateHello = 9,
}

impl ProtoCode {
    pub fn from_u8(v: u8) -> Option<ProtoCode> {
        match v {
            1 => Some(ProtoCode::BadVersion),
            2 => Some(ProtoCode::BadCrc),
            3 => Some(ProtoCode::Oversize),
            4 => Some(ProtoCode::BadKind),
            5 => Some(ProtoCode::BadPayload),
            6 => Some(ProtoCode::NotAuthed),
            7 => Some(ProtoCode::AuthFailed),
            8 => Some(ProtoCode::BadMagic),
            9 => Some(ProtoCode::DuplicateHello),
            _ => None,
        }
    }

    /// Whether the error invalidates stream framing (the sender closes
    /// after answering) or only the one frame it answers.
    pub fn poisons_stream(self) -> bool {
        matches!(
            self,
            ProtoCode::BadMagic | ProtoCode::BadVersion | ProtoCode::BadCrc | ProtoCode::Oversize
        )
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub kind: u8,
    pub corr: u64,
    pub payload: Vec<u8>,
}

/// Framing-level decode failure (vs. payload-level [`PayloadError`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    BadMagic,
    BadVersion(u8),
    Oversize(u32),
    BadCrc,
}

impl FrameError {
    pub fn code(self) -> ProtoCode {
        match self {
            FrameError::BadMagic => ProtoCode::BadMagic,
            FrameError::BadVersion(_) => ProtoCode::BadVersion,
            FrameError::Oversize(_) => ProtoCode::Oversize,
            FrameError::BadCrc => ProtoCode::BadCrc,
        }
    }
}

/// Payload did not decode for its declared kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayloadError;

// ------------------------------------------------------------------ CRC

/// CRC-32/ISO-HDLC (the zlib polynomial, reflected 0xEDB88320) — table
/// built at compile time, no dependency.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

pub fn crc32(chunks: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for chunk in chunks {
        for &b in *chunk {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    c ^ 0xFFFF_FFFF
}

// ------------------------------------------------------------- framing

/// Append one encoded frame to `out`.
pub fn encode_frame(kind: Kind, corr: u64, payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() <= MAX_PAYLOAD as usize);
    let mut mid = [0u8; 16]; // bytes [4, 20): ver, kind, flags, corr, len
    mid[0] = VERSION;
    mid[1] = kind as u8;
    // mid[2..4] flags = 0
    mid[4..12].copy_from_slice(&corr.to_le_bytes());
    mid[12..16].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    let crc = crc32(&[&mid, payload]);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&mid);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
}

/// Try to decode one frame from the front of `buf`.
///
/// `Ok(Some((frame, consumed)))` — a whole valid frame; drop `consumed`
/// bytes. `Ok(None)` — incomplete, read more. `Err(_)` — the stream is
/// poisoned at its current position; the caller answers and closes.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, FrameError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    if u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) != MAGIC {
        return Err(FrameError::BadMagic);
    }
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let ver = buf[4];
    if ver != VERSION {
        return Err(FrameError::BadVersion(ver));
    }
    let len = u32::from_le_bytes([buf[16], buf[17], buf[18], buf[19]]);
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversize(len));
    }
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let crc_wire = u32::from_le_bytes([buf[20], buf[21], buf[22], buf[23]]);
    let payload = &buf[HEADER_LEN..total];
    if crc32(&[&buf[4..20], payload]) != crc_wire {
        return Err(FrameError::BadCrc);
    }
    let corr =
        u64::from_le_bytes([buf[8], buf[9], buf[10], buf[11], buf[12], buf[13], buf[14], buf[15]]);
    Ok(Some((Frame { kind: buf[5], corr, payload: payload.to_vec() }, total)))
}

// ------------------------------------------------------- payload: reader

/// Bounds-checked little-endian payload cursor.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, PayloadError> {
        let b = *self.buf.get(self.pos).ok_or(PayloadError)?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, PayloadError> {
        let end = self.pos.checked_add(4).ok_or(PayloadError)?;
        let s = self.buf.get(self.pos..end).ok_or(PayloadError)?;
        self.pos = end;
        Ok(u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PayloadError> {
        let end = self.pos.checked_add(8).ok_or(PayloadError)?;
        let s = self.buf.get(self.pos..end).ok_or(PayloadError)?;
        self.pos = end;
        Ok(u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, PayloadError> {
        Ok(self.u64()? as i64)
    }

    /// Declared element count, validated against bytes actually left
    /// (`elem_bytes` per element) *before* any allocation.
    fn count(&mut self, elem_bytes: usize) -> Result<usize, PayloadError> {
        let n = self.u32()? as usize;
        let need = n.checked_mul(elem_bytes).ok_or(PayloadError)?;
        if self.buf.len() - self.pos < need {
            return Err(PayloadError);
        }
        Ok(n)
    }

    fn done(&self) -> Result<(), PayloadError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(PayloadError)
        }
    }
}

fn put_opt(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_le_bytes());
        }
        None => {
            out.push(0);
            out.extend_from_slice(&0u64.to_le_bytes());
        }
    }
}

fn get_opt(r: &mut Reader) -> Result<Option<u64>, PayloadError> {
    let tag = r.u8()?;
    let v = r.u64()?;
    match tag {
        0 => Ok(None),
        1 => Ok(Some(v)),
        _ => Err(PayloadError),
    }
}

// ------------------------------------------------------------ ops

const OP_GET: u8 = 0;
const OP_MULTI_GET: u8 = 1;
const OP_SCAN_PREFIX: u8 = 2;
const OP_SCAN_RANGE: u8 = 3;
const OP_PUT: u8 = 4;
const OP_DELETE: u8 = 5;
const OP_CAS: u8 = 6;
const OP_MULTI_PUT: u8 = 7;
const OP_MULTI_ADD: u8 = 8;
const OP_CALL: u8 = 9;

pub fn encode_op(op: &KvOp, out: &mut Vec<u8>) {
    match op {
        KvOp::Get { key } => {
            out.push(OP_GET);
            out.extend_from_slice(&key.to_le_bytes());
        }
        KvOp::MultiGet { keys } => {
            out.push(OP_MULTI_GET);
            out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
            for k in keys {
                out.extend_from_slice(&k.to_le_bytes());
            }
        }
        KvOp::ScanPrefix { prefix, shift, limit } => {
            out.push(OP_SCAN_PREFIX);
            out.extend_from_slice(&prefix.to_le_bytes());
            out.extend_from_slice(&shift.to_le_bytes());
            out.extend_from_slice(&limit.to_le_bytes());
        }
        KvOp::ScanRange { from, to, limit } => {
            out.push(OP_SCAN_RANGE);
            out.extend_from_slice(&from.to_le_bytes());
            out.extend_from_slice(&to.to_le_bytes());
            out.extend_from_slice(&limit.to_le_bytes());
        }
        KvOp::Put { key, val } => {
            out.push(OP_PUT);
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&val.to_le_bytes());
        }
        KvOp::Delete { key } => {
            out.push(OP_DELETE);
            out.extend_from_slice(&key.to_le_bytes());
        }
        KvOp::Cas { key, expect, new } => {
            out.push(OP_CAS);
            out.extend_from_slice(&key.to_le_bytes());
            put_opt(out, *expect);
            out.extend_from_slice(&new.to_le_bytes());
        }
        KvOp::MultiPut { pairs } => {
            out.push(OP_MULTI_PUT);
            out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            for (k, v) in pairs {
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        KvOp::MultiAdd { deltas } => {
            out.push(OP_MULTI_ADD);
            out.extend_from_slice(&(deltas.len() as u32).to_le_bytes());
            for (k, d) in deltas {
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&d.to_le_bytes());
            }
        }
        KvOp::Call { proc, args, footprint, read_only } => {
            out.push(OP_CALL);
            out.extend_from_slice(&proc.to_le_bytes());
            out.push(u8::from(*read_only));
            out.extend_from_slice(&(args.len() as u32).to_le_bytes());
            for a in args {
                out.extend_from_slice(&a.to_le_bytes());
            }
            out.extend_from_slice(&(footprint.len() as u32).to_le_bytes());
            for k in footprint {
                out.extend_from_slice(&k.to_le_bytes());
            }
        }
    }
}

pub fn decode_op(payload: &[u8]) -> Result<KvOp, PayloadError> {
    let mut r = Reader::new(payload);
    let op = match r.u8()? {
        OP_GET => KvOp::Get { key: r.u64()? },
        OP_MULTI_GET => {
            let n = r.count(8)?;
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(r.u64()?);
            }
            KvOp::MultiGet { keys }
        }
        OP_SCAN_PREFIX => KvOp::ScanPrefix { prefix: r.u64()?, shift: r.u32()?, limit: r.u64()? },
        OP_SCAN_RANGE => KvOp::ScanRange { from: r.u64()?, to: r.u64()?, limit: r.u64()? },
        OP_PUT => KvOp::Put { key: r.u64()?, val: r.u64()? },
        OP_DELETE => KvOp::Delete { key: r.u64()? },
        OP_CAS => KvOp::Cas { key: r.u64()?, expect: get_opt(&mut r)?, new: r.u64()? },
        OP_MULTI_PUT => {
            let n = r.count(16)?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                pairs.push((r.u64()?, r.u64()?));
            }
            KvOp::MultiPut { pairs }
        }
        OP_MULTI_ADD => {
            let n = r.count(16)?;
            let mut deltas = Vec::with_capacity(n);
            for _ in 0..n {
                deltas.push((r.u64()?, r.i64()?));
            }
            KvOp::MultiAdd { deltas }
        }
        OP_CALL => {
            let proc = r.u64()?;
            let read_only = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(PayloadError),
            };
            let na = r.count(8)?;
            let mut args = Vec::with_capacity(na);
            for _ in 0..na {
                args.push(r.u64()?);
            }
            let nf = r.count(8)?;
            let mut footprint = Vec::with_capacity(nf);
            for _ in 0..nf {
                footprint.push(r.u64()?);
            }
            KvOp::Call { proc, args, footprint, read_only }
        }
        _ => return Err(PayloadError),
    };
    r.done()?;
    Ok(op)
}

// ---------------------------------------------------------- replies

const RE_VALUE: u8 = 0;
const RE_VALUES: u8 = 1;
const RE_SCAN: u8 = 2;
const RE_DONE: u8 = 3;
const RE_CAS_OK: u8 = 4;
const RE_CAS_FAIL: u8 = 5;
const RE_CALL_OK: u8 = 6;
const RE_CALL_ABORTED: u8 = 7;
const RE_SHED: u8 = 8;
const RE_UNAVAILABLE: u8 = 9;

pub fn encode_reply(reply: &KvReply, out: &mut Vec<u8>) {
    match reply {
        KvReply::Value(v) => {
            out.push(RE_VALUE);
            put_opt(out, *v);
        }
        KvReply::Values(vs) => {
            out.push(RE_VALUES);
            out.extend_from_slice(&(vs.len() as u32).to_le_bytes());
            for v in vs {
                put_opt(out, *v);
            }
        }
        KvReply::Scan { count, sum } => {
            out.push(RE_SCAN);
            out.extend_from_slice(&count.to_le_bytes());
            out.extend_from_slice(&sum.to_le_bytes());
        }
        KvReply::Done { changed } => {
            out.push(RE_DONE);
            out.push(u8::from(*changed));
        }
        KvReply::CasOk => out.push(RE_CAS_OK),
        KvReply::CasFail(v) => {
            out.push(RE_CAS_FAIL);
            put_opt(out, *v);
        }
        KvReply::CallOk(vs) => {
            out.push(RE_CALL_OK);
            out.extend_from_slice(&(vs.len() as u32).to_le_bytes());
            for v in vs {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        KvReply::CallAborted => out.push(RE_CALL_ABORTED),
        KvReply::Shed => out.push(RE_SHED),
        KvReply::Unavailable => out.push(RE_UNAVAILABLE),
    }
}

pub fn decode_reply(payload: &[u8]) -> Result<KvReply, PayloadError> {
    let mut r = Reader::new(payload);
    let reply = match r.u8()? {
        RE_VALUE => KvReply::Value(get_opt(&mut r)?),
        RE_VALUES => {
            let n = r.count(9)?;
            let mut vs = Vec::with_capacity(n);
            for _ in 0..n {
                vs.push(get_opt(&mut r)?);
            }
            KvReply::Values(vs)
        }
        RE_SCAN => KvReply::Scan { count: r.u64()?, sum: r.u64()? },
        RE_DONE => KvReply::Done {
            changed: match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(PayloadError),
            },
        },
        RE_CAS_OK => KvReply::CasOk,
        RE_CAS_FAIL => KvReply::CasFail(get_opt(&mut r)?),
        RE_CALL_OK => {
            let n = r.count(8)?;
            let mut vs = Vec::with_capacity(n);
            for _ in 0..n {
                vs.push(r.u64()?);
            }
            KvReply::CallOk(vs)
        }
        RE_CALL_ABORTED => KvReply::CallAborted,
        RE_SHED => KvReply::Shed,
        RE_UNAVAILABLE => KvReply::Unavailable,
        _ => return Err(PayloadError),
    };
    r.done()?;
    Ok(reply)
}

// --------------------------------------------------------- refusals

/// Where in the admission stack an [`RefusedKind::Overloaded`] refusal
/// originated — the wire-visible difference between "the backend queue is
/// full" and "*your tenant* is over quota".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RefusalScope {
    /// Backend submission-queue lane full ([`KvError::Overloaded`]).
    Queue = 0,
    /// The tenant's token bucket is empty: per-tenant quota refusal.
    Quota = 1,
    /// SLO-aware pressure shedding picked this (tenant, class) to drop.
    Pressure = 2,
}

impl RefusalScope {
    fn from_u8(v: u8) -> Option<RefusalScope> {
        match v {
            0 => Some(RefusalScope::Queue),
            1 => Some(RefusalScope::Quota),
            2 => Some(RefusalScope::Pressure),
            _ => None,
        }
    }
}

/// Refusal categories, mirroring [`KvError`] with per-tenant context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RefusedKind {
    Overloaded = 0,
    ShuttingDown = 1,
    TooLarge = 2,
    Unavailable = 3,
}

impl RefusedKind {
    fn from_u8(v: u8) -> Option<RefusedKind> {
        match v {
            0 => Some(RefusedKind::Overloaded),
            1 => Some(RefusedKind::ShuttingDown),
            2 => Some(RefusedKind::TooLarge),
            3 => Some(RefusedKind::Unavailable),
            _ => None,
        }
    }
}

/// A typed admission refusal as carried on the wire: which tenant, which
/// op class, which shard (when routing had resolved one), and — for
/// `Overloaded` — which layer of the admission stack refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Refusal {
    pub kind: RefusedKind,
    pub scope: RefusalScope,
    /// Tenant the refusal is charged to.
    pub tenant: u64,
    pub class: Option<OpClass>,
    pub shard: Option<u32>,
    /// `TooLarge` detail: keys carried / pipeline maximum.
    pub keys: u32,
    pub max: u32,
}

impl Refusal {
    /// Lift a backend [`KvError`] into a wire refusal charged to `tenant`.
    pub fn from_kv(err: KvError, tenant: u64) -> Refusal {
        let (kind, keys, max) = match err {
            KvError::Overloaded { .. } => (RefusedKind::Overloaded, 0, 0),
            KvError::ShuttingDown => (RefusedKind::ShuttingDown, 0, 0),
            KvError::TooLarge { keys, max, .. } => (RefusedKind::TooLarge, keys, max),
            KvError::Unavailable { .. } => (RefusedKind::Unavailable, 0, 0),
        };
        Refusal {
            kind,
            scope: RefusalScope::Queue,
            tenant,
            class: err.class(),
            shard: err.shard(),
            keys,
            max,
        }
    }

    /// Per-tenant quota refusal (token bucket empty).
    pub fn quota(tenant: u64, class: OpClass) -> Refusal {
        Refusal {
            kind: RefusedKind::Overloaded,
            scope: RefusalScope::Quota,
            tenant,
            class: Some(class),
            shard: None,
            keys: 0,
            max: 0,
        }
    }

    /// SLO-aware pressure shed of (tenant, class).
    pub fn pressure(tenant: u64, class: OpClass) -> Refusal {
        Refusal {
            kind: RefusedKind::Overloaded,
            scope: RefusalScope::Pressure,
            tenant,
            class: Some(class),
            shard: None,
            keys: 0,
            max: 0,
        }
    }
}

fn class_to_u8(c: Option<OpClass>) -> u8 {
    c.map(|c| c.index() as u8).unwrap_or(u8::MAX)
}

fn class_from_u8(v: u8) -> Result<Option<OpClass>, PayloadError> {
    if v == u8::MAX {
        return Ok(None);
    }
    OpClass::ALL.get(v as usize).copied().map(Some).ok_or(PayloadError)
}

pub fn encode_refusal(r: &Refusal, out: &mut Vec<u8>) {
    out.push(r.kind as u8);
    out.push(r.scope as u8);
    out.push(class_to_u8(r.class));
    out.extend_from_slice(&r.shard.map(i64::from).unwrap_or(-1).to_le_bytes());
    out.extend_from_slice(&r.tenant.to_le_bytes());
    out.extend_from_slice(&r.keys.to_le_bytes());
    out.extend_from_slice(&r.max.to_le_bytes());
}

pub fn decode_refusal(payload: &[u8]) -> Result<Refusal, PayloadError> {
    let mut r = Reader::new(payload);
    let kind = RefusedKind::from_u8(r.u8()?).ok_or(PayloadError)?;
    let scope = RefusalScope::from_u8(r.u8()?).ok_or(PayloadError)?;
    let class = class_from_u8(r.u8()?)?;
    let shard_raw = r.i64()?;
    let shard = if shard_raw < 0 {
        None
    } else {
        Some(u32::try_from(shard_raw).map_err(|_| PayloadError)?)
    };
    let tenant = r.u64()?;
    let keys = r.u32()?;
    let max = r.u32()?;
    r.done()?;
    Ok(Refusal { kind, scope, tenant, class, shard, keys, max })
}

// ---------------------------------------------------- hello / control

pub fn encode_hello(tenant: u64, token: u64, out: &mut Vec<u8>) {
    out.extend_from_slice(&tenant.to_le_bytes());
    out.extend_from_slice(&token.to_le_bytes());
}

pub fn decode_hello(payload: &[u8]) -> Result<(u64, u64), PayloadError> {
    let mut r = Reader::new(payload);
    let tenant = r.u64()?;
    let token = r.u64()?;
    r.done()?;
    Ok((tenant, token))
}

pub fn encode_hello_ok(window: u32, out: &mut Vec<u8>) {
    out.extend_from_slice(&window.to_le_bytes());
}

pub fn decode_hello_ok(payload: &[u8]) -> Result<u32, PayloadError> {
    let mut r = Reader::new(payload);
    let w = r.u32()?;
    r.done()?;
    Ok(w)
}

pub fn encode_proto_error(code: ProtoCode, out: &mut Vec<u8>) {
    out.push(code as u8);
}

pub fn decode_proto_error(payload: &[u8]) -> Result<ProtoCode, PayloadError> {
    let mut r = Reader::new(payload);
    let c = ProtoCode::from_u8(r.u8()?).ok_or(PayloadError)?;
    r.done()?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_ops() -> Vec<KvOp> {
        vec![
            KvOp::Get { key: 7 },
            KvOp::MultiGet { keys: vec![1, 2, 3, u64::MAX] },
            KvOp::MultiGet { keys: vec![] },
            KvOp::ScanPrefix { prefix: 9, shift: 12, limit: 100 },
            KvOp::ScanRange { from: 3, to: 11, limit: 5 },
            KvOp::Put { key: 1, val: 2 },
            KvOp::Delete { key: 0 },
            KvOp::Cas { key: 5, expect: None, new: 9 },
            KvOp::Cas { key: 5, expect: Some(4), new: 9 },
            KvOp::MultiPut { pairs: vec![(1, 2), (3, 4)] },
            KvOp::MultiAdd { deltas: vec![(1, -5), (2, 5)] },
            KvOp::Call { proc: 1, args: vec![4, 5], footprint: vec![6], read_only: false },
            KvOp::Call { proc: 2, args: vec![], footprint: vec![], read_only: true },
        ]
    }

    fn all_replies() -> Vec<KvReply> {
        vec![
            KvReply::Value(None),
            KvReply::Value(Some(42)),
            KvReply::Values(vec![None, Some(1), Some(u64::MAX)]),
            KvReply::Values(vec![]),
            KvReply::Scan { count: 3, sum: 99 },
            KvReply::Done { changed: true },
            KvReply::Done { changed: false },
            KvReply::CasOk,
            KvReply::CasFail(None),
            KvReply::CasFail(Some(8)),
            KvReply::CallOk(vec![1, 2, 3]),
            KvReply::CallAborted,
            KvReply::Shed,
            KvReply::Unavailable,
        ]
    }

    #[test]
    fn ops_roundtrip() {
        for op in all_ops() {
            let mut p = Vec::new();
            encode_op(&op, &mut p);
            assert_eq!(decode_op(&p).unwrap(), op, "roundtrip {op:?}");
        }
    }

    #[test]
    fn replies_roundtrip() {
        for reply in all_replies() {
            let mut p = Vec::new();
            encode_reply(&reply, &mut p);
            assert_eq!(decode_reply(&p).unwrap(), reply, "roundtrip {reply:?}");
        }
    }

    #[test]
    fn frames_roundtrip_and_split_reads_resume() {
        let mut wire = Vec::new();
        let mut payload = Vec::new();
        encode_op(&KvOp::Get { key: 1 }, &mut payload);
        encode_frame(Kind::Request, 77, &payload, &mut wire);
        // Byte-at-a-time delivery: Ok(None) until the last byte.
        for cut in 0..wire.len() {
            assert_eq!(decode_frame(&wire[..cut]).unwrap(), None, "cut at {cut}");
        }
        let (frame, used) = decode_frame(&wire).unwrap().unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(frame.corr, 77);
        assert_eq!(frame.kind, Kind::Request as u8);
        assert_eq!(decode_op(&frame.payload).unwrap(), KvOp::Get { key: 1 });
    }

    #[test]
    fn every_flipped_bit_is_caught() {
        let mut wire = Vec::new();
        encode_frame(Kind::Reply, 5, &[1, 2, 3, 4], &mut wire);
        // Any single-bit flip anywhere outside the magic must surface as
        // a framing error or a changed-but-detected CRC; flips inside the
        // magic are BadMagic.
        for byte in 0..wire.len() {
            let mut t = wire.clone();
            t[byte] ^= 0x01;
            match decode_frame(&t) {
                Err(_) => {}
                Ok(Some(_)) => panic!("bit flip at byte {byte} went undetected"),
                // Flipping a length byte can make the frame "incomplete";
                // that is safe (the reader just waits for more bytes).
                Ok(None) => assert!((16..20).contains(&byte), "byte {byte} vanished"),
            }
        }
    }

    #[test]
    fn oversize_and_version_are_refused() {
        let mut wire = Vec::new();
        encode_frame(Kind::Request, 1, &[0u8; 4], &mut wire);
        let mut big = wire.clone();
        big[16..20].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(decode_frame(&big), Err(FrameError::Oversize(_))));
        let mut vers = wire.clone();
        vers[4] = 2;
        assert!(matches!(decode_frame(&vers), Err(FrameError::BadVersion(2))));
        let mut magic = wire;
        magic[0] ^= 0xFF;
        assert!(matches!(decode_frame(&magic), Err(FrameError::BadMagic)));
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A MultiGet claiming u32::MAX keys in a 13-byte payload must be
        // rejected by the pre-allocation bounds check, not by OOM.
        let mut p = vec![OP_MULTI_GET];
        p.extend_from_slice(&u32::MAX.to_le_bytes());
        p.extend_from_slice(&[0u8; 8]);
        assert_eq!(decode_op(&p), Err(PayloadError));
    }

    #[test]
    fn refusals_roundtrip() {
        let cases = [
            Refusal::from_kv(txkv::KvError::Overloaded { class: OpClass::Put, shard: Some(3) }, 9),
            Refusal::from_kv(txkv::KvError::ShuttingDown, 1),
            Refusal::from_kv(
                txkv::KvError::TooLarge { class: OpClass::MultiPut, keys: 64, max: 16 },
                2,
            ),
            Refusal::from_kv(txkv::KvError::Unavailable { class: OpClass::Cas, shard: 0 }, 3),
            Refusal::quota(7, OpClass::Scan),
            Refusal::pressure(8, OpClass::MultiGet),
        ];
        for r in cases {
            let mut p = Vec::new();
            encode_refusal(&r, &mut p);
            assert_eq!(decode_refusal(&p).unwrap(), r, "roundtrip {r:?}");
        }
    }

    #[test]
    fn trailing_garbage_is_a_payload_error() {
        let mut p = Vec::new();
        encode_op(&KvOp::Get { key: 1 }, &mut p);
        p.push(0);
        assert_eq!(decode_op(&p), Err(PayloadError));
    }

    #[test]
    fn crc_reference_vector() {
        // CRC-32/ISO-HDLC of "123456789" is the classic 0xCBF43926.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
    }
}
