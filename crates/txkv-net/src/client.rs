//! Client library: blocking submission API over a multiplexed
//! connection.
//!
//! One connection carries many in-flight requests. `submit` assigns a
//! correlation id, writes the frame, and returns a [`NetPending`]; a
//! dedicated reader thread demultiplexes server frames back to their
//! waiters. The server's advertised window is enforced client-side too:
//! `submit` blocks while `window` requests are outstanding, so a
//! well-behaved client never relies on the server-side brake.
//!
//! Every outcome is typed: a served [`KvReply`], a per-tenant
//! [`Refusal`], a [`ProtoCode`] protocol error, or [`NetError::Closed`]
//! when the connection died with requests in flight (the local
//! answered-or-shed mirror: a dropped connection fails every waiter, it
//! never strands one).

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use txkv::{KvOp, KvReply};

use crate::frame::{self, Kind, ProtoCode, Refusal};

/// Client-side failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Transport error (message carries the `io::Error` rendering).
    Io(String),
    /// The server answered a typed protocol error.
    Proto(ProtoCode),
    /// The server refused the request with a typed, per-tenant refusal.
    Refused(Refusal),
    /// Connection closed (or poisoned) with this request in flight.
    Closed,
    /// `Hello` was rejected: unknown tenant or bad token.
    AuthFailed,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Proto(c) => write!(f, "protocol error: {c:?}"),
            NetError::Refused(r) => write!(f, "refused: {r:?}"),
            NetError::Closed => write!(f, "connection closed with request in flight"),
            NetError::AuthFailed => write!(f, "authentication failed"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

enum Sock {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Sock {
    fn try_clone(&self) -> io::Result<Sock> {
        Ok(match self {
            Sock::Tcp(s) => Sock::Tcp(s.try_clone()?),
            Sock::Uds(s) => Sock::Uds(s.try_clone()?),
        })
    }

    fn shutdown(&self) {
        let _ = match self {
            Sock::Tcp(s) => s.shutdown(Shutdown::Both),
            Sock::Uds(s) => s.shutdown(Shutdown::Both),
        };
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Sock::Tcp(s) => s.set_read_timeout(t),
            Sock::Uds(s) => s.set_read_timeout(t),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.read(buf),
            Sock::Uds(s) => s.read(buf),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            Sock::Tcp(s) => s.write_all(buf),
            Sock::Uds(s) => s.write_all(buf),
        }
    }
}

struct Slot {
    cell: Mutex<Option<Result<KvReply, NetError>>>,
    cv: Condvar,
}

impl Slot {
    fn fill(&self, r: Result<KvReply, NetError>) {
        let mut g = self.cell.lock().unwrap();
        if g.is_none() {
            *g = Some(r);
            self.cv.notify_all();
        }
    }

    fn wait(&self) -> Result<KvReply, NetError> {
        let mut g = self.cell.lock().unwrap();
        loop {
            if let Some(r) = g.as_ref() {
                return r.clone();
            }
            g = self.cv.wait(g).unwrap();
        }
    }
}

struct WState {
    inflight: usize,
    dead: Option<NetError>,
}

/// State shared between the API half and the reader thread.
struct SharedCl {
    pending: Mutex<HashMap<u64, Arc<Slot>>>,
    state: Mutex<WState>,
    cv: Condvar,
}

impl SharedCl {
    /// Mark the connection dead and fail every in-flight waiter. First
    /// cause wins; idempotent.
    fn poison(&self, err: NetError) {
        {
            let mut st = self.state.lock().unwrap();
            if st.dead.is_none() {
                st.dead = Some(err);
            }
            self.cv.notify_all();
        }
        let drained: Vec<Arc<Slot>> =
            self.pending.lock().unwrap().drain().map(|(_, s)| s).collect();
        for slot in drained {
            slot.fill(Err(NetError::Closed));
        }
    }
}

/// One in-flight request; `wait` blocks for its typed outcome.
pub struct NetPending {
    slot: Arc<Slot>,
}

impl NetPending {
    pub fn wait(self) -> Result<KvReply, NetError> {
        self.slot.wait()
    }

    pub fn try_get(&self) -> Option<Result<KvReply, NetError>> {
        self.slot.cell.lock().unwrap().clone()
    }
}

/// A multiplexed connection to a [`crate::NetServer`].
pub struct NetClient {
    shared: Arc<SharedCl>,
    write: Mutex<Sock>,
    next_corr: AtomicU64,
    window: usize,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl NetClient {
    /// Connect over TCP and authenticate as `tenant`.
    pub fn connect_tcp<A: ToSocketAddrs>(
        addr: A,
        tenant: u64,
        token: u64,
    ) -> Result<NetClient, NetError> {
        let sock = TcpStream::connect(addr)?;
        sock.set_nodelay(true)?;
        Self::handshake(Sock::Tcp(sock), tenant, token)
    }

    /// Connect over a Unix-domain socket and authenticate as `tenant`.
    pub fn connect_uds<P: AsRef<Path>>(
        path: P,
        tenant: u64,
        token: u64,
    ) -> Result<NetClient, NetError> {
        let sock = UnixStream::connect(path)?;
        Self::handshake(Sock::Uds(sock), tenant, token)
    }

    fn handshake(mut sock: Sock, tenant: u64, token: u64) -> Result<NetClient, NetError> {
        // Hello/HelloOk runs synchronously with a bounded wait so a
        // wedged server is a typed timeout, not a hang.
        sock.set_read_timeout(Some(Duration::from_secs(10)))?;
        let mut hello = Vec::new();
        frame::encode_hello(tenant, token, &mut hello);
        let mut wire = Vec::new();
        frame::encode_frame(Kind::Hello, 0, &hello, &mut wire);
        sock.write_all(&wire)?;
        let mut buf = Vec::new();
        let window = loop {
            match frame::decode_frame(&buf) {
                Err(_) => return Err(NetError::Proto(ProtoCode::BadPayload)),
                Ok(Some((f, _))) => match Kind::from_u8(f.kind) {
                    Some(Kind::HelloOk) => {
                        break frame::decode_hello_ok(&f.payload)
                            .map_err(|_| NetError::Proto(ProtoCode::BadPayload))?
                            as usize;
                    }
                    Some(Kind::ProtoError) => {
                        let code = frame::decode_proto_error(&f.payload)
                            .map_err(|_| NetError::Proto(ProtoCode::BadPayload))?;
                        return Err(match code {
                            ProtoCode::AuthFailed => NetError::AuthFailed,
                            c => NetError::Proto(c),
                        });
                    }
                    _ => return Err(NetError::Proto(ProtoCode::BadKind)),
                },
                Ok(None) => {
                    let mut chunk = [0u8; 4096];
                    let n = sock.read(&mut chunk)?;
                    if n == 0 {
                        return Err(NetError::Closed);
                    }
                    buf.extend_from_slice(&chunk[..n]);
                }
            }
        };
        sock.set_read_timeout(None)?;
        let shared = Arc::new(SharedCl {
            pending: Mutex::new(HashMap::new()),
            state: Mutex::new(WState { inflight: 0, dead: None }),
            cv: Condvar::new(),
        });
        let read_half = sock.try_clone()?;
        let reader = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("txkv-net-client".into())
                .spawn(move || reader_loop(read_half, &shared))
                .expect("spawn client reader")
        };
        Ok(NetClient {
            shared,
            write: Mutex::new(sock),
            next_corr: AtomicU64::new(1),
            window: window.max(1),
            reader: Some(reader),
        })
    }

    /// The server's advertised per-connection window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Submit one op; blocks while the window is full. The returned
    /// handle resolves to the typed outcome.
    pub fn submit(&self, op: &KvOp) -> Result<NetPending, NetError> {
        {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(dead) = &st.dead {
                    return Err(dead.clone());
                }
                if st.inflight < self.window {
                    st.inflight += 1;
                    break;
                }
                st = self.shared.cv.wait(st).unwrap();
            }
        }
        let corr = self.next_corr.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(Slot { cell: Mutex::new(None), cv: Condvar::new() });
        self.shared.pending.lock().unwrap().insert(corr, slot.clone());
        let mut payload = Vec::new();
        frame::encode_op(op, &mut payload);
        let mut wire = Vec::new();
        frame::encode_frame(Kind::Request, corr, &payload, &mut wire);
        let write_res = self.write.lock().unwrap().write_all(&wire);
        if let Err(e) = write_res {
            self.shared.pending.lock().unwrap().remove(&corr);
            release_window(&self.shared);
            self.shared.poison(NetError::Io(e.to_string()));
            return Err(NetError::Io(e.to_string()));
        }
        Ok(NetPending { slot })
    }

    /// Submit and block for the outcome.
    pub fn call(&self, op: &KvOp) -> Result<KvReply, NetError> {
        self.submit(op)?.wait()
    }
}

impl Drop for NetClient {
    fn drop(&mut self) {
        self.write.lock().unwrap().shutdown();
        if let Some(r) = self.reader.take() {
            let _ = r.join();
        }
    }
}

fn release_window(shared: &Arc<SharedCl>) {
    let mut st = shared.state.lock().unwrap();
    st.inflight = st.inflight.saturating_sub(1);
    shared.cv.notify_all();
}

fn reader_loop(mut sock: Sock, shared: &Arc<SharedCl>) {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        // Drain complete frames first, then block for more bytes.
        loop {
            match frame::decode_frame(&buf) {
                Ok(None) => break,
                Ok(Some((f, used))) => {
                    buf.drain(..used);
                    let outcome: Result<KvReply, NetError> = match Kind::from_u8(f.kind) {
                        Some(Kind::Reply) => match frame::decode_reply(&f.payload) {
                            Ok(r) => Ok(r),
                            Err(_) => Err(NetError::Proto(ProtoCode::BadPayload)),
                        },
                        Some(Kind::Refused) => match frame::decode_refusal(&f.payload) {
                            Ok(r) => Err(NetError::Refused(r)),
                            Err(_) => Err(NetError::Proto(ProtoCode::BadPayload)),
                        },
                        Some(Kind::ProtoError) => {
                            let code = frame::decode_proto_error(&f.payload)
                                .unwrap_or(ProtoCode::BadPayload);
                            if code.poisons_stream() || f.corr == 0 {
                                shared.poison(NetError::Proto(code));
                                sock.shutdown();
                                return;
                            }
                            Err(NetError::Proto(code))
                        }
                        _ => {
                            shared.poison(NetError::Proto(ProtoCode::BadKind));
                            sock.shutdown();
                            return;
                        }
                    };
                    if let Some(slot) = shared.pending.lock().unwrap().remove(&f.corr) {
                        slot.fill(outcome);
                        release_window(shared);
                    }
                }
                Err(e) => {
                    // The server's reply stream is corrupt: nothing after
                    // this point can be trusted.
                    shared.poison(NetError::Proto(e.code()));
                    sock.shutdown();
                    return;
                }
            }
        }
        let mut chunk = [0u8; 64 * 1024];
        match sock.read(&mut chunk) {
            Ok(0) => {
                shared.poison(NetError::Closed);
                return;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                shared.poison(NetError::Io(e.to_string()));
                return;
            }
        }
    }
}
