//! Minimal readiness reactor: epoll(7) on Linux, poll(2) on other unix.
//!
//! The build environment is offline (no `mio`, no `libc` crate), so the
//! two syscall surfaces are declared directly as `extern "C"` items —
//! exactly the handful the reactor needs. Everything is level-triggered:
//! the server recomputes each connection's interest set after handling
//! it, which keeps the correctness argument local (no edge-trigger
//! starvation cases), and the connection counts here are small enough
//! that level-triggered wakeup cost is irrelevant.
//!
//! One `Poller` is owned by one reactor thread. Cross-thread wakeup (an
//! executor finished a reply and queued output) goes through a
//! [`Waker`]: a nonblocking `UnixStream` pair whose read end is
//! registered like any other fd.

use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Readiness of one registered fd.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: usize,
    pub readable: bool,
    pub writable: bool,
    /// Peer hung up or the fd errored; the owner should close.
    pub hangup: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest { readable: true, writable: false };
}

#[cfg(target_os = "linux")]
mod imp {
    use super::*;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// Mirrors the kernel's `struct epoll_event`; packed on x86-64 (the
    /// one ABI where the kernel definition is unaligned).
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub struct Poller {
        ep: i32,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall, no memory involved.
            let ep = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if ep < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { ep })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut mask = EPOLLRDHUP;
            if interest.readable {
                mask |= EPOLLIN;
            }
            if interest.writable {
                mask |= EPOLLOUT;
            }
            let mut ev = EpollEvent { events: mask, data: token as u64 };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.ep, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest { readable: false, writable: false })
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let mut buf = [EpollEvent { events: 0, data: 0 }; 64];
            let ms = timeout.map(|t| t.as_millis().min(i32::MAX as u128) as i32).unwrap_or(-1);
            // SAFETY: `buf` is valid for 64 entries for the duration.
            let n = unsafe { epoll_wait(self.ep, buf.as_mut_ptr(), 64, ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for ev in buf.iter().take(n as usize) {
                // Copy out of the (possibly packed) struct before use.
                let mask = ev.events;
                let data = ev.data;
                out.push(Event {
                    token: data as usize,
                    readable: mask & EPOLLIN != 0,
                    writable: mask & EPOLLOUT != 0,
                    hangup: mask & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: `ep` is an fd we own exclusively.
            unsafe { close(self.ep) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// poll(2)-backed fallback: the registration table is rebuilt into a
    /// pollfd array on every wait. O(n) per wakeup, which is fine at the
    /// connection counts this serves on non-Linux dev machines.
    pub struct Poller {
        registered: Mutex<HashMap<RawFd, (usize, Interest)>>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { registered: Mutex::new(HashMap::new()) })
        }

        pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.registered.lock().unwrap().insert(fd, (token, interest));
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.registered.lock().unwrap().insert(fd, (token, interest));
            Ok(())
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().unwrap().remove(&fd);
            Ok(())
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let (mut fds, tokens): (Vec<PollFd>, Vec<usize>) = {
                let reg = self.registered.lock().unwrap();
                reg.iter()
                    .map(|(&fd, &(token, i))| {
                        let mut ev = 0i16;
                        if i.readable {
                            ev |= POLLIN;
                        }
                        if i.writable {
                            ev |= POLLOUT;
                        }
                        (PollFd { fd, events: ev, revents: 0 }, token)
                    })
                    .unzip()
            };
            let ms = timeout.map(|t| t.as_millis().min(i32::MAX as u128) as i32).unwrap_or(-1);
            // SAFETY: `fds` is a valid array of `fds.len()` entries.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (pfd, &token) in fds.iter().zip(tokens.iter()) {
                if pfd.revents == 0 {
                    continue;
                }
                out.push(Event {
                    token,
                    readable: pfd.revents & POLLIN != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

pub use imp::Poller;

/// Cross-thread reactor wakeup: a nonblocking socketpair. `wake` writes
/// one byte (coalescing naturally once the pipe is full); the reactor
/// drains on readability. Waking a reactor that already exited is a
/// silently-ignored broken pipe, which is exactly the semantics the
/// reply hooks need during shutdown.
pub struct Waker {
    tx: UnixStream,
}

impl Waker {
    /// Returns the waker and the read end to register with the poller.
    pub fn new() -> io::Result<(Waker, UnixStream)> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((Waker { tx }, rx))
    }

    pub fn wake(&self) {
        // Full pipe (WouldBlock) means a wakeup is already pending;
        // broken pipe means the reactor is gone. Both are fine.
        let _ = (&self.tx).write(&[1u8]);
    }

    /// Drain all pending wakeup bytes from the read end.
    pub fn drain(rx: &UnixStream) {
        let mut buf = [0u8; 64];
        while matches!((&*rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

/// The read end's fd, for registration.
pub fn raw_fd<T: AsRawFd>(t: &T) -> RawFd {
    t.as_raw_fd()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn waker_wakes_and_drains() {
        let (poller, (waker, rx)) = (Poller::new().unwrap(), Waker::new().unwrap());
        poller.register(rx.as_raw_fd(), 7, Interest::READ).unwrap();
        let mut events = Vec::new();
        // Nothing yet: a zero-timeout wait returns empty.
        poller.wait(&mut events, Some(Duration::from_millis(0))).unwrap();
        assert!(events.is_empty());
        waker.wake();
        waker.wake();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        Waker::drain(&rx);
        poller.wait(&mut events, Some(Duration::from_millis(0))).unwrap();
        assert!(events.is_empty(), "drained waker must go quiet");
    }

    #[test]
    fn readiness_tracks_interest_and_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 1, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(0))).unwrap();
        assert!(events.is_empty(), "no data yet");

        use std::io::Write as _;
        (&a).write_all(b"x").unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        // Writable interest on an idle socket fires immediately.
        poller.modify(b.as_raw_fd(), 1, Interest { readable: true, writable: true }).unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));

        // Peer close surfaces as hangup (or at least readability+EOF).
        drop(a);
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && (e.hangup || e.readable)));

        poller.deregister(b.as_raw_fd()).unwrap();
    }
}
