//! # txkv-net — the wire-protocol front end for `txkv`
//!
//! Everything below this crate is an in-process library: a [`txkv`]
//! pipeline is driven through a `KvClient` handle by threads in the same
//! address space. `txkv-net` adds the network edge the ROADMAP's
//! production-scale story needs, without disturbing the properties the
//! paper's serving tier depends on — requests still enter the same
//! bounded two-lane submission queues, read-only traffic still batches
//! onto the RO fast path, and every accepted request is still answered
//! or shed, now across process and machine boundaries:
//!
//! * [`frame`] — a length-prefixed binary protocol (magic, version,
//!   CRC-32 per frame, correlation ids) mirroring [`txkv::KvOp`] /
//!   [`txkv::KvReply`] one-to-one, including typed-table procedure
//!   calls;
//! * [`reactor`] — a small epoll reactor (poll(2) fallback off Linux),
//!   raw-FFI because the build is offline; one thread serves every
//!   connection;
//! * [`NetServer`] — TCP + Unix-domain listeners, connection
//!   multiplexing with per-connection bounded in-flight windows
//!   (backpressure stops *reading*, it never buffers unboundedly), and
//!   executor-side completion through [`txkv::PendingReply::on_reply`]
//!   (no thread parked per request);
//! * [`tenant`] — multi-tenant admission: authenticated tenant ids,
//!   per-tenant token-bucket quotas with per-class costs, and SLO-aware
//!   pressure shedding that drops the cheapest-to-shed class of the
//!   noisiest tenant first — protected tenants are never pressure-shed;
//! * [`NetClient`] — the blocking, pipelined client library used by the
//!   bench and tests.
//!
//! Admission refusals are *answers*: the pipeline's typed
//! `Overloaded`/`TooLarge`/`Unavailable` (now carrying op class and
//! shard) travel back over the wire as per-tenant [`frame::Refusal`]
//! frames, and a dropped connection resolves its in-flight replies
//! through the same hooks — counted, never leaked (see
//! [`NetReport::replies_to_dead`]).
//!
//! See DESIGN.md §15 for the frame format, the reactor↔executor handoff,
//! and the shed-ordering rules.

pub mod client;
pub mod frame;
pub mod reactor;
pub mod server;
pub mod tenant;

pub use client::{NetClient, NetError, NetPending};
pub use frame::{ProtoCode, Refusal, RefusalScope, RefusedKind};
pub use server::{NetReport, NetServer, NetServerConfig};
pub use tenant::{ShedConfig, TenantReport, TenantSpec};
