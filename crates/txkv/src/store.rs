//! The embedded transactional key-value store and the service vocabulary
//! ([`KvOp`] / [`KvReply`] / [`OpClass`]).
//!
//! Keys and values are `u64` (the whole tree is word-addressable). The
//! store is an ordered index — a [`TxBTree`] — so *prefix scans* come for
//! free: the keys matching a bit-prefix `p` with `shift` free low bits
//! are exactly the range `[p·2^shift, (p+1)·2^shift)`, walked along the
//! leaf chain with an unbounded read footprint that SI-HTM's
//! non-transactional read paths absorb without capacity aborts.
//!
//! Every operation comes in two forms:
//!
//! * `*_in` — runs *inside* an existing transaction (`&mut dyn Tx`), used
//!   by the pipeline to pack many read-only requests into one transaction
//!   and to compose multi-key read-write transactions;
//! * a whole-transaction convenience over [`TmThread::exec`] — what a
//!   library user (and the semantics tests) call directly.

use std::sync::Arc;
use tm_api::{Abort, Outcome, TmThread, Tx, TxKind};
use txmem::{Addr, LineAlloc, TxMemory};
use workloads::btree::{NodeScratch, TxBTree};

/// Handle to a KV store laid out in simulated memory. Cheap to clone;
/// clones share the tree and its node arena.
#[derive(Clone)]
pub struct KvStore {
    tree: TxBTree,
    alloc: Arc<LineAlloc>,
}

impl KvStore {
    /// Create an empty store whose nodes live in `[base, base + words)`.
    pub fn create(memory: &TxMemory, base: Addr, words: u64) -> KvStore {
        Self::create_with(memory, base, words, std::iter::empty())
    }

    /// Create and bulk-load with `(key, value)` pairs (raw stores; build
    /// phase only, before any threads run).
    pub fn create_with(
        memory: &TxMemory,
        base: Addr,
        words: u64,
        entries: impl Iterator<Item = (u64, u64)>,
    ) -> KvStore {
        let alloc = Arc::new(LineAlloc::new(base, words));
        let tree = TxBTree::build_pairs(memory, &alloc, entries);
        KvStore { tree, alloc }
    }

    /// The node arena (executors refill their scratch from it).
    pub fn alloc(&self) -> &Arc<LineAlloc> {
        &self.alloc
    }

    /// A scratch sized for single-key writes.
    pub fn new_scratch(&self) -> NodeScratch {
        NodeScratch::new(&self.alloc)
    }

    /// A scratch sized for multi-key write transactions of up to
    /// `max_keys` inserts (each insert may split a root-to-leaf cascade).
    pub fn new_batch_scratch(&self, max_keys: usize) -> NodeScratch {
        NodeScratch::with_capacity(&self.alloc, 12 + 6 * max_keys)
    }

    /// Non-transactional read straight off memory (population checks and
    /// end-of-run audits; not for use during runs).
    pub fn load_raw(&self, memory: &TxMemory, key: u64) -> Option<u64> {
        self.tree.lookup_raw(memory, key)
    }

    // ---- in-transaction primitives ------------------------------------

    pub fn get_in(&self, tx: &mut dyn Tx, key: u64) -> Result<Option<u64>, Abort> {
        self.tree.lookup(tx, key)
    }

    /// Scan the prefix range `[prefix << shift, (prefix + 1) << shift)`,
    /// up to `limit` entries; returns `(matches, sum-of-values)`.
    pub fn scan_prefix_in(
        &self,
        tx: &mut dyn Tx,
        prefix: u64,
        shift: u32,
        limit: u64,
    ) -> Result<(u64, u64), Abort> {
        let (from, to) = Self::prefix_range(prefix, shift);
        self.tree.range_between(tx, from, to, limit)
    }

    /// Half-open range scan `[from, to)` (one ordered index walk),
    /// `(matches, sum-of-values)` over up to `limit` entries.
    pub fn scan_range_in(
        &self,
        tx: &mut dyn Tx,
        from: u64,
        to: u64,
        limit: u64,
    ) -> Result<(u64, u64), Abort> {
        self.tree.range_between(tx, from, to, limit)
    }

    /// Entry-yielding half-open range scan `[from, to)`: `f(key, value)`
    /// per match in key order, up to `limit`; returns the match count.
    /// What cross-shard ordered merges and secondary-index lookups use —
    /// they need the entries, not a count/sum digest.
    pub fn scan_range_entries_in(
        &self,
        tx: &mut dyn Tx,
        from: u64,
        to: u64,
        limit: u64,
        f: &mut dyn FnMut(u64, u64),
    ) -> Result<u64, Abort> {
        self.tree.range_entries(tx, from, to, limit, f)
    }

    /// The `[from, to)` range a `ScanPrefix { prefix, shift }` covers.
    pub fn prefix_range(prefix: u64, shift: u32) -> (u64, u64) {
        let from = prefix << shift;
        let to = match (prefix + 1).checked_shl(shift) {
            Some(t) if t != 0 => t,
            _ => u64::MAX,
        };
        (from, to)
    }

    /// Insert or overwrite; `true` when the key was newly created.
    pub fn put_in(
        &self,
        tx: &mut dyn Tx,
        scratch: &mut NodeScratch,
        key: u64,
        val: u64,
    ) -> Result<bool, Abort> {
        self.tree.insert(tx, key, val, scratch)
    }

    /// Remove; `true` when the key existed.
    pub fn delete_in(&self, tx: &mut dyn Tx, key: u64) -> Result<bool, Abort> {
        self.tree.remove(tx, key)
    }

    /// Every `(key, value)` entry, in key order, inside an existing
    /// transaction (the checkpoint scan).
    pub fn snapshot_in(&self, tx: &mut dyn Tx, out: &mut Vec<(u64, u64)>) -> Result<(), Abort> {
        self.tree.for_each(tx, &mut |k, v| out.push((k, v)))
    }

    // ---- whole-transaction conveniences -------------------------------

    /// Consistent full-store snapshot in **one** read-only transaction —
    /// on SI-HTM the unbounded, never-aborting RO fast path, so
    /// checkpointing a large store never capacity-aborts and never
    /// blocks writers beyond the caller's own serialization.
    pub fn snapshot<T: TmThread + ?Sized>(&self, t: &mut T) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        t.exec(TxKind::ReadOnly, &mut |tx| {
            out.clear();
            self.snapshot_in(tx, &mut out)
        });
        out
    }

    /// Point read (one read-only transaction).
    pub fn get<T: TmThread + ?Sized>(&self, t: &mut T, key: u64) -> Option<u64> {
        let mut out = None;
        t.exec(TxKind::ReadOnly, &mut |tx| {
            out = self.get_in(tx, key)?;
            Ok(())
        });
        out
    }

    /// Multi-key read in **one** read-only transaction: on SI-HTM all
    /// values come from a single consistent snapshot.
    pub fn multi_get<T: TmThread + ?Sized>(&self, t: &mut T, keys: &[u64]) -> Vec<Option<u64>> {
        let mut out = Vec::with_capacity(keys.len());
        t.exec(TxKind::ReadOnly, &mut |tx| {
            out.clear();
            for &k in keys {
                out.push(self.get_in(tx, k)?);
            }
            Ok(())
        });
        out
    }

    /// Prefix scan (one read-only transaction).
    pub fn scan_prefix<T: TmThread + ?Sized>(
        &self,
        t: &mut T,
        prefix: u64,
        shift: u32,
        limit: u64,
    ) -> (u64, u64) {
        let mut out = (0, 0);
        t.exec(TxKind::ReadOnly, &mut |tx| {
            out = self.scan_prefix_in(tx, prefix, shift, limit)?;
            Ok(())
        });
        out
    }

    /// Insert or overwrite; `true` when the key was newly created.
    pub fn put<T: TmThread + ?Sized>(
        &self,
        t: &mut T,
        scratch: &mut NodeScratch,
        key: u64,
        val: u64,
    ) -> bool {
        let mut created = false;
        let out = t.exec(TxKind::Update, &mut |tx| {
            scratch.reset();
            created = self.put_in(tx, scratch, key, val)?;
            Ok(())
        });
        if out == Outcome::Committed {
            scratch.refill(&self.alloc);
        }
        created
    }

    /// Remove; `true` when the key existed.
    pub fn delete<T: TmThread + ?Sized>(&self, t: &mut T, key: u64) -> bool {
        let mut existed = false;
        t.exec(TxKind::Update, &mut |tx| {
            existed = self.delete_in(tx, key)?;
            Ok(())
        });
        existed
    }

    /// Compare-and-set: if the current value equals `expect` (`None` =
    /// absent), write `new` and return `Ok(())`; otherwise change nothing
    /// and return the observed value. Linearizable on every backend: the
    /// read and the conditional write share one update transaction, and
    /// two racing CAS on a key collide write-write (first committer
    /// wins — under SI exactly like under serializability, because the
    /// write set guards the read).
    pub fn cas<T: TmThread + ?Sized>(
        &self,
        t: &mut T,
        scratch: &mut NodeScratch,
        key: u64,
        expect: Option<u64>,
        new: u64,
    ) -> Result<(), Option<u64>> {
        let mut observed = None;
        let out = t.exec(TxKind::Update, &mut |tx| {
            scratch.reset();
            let cur = self.get_in(tx, key)?;
            if cur != expect {
                observed = cur;
                return Err(Abort::User); // semantic rollback, not retried
            }
            self.put_in(tx, scratch, key, new)?;
            Ok(())
        });
        match out {
            Outcome::Committed => {
                scratch.refill(&self.alloc);
                Ok(())
            }
            Outcome::UserAborted => Err(observed),
        }
    }

    /// Atomic multi-key blind write (one update transaction).
    pub fn multi_put<T: TmThread + ?Sized>(
        &self,
        t: &mut T,
        scratch: &mut NodeScratch,
        pairs: &[(u64, u64)],
    ) {
        let out = t.exec(TxKind::Update, &mut |tx| {
            scratch.reset();
            for &(k, v) in pairs {
                self.put_in(tx, scratch, k, v)?;
            }
            Ok(())
        });
        if out == Outcome::Committed {
            scratch.refill(&self.alloc);
        }
    }

    /// Atomic multi-key read-modify-write: add each delta to its key's
    /// current value (absent keys count as 0) in one update transaction.
    /// The canonical conserving transfer is
    /// `multi_add(&[(from, -x), (to, x)])`.
    pub fn multi_add<T: TmThread + ?Sized>(
        &self,
        t: &mut T,
        scratch: &mut NodeScratch,
        deltas: &[(u64, i64)],
    ) {
        let out = t.exec(TxKind::Update, &mut |tx| {
            scratch.reset();
            for &(k, d) in deltas {
                let cur = self.get_in(tx, k)?.unwrap_or(0);
                self.put_in(tx, scratch, k, cur.wrapping_add(d as u64))?;
            }
            Ok(())
        });
        if out == Outcome::Committed {
            scratch.refill(&self.alloc);
        }
    }

    /// [`KvStore::multi_add`] that also reports the committed post-image
    /// (`writes`), for write-ahead logging: replaying the post-image in
    /// commit order reproduces the read-modify-write without
    /// re-executing it. Captured inside the transaction body (and reset
    /// per attempt), so it matches exactly the attempt that committed.
    pub fn multi_add_logged<T: TmThread + ?Sized>(
        &self,
        t: &mut T,
        scratch: &mut NodeScratch,
        deltas: &[(u64, i64)],
        writes: &mut Vec<(u64, Option<u64>)>,
    ) {
        let out = t.exec(TxKind::Update, &mut |tx| {
            scratch.reset();
            writes.clear();
            for &(k, d) in deltas {
                let cur = self.get_in(tx, k)?.unwrap_or(0);
                let v = cur.wrapping_add(d as u64);
                self.put_in(tx, scratch, k, v)?;
                writes.push((k, Some(v)));
            }
            Ok(())
        });
        if out == Outcome::Committed {
            scratch.refill(&self.alloc);
        } else {
            writes.clear();
        }
    }
}

impl std::fmt::Debug for KvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvStore").finish_non_exhaustive()
    }
}

/// One service request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    Get {
        key: u64,
    },
    MultiGet {
        keys: Vec<u64>,
    },
    ScanPrefix {
        prefix: u64,
        shift: u32,
        limit: u64,
    },
    /// Half-open ordered range scan `[from, to)` — the shape encoded
    /// tuple prefixes produce when the range is not 2ᵏ-aligned.
    ScanRange {
        from: u64,
        to: u64,
        limit: u64,
    },
    Put {
        key: u64,
        val: u64,
    },
    Delete {
        key: u64,
    },
    Cas {
        key: u64,
        expect: Option<u64>,
        new: u64,
    },
    MultiPut {
        pairs: Vec<(u64, u64)>,
    },
    MultiAdd {
        deltas: Vec<(u64, i64)>,
    },
    /// Invoke a registered server-side procedure (see [`crate::proc`]).
    /// `footprint` is the routing hint: representative keys of every
    /// shard the procedure touches (replicated keys excluded). `args`
    /// are procedure-defined; `read_only` procedures batch onto the RO
    /// fast path.
    Call {
        proc: u64,
        args: Vec<u64>,
        footprint: Vec<u64>,
        read_only: bool,
    },
}

impl KvOp {
    pub fn class(&self) -> OpClass {
        match self {
            KvOp::Get { .. } => OpClass::Get,
            KvOp::MultiGet { .. } => OpClass::MultiGet,
            KvOp::ScanPrefix { .. } => OpClass::Scan,
            KvOp::ScanRange { .. } => OpClass::Scan,
            KvOp::Put { .. } => OpClass::Put,
            KvOp::Delete { .. } => OpClass::Delete,
            KvOp::Cas { .. } => OpClass::Cas,
            KvOp::MultiPut { .. } => OpClass::MultiPut,
            KvOp::MultiAdd { .. } => OpClass::MultiAdd,
            KvOp::Call { .. } => OpClass::Call,
        }
    }

    /// Read-only ops are batchable onto the RO fast path. `Call` is
    /// read-only exactly when the submitter declared it so (the
    /// registered procedure asserts the declaration at execution).
    pub fn read_only(&self) -> bool {
        match self {
            KvOp::Call { read_only, .. } => *read_only,
            _ => self.class().read_only(),
        }
    }
}

/// Operation class, the granularity of the latency SLO report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    Get,
    MultiGet,
    Scan,
    Put,
    Delete,
    Cas,
    MultiPut,
    MultiAdd,
    /// Server-side procedure call (RO or update; the per-procedure
    /// latency report splits it further).
    Call,
}

impl OpClass {
    pub const ALL: [OpClass; 9] = [
        OpClass::Get,
        OpClass::MultiGet,
        OpClass::Scan,
        OpClass::Put,
        OpClass::Delete,
        OpClass::Cas,
        OpClass::MultiPut,
        OpClass::MultiAdd,
        OpClass::Call,
    ];

    pub fn name(self) -> &'static str {
        match self {
            OpClass::Get => "get",
            OpClass::MultiGet => "multi_get",
            OpClass::Scan => "scan",
            OpClass::Put => "put",
            OpClass::Delete => "delete",
            OpClass::Cas => "cas",
            OpClass::MultiPut => "multi_put",
            OpClass::MultiAdd => "multi_add",
            OpClass::Call => "call",
        }
    }

    pub fn index(self) -> usize {
        OpClass::ALL.iter().position(|&c| c == self).unwrap()
    }

    pub fn read_only(self) -> bool {
        matches!(self, OpClass::Get | OpClass::MultiGet | OpClass::Scan)
    }
}

/// The answer to one [`KvOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvReply {
    /// `Get` result.
    Value(Option<u64>),
    /// `MultiGet` result, positionally matching the requested keys.
    Values(Vec<Option<u64>>),
    /// `ScanPrefix` result.
    Scan { count: u64, sum: u64 },
    /// `Put` (`created`) / `Delete` (`existed`) / `MultiPut` / `MultiAdd`.
    Done { changed: bool },
    /// `Cas` succeeded.
    CasOk,
    /// `Cas` failed; the observed current value.
    CasFail(Option<u64>),
    /// `Call` committed; per-leg outputs concatenated in ascending
    /// participant-shard order.
    CallOk(Vec<u64>),
    /// `Call` rolled back semantically ([`Abort::User`] from a leg):
    /// nothing was changed, the request is answered, and nothing was
    /// logged.
    CallAborted,
    /// The request was accepted but shed during shutdown before being
    /// served (drain deadline passed). Never silently dropped.
    Shed,
    /// The request's shard has a degraded (read-only or failed) log:
    /// the update was shed un-acked — reads on the shard still serve —
    /// and the shard rejoins automatically once its storage heals.
    Unavailable,
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_htm::SiHtm;
    use tm_api::TmBackend;

    #[test]
    fn point_ops_roundtrip() {
        let backend = SiHtm::with_defaults(1 << 14);
        let store = KvStore::create(backend.memory(), 0, 1 << 14);
        let mut t = backend.register_thread();
        let mut scratch = store.new_scratch();
        assert!(store.put(&mut t, &mut scratch, 10, 100));
        assert!(!store.put(&mut t, &mut scratch, 10, 200), "overwrite is not a create");
        assert_eq!(store.get(&mut t, 10), Some(200));
        assert_eq!(store.get(&mut t, 11), None);
        assert!(store.delete(&mut t, 10));
        assert!(!store.delete(&mut t, 10));
        assert_eq!(store.get(&mut t, 10), None);
    }

    #[test]
    fn cas_matches_and_mismatches() {
        let backend = SiHtm::with_defaults(1 << 14);
        let store = KvStore::create(backend.memory(), 0, 1 << 14);
        let mut t = backend.register_thread();
        let mut scratch = store.new_scratch();
        // Absent-expectation insert.
        assert_eq!(store.cas(&mut t, &mut scratch, 5, None, 1), Ok(()));
        // Wrong expectation reports the observed value and changes nothing.
        assert_eq!(store.cas(&mut t, &mut scratch, 5, Some(9), 2), Err(Some(1)));
        assert_eq!(store.get(&mut t, 5), Some(1));
        // Right expectation swings it.
        assert_eq!(store.cas(&mut t, &mut scratch, 5, Some(1), 2), Ok(()));
        assert_eq!(store.get(&mut t, 5), Some(2));
    }

    #[test]
    fn multi_ops_and_prefix_scan() {
        let backend = SiHtm::with_defaults(1 << 16);
        let store = KvStore::create_with(backend.memory(), 0, 1 << 16, (0..64u64).map(|k| (k, 1)));
        let mut t = backend.register_thread();
        let mut scratch = store.new_batch_scratch(4);
        store.multi_put(&mut t, &mut scratch, &[(100, 7), (101, 8)]);
        assert_eq!(store.multi_get(&mut t, &[100, 101, 102]), vec![Some(7), Some(8), None]);
        store.multi_add(&mut t, &mut scratch, &[(100, -2), (101, 2)]);
        assert_eq!(store.multi_get(&mut t, &[100, 101]), vec![Some(5), Some(10)]);
        // Prefix 0 with shift 5 = keys 0..32, all value 1.
        assert_eq!(store.scan_prefix(&mut t, 0, 5, 1000), (32, 32));
        // Prefix 1 with shift 5 = keys 32..64.
        assert_eq!(store.scan_prefix(&mut t, 1, 5, 1000), (32, 32));
        // Limit truncates.
        assert_eq!(store.scan_prefix(&mut t, 0, 6, 10).0, 10);
        // Raw audit agrees.
        assert_eq!(store.load_raw(backend.memory(), 100), Some(5));
    }

    #[test]
    fn op_classes_partition_read_only() {
        for class in OpClass::ALL {
            assert_eq!(OpClass::ALL[class.index()], class);
        }
        assert!(KvOp::Get { key: 1 }.read_only());
        assert!(KvOp::MultiGet { keys: vec![1] }.read_only());
        assert!(KvOp::ScanPrefix { prefix: 0, shift: 4, limit: 8 }.read_only());
        assert!(!KvOp::Put { key: 1, val: 2 }.read_only());
        assert!(!KvOp::Cas { key: 1, expect: None, new: 2 }.read_only());
        assert!(!KvOp::MultiAdd { deltas: vec![] }.read_only());
    }
}
