//! The storage seam under the WAL and checkpoints, plus the
//! always-compiled storage fault injector ([`FaultFs`]).
//!
//! Everything the durability layer persists goes through the
//! [`Storage`] / [`VFile`] traits: WAL segment appends and fsyncs,
//! checkpoint tmp-write/rename, directory syncs. The production
//! implementation is real files ([`RealFs`]); [`FaultFs`] wraps it and —
//! exactly like the in-memory chaos injector in `txmem::hooks::chaos` —
//! costs **one relaxed atomic load** when disarmed, so it is compiled
//! into every build and armed only by tests, soaks, and fault-smoke CI.
//!
//! ## Fault model
//!
//! A [`FaultPlan`] scripts and randomizes the errors real disks return
//! (the failure classes persistent-memory TM designs must survive):
//!
//! * **transient / permanent fsync failure** — `fsync` reports an error;
//!   the page-cache state is unknown from then on (the *fsyncgate*
//!   problem), so the WAL never retries an fsync on the same file;
//! * **ENOSPC** — writes (and file creation) fail with "no space";
//! * **short writes** — a prefix of the buffer reaches the medium and
//!   the rest is lost, the torn-frame artifact checksummed recovery cuts;
//! * **post-write bit corruption** — the write *succeeds* but one bit of
//!   what lands differs from what was written: latent damage only a
//!   checksum re-scan (the scrubber, or recovery) can catch;
//! * **I/O stalls** — the call sleeps before completing, the slow-disk
//!   case that must not stall appenders (flush I/O happens outside the
//!   shard mutex).
//!
//! Faults target by shard (the `shard-<s>/` path component), by file
//! kind (segment vs checkpoint), and by an optional directory substring
//! so concurrent tests in one process cannot fault each other's files.
//! Installation is process-global and exclusive; [`install`] returns a
//! [`FaultGuard`] whose `Drop` disarms, and [`FaultGuard::clear`] "heals
//! the medium" without uninstalling — the rejoin-probe trigger.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// What kind of storage failure occurred (the typed error the WAL's
/// health machine dispatches on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageErrorKind {
    /// Generic I/O error (includes injected fsync failures).
    Io,
    /// The device is out of space.
    NoSpace,
    /// Only a prefix of the buffer reached the medium.
    ShortWrite,
    /// `fsync` failed: everything written since the last successful sync
    /// is in an unknown state and must be rewritten elsewhere.
    SyncFailed,
    /// The file is missing (e.g. a lost segment handle).
    Missing,
}

impl StorageErrorKind {
    pub fn name(self) -> &'static str {
        match self {
            StorageErrorKind::Io => "io",
            StorageErrorKind::NoSpace => "no_space",
            StorageErrorKind::ShortWrite => "short_write",
            StorageErrorKind::SyncFailed => "sync_failed",
            StorageErrorKind::Missing => "missing",
        }
    }
}

/// A typed storage-layer error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageError {
    pub kind: StorageErrorKind,
}

impl StorageError {
    pub fn new(kind: StorageErrorKind) -> Self {
        StorageError { kind }
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "storage error: {}", self.kind.name())
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        let kind = match e.kind() {
            std::io::ErrorKind::NotFound => StorageErrorKind::Missing,
            std::io::ErrorKind::WriteZero => StorageErrorKind::ShortWrite,
            _ if e.raw_os_error() == Some(28) => StorageErrorKind::NoSpace, // ENOSPC
            _ => StorageErrorKind::Io,
        };
        StorageError { kind }
    }
}

/// An open file the durability layer writes through.
pub trait VFile: Send {
    fn write_all(&mut self, buf: &[u8]) -> Result<(), StorageError>;
    fn sync_data(&mut self) -> Result<(), StorageError>;
}

/// The filesystem operations beneath WAL segments and checkpoints.
/// Reads stay on plain `std::fs` — corruption is injected at write time
/// and discovered by checksum, like on a real disk.
pub trait Storage: Send + Sync {
    /// Open (creating if absent) an append-only file.
    fn open_append(&self, path: &Path) -> Result<Box<dyn VFile>, StorageError>;
    /// Create/truncate a file for writing (the checkpoint tmp).
    fn create(&self, path: &Path) -> Result<Box<dyn VFile>, StorageError>;
    fn rename(&self, from: &Path, to: &Path) -> Result<(), StorageError>;
    fn remove_file(&self, path: &Path) -> Result<(), StorageError>;
    /// Best-effort directory sync (rename durability).
    fn sync_dir(&self, dir: &Path);
}

// ---------------------------------------------------------------------
// Real files
// ---------------------------------------------------------------------

/// Direct `std::fs` implementation.
pub struct RealFs;

struct RealFile(std::fs::File);

impl VFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> Result<(), StorageError> {
        self.0.write_all(buf).map_err(StorageError::from)
    }
    fn sync_data(&mut self) -> Result<(), StorageError> {
        self.0.sync_data().map_err(StorageError::from)
    }
}

impl Storage for RealFs {
    fn open_append(&self, path: &Path) -> Result<Box<dyn VFile>, StorageError> {
        let f = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Box::new(RealFile(f)))
    }
    fn create(&self, path: &Path) -> Result<Box<dyn VFile>, StorageError> {
        Ok(Box::new(RealFile(std::fs::File::create(path)?)))
    }
    fn rename(&self, from: &Path, to: &Path) -> Result<(), StorageError> {
        std::fs::rename(from, to).map_err(StorageError::from)
    }
    fn remove_file(&self, path: &Path) -> Result<(), StorageError> {
        std::fs::remove_file(path).map_err(StorageError::from)
    }
    fn sync_dir(&self, dir: &Path) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

// ---------------------------------------------------------------------
// Fault plan + global injector state
// ---------------------------------------------------------------------

/// Which files a plan targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// Everything under the targeted shard(s).
    All,
    /// WAL segment files (`wal-*.log`) only.
    Segment,
    /// Checkpoint files (`ckpt-*`) only.
    Checkpoint,
}

/// Scripted + probabilistic storage fault schedule.
///
/// Scripted knobs count *eligible* operations (those matching the
/// shard/target/tag filters) and are deterministic; the `*_p` knobs are
/// per-operation probabilities drawn from a seeded xorshift stream.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    pub seed: u64,
    /// Restrict faults to one shard (`shard-<s>/` path component);
    /// `None` faults every shard.
    pub shard: Option<usize>,
    pub target: FaultTarget,
    /// Only fault paths containing this substring (test isolation:
    /// installation is process-global, the tag is not).
    pub dir_tag: Option<String>,
    /// Scripted fsync failures: eligible fsyncs number 0,1,2,…; those in
    /// `[sync_fail_after, sync_fail_after + sync_fail_count)` fail.
    /// `sync_fail_count == u64::MAX` is a permanent failure (until
    /// [`FaultGuard::clear`]).
    pub sync_fail_after: u64,
    pub sync_fail_count: u64,
    /// Scripted ENOSPC: eligible writes (and file creations) from the
    /// `after`-th on fail with [`StorageErrorKind::NoSpace`] until
    /// cleared — a full disk stays full.
    pub enospc_after: Option<u64>,
    /// Probabilistic per-op fault rates.
    pub sync_fail_p: f64,
    pub enospc_p: f64,
    pub short_write_p: f64,
    /// Probability a successful write lands with one flipped bit
    /// (silent: caught only by checksum re-verification).
    pub corrupt_p: f64,
    pub stall_p: f64,
    pub stall_max_us: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0x5173_57AB,
            shard: None,
            target: FaultTarget::All,
            dir_tag: None,
            sync_fail_after: 0,
            sync_fail_count: 0,
            enospc_after: None,
            sync_fail_p: 0.0,
            enospc_p: 0.0,
            short_write_p: 0.0,
            corrupt_p: 0.0,
            stall_p: 0.0,
            stall_max_us: 0,
        }
    }
}

impl FaultPlan {
    /// `count` consecutive fsync failures on `shard` starting at the
    /// `after`-th eligible fsync (the transient-fsync script).
    pub fn fsync_transient(shard: usize, after: u64, count: u64) -> Self {
        FaultPlan {
            shard: Some(shard),
            target: FaultTarget::Segment,
            sync_fail_after: after,
            sync_fail_count: count,
            ..FaultPlan::default()
        }
    }

    /// Every fsync on `shard` fails from the `after`-th on, until the
    /// guard is cleared (the dead-medium script).
    pub fn fsync_permanent(shard: usize, after: u64) -> Self {
        Self::fsync_transient(shard, after, u64::MAX)
    }

    /// The disk fills up at the `after`-th eligible write to `target`
    /// files on `shard` and stays full until cleared.
    pub fn enospc(shard: usize, target: FaultTarget, after: u64) -> Self {
        FaultPlan { shard: Some(shard), target, enospc_after: Some(after), ..FaultPlan::default() }
    }

    /// Restrict the plan to paths containing `tag`.
    pub fn tagged(mut self, tag: impl Into<String>) -> Self {
        self.dir_tag = Some(tag.into());
        self
    }

    /// Reseed the probabilistic stream.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed | 1;
        self
    }
}

/// Counters of faults actually delivered (snapshot via
/// [`FaultGuard::report`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    pub sync_fails: u64,
    pub write_fails: u64,
    pub short_writes: u64,
    pub corruptions: u64,
    pub stalls: u64,
}

struct FaultState {
    plan: FaultPlan,
    cleared: AtomicBool,
    rng: AtomicU64,
    sync_ops: AtomicU64,
    write_ops: AtomicU64,
    sync_fails: AtomicU64,
    write_fails: AtomicU64,
    short_writes: AtomicU64,
    corruptions: AtomicU64,
    stalls: AtomicU64,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static STATE: RwLock<Option<Arc<FaultState>>> = RwLock::new(None);

/// Arm the process-global storage fault injector. Panics if already
/// installed — exactly one plan at a time, like the chaos injector.
/// Tests that arm faults must serialize through [`gate`].
pub fn install(plan: FaultPlan) -> FaultGuard {
    let mut slot = STATE.write().unwrap();
    assert!(slot.is_none(), "storage faults already installed");
    let state = Arc::new(FaultState {
        rng: AtomicU64::new(plan.seed | 1),
        plan,
        cleared: AtomicBool::new(false),
        sync_ops: AtomicU64::new(0),
        write_ops: AtomicU64::new(0),
        sync_fails: AtomicU64::new(0),
        write_fails: AtomicU64::new(0),
        short_writes: AtomicU64::new(0),
        corruptions: AtomicU64::new(0),
        stalls: AtomicU64::new(0),
    });
    *slot = Some(Arc::clone(&state));
    ARMED.store(true, Ordering::Release);
    FaultGuard { state }
}

/// Whether the injector is currently armed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Serialization gate for anything that installs faults: installation
/// is process-global and exclusive, so concurrent tests must hold this.
pub fn gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|p| p.into_inner())
}

/// RAII handle on an installed [`FaultPlan`]. Dropping it disarms.
pub struct FaultGuard {
    state: Arc<FaultState>,
}

impl FaultGuard {
    /// Heal the medium: every fault stops firing, but the plan stays
    /// installed (counters keep their values). The rejoin-probe test
    /// lever: clear, then watch the shard come back.
    pub fn clear(&self) {
        self.state.cleared.store(true, Ordering::Release);
    }

    /// Un-heal: faults resume firing (scripted countdowns continue from
    /// where they were).
    pub fn unclear(&self) {
        self.state.cleared.store(false, Ordering::Release);
    }

    /// Snapshot of faults delivered so far.
    pub fn report(&self) -> FaultReport {
        FaultReport {
            sync_fails: self.state.sync_fails.load(Ordering::Relaxed),
            write_fails: self.state.write_fails.load(Ordering::Relaxed),
            short_writes: self.state.short_writes.load(Ordering::Relaxed),
            corruptions: self.state.corruptions.load(Ordering::Relaxed),
            stalls: self.state.stalls.load(Ordering::Relaxed),
        }
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::Release);
        *STATE.write().unwrap() = None;
    }
}

impl FaultState {
    fn next_rand(&self) -> u64 {
        // xorshift64* advanced through a CAS loop; contention is one
        // fault decision per real I/O call, i.e. negligible.
        let mut x = self.rng.load(Ordering::Relaxed);
        loop {
            let mut n = x;
            n ^= n << 13;
            n ^= n >> 7;
            n ^= n << 17;
            match self.rng.compare_exchange_weak(x, n, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return n.wrapping_mul(0x2545_F491_4F6C_DD1D),
                Err(cur) => x = cur,
            }
        }
    }

    fn roll(&self, p: f64) -> bool {
        p > 0.0 && ((self.next_rand() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    fn stall(&self) {
        if self.roll(self.plan.stall_p) && self.plan.stall_max_us > 0 {
            self.stalls.fetch_add(1, Ordering::Relaxed);
            let us = self.next_rand() % self.plan.stall_max_us + 1;
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
    }
}

// ---------------------------------------------------------------------
// FaultFs
// ---------------------------------------------------------------------

/// File kind derived from the path, for [`FaultTarget`] matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FileKind {
    Segment,
    Checkpoint,
    Other,
}

/// Per-file fault context, parsed once at open.
#[derive(Clone)]
struct FaultCtx {
    shard: Option<usize>,
    kind: FileKind,
    path: String,
}

impl FaultCtx {
    fn of(path: &Path) -> FaultCtx {
        let p = path.to_string_lossy().into_owned();
        let shard = path.components().find_map(|c| {
            c.as_os_str().to_string_lossy().strip_prefix("shard-").and_then(|s| s.parse().ok())
        });
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        let kind = if name.starts_with("wal-") && name.ends_with(".log") {
            FileKind::Segment
        } else if name.starts_with("ckpt-") {
            FileKind::Checkpoint
        } else {
            FileKind::Other
        };
        FaultCtx { shard, kind, path: p }
    }

    fn eligible(&self, st: &FaultState) -> bool {
        if st.cleared.load(Ordering::Acquire) {
            return false;
        }
        if let Some(s) = st.plan.shard {
            if self.shard != Some(s) {
                return false;
            }
        }
        match st.plan.target {
            FaultTarget::All => {}
            FaultTarget::Segment if self.kind == FileKind::Segment => {}
            FaultTarget::Checkpoint if self.kind == FileKind::Checkpoint => {}
            _ => return false,
        }
        match &st.plan.dir_tag {
            Some(tag) => self.path.contains(tag.as_str()),
            None => true,
        }
    }
}

#[cold]
fn current_state() -> Option<Arc<FaultState>> {
    STATE.read().unwrap().clone()
}

/// [`Storage`] over real files with the global fault injector spliced
/// into every write path. This is the storage every [`WalSet`] and
/// recovery uses: when the injector is disarmed the only overhead is
/// one relaxed load per operation.
///
/// [`WalSet`]: super::wal::WalSet
pub struct FaultFs;

/// The storage the durability layer uses by default.
pub fn default_storage() -> Arc<dyn Storage> {
    Arc::new(FaultFs)
}

struct FaultFile {
    inner: RealFile,
    ctx: FaultCtx,
}

impl FaultFile {
    /// Scripted-then-probabilistic write fault decision; returns the
    /// error to deliver, after any partial (short) write went through.
    #[cold]
    fn faulty_write(&mut self, st: &FaultState, buf: &[u8]) -> Result<(), StorageError> {
        st.stall();
        let n = st.write_ops.fetch_add(1, Ordering::Relaxed);
        let enospc = match st.plan.enospc_after {
            Some(after) if n >= after => true,
            _ => st.roll(st.plan.enospc_p),
        };
        if enospc {
            st.write_fails.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::new(StorageErrorKind::NoSpace));
        }
        if st.roll(st.plan.short_write_p) && buf.len() > 1 {
            // A prefix lands on the medium; the caller sees an error.
            let cut = (st.next_rand() as usize % (buf.len() - 1)).max(1);
            let _ = self.inner.write_all(&buf[..cut]);
            st.short_writes.fetch_add(1, Ordering::Relaxed);
            st.write_fails.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::new(StorageErrorKind::ShortWrite));
        }
        if st.roll(st.plan.corrupt_p) && !buf.is_empty() {
            // The write "succeeds" but one bit lies: latent corruption
            // only the scrubber or recovery checksums can see.
            let mut bad = buf.to_vec();
            let bit = st.next_rand() as usize % (bad.len() * 8);
            bad[bit / 8] ^= 1 << (bit % 8);
            st.corruptions.fetch_add(1, Ordering::Relaxed);
            return self.inner.write_all(&bad);
        }
        self.inner.write_all(buf)
    }

    #[cold]
    fn faulty_sync(&mut self, st: &FaultState) -> Result<(), StorageError> {
        st.stall();
        let n = st.sync_ops.fetch_add(1, Ordering::Relaxed);
        let scripted =
            n >= st.plan.sync_fail_after && n - st.plan.sync_fail_after < st.plan.sync_fail_count;
        if scripted || st.roll(st.plan.sync_fail_p) {
            st.sync_fails.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::new(StorageErrorKind::SyncFailed));
        }
        self.inner.sync_data()
    }
}

impl VFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> Result<(), StorageError> {
        if ARMED.load(Ordering::Relaxed) {
            if let Some(st) = current_state() {
                if self.ctx.eligible(&st) {
                    return self.faulty_write(&st, buf);
                }
            }
        }
        self.inner.write_all(buf)
    }

    fn sync_data(&mut self) -> Result<(), StorageError> {
        if ARMED.load(Ordering::Relaxed) {
            if let Some(st) = current_state() {
                if self.ctx.eligible(&st) {
                    return self.faulty_sync(&st);
                }
            }
        }
        self.inner.sync_data()
    }
}

impl FaultFs {
    /// ENOSPC also hits file creation: a full disk cannot grow a new
    /// segment or checkpoint tmp.
    fn check_open(&self, path: &Path) -> Result<(), StorageError> {
        if !ARMED.load(Ordering::Relaxed) {
            return Ok(());
        }
        if let Some(st) = current_state() {
            if FaultCtx::of(path).eligible(&st) {
                let n = st.write_ops.fetch_add(1, Ordering::Relaxed);
                let enospc = match st.plan.enospc_after {
                    Some(after) if n >= after => true,
                    _ => st.roll(st.plan.enospc_p),
                };
                if enospc {
                    st.write_fails.fetch_add(1, Ordering::Relaxed);
                    return Err(StorageError::new(StorageErrorKind::NoSpace));
                }
            }
        }
        Ok(())
    }
}

impl Storage for FaultFs {
    fn open_append(&self, path: &Path) -> Result<Box<dyn VFile>, StorageError> {
        self.check_open(path)?;
        let f = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Box::new(FaultFile { inner: RealFile(f), ctx: FaultCtx::of(path) }))
    }
    fn create(&self, path: &Path) -> Result<Box<dyn VFile>, StorageError> {
        self.check_open(path)?;
        let f = std::fs::File::create(path)?;
        Ok(Box::new(FaultFile { inner: RealFile(f), ctx: FaultCtx::of(path) }))
    }
    fn rename(&self, from: &Path, to: &Path) -> Result<(), StorageError> {
        std::fs::rename(from, to).map_err(StorageError::from)
    }
    fn remove_file(&self, path: &Path) -> Result<(), StorageError> {
        std::fs::remove_file(path).map_err(StorageError::from)
    }
    fn sync_dir(&self, dir: &Path) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir()
            .join(format!("txkv-storage-test-{}-{tag}-{n}", std::process::id()))
            .join("shard-0");
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn disarmed_faultfs_is_a_real_fs() {
        let dir = tmpdir("real");
        let fs = FaultFs;
        let path = dir.join("wal-1.log");
        let mut f = fs.open_append(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn scripted_fsync_failures_fire_then_heal() {
        let _serial = gate();
        let dir = tmpdir("fsync");
        let tag = dir.parent().unwrap().to_string_lossy().into_owned();
        let guard = install(FaultPlan::fsync_transient(0, 1, 2).tagged(&tag));
        let fs = FaultFs;
        let mut f = fs.open_append(&dir.join("wal-1.log")).unwrap();
        f.write_all(b"x").unwrap();
        assert!(f.sync_data().is_ok(), "fsync 0 is before the script window");
        assert_eq!(f.sync_data().unwrap_err().kind, StorageErrorKind::SyncFailed);
        assert_eq!(f.sync_data().unwrap_err().kind, StorageErrorKind::SyncFailed);
        assert!(f.sync_data().is_ok(), "script window closed");
        assert_eq!(guard.report().sync_fails, 2);
        // Checkpoint files are outside this plan's target.
        let mut c = fs.create(&dir.join("ckpt-1.tmp")).unwrap();
        assert!(c.sync_data().is_ok());
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn enospc_persists_until_cleared() {
        let _serial = gate();
        let dir = tmpdir("enospc");
        let tag = dir.parent().unwrap().to_string_lossy().into_owned();
        let guard = install(FaultPlan::enospc(0, FaultTarget::All, 0).tagged(&tag));
        let fs = FaultFs;
        assert_eq!(
            fs.open_append(&dir.join("wal-1.log")).err().map(|e| e.kind),
            Some(StorageErrorKind::NoSpace),
            "a full disk cannot create files"
        );
        guard.clear();
        let mut f = fs.open_append(&dir.join("wal-1.log")).unwrap();
        f.write_all(b"ok").unwrap();
        assert!(guard.report().write_fails >= 1);
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn corruption_is_silent_and_off_by_one_bit() {
        let _serial = gate();
        let dir = tmpdir("corrupt");
        let tag = dir.parent().unwrap().to_string_lossy().into_owned();
        let guard =
            install(FaultPlan { corrupt_p: 1.0, ..FaultPlan::default() }.tagged(&tag).seeded(7));
        let fs = FaultFs;
        let path = dir.join("wal-1.log");
        let mut f = fs.open_append(&path).unwrap();
        f.write_all(&[0u8; 16]).unwrap();
        drop(f);
        drop(guard);
        let bytes = std::fs::read(&path).unwrap();
        let ones: u32 = bytes.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one bit flipped, write reported success");
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn shard_filter_scopes_faults() {
        let _serial = gate();
        let base = tmpdir("scope");
        let base = base.parent().unwrap().to_path_buf();
        let other = base.join("shard-1");
        std::fs::create_dir_all(&other).unwrap();
        let tag = base.to_string_lossy().into_owned();
        let _guard = install(FaultPlan::fsync_permanent(1, 0).tagged(&tag));
        let fs = FaultFs;
        let mut f0 = fs.open_append(&base.join("shard-0/wal-1.log")).unwrap();
        let mut f1 = fs.open_append(&other.join("wal-1.log")).unwrap();
        assert!(f0.sync_data().is_ok(), "shard 0 untouched");
        assert_eq!(f1.sync_data().unwrap_err().kind, StorageErrorKind::SyncFailed);
        let _ = std::fs::remove_dir_all(&base);
    }
}
