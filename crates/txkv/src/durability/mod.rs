//! Durability for the txkv service: commit-ordered write-ahead logging,
//! group-commit fsync, checkpoints with log truncation, and crash
//! recovery — without ever touching the read-only fast path.
//!
//! The design follows the DUMBO thesis (PAPERS.md): persistence work is
//! kept strictly *outside* the transactions. An update's record is
//! appended after its backend transaction committed — on SI-HTM, after
//! the pre-commit quiescence wait — under a per-shard commit lock that
//! makes append order equal commit order (see [`wal`]). Read-only
//! batches never touch the log at all, so durable serving keeps SI-HTM's
//! never-aborting unbounded RO transactions exactly as they were
//! (`ro_batch_aborts == 0` still holds under `Sync` durability).
//!
//! | module | role |
//! |--------|------|
//! | [`record`]     | frame format, checksums, torn-tail detection |
//! | [`storage`]    | `Storage`/`VFile` seam + always-compiled fault injector |
//! | [`wal`]        | per-shard logs, group commit, health machine, power failure |
//! | [`checkpoint`] | atomic snapshot files + pruning |
//! | [`recovery`]   | checkpoint + replay + 2PC resolution into fresh backends |
//!
//! See DESIGN.md §12 for the commit-order argument per backend and the
//! full recovery protocol, §14 for the storage fault model and the
//! per-shard graceful-degradation policy.

pub mod checkpoint;
pub mod record;
pub mod recovery;
pub mod storage;
pub mod wal;

pub use record::{Record, Writes};
pub use recovery::{recover, recover_and_open, RecoveryReport};
pub use storage::{
    FaultGuard, FaultPlan, FaultReport, FaultTarget, StorageError, StorageErrorKind,
};
pub use wal::{
    Append, CrashSite, CrashSpec, DurabilityConfig, DurabilityMode, ShardHealth, WalError, WalSet,
};
