//! WAL record framing: length-prefixed, checksummed, self-delimiting.
//!
//! ```text
//!  frame  := magic:u32  len:u32  crc:u32  payload[len]
//!  payload:= kind:u8  lsn:u64  body
//! ```
//!
//! The CRC covers the payload only; `len` is the payload length. A torn
//! final frame (the classic crash-mid-write artifact) therefore fails
//! either the length check (fewer bytes on disk than `len` promises) or
//! the checksum (a partial payload), and [`decode_all`] stops cleanly at
//! the first invalid frame instead of replaying garbage — corruption is
//! confined to the tail, which by construction holds only records that
//! were never reported durable.

use crate::shard::{UndoImage, XUpdate};

/// Frame magic ("WAL1" little-endian-ish; any fixed tag works — it exists
/// so a seek into the middle of a record is overwhelmingly unlikely to
/// parse).
pub const FRAME_MAGIC: u32 = 0x3157_414C;

/// Post-image write set of one committed update transaction, in apply
/// order: `Some(v)` = key now holds `v`, `None` = key deleted. Replay is
/// plain ordered application — no interpretation, no read dependencies.
pub type Writes = Vec<(u64, Option<u64>)>;

/// One WAL record. Per-shard LSNs are dense and strictly increasing in
/// *commit order* (the append happens under the shard's commit lock,
/// after the backend transaction committed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A committed single-shard update transaction's post-image.
    Write { lsn: u64, writes: Writes },
    /// 2PC participant prepare: the transaction id, the full participant
    /// set, this shard's slice of the update, and its prepare-time undo
    /// image. Durable before any participant applies.
    XBegin { lsn: u64, xid: u64, parts: Vec<u32>, upd: XUpdate, undo: UndoImage },
    /// 2PC participant apply: this shard's committed post-image. Durable
    /// on every participant before any decision record is written.
    XApply { lsn: u64, xid: u64, writes: Writes },
    /// 2PC commit decision. Present in *any* participant's log ⇒ every
    /// participant's `XApply` is durable ⇒ recovery commits the
    /// transaction everywhere.
    XDecide { lsn: u64, xid: u64 },
    /// 2PC abort on *this shard*: the live coordinator compensated the
    /// shard's applied part, and `writes` is the committed compensation
    /// post-image. One atomic record carries both the settlement marker
    /// and the rollback, so recovery can never half-observe an abort
    /// (marker without rollback, or rollback without marker).
    XAbort { lsn: u64, xid: u64, writes: Writes },
}

impl Record {
    pub fn lsn(&self) -> u64 {
        match *self {
            Record::Write { lsn, .. }
            | Record::XBegin { lsn, .. }
            | Record::XApply { lsn, .. }
            | Record::XDecide { lsn, .. }
            | Record::XAbort { lsn, .. } => lsn,
        }
    }
}

// ---- crc32 (IEEE 802.3, table-driven, no external deps) ---------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---- payload primitives ----------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_writes(out: &mut Vec<u8>, writes: &Writes) {
    put_u32(out, writes.len() as u32);
    for &(k, v) in writes {
        put_u64(out, k);
        match v {
            Some(v) => {
                out.push(1);
                put_u64(out, v);
            }
            None => out.push(0),
        }
    }
}

fn put_upd(out: &mut Vec<u8>, upd: &XUpdate) {
    match upd {
        XUpdate::Put(pairs) => {
            out.push(0);
            put_u32(out, pairs.len() as u32);
            for &(k, v) in pairs {
                put_u64(out, k);
                put_u64(out, v);
            }
        }
        XUpdate::Add(deltas) => {
            out.push(1);
            put_u32(out, deltas.len() as u32);
            for &(k, d) in deltas {
                put_u64(out, k);
                put_u64(out, d as u64);
            }
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn writes(&mut self) -> Option<Writes> {
        let n = self.u32()? as usize;
        let mut w = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let k = self.u64()?;
            let v = match self.u8()? {
                0 => None,
                1 => Some(self.u64()?),
                _ => return None,
            };
            w.push((k, v));
        }
        Some(w)
    }

    fn upd(&mut self) -> Option<XUpdate> {
        let tag = self.u8()?;
        let n = self.u32()? as usize;
        match tag {
            0 => {
                let mut pairs = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    pairs.push((self.u64()?, self.u64()?));
                }
                Some(XUpdate::Put(pairs))
            }
            1 => {
                let mut deltas = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    deltas.push((self.u64()?, self.u64()? as i64));
                }
                Some(XUpdate::Add(deltas))
            }
            _ => None,
        }
    }
}

const K_WRITE: u8 = 1;
const K_XBEGIN: u8 = 2;
const K_XAPPLY: u8 = 3;
const K_XDECIDE: u8 = 4;
const K_XABORT: u8 = 5;

/// Append one framed record to `out`.
pub fn encode(rec: &Record, out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(64);
    match rec {
        Record::Write { lsn, writes } => {
            payload.push(K_WRITE);
            put_u64(&mut payload, *lsn);
            put_writes(&mut payload, writes);
        }
        Record::XBegin { lsn, xid, parts, upd, undo } => {
            payload.push(K_XBEGIN);
            put_u64(&mut payload, *lsn);
            put_u64(&mut payload, *xid);
            put_u32(&mut payload, parts.len() as u32);
            for &p in parts {
                put_u32(&mut payload, p);
            }
            put_upd(&mut payload, upd);
            put_writes(&mut payload, undo);
        }
        Record::XApply { lsn, xid, writes } => {
            payload.push(K_XAPPLY);
            put_u64(&mut payload, *lsn);
            put_u64(&mut payload, *xid);
            put_writes(&mut payload, writes);
        }
        Record::XDecide { lsn, xid } => {
            payload.push(K_XDECIDE);
            put_u64(&mut payload, *lsn);
            put_u64(&mut payload, *xid);
        }
        Record::XAbort { lsn, xid, writes } => {
            payload.push(K_XABORT);
            put_u64(&mut payload, *lsn);
            put_u64(&mut payload, *xid);
            put_writes(&mut payload, writes);
        }
    }
    put_u32(out, FRAME_MAGIC);
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(&payload));
    out.extend_from_slice(&payload);
}

fn decode_payload(payload: &[u8]) -> Option<Record> {
    let mut r = Reader { buf: payload, pos: 0 };
    let rec = match r.u8()? {
        K_WRITE => Record::Write { lsn: r.u64()?, writes: r.writes()? },
        K_XBEGIN => {
            let lsn = r.u64()?;
            let xid = r.u64()?;
            let n = r.u32()? as usize;
            let mut parts = Vec::with_capacity(n.min(1 << 10));
            for _ in 0..n {
                parts.push(r.u32()?);
            }
            Record::XBegin { lsn, xid, parts, upd: r.upd()?, undo: r.writes()? }
        }
        K_XAPPLY => Record::XApply { lsn: r.u64()?, xid: r.u64()?, writes: r.writes()? },
        K_XDECIDE => Record::XDecide { lsn: r.u64()?, xid: r.u64()? },
        K_XABORT => Record::XAbort { lsn: r.u64()?, xid: r.u64()?, writes: r.writes()? },
        _ => return None,
    };
    (r.pos == payload.len()).then_some(rec)
}

/// How [`decode_all`] finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeTail {
    /// Every byte parsed into valid frames.
    Clean,
    /// Parsing stopped at a torn or corrupt frame: `dropped` bytes of
    /// tail were ignored. Recovery treats this as the crash point — by
    /// the durability protocol nothing past the last valid frame was
    /// ever reported durable.
    Torn { dropped: usize },
}

/// Decode an entire log buffer, stopping cleanly at the first invalid
/// frame (bad magic, short length, or checksum mismatch).
pub fn decode_all(buf: &[u8]) -> (Vec<Record>, DecodeTail) {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        let torn = DecodeTail::Torn { dropped: buf.len() - pos };
        let Some(hdr) = buf.get(pos..pos + 12) else { return (out, torn) };
        let magic = u32::from_le_bytes(hdr[0..4].try_into().unwrap());
        let len = u32::from_le_bytes(hdr[4..8].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(hdr[8..12].try_into().unwrap());
        if magic != FRAME_MAGIC {
            return (out, torn);
        }
        let Some(payload) = buf.get(pos + 12..pos + 12 + len) else { return (out, torn) };
        if crc32(payload) != crc {
            return (out, torn);
        }
        let Some(rec) = decode_payload(payload) else { return (out, torn) };
        out.push(rec);
        pos += 12 + len;
    }
    (out, DecodeTail::Clean)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(records: &[Record]) {
        let mut buf = Vec::new();
        for r in records {
            encode(r, &mut buf);
        }
        let (decoded, tail) = decode_all(&buf);
        assert_eq!(tail, DecodeTail::Clean);
        assert_eq!(decoded, records);
    }

    #[test]
    fn all_kinds_roundtrip() {
        roundtrip(&[
            Record::Write { lsn: 1, writes: vec![(7, Some(42)), (8, None)] },
            Record::XBegin {
                lsn: 2,
                xid: 11,
                parts: vec![0, 3],
                upd: XUpdate::Add(vec![(1, -5), (2, 5)]),
                undo: vec![(1, Some(10)), (2, None)],
            },
            Record::XBegin {
                lsn: 3,
                xid: 12,
                parts: vec![1, 2],
                upd: XUpdate::Put(vec![(9, 90)]),
                undo: vec![(9, None)],
            },
            Record::XApply { lsn: 4, xid: 11, writes: vec![(1, Some(5))] },
            Record::XDecide { lsn: 5, xid: 11 },
            Record::XAbort { lsn: 6, xid: 12, writes: vec![(9, None)] },
            Record::Write { lsn: 7, writes: vec![] },
        ]);
    }

    #[test]
    fn torn_tail_is_dropped_not_replayed() {
        let mut buf = Vec::new();
        encode(&Record::Write { lsn: 1, writes: vec![(1, Some(1))] }, &mut buf);
        let intact = buf.len();
        encode(&Record::Write { lsn: 2, writes: vec![(2, Some(2))] }, &mut buf);
        // Tear the final record: every truncation point inside it must
        // drop exactly that record and keep the intact prefix.
        for cut in intact + 1..buf.len() {
            let (decoded, tail) = decode_all(&buf[..cut]);
            assert_eq!(decoded.len(), 1, "cut at {cut} must keep only the intact record");
            assert_eq!(decoded[0].lsn(), 1);
            assert!(matches!(tail, DecodeTail::Torn { .. }));
        }
    }

    #[test]
    fn corrupt_byte_fails_checksum() {
        let mut buf = Vec::new();
        encode(&Record::Write { lsn: 1, writes: vec![(1, Some(1))] }, &mut buf);
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        let (decoded, tail) = decode_all(&buf);
        assert!(decoded.is_empty());
        assert!(matches!(tail, DecodeTail::Torn { .. }));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
