//! Checkpoint (snapshot) files: the full `(key, value)` state of one
//! shard as of an LSN, written atomically (temp + fsync + rename) so a
//! crash mid-checkpoint leaves the previous checkpoint intact.
//!
//! ```text
//!  ckpt-<lsn>.ckpt := magic:u32 version:u32 shard:u32 _pad:u32
//!                     lsn:u64 count:u64 crc:u32 entries[count × (k:u64,v:u64)]
//! ```
//!
//! The CRC covers the entry bytes; recovery takes the *newest valid*
//! checkpoint and silently skips invalid ones (an interrupted rename or
//! torn write degrades to replaying more log, never to wrong state).

use super::record::crc32;
use super::storage::{Storage, StorageError};
use std::path::{Path, PathBuf};

pub const CKPT_MAGIC: u32 = 0x3150_4B43; // "CKP1"
pub const CKPT_VERSION: u32 = 1;

const HEADER: usize = 4 + 4 + 4 + 4 + 8 + 8 + 4;

fn path_for(dir: &Path, lsn: u64) -> PathBuf {
    dir.join(format!("ckpt-{lsn}.ckpt"))
}

/// Write the checkpoint for `shard` at `lsn` atomically, through the
/// storage seam (so injected faults hit the tmp-write path; the rename
/// only happens after a successful write + fsync, which is what keeps
/// the previous checkpoint valid under ENOSPC mid-checkpoint).
pub fn write(
    storage: &dyn Storage,
    dir: &Path,
    shard: usize,
    lsn: u64,
    entries: &[(u64, u64)],
) -> Result<(), StorageError> {
    let mut body = Vec::with_capacity(entries.len() * 16);
    for &(k, v) in entries {
        body.extend_from_slice(&k.to_le_bytes());
        body.extend_from_slice(&v.to_le_bytes());
    }
    let mut buf = Vec::with_capacity(HEADER + body.len());
    buf.extend_from_slice(&CKPT_MAGIC.to_le_bytes());
    buf.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(shard as u32).to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes());
    buf.extend_from_slice(&lsn.to_le_bytes());
    buf.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    buf.extend_from_slice(&crc32(&body).to_le_bytes());
    buf.extend_from_slice(&body);
    let tmp = dir.join(format!("ckpt-{lsn}.tmp"));
    let wrote = (|| {
        let mut f = storage.create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_data()
    })();
    if let Err(e) = wrote {
        // A failed tmp write never touches the published checkpoint;
        // drop the leftovers so they cannot mask a later attempt.
        let _ = storage.remove_file(&tmp);
        return Err(e);
    }
    storage.rename(&tmp, &path_for(dir, lsn))?;
    // Make the rename itself durable (best effort — not all platforms
    // allow fsync on a directory handle).
    storage.sync_dir(dir);
    Ok(())
}

/// Parse and validate one checkpoint file: `(lsn, entries)`.
pub fn load(path: &Path) -> Option<(u64, Vec<(u64, u64)>)> {
    let bytes = std::fs::read(path).ok()?;
    if bytes.len() < HEADER {
        return None;
    }
    let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
    let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
    if u32_at(0) != CKPT_MAGIC || u32_at(4) != CKPT_VERSION {
        return None;
    }
    let lsn = u64_at(16);
    let count = u64_at(24) as usize;
    let crc = u32_at(32);
    let body = bytes.get(HEADER..HEADER + count * 16)?;
    if crc32(body) != crc {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let k = u64::from_le_bytes(body[i * 16..i * 16 + 8].try_into().unwrap());
        let v = u64::from_le_bytes(body[i * 16 + 8..i * 16 + 16].try_into().unwrap());
        entries.push((k, v));
    }
    Some((lsn, entries))
}

/// Checkpoint files in a shard dir as `(lsn, path)`, ascending by LSN.
pub(super) fn checkpoints(dir: &Path) -> Vec<(u64, PathBuf)> {
    let Ok(rd) = std::fs::read_dir(dir) else { return Vec::new() };
    let mut out = Vec::new();
    for entry in rd.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(lsn) = name.strip_prefix("ckpt-").and_then(|r| r.strip_suffix(".ckpt")) {
            if let Ok(lsn) = lsn.parse::<u64>() {
                out.push((lsn, entry.path()));
            }
        }
    }
    out.sort_unstable();
    out
}

/// The newest checkpoint that parses and checksums: `(lsn, entries)`.
/// Invalid (torn / interrupted) checkpoints are skipped, falling back to
/// older ones, then to "no checkpoint" (replay from LSN 0).
pub fn latest_valid(dir: &Path) -> Option<(u64, Vec<(u64, u64)>)> {
    checkpoints(dir).into_iter().rev().find_map(|(_, path)| load(&path))
}

/// Remove checkpoints older than `keep_lsn` (best effort).
pub fn prune_older(dir: &Path, keep_lsn: u64) {
    for (lsn, path) in checkpoints(dir) {
        if lsn < keep_lsn {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d =
            std::env::temp_dir().join(format!("txkv-ckpt-test-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrip_and_latest_selection() {
        let dir = tmpdir("rt");
        let fs = super::super::storage::RealFs;
        write(&fs, &dir, 0, 10, &[(1, 100), (2, 200)]).unwrap();
        write(&fs, &dir, 0, 20, &[(1, 111)]).unwrap();
        let (lsn, entries) = latest_valid(&dir).unwrap();
        assert_eq!(lsn, 20);
        assert_eq!(entries, vec![(1, 111)]);
        prune_older(&dir, 20);
        assert!(!path_for(&dir, 10).exists());
        assert!(path_for(&dir, 20).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_older() {
        let dir = tmpdir("corrupt");
        let fs = super::super::storage::RealFs;
        write(&fs, &dir, 0, 10, &[(1, 100)]).unwrap();
        write(&fs, &dir, 0, 20, &[(1, 999)]).unwrap();
        // Corrupt the newer one's body.
        let p = path_for(&dir, 20);
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&p, bytes).unwrap();
        let (lsn, entries) = latest_valid(&dir).unwrap();
        assert_eq!(lsn, 10, "corrupt checkpoint must fall back");
        assert_eq!(entries, vec![(1, 100)]);
        // Truncated-below-header file is also skipped.
        std::fs::write(path_for(&dir, 30), [0u8; 7]).unwrap();
        assert_eq!(latest_valid(&dir).unwrap().0, 10);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
