//! Per-shard commit-ordered logs behind one process-wide "power switch".
//!
//! A [`WalSet`] owns one log per shard. Appends happen under the shard's
//! *commit lock* — a spinlock the pipeline holds across
//! `exec(Update)` + `append`, making the pair the shard's commit
//! serialization point: per-shard LSN order *is* commit order on every
//! backend. On SI-HTM specifically, `exec` returns only after the
//! pre-commit quiescence (safety) wait, so the record lands strictly
//! after the commit is globally visible — logging never sits inside the
//! hardware transaction and can never abort it (the DUMBO discipline).
//!
//! Appends buffer in user space; [`WalSet::flush`] writes and fsyncs the
//! buffer as one *group commit*. `Sync` mode acks ride on the flushed
//! LSN watermark ([`WalSet::durable_lsn`]); `Async` mode acks
//! immediately and flushes on the same cadence.
//!
//! ## Simulated power failure
//!
//! Crash tests flip the set-wide `halted` flag (directly via
//! [`WalSet::halt_all`] or through a scripted [`CrashSpec`]). From that
//! instant every append/flush fails with [`WalDead`] — from the disk's
//! point of view the machine lost power: whatever was fsynced is the
//! entire surviving state, and the pipeline sheds (never acks) requests
//! it can no longer make durable. The [`CrashSite::MidGroupCommit`]
//! effect discards the un-fsynced buffer (written-but-not-synced data
//! does not survive a power cut); [`CrashSite::TornTail`] persists a
//! *prefix* of the final record, the artifact checksummed recovery must
//! reject.

use super::checkpoint;
use super::record::{encode, Record};
use crate::shard::{UndoImage, XLock, XUpdate};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tm_api::WalStats;

/// When (and whether) an ack implies durability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityMode {
    /// No logging at all (the pre-durability pipeline).
    Off,
    /// Commit-ordered logging with group-commit fsync, but acks do not
    /// wait: a crash may lose a suffix of *acknowledged* writes (it
    /// still never yields a torn or reordered state).
    Async,
    /// Sync-on-ack: the reply slot is filled only once the request's
    /// record is fsynced. An acknowledged write survives any crash.
    Sync,
}

impl DurabilityMode {
    pub fn name(self) -> &'static str {
        match self {
            DurabilityMode::Off => "off",
            DurabilityMode::Async => "async",
            DurabilityMode::Sync => "sync",
        }
    }
}

/// Scripted crash point for kill-and-restart tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// After an update transaction committed in memory (on SI-HTM: after
    /// the quiescence wait) but before its record was appended — the
    /// quiescence-window crash. The write is lost *and was never acked*.
    AfterCommit,
    /// Inside a group-commit flush, before the fsync: the buffered
    /// records never reach disk (a power cut eats the page cache).
    MidGroupCommit,
    /// Inside a group-commit flush, persisting only a prefix of the
    /// final record: the torn-tail artifact recovery must detect by
    /// checksum and drop.
    TornTail,
    /// 2PC: after every participant's `XBegin` is durable, before any
    /// apply. Recovery must presume abort.
    AfterPrepare,
    /// 2PC: after at least one participant's `XApply` is durable, before
    /// the decision. Recovery must compensate the applied participants.
    AfterApply,
    /// 2PC: after the decision is durable on at least one participant.
    /// Recovery must commit the transaction on *all* participants.
    AfterDecision,
}

impl CrashSite {
    pub const ALL: [CrashSite; 6] = [
        CrashSite::AfterCommit,
        CrashSite::MidGroupCommit,
        CrashSite::TornTail,
        CrashSite::AfterPrepare,
        CrashSite::AfterApply,
        CrashSite::AfterDecision,
    ];
}

/// Trip the simulated power failure at the `after`-th opportunity of
/// `site` (0 = the first time the site is reached).
#[derive(Debug, Clone, Copy)]
pub struct CrashSpec {
    pub site: CrashSite,
    pub after: u64,
}

/// Durability configuration for a pipeline.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    pub mode: DurabilityMode,
    /// Directory holding one `shard-<s>/` subdirectory per shard.
    pub dir: PathBuf,
    /// Flush when this many records are buffered (a momentarily empty
    /// update lane also triggers a flush, so light load is not delayed).
    pub group_commit_max: u64,
    /// Checkpoint a shard after this many appends since its last
    /// checkpoint (0 = never checkpoint).
    pub checkpoint_every: u64,
    /// Scripted crash for kill-and-restart tests.
    pub crash: Option<CrashSpec>,
}

impl DurabilityConfig {
    pub fn new(mode: DurabilityMode, dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            mode,
            dir: dir.into(),
            group_commit_max: 32,
            checkpoint_every: 0,
            crash: None,
        }
    }
}

/// The WAL refused an operation because the simulated machine lost
/// power: nothing appended after this point can ever become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalDead;

/// What to append (the WAL assigns the LSN under the shard lock).
pub enum Append<'a> {
    Write(&'a super::record::Writes),
    XBegin { xid: u64, parts: &'a [usize], upd: &'a XUpdate, undo: &'a UndoImage },
    XApply { xid: u64, writes: &'a super::record::Writes },
    XDecide { xid: u64 },
    XAbort { xid: u64, writes: &'a super::record::Writes },
}

struct ShardWal {
    dir: PathBuf,
    /// Current segment file (`wal-<first-lsn>.log`), append-only.
    file: Option<File>,
    next_lsn: u64,
    /// Everything ≤ this LSN is on disk and fsynced.
    durable_lsn: u64,
    /// Last LSN appended (buffered; ≥ `durable_lsn`).
    appended_lsn: u64,
    /// Encoded frames appended since the last flush.
    buf: Vec<u8>,
    buf_records: u64,
    appends_since_ckpt: u64,
    stats: WalStats,
}

impl ShardWal {
    fn segment_path(&self, first_lsn: u64) -> PathBuf {
        self.dir.join(format!("wal-{first_lsn}.log"))
    }

    fn open_segment(&mut self) -> std::io::Result<()> {
        let path = self.segment_path(self.next_lsn);
        self.file = Some(OpenOptions::new().create(true).append(true).open(path)?);
        Ok(())
    }
}

struct CrashState {
    site: CrashSite,
    remaining: AtomicU64,
}

struct WalShard {
    commit_lock: XLock,
    inner: Mutex<ShardWal>,
}

/// The per-shard logs plus the shared power switch and crash script.
pub struct WalSet {
    mode: DurabilityMode,
    dir: PathBuf,
    group_commit_max: u64,
    checkpoint_every: u64,
    shards: Vec<WalShard>,
    halted: AtomicBool,
    crash: Option<CrashState>,
    next_xid: AtomicU64,
    // Service-side counters that live outside the shard mutexes.
    sync_acks_early: AtomicU64,
    wal_dead_sheds: AtomicU64,
    recovery_replayed: AtomicU64,
    recovery_torn: AtomicU64,
}

impl WalSet {
    /// Open (creating directories and fresh segments as needed) the logs
    /// for `shards` shards. Continues LSN numbering past any existing
    /// checkpoints and segments — always into a *new* segment, so stale
    /// tails are never appended to.
    pub fn open(cfg: &DurabilityConfig, shards: usize) -> std::io::Result<Arc<WalSet>> {
        assert!(cfg.mode != DurabilityMode::Off, "WalSet::open with DurabilityMode::Off");
        assert!(cfg.group_commit_max > 0, "group_commit_max must be nonzero");
        let mut shard_wals = Vec::with_capacity(shards);
        for s in 0..shards {
            let dir = cfg.dir.join(format!("shard-{s}"));
            std::fs::create_dir_all(&dir)?;
            let max_lsn = scan_max_lsn(&dir)?;
            let mut wal = ShardWal {
                dir,
                file: None,
                next_lsn: max_lsn + 1,
                durable_lsn: max_lsn,
                appended_lsn: max_lsn,
                buf: Vec::new(),
                buf_records: 0,
                appends_since_ckpt: 0,
                stats: WalStats::default(),
            };
            wal.open_segment()?;
            shard_wals.push(WalShard { commit_lock: XLock::new(), inner: Mutex::new(wal) });
        }
        Ok(Arc::new(WalSet {
            mode: cfg.mode,
            dir: cfg.dir.clone(),
            group_commit_max: cfg.group_commit_max,
            checkpoint_every: cfg.checkpoint_every,
            shards: shard_wals,
            halted: AtomicBool::new(false),
            crash: cfg
                .crash
                .map(|c| CrashState { site: c.site, remaining: AtomicU64::new(c.after) }),
            next_xid: AtomicU64::new(1),
            sync_acks_early: AtomicU64::new(0),
            wal_dead_sheds: AtomicU64::new(0),
            recovery_replayed: AtomicU64::new(0),
            recovery_torn: AtomicU64::new(0),
        }))
    }

    pub fn mode(&self) -> DurabilityMode {
        self.mode
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Fresh cross-shard transaction id.
    pub fn next_xid(&self) -> u64 {
        self.next_xid.fetch_add(1, Ordering::Relaxed)
    }

    /// The shard's commit-serialization lock. Hold it across
    /// `exec(Update)` + [`WalSet::append`] so log order equals commit
    /// order. It is an [`XLock`] (spin + poll-emitting), not an OS
    /// mutex, so it is safe under `tm-check`'s cooperative scheduler.
    pub fn commit_lock(&self, s: usize) -> crate::shard::XGuard<'_> {
        self.shards[s].commit_lock.lock()
    }

    /// Whether the simulated machine still has power.
    pub fn alive(&self) -> bool {
        !self.halted.load(Ordering::Acquire)
    }

    /// Throw the power switch: every subsequent append/flush fails, and
    /// the fsynced prefix of each log is the entire surviving state.
    pub fn halt_all(&self) {
        self.halted.store(true, Ordering::Release);
    }

    /// Reach a scripted crash site; trips the power switch when the
    /// countdown hits zero. The flush-interior sites
    /// ([`CrashSite::MidGroupCommit`], [`CrashSite::TornTail`]) are
    /// handled inside [`WalSet::flush`], not here.
    pub fn crash_point(&self, site: CrashSite) {
        if let Some(c) = &self.crash {
            if c.site == site && !self.halted.load(Ordering::Relaxed) && count_down(&c.remaining) {
                self.halt_all();
            }
        }
    }

    fn flush_crash(&self, site: CrashSite) -> bool {
        match &self.crash {
            Some(c) if c.site == site => count_down(&c.remaining),
            _ => false,
        }
    }

    /// Append one record to shard `s`'s buffer (not yet durable) and
    /// return its LSN. Call under the shard's commit lock.
    pub fn append(&self, s: usize, what: Append<'_>) -> Result<u64, WalDead> {
        if !self.alive() {
            return Err(WalDead);
        }
        let mut w = self.shards[s].inner.lock().unwrap();
        let lsn = w.next_lsn;
        let rec = match what {
            Append::Write(writes) => Record::Write { lsn, writes: writes.clone() },
            Append::XBegin { xid, parts, upd, undo } => Record::XBegin {
                lsn,
                xid,
                parts: parts.iter().map(|&p| p as u32).collect(),
                upd: upd.clone(),
                undo: undo.clone(),
            },
            Append::XApply { xid, writes } => Record::XApply { lsn, xid, writes: writes.clone() },
            Append::XDecide { xid } => Record::XDecide { lsn, xid },
            Append::XAbort { xid, writes } => Record::XAbort { lsn, xid, writes: writes.clone() },
        };
        let before = w.buf.len();
        encode(&rec, &mut w.buf);
        let frame = (w.buf.len() - before) as u64;
        w.next_lsn = lsn + 1;
        w.appended_lsn = lsn;
        w.buf_records += 1;
        w.appends_since_ckpt += 1;
        w.stats.wal_appends += 1;
        w.stats.wal_bytes += frame;
        Ok(lsn)
    }

    /// Group-commit flush of shard `s`: write the buffered frames and
    /// fsync, advancing the durable watermark to the last appended LSN.
    pub fn flush(&self, s: usize) -> Result<u64, WalDead> {
        if !self.alive() {
            return Err(WalDead);
        }
        let mut w = self.shards[s].inner.lock().unwrap();
        if w.buf.is_empty() {
            return Ok(w.durable_lsn);
        }
        // Scripted crash artifacts: a power cut mid-group-commit loses
        // the un-fsynced buffer entirely; a torn tail persists a prefix
        // of the final record.
        if self.flush_crash(CrashSite::MidGroupCommit) {
            w.buf.clear();
            w.buf_records = 0;
            self.halt_all();
            return Err(WalDead);
        }
        if self.flush_crash(CrashSite::TornTail) {
            // Cut inside the final frame: keep everything before it plus
            // half of the frame itself (at least its header, so the
            // checksum — not the length check alone — must reject it).
            let frames = frame_offsets(&w.buf);
            let last = *frames.last().unwrap_or(&0);
            let cut = last + (w.buf.len() - last).div_ceil(2).max(13.min(w.buf.len() - last));
            let torn = w.buf[..cut.min(w.buf.len())].to_vec();
            if let Some(f) = w.file.as_mut() {
                let _ = f.write_all(&torn);
                let _ = f.sync_data();
            }
            w.buf.clear();
            w.buf_records = 0;
            self.halt_all();
            return Err(WalDead);
        }
        let buf = std::mem::take(&mut w.buf);
        let records = w.buf_records;
        w.buf_records = 0;
        let file = w.file.as_mut().expect("segment open");
        let ok = file.write_all(&buf).and_then(|()| file.sync_data());
        match ok {
            Ok(()) => {
                w.durable_lsn = w.appended_lsn;
                w.stats.fsync_batches += 1;
                w.stats.fsynced_records += records;
                Ok(w.durable_lsn)
            }
            Err(_) => {
                // Real I/O failure: treat it as the power cut it may
                // well precede. Nothing buffered can be trusted.
                self.halt_all();
                Err(WalDead)
            }
        }
    }

    /// Durable watermark of shard `s` (all LSNs ≤ this survive a crash).
    pub fn durable_lsn(&self, s: usize) -> u64 {
        self.shards[s].inner.lock().unwrap().durable_lsn
    }

    /// Records buffered (appended but not yet flushed) on shard `s`.
    pub fn buffered(&self, s: usize) -> u64 {
        self.shards[s].inner.lock().unwrap().buf_records
    }

    pub fn group_commit_max(&self) -> u64 {
        self.group_commit_max
    }

    /// Whether shard `s` is due for a checkpoint.
    pub fn wants_checkpoint(&self, s: usize) -> bool {
        self.checkpoint_every > 0
            && self.alive()
            && self.shards[s].inner.lock().unwrap().appends_since_ckpt >= self.checkpoint_every
    }

    /// Install a checkpoint of shard `s` at the current appended LSN and
    /// truncate the log. Call with the shard's xlock *and* commit lock
    /// held and the WAL flushed: `entries` must be the store state
    /// produced by exactly the records ≤ `durable_lsn`.
    pub fn install_checkpoint(&self, s: usize, entries: &[(u64, u64)]) -> Result<(), WalDead> {
        if !self.alive() {
            return Err(WalDead);
        }
        let mut w = self.shards[s].inner.lock().unwrap();
        assert!(w.buf.is_empty(), "checkpoint requires a flushed WAL");
        let lsn = w.durable_lsn;
        if checkpoint::write(&w.dir, s, lsn, entries).is_err() {
            self.halt_all();
            return Err(WalDead);
        }
        // Rotate to a fresh segment and drop everything the checkpoint
        // covers (old segments and older checkpoints).
        w.file = None;
        if w.open_segment().is_err() {
            self.halt_all();
            return Err(WalDead);
        }
        prune_covered(&w.dir, lsn);
        w.appends_since_ckpt = 0;
        w.stats.checkpoints += 1;
        w.stats.checkpoint_entries += entries.len() as u64;
        Ok(())
    }

    pub fn note_sync_ack_early(&self) {
        self.sync_acks_early.fetch_add(1, Ordering::Relaxed);
    }

    pub fn note_dead_shed(&self) {
        self.wal_dead_sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Record what a preceding recovery replayed (surfaced in
    /// [`WalStats`] so the service report shows the restart provenance).
    pub fn note_recovery(&self, replayed: u64, torn: u64) {
        self.recovery_replayed.store(replayed, Ordering::Relaxed);
        self.recovery_torn.store(torn, Ordering::Relaxed);
    }

    /// Aggregate statistics across all shards.
    pub fn stats(&self) -> WalStats {
        let mut total = WalStats {
            sync_acks_early: self.sync_acks_early.load(Ordering::Relaxed),
            wal_dead_sheds: self.wal_dead_sheds.load(Ordering::Relaxed),
            recovery_replayed: self.recovery_replayed.load(Ordering::Relaxed),
            recovery_torn: self.recovery_torn.load(Ordering::Relaxed),
            ..WalStats::default()
        };
        for sh in &self.shards {
            total += &sh.inner.lock().unwrap().stats;
        }
        total
    }
}

fn count_down(remaining: &AtomicU64) -> bool {
    // Saturating decrement; trips exactly once, when the count is 0.
    remaining.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1)).is_err()
}

/// Byte offsets of every frame start in a buffer of our own encoding.
fn frame_offsets(buf: &[u8]) -> Vec<usize> {
    let mut offs = Vec::new();
    let mut pos = 0usize;
    while pos + 12 <= buf.len() {
        offs.push(pos);
        let len = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap()) as usize;
        pos += 12 + len;
    }
    offs
}

/// Largest LSN recoverable from a shard directory: the newest valid
/// checkpoint and every valid record in every segment.
fn scan_max_lsn(dir: &Path) -> std::io::Result<u64> {
    let mut max = checkpoint::latest_valid(dir).map(|(lsn, _)| lsn).unwrap_or(0);
    for (_, path) in segments(dir)? {
        let bytes = std::fs::read(&path)?;
        let (records, _) = super::record::decode_all(&bytes);
        if let Some(last) = records.last() {
            max = max.max(last.lsn());
        }
    }
    Ok(max)
}

/// `(first_lsn, path)` of every WAL segment in a shard dir, ascending.
pub(super) fn segments(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(lsn) = name.strip_prefix("wal-").and_then(|r| r.strip_suffix(".log")) {
            if let Ok(lsn) = lsn.parse::<u64>() {
                out.push((lsn, entry.path()));
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Delete segments and checkpoints fully covered by the checkpoint at
/// `lsn` (best-effort: recovery tolerates leftovers by LSN-filtering).
fn prune_covered(dir: &Path, lsn: u64) {
    if let Ok(segs) = segments(dir) {
        for (first, path) in segs {
            if first <= lsn {
                let _ = std::fs::remove_file(path);
            }
        }
    }
    checkpoint::prune_older(dir, lsn);
}

#[cfg(test)]
mod tests {
    use super::super::record::Writes;
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d =
            std::env::temp_dir().join(format!("txkv-wal-test-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn append_flush_advances_durable_watermark() {
        let dir = tmpdir("basic");
        let cfg = DurabilityConfig::new(DurabilityMode::Sync, &dir);
        let wal = WalSet::open(&cfg, 2).unwrap();
        let w: Writes = vec![(1, Some(10))];
        let lsn1 = wal.append(0, Append::Write(&w)).unwrap();
        let lsn2 = wal.append(0, Append::Write(&w)).unwrap();
        assert_eq!(lsn2, lsn1 + 1);
        assert_eq!(wal.durable_lsn(0), lsn1 - 1, "nothing durable before flush");
        assert_eq!(wal.buffered(0), 2);
        assert_eq!(wal.flush(0).unwrap(), lsn2);
        assert_eq!(wal.durable_lsn(0), lsn2);
        let st = wal.stats();
        assert_eq!(st.wal_appends, 2);
        assert_eq!(st.fsync_batches, 1);
        assert_eq!(st.fsynced_records, 2);
        assert!((st.mean_group_commit() - 2.0).abs() < 1e-9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn halt_kills_appends_and_flushes() {
        let dir = tmpdir("halt");
        let cfg = DurabilityConfig::new(DurabilityMode::Sync, &dir);
        let wal = WalSet::open(&cfg, 1).unwrap();
        let w: Writes = vec![(1, Some(10))];
        wal.append(0, Append::Write(&w)).unwrap();
        wal.halt_all();
        assert_eq!(wal.append(0, Append::Write(&w)), Err(WalDead));
        assert_eq!(wal.flush(0), Err(WalDead));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_group_commit_crash_loses_the_buffer() {
        let dir = tmpdir("midgc");
        let mut cfg = DurabilityConfig::new(DurabilityMode::Sync, &dir);
        cfg.crash = Some(CrashSpec { site: CrashSite::MidGroupCommit, after: 1 });
        let wal = WalSet::open(&cfg, 1).unwrap();
        let w: Writes = vec![(1, Some(10))];
        wal.append(0, Append::Write(&w)).unwrap();
        assert!(wal.flush(0).is_ok(), "first flush survives (after: 1)");
        wal.append(0, Append::Write(&w)).unwrap();
        assert_eq!(wal.flush(0), Err(WalDead), "second flush trips the crash");
        assert!(!wal.alive());
        // Only the first record survived on disk.
        let segs = segments(&dir.join("shard-0")).unwrap();
        let mut recs = 0;
        for (_, p) in segs {
            recs += super::super::record::decode_all(&std::fs::read(p).unwrap()).0.len();
        }
        assert_eq!(recs, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_continues_lsns_in_a_fresh_segment() {
        let dir = tmpdir("reopen");
        let cfg = DurabilityConfig::new(DurabilityMode::Sync, &dir);
        let w: Writes = vec![(1, Some(10))];
        let last = {
            let wal = WalSet::open(&cfg, 1).unwrap();
            wal.append(0, Append::Write(&w)).unwrap();
            let last = wal.append(0, Append::Write(&w)).unwrap();
            wal.flush(0).unwrap();
            last
        };
        let wal = WalSet::open(&cfg, 1).unwrap();
        let next = wal.append(0, Append::Write(&w)).unwrap();
        assert_eq!(next, last + 1, "LSNs continue across reopen");
        assert_eq!(segments(&dir.join("shard-0")).unwrap().len(), 2, "new segment per open");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
