//! Per-shard commit-ordered logs with per-shard storage health.
//!
//! A [`WalSet`] owns one log per shard. Appends happen under the shard's
//! *commit lock* — a spinlock the pipeline holds across
//! `exec(Update)` + `append`, making the pair the shard's commit
//! serialization point: per-shard LSN order *is* commit order on every
//! backend. On SI-HTM specifically, `exec` returns only after the
//! pre-commit quiescence (safety) wait, so the record lands strictly
//! after the commit is globally visible — logging never sits inside the
//! hardware transaction and can never abort it (the DUMBO discipline).
//!
//! Appends buffer in user space; [`WalSet::flush`] writes and fsyncs the
//! buffer as one *group commit*. `Sync` mode acks ride on the flushed
//! LSN watermark ([`WalSet::durable_lsn`]); `Async` mode acks
//! immediately and flushes on the same cadence. Flush I/O happens
//! **outside** the shard mutex (the buffer is swapped out, written, and
//! the watermark advanced under a brief re-lock), so appenders are never
//! blocked behind a slow or stalled fsync.
//!
//! ## Storage faults and graceful degradation
//!
//! All file I/O goes through the [`storage`](super::storage) seam, so
//! real disk errors (and the injected ones) surface as typed
//! [`StorageError`]s, not process death. The error policy per shard is a
//! health state machine:
//!
//! ```text
//!   Healthy ──storage error──▶ Retrying ──bounded retries fail──▶ ReadOnly ──probes keep failing──▶ Failed
//!      ▲                          │ rewrite succeeds                  │ probe write succeeds            │
//!      └──────────────────────────┴──────────────────────────────────┴────────────────────────────────┘
//! ```
//!
//! *fsyncgate rule:* after a failed fsync the page-cache state of that
//! file is unknown, so the durable watermark **never** advances on it
//! and the un-durable frames are rewritten into a freshly rotated
//! segment — an fsync is never retried on the failed file. Recovery
//! tolerates the leftovers: the old tail is cut by checksum and any
//! duplicate frames are dropped by the LSN filter.
//!
//! A `ReadOnly`/`Failed` shard keeps serving reads; updates are shed as
//! the typed `Unavailable` outcome (never acked — `sync_acks_early == 0`
//! holds by construction, because Sync acks settle only on the durable
//! watermark). A probe-write loop ([`WalSet::probe`]) rejoins the shard
//! once the medium heals, first flushing any frames retained while
//! degraded so the durable state converges back to what reads observed.
//!
//! ## Simulated power failure
//!
//! Crash tests flip the set-wide `halted` flag (directly via
//! [`WalSet::halt_all`] or through a scripted [`CrashSpec`]). From that
//! instant every append/flush fails with [`WalError::Dead`] — from the
//! disk's point of view the machine lost power: whatever was fsynced is
//! the entire surviving state, and the pipeline sheds (never acks)
//! requests it can no longer make durable. The
//! [`CrashSite::MidGroupCommit`] effect discards the un-fsynced buffer
//! (written-but-not-synced data does not survive a power cut);
//! [`CrashSite::TornTail`] persists a *prefix* of the final record, the
//! artifact checksummed recovery must reject. The power switch is
//! machine-wide and final; storage-fault degradation is per-shard and
//! recoverable — the two channels are deliberately separate.

use super::checkpoint;
use super::record::{encode, Record};
use super::storage::{self, Storage, StorageError, VFile};
use crate::shard::{UndoImage, XLock, XUpdate};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use tm_api::WalStats;

/// When (and whether) an ack implies durability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityMode {
    /// No logging at all (the pre-durability pipeline).
    Off,
    /// Commit-ordered logging with group-commit fsync, but acks do not
    /// wait: a crash may lose a suffix of *acknowledged* writes (it
    /// still never yields a torn or reordered state).
    Async,
    /// Sync-on-ack: the reply slot is filled only once the request's
    /// record is fsynced. An acknowledged write survives any crash.
    Sync,
}

impl DurabilityMode {
    pub fn name(self) -> &'static str {
        match self {
            DurabilityMode::Off => "off",
            DurabilityMode::Async => "async",
            DurabilityMode::Sync => "sync",
        }
    }
}

/// Scripted crash point for kill-and-restart tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// After an update transaction committed in memory (on SI-HTM: after
    /// the quiescence wait) but before its record was appended — the
    /// quiescence-window crash. The write is lost *and was never acked*.
    AfterCommit,
    /// Inside a group-commit flush, before the fsync: the buffered
    /// records never reach disk (a power cut eats the page cache).
    MidGroupCommit,
    /// Inside a group-commit flush, persisting only a prefix of the
    /// final record: the torn-tail artifact recovery must detect by
    /// checksum and drop.
    TornTail,
    /// 2PC: after every participant's `XBegin` is durable, before any
    /// apply. Recovery must presume abort.
    AfterPrepare,
    /// 2PC: after at least one participant's `XApply` is durable, before
    /// the decision. Recovery must compensate the applied participants.
    AfterApply,
    /// 2PC: after the decision is durable on at least one participant.
    /// Recovery must commit the transaction on *all* participants.
    AfterDecision,
}

impl CrashSite {
    pub const ALL: [CrashSite; 6] = [
        CrashSite::AfterCommit,
        CrashSite::MidGroupCommit,
        CrashSite::TornTail,
        CrashSite::AfterPrepare,
        CrashSite::AfterApply,
        CrashSite::AfterDecision,
    ];
}

/// Trip the simulated power failure at the `after`-th opportunity of
/// `site` (0 = the first time the site is reached).
#[derive(Debug, Clone, Copy)]
pub struct CrashSpec {
    pub site: CrashSite,
    pub after: u64,
}

/// Durability configuration for a pipeline.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    pub mode: DurabilityMode,
    /// Directory holding one `shard-<s>/` subdirectory per shard.
    pub dir: PathBuf,
    /// Flush when this many records are buffered (a momentarily empty
    /// update lane also triggers a flush, so light load is not delayed).
    pub group_commit_max: u64,
    /// Checkpoint a shard after this many appends since its last
    /// checkpoint (0 = never checkpoint).
    pub checkpoint_every: u64,
    /// Scripted crash for kill-and-restart tests.
    pub crash: Option<CrashSpec>,
    /// Rewrite attempts after a flush I/O error before the shard
    /// degrades to `ReadOnly` (each attempt rotates to a fresh segment).
    pub flush_retries: u32,
    /// Base of the jittered exponential pause between flush retries, in
    /// microseconds (capped at 10ms per pause).
    pub retry_base_us: u64,
    /// Consecutive failed rejoin probes before `ReadOnly` escalates to
    /// `Failed` (probing continues either way — a healed medium rejoins
    /// from both states).
    pub probe_fail_limit: u64,
    /// Cadence of the pipeline's maintenance loop (rejoin probes), in
    /// milliseconds. 0 disables the loop (no probes, no scrubbing).
    pub maintenance_interval_ms: u64,
    /// Cadence of scrubber passes re-verifying checkpoint and log-tail
    /// checksums, in milliseconds. 0 disables scrubbing only.
    pub scrub_interval_ms: u64,
}

impl DurabilityConfig {
    pub fn new(mode: DurabilityMode, dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            mode,
            dir: dir.into(),
            group_commit_max: 32,
            checkpoint_every: 0,
            crash: None,
            flush_retries: 4,
            retry_base_us: 50,
            probe_fail_limit: 8,
            maintenance_interval_ms: 25,
            scrub_interval_ms: 500,
        }
    }
}

/// Why the WAL refused an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalError {
    /// The simulated machine lost power: nothing appended after this
    /// point can ever become durable, on any shard.
    Dead,
    /// This shard's storage is degraded (`ReadOnly` or `Failed`): the
    /// shard keeps serving reads, updates are shed as the typed
    /// `Unavailable` outcome, and a rejoin probe runs in the background.
    Unavailable,
}

/// Per-shard storage health (the graceful-degradation state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShardHealth {
    /// Appends and flushes succeed.
    Healthy,
    /// A flush hit a storage error and is inside its bounded
    /// rotate-and-rewrite retry loop; appends still buffer.
    Retrying,
    /// Retries exhausted: updates shed as `Unavailable`, reads still
    /// served, probe writes attempt to rejoin.
    ReadOnly,
    /// Probes keep failing too; still read-serving and still probed,
    /// but reported as a dead medium.
    Failed,
}

impl ShardHealth {
    pub fn name(self) -> &'static str {
        match self {
            ShardHealth::Healthy => "healthy",
            ShardHealth::Retrying => "retrying",
            ShardHealth::ReadOnly => "read_only",
            ShardHealth::Failed => "failed",
        }
    }

    /// Whether the shard currently accepts update appends.
    pub fn writable(self) -> bool {
        matches!(self, ShardHealth::Healthy | ShardHealth::Retrying)
    }

    fn from_u8(v: u8) -> ShardHealth {
        match v {
            0 => ShardHealth::Healthy,
            1 => ShardHealth::Retrying,
            2 => ShardHealth::ReadOnly,
            _ => ShardHealth::Failed,
        }
    }
}

/// What to append (the WAL assigns the LSN under the shard lock).
pub enum Append<'a> {
    Write(&'a super::record::Writes),
    XBegin { xid: u64, parts: &'a [usize], upd: &'a XUpdate, undo: &'a UndoImage },
    XApply { xid: u64, writes: &'a super::record::Writes },
    XDecide { xid: u64 },
    XAbort { xid: u64, writes: &'a super::record::Writes },
}

struct ShardWal {
    dir: PathBuf,
    /// Current segment file (`wal-<first-lsn>.log`), append-only.
    /// `None` after a storage failure — the next flush/probe rotates to
    /// a fresh segment (never the failed file: the fsyncgate rule).
    file: Option<Box<dyn VFile>>,
    next_lsn: u64,
    /// Everything ≤ this LSN is on disk and fsynced.
    durable_lsn: u64,
    /// Last LSN appended (buffered; ≥ `durable_lsn`).
    appended_lsn: u64,
    /// Encoded frames appended since the last flush.
    buf: Vec<u8>,
    buf_records: u64,
    appends_since_ckpt: u64,
    stats: WalStats,
}

impl ShardWal {
    fn segment_path(&self, first_lsn: u64) -> PathBuf {
        self.dir.join(format!("wal-{first_lsn}.log"))
    }

    /// Open a fresh segment for the first not-yet-durable LSN. A file of
    /// that name can only hold un-acked garbage from an earlier failed
    /// rewrite (any valid frame in it would have LSN > durable, i.e.
    /// never acked; any frame ≤ durable would contradict the name), so
    /// it is removed rather than appended to — appending valid frames
    /// after garbage would hide them from checksummed recovery.
    fn open_segment(&mut self, storage: &dyn Storage) -> Result<(), StorageError> {
        let path = self.segment_path(self.durable_lsn + 1);
        let _ = storage.remove_file(&path);
        self.file = Some(storage.open_append(&path)?);
        Ok(())
    }

    /// Put a batch that failed to flush back in front of whatever was
    /// appended meanwhile, preserving LSN order for a later rejoin.
    fn restore_batch(&mut self, mut batch: Vec<u8>, records: u64) {
        batch.extend_from_slice(&self.buf);
        self.buf = batch;
        self.buf_records += records;
    }
}

struct CrashState {
    site: CrashSite,
    remaining: AtomicU64,
}

struct WalShard {
    commit_lock: XLock,
    /// Serializes flush/probe/checkpoint I/O so the segment file can be
    /// taken out of `inner` and written without blocking appenders.
    io_lock: Mutex<()>,
    health: AtomicU8,
    probe_failures: AtomicU64,
    ckpt_requested: AtomicBool,
    inner: Mutex<ShardWal>,
}

/// The per-shard logs plus the shared power switch and crash script.
pub struct WalSet {
    mode: DurabilityMode,
    dir: PathBuf,
    group_commit_max: u64,
    checkpoint_every: u64,
    flush_retries: u32,
    retry_base_us: u64,
    probe_fail_limit: u64,
    maintenance_interval_ms: u64,
    scrub_interval_ms: u64,
    storage: Arc<dyn Storage>,
    shards: Vec<WalShard>,
    halted: AtomicBool,
    crash: Option<CrashState>,
    next_xid: AtomicU64,
    retry_seed: AtomicU64,
    // Service-side counters that live outside the shard mutexes.
    sync_acks_early: AtomicU64,
    wal_dead_sheds: AtomicU64,
    degraded_sheds: AtomicU64,
    scrub_passes: AtomicU64,
    scrub_corruptions: AtomicU64,
    recovery_replayed: AtomicU64,
    recovery_torn: AtomicU64,
}

impl WalSet {
    /// Open (creating directories and fresh segments as needed) the logs
    /// for `shards` shards. Continues LSN numbering past any existing
    /// checkpoints and segments — always into a *new* segment, so stale
    /// tails are never appended to.
    pub fn open(cfg: &DurabilityConfig, shards: usize) -> std::io::Result<Arc<WalSet>> {
        assert!(cfg.mode != DurabilityMode::Off, "WalSet::open with DurabilityMode::Off");
        assert!(cfg.group_commit_max > 0, "group_commit_max must be nonzero");
        let storage = storage::default_storage();
        let mut shard_wals = Vec::with_capacity(shards);
        for s in 0..shards {
            let dir = cfg.dir.join(format!("shard-{s}"));
            std::fs::create_dir_all(&dir)?;
            let max_lsn = scan_max_lsn(&dir)?;
            let mut wal = ShardWal {
                dir,
                file: None,
                next_lsn: max_lsn + 1,
                durable_lsn: max_lsn,
                appended_lsn: max_lsn,
                buf: Vec::new(),
                buf_records: 0,
                appends_since_ckpt: 0,
                stats: WalStats::default(),
            };
            wal.open_segment(storage.as_ref()).map_err(std::io::Error::other)?;
            shard_wals.push(WalShard {
                commit_lock: XLock::new(),
                io_lock: Mutex::new(()),
                health: AtomicU8::new(ShardHealth::Healthy as u8),
                probe_failures: AtomicU64::new(0),
                ckpt_requested: AtomicBool::new(false),
                inner: Mutex::new(wal),
            });
        }
        Ok(Arc::new(WalSet {
            mode: cfg.mode,
            dir: cfg.dir.clone(),
            group_commit_max: cfg.group_commit_max,
            checkpoint_every: cfg.checkpoint_every,
            flush_retries: cfg.flush_retries,
            retry_base_us: cfg.retry_base_us,
            probe_fail_limit: cfg.probe_fail_limit,
            maintenance_interval_ms: cfg.maintenance_interval_ms,
            scrub_interval_ms: cfg.scrub_interval_ms,
            storage,
            shards: shard_wals,
            halted: AtomicBool::new(false),
            crash: cfg
                .crash
                .map(|c| CrashState { site: c.site, remaining: AtomicU64::new(c.after) }),
            next_xid: AtomicU64::new(1),
            retry_seed: AtomicU64::new(0x9E37_79B9_7F4A_7C15),
            sync_acks_early: AtomicU64::new(0),
            wal_dead_sheds: AtomicU64::new(0),
            degraded_sheds: AtomicU64::new(0),
            scrub_passes: AtomicU64::new(0),
            scrub_corruptions: AtomicU64::new(0),
            recovery_replayed: AtomicU64::new(0),
            recovery_torn: AtomicU64::new(0),
        }))
    }

    pub fn mode(&self) -> DurabilityMode {
        self.mode
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    pub fn maintenance_interval_ms(&self) -> u64 {
        self.maintenance_interval_ms
    }

    pub fn scrub_interval_ms(&self) -> u64 {
        self.scrub_interval_ms
    }

    /// Fresh cross-shard transaction id.
    pub fn next_xid(&self) -> u64 {
        self.next_xid.fetch_add(1, Ordering::Relaxed)
    }

    /// The shard's commit-serialization lock. Hold it across
    /// `exec(Update)` + [`WalSet::append`] so log order equals commit
    /// order. It is an [`XLock`] (spin + poll-emitting), not an OS
    /// mutex, so it is safe under `tm-check`'s cooperative scheduler.
    pub fn commit_lock(&self, s: usize) -> crate::shard::XGuard<'_> {
        self.shards[s].commit_lock.lock()
    }

    /// Whether the simulated machine still has power.
    pub fn alive(&self) -> bool {
        !self.halted.load(Ordering::Acquire)
    }

    /// Throw the power switch: every subsequent append/flush fails, and
    /// the fsynced prefix of each log is the entire surviving state.
    pub fn halt_all(&self) {
        self.halted.store(true, Ordering::Release);
    }

    /// Storage health of shard `s`.
    pub fn health(&self, s: usize) -> ShardHealth {
        ShardHealth::from_u8(self.shards[s].health.load(Ordering::Acquire))
    }

    /// Health of every shard, by name (the service-report column).
    pub fn health_names(&self) -> Vec<&'static str> {
        (0..self.shards.len()).map(|s| self.health(s).name()).collect()
    }

    /// Whether any shard is currently degraded.
    pub fn degraded(&self) -> bool {
        (0..self.shards.len()).any(|s| !self.health(s).writable())
    }

    /// Typed admission check for an update touching shard `s`.
    pub fn admits(&self, s: usize) -> Result<(), WalError> {
        if !self.alive() {
            return Err(WalError::Dead);
        }
        if self.health(s).writable() {
            Ok(())
        } else {
            Err(WalError::Unavailable)
        }
    }

    fn set_health(&self, s: usize, h: ShardHealth) {
        self.shards[s].health.store(h as u8, Ordering::Release);
    }

    /// Reach a scripted crash site; trips the power switch when the
    /// countdown hits zero. The flush-interior sites
    /// ([`CrashSite::MidGroupCommit`], [`CrashSite::TornTail`]) are
    /// handled inside [`WalSet::flush`], not here.
    pub fn crash_point(&self, site: CrashSite) {
        if let Some(c) = &self.crash {
            if c.site == site && !self.halted.load(Ordering::Relaxed) && count_down(&c.remaining) {
                self.halt_all();
            }
        }
    }

    fn flush_crash(&self, site: CrashSite) -> bool {
        match &self.crash {
            Some(c) if c.site == site => count_down(&c.remaining),
            _ => false,
        }
    }

    /// Append one record to shard `s`'s buffer (not yet durable) and
    /// return its LSN. Call under the shard's commit lock.
    pub fn append(&self, s: usize, what: Append<'_>) -> Result<u64, WalError> {
        if !self.alive() {
            return Err(WalError::Dead);
        }
        if !self.health(s).writable() {
            return Err(WalError::Unavailable);
        }
        let mut w = self.shards[s].inner.lock().unwrap();
        let lsn = w.next_lsn;
        let rec = match what {
            Append::Write(writes) => Record::Write { lsn, writes: writes.clone() },
            Append::XBegin { xid, parts, upd, undo } => Record::XBegin {
                lsn,
                xid,
                parts: parts.iter().map(|&p| p as u32).collect(),
                upd: upd.clone(),
                undo: undo.clone(),
            },
            Append::XApply { xid, writes } => Record::XApply { lsn, xid, writes: writes.clone() },
            Append::XDecide { xid } => Record::XDecide { lsn, xid },
            Append::XAbort { xid, writes } => Record::XAbort { lsn, xid, writes: writes.clone() },
        };
        let before = w.buf.len();
        encode(&rec, &mut w.buf);
        let frame = (w.buf.len() - before) as u64;
        w.next_lsn = lsn + 1;
        w.appended_lsn = lsn;
        w.buf_records += 1;
        w.appends_since_ckpt += 1;
        w.stats.wal_appends += 1;
        w.stats.wal_bytes += frame;
        Ok(lsn)
    }

    /// Group-commit flush of shard `s`: write the buffered frames and
    /// fsync, advancing the durable watermark to the last appended LSN.
    /// On a storage error the batch is rewritten into freshly rotated
    /// segments under bounded jittered retries; if those run out the
    /// shard degrades to [`ShardHealth::ReadOnly`] and the batch is
    /// retained (un-acked) for the rejoin probe.
    pub fn flush(&self, s: usize) -> Result<u64, WalError> {
        if !self.alive() {
            return Err(WalError::Dead);
        }
        match self.health(s) {
            ShardHealth::Healthy | ShardHealth::Retrying => {}
            _ => return Err(WalError::Unavailable),
        }
        let sh = &self.shards[s];
        let _io = sh.io_lock.lock().unwrap();
        self.flush_io_locked(s, 1 + self.flush_retries)
    }

    /// The flush body. Caller holds the shard's `io_lock`; `attempts` is
    /// the total number of write+fsync tries (≥ 1).
    fn flush_io_locked(&self, s: usize, attempts: u32) -> Result<u64, WalError> {
        let sh = &self.shards[s];
        let mut w = sh.inner.lock().unwrap();
        if w.buf.is_empty() {
            return Ok(w.durable_lsn);
        }
        // Scripted crash artifacts: a power cut mid-group-commit loses
        // the un-fsynced buffer entirely; a torn tail persists a prefix
        // of the final record.
        if self.flush_crash(CrashSite::MidGroupCommit) {
            w.buf.clear();
            w.buf_records = 0;
            self.halt_all();
            return Err(WalError::Dead);
        }
        if self.flush_crash(CrashSite::TornTail) {
            // Cut inside the final frame: keep everything before it plus
            // half of the frame itself (at least its header, so the
            // checksum — not the length check alone — must reject it).
            let frames = frame_offsets(&w.buf);
            let last = *frames.last().unwrap_or(&0);
            let cut = last + (w.buf.len() - last).div_ceil(2).max(13.min(w.buf.len() - last));
            let torn = w.buf[..cut.min(w.buf.len())].to_vec();
            if let Some(f) = w.file.as_mut() {
                let _ = f.write_all(&torn);
                let _ = f.sync_data();
            }
            w.buf.clear();
            w.buf_records = 0;
            self.halt_all();
            return Err(WalError::Dead);
        }
        // Take the batch; appends keep buffering while we do I/O.
        let batch = std::mem::take(&mut w.buf);
        let records = w.buf_records;
        w.buf_records = 0;
        let target_lsn = w.appended_lsn;
        // A lost handle (or a prior failure) is not a panic: rotate to a
        // fresh segment for the first buffered LSN.
        if w.file.is_none() && w.open_segment(self.storage.as_ref()).is_err() {
            w.restore_batch(batch, records);
            drop(w);
            self.set_health(s, ShardHealth::ReadOnly);
            return Err(WalError::Unavailable);
        }
        let mut file = w.file.take().expect("segment opened above");
        drop(w);

        let mut attempt: u32 = 0;
        loop {
            let res = file.write_all(&batch).and_then(|()| file.sync_data());
            let mut w = sh.inner.lock().unwrap();
            match res {
                Ok(()) => {
                    w.file = Some(file);
                    w.durable_lsn = target_lsn;
                    w.stats.fsync_batches += 1;
                    w.stats.fsynced_records += records;
                    drop(w);
                    if !matches!(self.health(s), ShardHealth::Healthy) {
                        self.rejoined(s);
                    }
                    return Ok(target_lsn);
                }
                Err(_) => {
                    attempt += 1;
                    // fsyncgate: the failed file's page-cache state is
                    // unknown — never fsync it again. Every retry
                    // rewrites the whole batch into a fresh segment.
                    drop(file);
                    w.file = None;
                    if attempt >= attempts {
                        w.restore_batch(batch, records);
                        drop(w);
                        self.set_health(s, ShardHealth::ReadOnly);
                        return Err(WalError::Unavailable);
                    }
                    w.stats.wal_retries += 1;
                    let rotated = w.open_segment(self.storage.as_ref());
                    match rotated {
                        Ok(()) => file = w.file.take().expect("segment opened above"),
                        Err(_) => {
                            w.restore_batch(batch, records);
                            drop(w);
                            self.set_health(s, ShardHealth::ReadOnly);
                            return Err(WalError::Unavailable);
                        }
                    }
                    drop(w);
                    self.set_health(s, ShardHealth::Retrying);
                    self.retry_pause(attempt);
                }
            }
        }
    }

    /// Jittered exponential pause between flush retries
    /// (`ContentionManager`-style: escalating ceiling, uniform draw).
    fn retry_pause(&self, attempt: u32) {
        let base = self.retry_base_us.max(1);
        let ceiling = base.saturating_mul(1u64 << attempt.min(6)).min(10_000);
        let mut x = self.retry_seed.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed) | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        std::thread::sleep(std::time::Duration::from_micros(x % ceiling.max(1) + 1));
    }

    /// A degraded shard came back: reset probe bookkeeping and count the
    /// rejoin.
    fn rejoined(&self, s: usize) {
        let was = self.health(s);
        self.set_health(s, ShardHealth::Healthy);
        self.shards[s].probe_failures.store(0, Ordering::Relaxed);
        if matches!(was, ShardHealth::ReadOnly | ShardHealth::Failed) {
            let mut w = self.shards[s].inner.lock().unwrap();
            w.stats.wal_rejoins += 1;
        }
    }

    /// One rejoin attempt on a degraded shard: ensure there is something
    /// to write (frames retained at degradation, else a no-op probe
    /// record), rotate to a fresh segment, and try a single
    /// write + fsync. Success rejoins the shard (`Healthy`, durable
    /// watermark advanced); failure escalates `ReadOnly → Failed` after
    /// `probe_fail_limit` consecutive misses. Returns `true` when the
    /// shard is healthy on exit.
    pub fn probe(&self, s: usize) -> bool {
        if !self.alive() {
            return false;
        }
        match self.health(s) {
            ShardHealth::Healthy | ShardHealth::Retrying => return true,
            ShardHealth::ReadOnly | ShardHealth::Failed => {}
        }
        let sh = &self.shards[s];
        let _io = sh.io_lock.lock().unwrap();
        {
            let mut w = sh.inner.lock().unwrap();
            if w.buf.is_empty() {
                // An empty Write replays as a no-op: a pure probe write.
                let lsn = w.next_lsn;
                let before = w.buf.len();
                encode(&Record::Write { lsn, writes: Vec::new() }, &mut w.buf);
                let frame = (w.buf.len() - before) as u64;
                w.next_lsn = lsn + 1;
                w.appended_lsn = lsn;
                w.buf_records += 1;
                w.stats.wal_appends += 1;
                w.stats.wal_bytes += frame;
            }
        }
        match self.flush_io_locked(s, 1) {
            Ok(_) => true,
            Err(_) => {
                let misses = sh.probe_failures.fetch_add(1, Ordering::Relaxed) + 1;
                if misses >= self.probe_fail_limit {
                    self.set_health(s, ShardHealth::Failed);
                } else {
                    self.set_health(s, ShardHealth::ReadOnly);
                }
                false
            }
        }
    }

    /// One scrubber pass over shard `s`: re-verify every checkpoint's
    /// checksum and re-run recovery's coverage scan over the segments.
    /// If the decodable on-disk state no longer covers the durable
    /// watermark — latent corruption under acked data — schedule an
    /// immediate re-checkpoint from the (intact) in-memory store, after
    /// which the damaged log is pruned.
    pub fn scrub(&self, s: usize) {
        if !self.alive() {
            return;
        }
        let (dir, durable) = {
            let w = self.shards[s].inner.lock().unwrap();
            (w.dir.clone(), w.durable_lsn)
        };
        self.scrub_passes.fetch_add(1, Ordering::Relaxed);
        let mut covered = 0u64;
        let mut corrupt = false;
        for (_, path) in checkpoint::checkpoints(&dir) {
            match checkpoint::load(&path) {
                Some((lsn, _)) => covered = covered.max(lsn),
                // Tolerate a checkpoint pruned between listing and read.
                None if path.exists() => corrupt = true,
                None => {}
            }
        }
        if let Ok(segs) = segments(&dir) {
            for (_, path) in segs {
                if let Ok(bytes) = std::fs::read(&path) {
                    let (records, _) = super::record::decode_all(&bytes);
                    for r in &records {
                        if r.lsn() > covered {
                            covered = r.lsn();
                        }
                    }
                }
            }
        }
        if corrupt || covered < durable {
            self.scrub_corruptions.fetch_add(1, Ordering::Relaxed);
            self.request_checkpoint(s);
        }
    }

    /// Ask the executors to checkpoint shard `s` at the next
    /// opportunity, regardless of the append cadence.
    pub fn request_checkpoint(&self, s: usize) {
        self.shards[s].ckpt_requested.store(true, Ordering::Release);
    }

    /// Durable watermark of shard `s` (all LSNs ≤ this survive a crash).
    pub fn durable_lsn(&self, s: usize) -> u64 {
        self.shards[s].inner.lock().unwrap().durable_lsn
    }

    /// Records buffered (appended but not yet flushed) on shard `s`.
    pub fn buffered(&self, s: usize) -> u64 {
        self.shards[s].inner.lock().unwrap().buf_records
    }

    pub fn group_commit_max(&self) -> u64 {
        self.group_commit_max
    }

    /// Whether shard `s` is due for a checkpoint. Degraded shards are
    /// never checkpointed (their retained buffer must flush first).
    pub fn wants_checkpoint(&self, s: usize) -> bool {
        if !self.alive() || self.health(s) != ShardHealth::Healthy {
            return false;
        }
        self.shards[s].ckpt_requested.load(Ordering::Acquire)
            || (self.checkpoint_every > 0
                && self.shards[s].inner.lock().unwrap().appends_since_ckpt >= self.checkpoint_every)
    }

    /// Install a checkpoint of shard `s` at the current appended LSN and
    /// truncate the log. Call with the shard's xlock *and* commit lock
    /// held and the WAL flushed: `entries` must be the store state
    /// produced by exactly the records ≤ `durable_lsn`.
    ///
    /// A failed checkpoint **write** is survivable: the previous
    /// checkpoint and the whole log are still in place, so the shard
    /// keeps serving and just tries again later. Only a failure to open
    /// a fresh segment afterwards degrades the shard.
    pub fn install_checkpoint(&self, s: usize, entries: &[(u64, u64)]) -> Result<(), WalError> {
        if !self.alive() {
            return Err(WalError::Dead);
        }
        let sh = &self.shards[s];
        let _io = sh.io_lock.lock().unwrap();
        let mut w = sh.inner.lock().unwrap();
        assert!(w.buf.is_empty(), "checkpoint requires a flushed WAL");
        let lsn = w.durable_lsn;
        if checkpoint::write(self.storage.as_ref(), &w.dir, s, lsn, entries).is_err() {
            w.stats.checkpoint_failures += 1;
            w.appends_since_ckpt = 0;
            sh.ckpt_requested.store(false, Ordering::Release);
            return Err(WalError::Unavailable);
        }
        // Rotate to a fresh segment and drop everything the checkpoint
        // covers (old segments and older checkpoints).
        w.file = None;
        if w.open_segment(self.storage.as_ref()).is_err() {
            drop(w);
            self.set_health(s, ShardHealth::ReadOnly);
            return Err(WalError::Unavailable);
        }
        prune_covered(&w.dir, lsn);
        w.appends_since_ckpt = 0;
        w.stats.checkpoints += 1;
        w.stats.checkpoint_entries += entries.len() as u64;
        sh.ckpt_requested.store(false, Ordering::Release);
        Ok(())
    }

    pub fn note_sync_ack_early(&self) {
        self.sync_acks_early.fetch_add(1, Ordering::Relaxed);
    }

    pub fn note_dead_shed(&self) {
        self.wal_dead_sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// An update was answered `Unavailable` because its shard's log is
    /// degraded.
    pub fn note_degraded_shed(&self) {
        self.degraded_sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Record what a preceding recovery replayed (surfaced in
    /// [`WalStats`] so the service report shows the restart provenance).
    pub fn note_recovery(&self, replayed: u64, torn: u64) {
        self.recovery_replayed.store(replayed, Ordering::Relaxed);
        self.recovery_torn.store(torn, Ordering::Relaxed);
    }

    /// Aggregate statistics across all shards.
    pub fn stats(&self) -> WalStats {
        let mut total = WalStats {
            sync_acks_early: self.sync_acks_early.load(Ordering::Relaxed),
            wal_dead_sheds: self.wal_dead_sheds.load(Ordering::Relaxed),
            degraded_sheds: self.degraded_sheds.load(Ordering::Relaxed),
            scrub_passes: self.scrub_passes.load(Ordering::Relaxed),
            scrub_corruptions: self.scrub_corruptions.load(Ordering::Relaxed),
            recovery_replayed: self.recovery_replayed.load(Ordering::Relaxed),
            recovery_torn: self.recovery_torn.load(Ordering::Relaxed),
            ..WalStats::default()
        };
        for sh in &self.shards {
            total += &sh.inner.lock().unwrap().stats;
        }
        total
    }
}

fn count_down(remaining: &AtomicU64) -> bool {
    // Saturating decrement; trips exactly once, when the count is 0.
    remaining.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1)).is_err()
}

/// Byte offsets of every frame start in a buffer of our own encoding.
fn frame_offsets(buf: &[u8]) -> Vec<usize> {
    let mut offs = Vec::new();
    let mut pos = 0usize;
    while pos + 12 <= buf.len() {
        offs.push(pos);
        let len = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap()) as usize;
        pos += 12 + len;
    }
    offs
}

/// Largest LSN recoverable from a shard directory: the newest valid
/// checkpoint and every valid record in every segment.
fn scan_max_lsn(dir: &Path) -> std::io::Result<u64> {
    let mut max = checkpoint::latest_valid(dir).map(|(lsn, _)| lsn).unwrap_or(0);
    for (_, path) in segments(dir)? {
        let bytes = std::fs::read(&path)?;
        let (records, _) = super::record::decode_all(&bytes);
        if let Some(last) = records.last() {
            max = max.max(last.lsn());
        }
    }
    Ok(max)
}

/// `(first_lsn, path)` of every WAL segment in a shard dir, ascending.
pub(super) fn segments(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(lsn) = name.strip_prefix("wal-").and_then(|r| r.strip_suffix(".log")) {
            if let Ok(lsn) = lsn.parse::<u64>() {
                out.push((lsn, entry.path()));
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Delete segments and checkpoints fully covered by the checkpoint at
/// `lsn` (best-effort: recovery tolerates leftovers by LSN-filtering).
fn prune_covered(dir: &Path, lsn: u64) {
    if let Ok(segs) = segments(dir) {
        for (first, path) in segs {
            if first <= lsn {
                let _ = std::fs::remove_file(path);
            }
        }
    }
    checkpoint::prune_older(dir, lsn);
}

#[cfg(test)]
mod tests {
    use super::super::record::Writes;
    use super::super::storage::{self as faults, FaultPlan};
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d =
            std::env::temp_dir().join(format!("txkv-wal-test-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn append_flush_advances_durable_watermark() {
        let dir = tmpdir("basic");
        let cfg = DurabilityConfig::new(DurabilityMode::Sync, &dir);
        let wal = WalSet::open(&cfg, 2).unwrap();
        let w: Writes = vec![(1, Some(10))];
        let lsn1 = wal.append(0, Append::Write(&w)).unwrap();
        let lsn2 = wal.append(0, Append::Write(&w)).unwrap();
        assert_eq!(lsn2, lsn1 + 1);
        assert_eq!(wal.durable_lsn(0), lsn1 - 1, "nothing durable before flush");
        assert_eq!(wal.buffered(0), 2);
        assert_eq!(wal.flush(0).unwrap(), lsn2);
        assert_eq!(wal.durable_lsn(0), lsn2);
        let st = wal.stats();
        assert_eq!(st.wal_appends, 2);
        assert_eq!(st.fsync_batches, 1);
        assert_eq!(st.fsynced_records, 2);
        assert!((st.mean_group_commit() - 2.0).abs() < 1e-9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn halt_kills_appends_and_flushes() {
        let dir = tmpdir("halt");
        let cfg = DurabilityConfig::new(DurabilityMode::Sync, &dir);
        let wal = WalSet::open(&cfg, 1).unwrap();
        let w: Writes = vec![(1, Some(10))];
        wal.append(0, Append::Write(&w)).unwrap();
        wal.halt_all();
        assert_eq!(wal.append(0, Append::Write(&w)), Err(WalError::Dead));
        assert_eq!(wal.flush(0), Err(WalError::Dead));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_group_commit_crash_loses_the_buffer() {
        let dir = tmpdir("midgc");
        let mut cfg = DurabilityConfig::new(DurabilityMode::Sync, &dir);
        cfg.crash = Some(CrashSpec { site: CrashSite::MidGroupCommit, after: 1 });
        let wal = WalSet::open(&cfg, 1).unwrap();
        let w: Writes = vec![(1, Some(10))];
        wal.append(0, Append::Write(&w)).unwrap();
        assert!(wal.flush(0).is_ok(), "first flush survives (after: 1)");
        wal.append(0, Append::Write(&w)).unwrap();
        assert_eq!(wal.flush(0), Err(WalError::Dead), "second flush trips the crash");
        assert!(!wal.alive());
        // Only the first record survived on disk.
        let segs = segments(&dir.join("shard-0")).unwrap();
        let mut recs = 0;
        for (_, p) in segs {
            recs += super::super::record::decode_all(&std::fs::read(p).unwrap()).0.len();
        }
        assert_eq!(recs, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_continues_lsns_in_a_fresh_segment() {
        let dir = tmpdir("reopen");
        let cfg = DurabilityConfig::new(DurabilityMode::Sync, &dir);
        let w: Writes = vec![(1, Some(10))];
        let last = {
            let wal = WalSet::open(&cfg, 1).unwrap();
            wal.append(0, Append::Write(&w)).unwrap();
            let last = wal.append(0, Append::Write(&w)).unwrap();
            wal.flush(0).unwrap();
            last
        };
        let wal = WalSet::open(&cfg, 1).unwrap();
        let next = wal.append(0, Append::Write(&w)).unwrap();
        assert_eq!(next, last + 1, "LSNs continue across reopen");
        assert_eq!(segments(&dir.join("shard-0")).unwrap().len(), 2, "new segment per open");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_fsync_failure_retries_into_rotated_segment() {
        let _serial = faults::gate();
        let dir = tmpdir("fsyncgate-retry");
        let tag = dir.to_string_lossy().into_owned();
        let mut cfg = DurabilityConfig::new(DurabilityMode::Sync, &dir);
        cfg.retry_base_us = 1;
        let wal = WalSet::open(&cfg, 1).unwrap();
        let w: Writes = vec![(7, Some(70))];
        wal.append(0, Append::Write(&w)).unwrap();
        wal.flush(0).unwrap();
        // Fail the next 2 fsyncs; the default 4 retries absorb them by
        // rewriting into rotated segments.
        let guard = faults::install(FaultPlan::fsync_transient(0, 0, 2).tagged(&tag));
        let lsn = wal.append(0, Append::Write(&w)).unwrap();
        assert_eq!(wal.flush(0), Ok(lsn), "bounded retries absorb the transient failure");
        assert_eq!(wal.health(0), ShardHealth::Healthy);
        drop(guard);
        let st = wal.stats();
        assert_eq!(st.wal_retries, 2, "one retry per injected fsync failure");
        // The rewrite landed in a rotated segment; recovery sees each
        // record exactly once (LSN filter dedups any surviving old tail).
        let sdir = dir.join("shard-0");
        assert!(segments(&sdir).unwrap().len() >= 2, "rewrite rotated to a fresh segment");
        let mut seen = 0u64;
        let mut last = 0u64;
        for (_, p) in segments(&sdir).unwrap() {
            for r in super::super::record::decode_all(&std::fs::read(p).unwrap()).0 {
                if r.lsn() > last {
                    last = r.lsn();
                    seen += 1;
                }
            }
        }
        assert_eq!(seen, 2, "both records recoverable exactly once");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsyncgate_watermark_frozen_until_rewritten_segment_syncs() {
        let _serial = faults::gate();
        let dir = tmpdir("fsyncgate-freeze");
        let tag = dir.to_string_lossy().into_owned();
        let mut cfg = DurabilityConfig::new(DurabilityMode::Sync, &dir);
        cfg.flush_retries = 0; // first failure degrades immediately
        cfg.retry_base_us = 1;
        let wal = WalSet::open(&cfg, 1).unwrap();
        let w: Writes = vec![(1, Some(11))];
        let before = wal.durable_lsn(0);
        // 2 fsync failures: the failed flush (attempt 1) and the first
        // probe; the second probe's fsync succeeds and rejoins.
        let guard = faults::install(FaultPlan::fsync_transient(0, 0, 2).tagged(&tag));
        let lsn = wal.append(0, Append::Write(&w)).unwrap();
        assert_eq!(wal.flush(0), Err(WalError::Unavailable));
        assert_eq!(wal.durable_lsn(0), before, "failed fsync must not advance the watermark");
        assert_eq!(wal.health(0), ShardHealth::ReadOnly);
        assert_eq!(
            wal.append(0, Append::Write(&w)),
            Err(WalError::Unavailable),
            "degraded shard sheds updates"
        );
        assert!(!wal.probe(0), "first probe still hits the injected failure");
        assert_eq!(wal.durable_lsn(0), before);
        assert!(wal.probe(0), "healed medium rejoins via the probe");
        assert_eq!(wal.health(0), ShardHealth::Healthy);
        assert_eq!(wal.durable_lsn(0), lsn, "retained frame became durable on rejoin");
        drop(guard);
        let st = wal.stats();
        assert_eq!(st.wal_rejoins, 1);
        assert_eq!(st.sync_acks_early, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_failures_escalate_to_failed_then_rejoin() {
        let _serial = faults::gate();
        let dir = tmpdir("escalate");
        let tag = dir.to_string_lossy().into_owned();
        let mut cfg = DurabilityConfig::new(DurabilityMode::Sync, &dir);
        cfg.flush_retries = 0;
        cfg.retry_base_us = 1;
        cfg.probe_fail_limit = 2;
        let wal = WalSet::open(&cfg, 1).unwrap();
        let w: Writes = vec![(3, Some(33))];
        let guard = faults::install(FaultPlan::fsync_permanent(0, 0).tagged(&tag));
        wal.append(0, Append::Write(&w)).unwrap();
        assert_eq!(wal.flush(0), Err(WalError::Unavailable));
        assert_eq!(wal.health(0), ShardHealth::ReadOnly);
        assert!(!wal.probe(0));
        assert_eq!(wal.health(0), ShardHealth::ReadOnly, "below the escalation limit");
        assert!(!wal.probe(0));
        assert_eq!(wal.health(0), ShardHealth::Failed, "probe_fail_limit misses escalate");
        guard.clear();
        assert!(wal.probe(0), "a Failed shard still probes and rejoins");
        assert_eq!(wal.health(0), ShardHealth::Healthy);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scrubber_catches_latent_corruption_and_requests_checkpoint() {
        let dir = tmpdir("scrub");
        let cfg = DurabilityConfig::new(DurabilityMode::Sync, &dir);
        let wal = WalSet::open(&cfg, 1).unwrap();
        let w: Writes = vec![(9, Some(90))];
        wal.append(0, Append::Write(&w)).unwrap();
        wal.flush(0).unwrap();
        wal.scrub(0);
        assert_eq!(wal.stats().scrub_corruptions, 0, "clean log scrubs clean");
        assert!(!wal.wants_checkpoint(0));
        // Flip a bit under the durable watermark, as a decaying disk would.
        let (_, seg) = segments(&dir.join("shard-0")).unwrap().pop().unwrap();
        let mut bytes = std::fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&seg, bytes).unwrap();
        wal.scrub(0);
        let st = wal.stats();
        assert_eq!(st.scrub_corruptions, 1, "coverage fell below the watermark");
        assert!(st.scrub_passes >= 2);
        assert!(wal.wants_checkpoint(0), "corruption triggers a re-checkpoint request");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
