//! Crash recovery: latest valid checkpoint + commit-ordered log replay,
//! with cross-shard 2PC resolution.
//!
//! Replay is pure post-image application in LSN order, so it needs no
//! transactions: each shard's surviving state is folded into an ordered
//! map, then bulk-loaded into a *fresh* backend instance. Torn or
//! corrupt tail records are detected by checksum and dropped (nothing
//! past the last valid frame was ever reported durable).
//!
//! ## 2PC resolution (presumed abort, decision-anywhere commit)
//!
//! The live protocol orders its records so that recovery can decide any
//! in-flight cross-shard transaction from the logs alone:
//!
//! 1. `XBegin` (participant set + undo image) is durable on a
//!    participant before that participant applies;
//! 2. every participant's `XApply` (post-image) is durable before any
//!    `XDecide` is written;
//! 3. the client is acked only after an `XDecide` is durable.
//!
//! So: an `XDecide` in **any** participant's log proves every
//! participant's `XApply` survived — replaying the post-images commits
//! the transaction everywhere. No decision anywhere means the
//! transaction was never acked: participants whose `XApply` survived
//! are compensated from their `XBegin` (delta-undo for `Add` parts,
//! which commutes with later logged local updates; image-restore for
//! blind `Put` parts), and everyone else never applied — all shards
//! converge on "it didn't happen". An `XAbort` on a shard marks that
//! shard's part as compensated by the live coordinator and carries the
//! compensation post-image in the same atomic record, so recovery
//! replays it and skips compensating *that shard* — other participants
//! whose own `XAbort` didn't reach disk are still compensated here.
//!
//! Recovery ends by writing a fresh checkpoint per shard and pruning
//! the replayed segments, so the next [`super::WalSet::open`] starts
//! from a compact, valid on-disk state — and recovery itself is
//! idempotent.

use super::checkpoint;
use super::record::{decode_all, DecodeTail, Record};
use super::wal::{segments, DurabilityConfig, WalSet};
use crate::shard::{ShardMap, UndoImage, XUpdate};
use crate::store::KvStore;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;
use tm_api::TmBackend;
use txmem::Addr;

/// What a recovery pass found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    pub shards: usize,
    /// Entries loaded from checkpoint files.
    pub checkpoint_entries: u64,
    /// Log records replayed past the checkpoints.
    pub replayed: u64,
    /// Torn/corrupt tail events dropped by checksum (≤ 1 per segment).
    pub torn_tails: u64,
    /// In-flight cross-shard transactions resolved as committed (a
    /// decision record was found in some participant's log).
    pub xids_committed: u64,
    /// In-flight cross-shard transactions resolved by compensation
    /// (presumed abort: no decision anywhere).
    pub xids_compensated: u64,
}

#[derive(Default)]
struct XidState {
    decided: bool,
    /// Shards whose own `XAbort` (marker + compensation post-image in
    /// one record) survived: already rolled back by replay.
    aborted_on: HashSet<usize>,
    /// Shards whose `XApply` survived, with the prepare-time info needed
    /// to compensate them.
    applied: Vec<(usize, XUpdate, UndoImage)>,
    /// Prepare info per shard (filled from `XBegin`).
    begun: HashMap<usize, (XUpdate, UndoImage)>,
}

/// Rebuild every shard's state from disk into fresh backend instances.
///
/// `mk_backend`, `base` and `words` mirror [`crate::shard::build_domains`]:
/// each shard gets its own backend (own memory, own quiescence domain)
/// and a store bulk-loaded with its recovered entries.
pub fn recover<B: TmBackend>(
    dir: &Path,
    map: &ShardMap,
    mut mk_backend: impl FnMut(usize) -> B,
    base: Addr,
    words: u64,
) -> std::io::Result<(Vec<(B, KvStore)>, RecoveryReport)> {
    let shards = map.shards();
    let storage = super::storage::default_storage();
    let mut report = RecoveryReport { shards, ..RecoveryReport::default() };

    // Pass 1: load checkpoints and surviving records per shard.
    let mut ckpt_lsns = vec![0u64; shards];
    let mut shard_records: Vec<Vec<Record>> = Vec::with_capacity(shards);
    let mut states: Vec<BTreeMap<u64, u64>> = Vec::with_capacity(shards);
    for (s, ckpt_lsn) in ckpt_lsns.iter_mut().enumerate() {
        let sdir = dir.join(format!("shard-{s}"));
        std::fs::create_dir_all(&sdir)?;
        let mut state = BTreeMap::new();
        if let Some((lsn, entries)) = checkpoint::latest_valid(&sdir) {
            *ckpt_lsn = lsn;
            report.checkpoint_entries += entries.len() as u64;
            state.extend(entries);
        }
        let mut records = Vec::new();
        let mut last_lsn = *ckpt_lsn;
        for (_, path) in segments(&sdir)? {
            let bytes = std::fs::read(&path)?;
            let (recs, tail) = decode_all(&bytes);
            if matches!(tail, DecodeTail::Torn { .. }) {
                report.torn_tails += 1;
            }
            for rec in recs {
                // LSN-filter: skip what the checkpoint covers and any
                // stale overlap a failed prune left behind.
                if rec.lsn() > last_lsn {
                    last_lsn = rec.lsn();
                    records.push(rec);
                }
            }
        }
        shard_records.push(records);
        states.push(state);
    }

    // Pass 2: resolve cross-shard transactions across all logs.
    let mut xids: HashMap<u64, XidState> = HashMap::new();
    for (s, records) in shard_records.iter().enumerate() {
        for rec in records {
            match rec {
                Record::XBegin { xid, upd, undo, .. } => {
                    xids.entry(*xid).or_default().begun.insert(s, (upd.clone(), undo.clone()));
                }
                Record::XApply { xid, .. } => {
                    let st = xids.entry(*xid).or_default();
                    if let Some((upd, undo)) = st.begun.get(&s) {
                        st.applied.push((s, upd.clone(), undo.clone()));
                    }
                }
                Record::XDecide { xid, .. } => xids.entry(*xid).or_default().decided = true,
                Record::XAbort { xid, .. } => {
                    xids.entry(*xid).or_default().aborted_on.insert(s);
                }
                Record::Write { .. } => {}
            }
        }
    }

    // Pass 3: replay post-images in LSN order, then compensate the
    // dangling (undecided, unaborted) transactions' applied parts.
    for (s, records) in shard_records.iter().enumerate() {
        let state = &mut states[s];
        for rec in records {
            match rec {
                Record::Write { writes, .. }
                | Record::XApply { writes, .. }
                | Record::XAbort { writes, .. } => {
                    report.replayed += 1;
                    for &(k, v) in writes {
                        match v {
                            Some(v) => {
                                state.insert(k, v);
                            }
                            None => {
                                state.remove(&k);
                            }
                        }
                    }
                }
                _ => {
                    report.replayed += 1;
                }
            }
        }
    }
    let mut resolved: Vec<(&u64, &XidState)> = xids
        .iter()
        .filter(|(_, st)| {
            !st.decided && st.applied.iter().any(|(s, ..)| !st.aborted_on.contains(s))
        })
        .collect();
    resolved.sort_by_key(|(xid, _)| **xid);
    for (_, st) in &resolved {
        report.xids_compensated += 1;
        for (s, upd, undo) in &st.applied {
            // Shards whose own XAbort survived already rolled back via
            // that record's replayed post-image — don't undo them twice.
            if !st.aborted_on.contains(s) {
                compensate(&mut states[*s], upd, undo);
            }
        }
    }
    report.xids_committed =
        xids.values().filter(|st| st.decided && !st.applied.is_empty()).count() as u64;

    // Pass 4: fresh backends, compact on-disk state (checkpoint at the
    // replay horizon, covered segments pruned) so the next open — and a
    // repeated recovery — starts from exactly this state.
    let mut domains = Vec::with_capacity(shards);
    for (s, state) in states.iter().enumerate() {
        let sdir = dir.join(format!("shard-{s}"));
        let horizon = shard_records[s].last().map(|r| r.lsn()).unwrap_or(ckpt_lsns[s]);
        let entries: Vec<(u64, u64)> = state.iter().map(|(&k, &v)| (k, v)).collect();
        checkpoint::write(storage.as_ref(), &sdir, s, horizon, &entries)
            .map_err(std::io::Error::other)?;
        for (first, path) in segments(&sdir)? {
            if first <= horizon {
                let _ = std::fs::remove_file(path);
            }
        }
        checkpoint::prune_older(&sdir, horizon);
        let backend = mk_backend(s);
        let store = KvStore::create_with(
            tm_api::TmBackend::memory(&backend),
            base,
            words,
            entries.iter().copied(),
        );
        domains.push((backend, store));
    }
    Ok((domains, report))
}

/// Undo one applied participant's part, mirroring the live
/// [`crate::shard::undo_part`] semantics: `Add` parts undo in delta form
/// (commutes with later logged local adds), `Put` parts restore the
/// prepare-time image (admissible for blind writes).
fn compensate(state: &mut BTreeMap<u64, u64>, upd: &XUpdate, undo: &UndoImage) {
    match upd {
        XUpdate::Add(deltas) => {
            for &(k, d) in deltas {
                let cur = state.get(&k).copied().unwrap_or(0);
                state.insert(k, cur.wrapping_sub(d as u64));
            }
        }
        XUpdate::Put(_) => {
            for &(k, old) in undo {
                match old {
                    Some(v) => {
                        state.insert(k, v);
                    }
                    None => {
                        state.remove(&k);
                    }
                }
            }
        }
    }
}

/// Recover and reopen in one step: the shape every restart takes. The
/// returned [`WalSet`] carries the recovery counters, so the next
/// service report shows the restart provenance.
#[allow(clippy::type_complexity)]
pub fn recover_and_open<B: TmBackend>(
    cfg: &DurabilityConfig,
    map: &ShardMap,
    mk_backend: impl FnMut(usize) -> B,
    base: Addr,
    words: u64,
) -> std::io::Result<(Vec<(B, KvStore)>, Arc<WalSet>, RecoveryReport)> {
    let (domains, report) = recover(&cfg.dir, map, mk_backend, base, words)?;
    let wal = WalSet::open(cfg, map.shards())?;
    wal.note_recovery(report.replayed, report.torn_tails);
    Ok((domains, wal, report))
}
