//! Bounded MPMC submission queues with shed-on-full admission control.
//!
//! One [`SubmitQueue`] holds two lanes — read-only and update — behind a
//! single mutex, with a condvar for executor parking. Capacities are fixed
//! at construction; a push against a full lane fails immediately with
//! [`PushError::Full`] (the caller surfaces `KvError::Overloaded`), so the
//! queue is the system's backpressure valve: under sustained overload
//! memory use stays bounded and latency of *admitted* requests stays
//! bounded by queue depth, instead of both growing without limit.
//!
//! All pop operations are non-blocking (`try_*`); the only blocking entry
//! point is [`SubmitQueue::wait_for_work`], which idle executors call with
//! a timeout. The `tm-check` scenario drives the same queue with the
//! non-blocking calls plus `hooks::emit(Event::Poll)` spin loops, so the
//! deterministic scheduler never parks an OS thread it cannot wake.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a push was refused. The rejected item is handed back so the caller
/// can retry or surface it.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The lane is at capacity — admission control sheds the request.
    Full(T),
    /// The queue is closed (pipeline draining); no new work is accepted.
    Closed(T),
}

struct Inner<T> {
    ro: VecDeque<T>,
    rw: VecDeque<T>,
    closed: bool,
}

/// Two-lane bounded MPMC queue (read-only + update).
pub struct SubmitQueue<T> {
    inner: Mutex<Inner<T>>,
    work: Condvar,
    ro_cap: usize,
    rw_cap: usize,
}

impl<T> SubmitQueue<T> {
    pub fn new(ro_cap: usize, rw_cap: usize) -> Self {
        assert!(ro_cap > 0 && rw_cap > 0, "queue capacities must be nonzero");
        SubmitQueue {
            inner: Mutex::new(Inner { ro: VecDeque::new(), rw: VecDeque::new(), closed: false }),
            work: Condvar::new(),
            ro_cap,
            rw_cap,
        }
    }

    /// Admit `item` into the read-only (`true`) or update lane, or shed it.
    pub fn try_push(&self, read_only: bool, item: T) -> Result<(), PushError<T>> {
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            return Err(PushError::Closed(item));
        }
        let (lane, cap) =
            if read_only { (&mut g.ro, self.ro_cap) } else { (&mut g.rw, self.rw_cap) };
        if lane.len() >= cap {
            return Err(PushError::Full(item));
        }
        lane.push_back(item);
        drop(g);
        self.work.notify_one();
        Ok(())
    }

    /// Pop one update-lane request, FIFO. Non-blocking.
    pub fn try_pop_update(&self) -> Option<T> {
        self.inner.lock().unwrap().rw.pop_front()
    }

    /// Pop up to `max` read-only requests into `out`, FIFO. Returns the
    /// number taken. Non-blocking. The whole batch is served by one
    /// read-only transaction, so everything popped here shares a snapshot.
    pub fn try_pop_ro_batch(&self, max: usize, out: &mut Vec<T>) -> usize {
        let mut g = self.inner.lock().unwrap();
        let n = max.min(g.ro.len());
        out.extend(g.ro.drain(..n));
        n
    }

    /// Close admission: subsequent pushes fail with [`PushError::Closed`];
    /// queued work remains poppable. Wakes all parked executors.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.work.notify_all();
    }

    /// Wake all parked executors without changing state (used when the
    /// pipeline flips its hard-stop flag, which lives outside the queue).
    pub fn wake_all(&self) {
        let _g = self.inner.lock().unwrap();
        self.work.notify_all();
    }

    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Both lanes empty? (One lock acquisition; lanes observed together.)
    pub fn is_empty(&self) -> bool {
        let g = self.inner.lock().unwrap();
        g.ro.is_empty() && g.rw.is_empty()
    }

    /// `(read-only, update)` lane depths, observed atomically.
    pub fn depths(&self) -> (usize, usize) {
        let g = self.inner.lock().unwrap();
        (g.ro.len(), g.rw.len())
    }

    /// Closed *and* drained — the graceful-shutdown exit condition.
    pub fn is_done(&self) -> bool {
        let g = self.inner.lock().unwrap();
        g.closed && g.ro.is_empty() && g.rw.is_empty()
    }

    /// Park until work may be available, the queue closes, or `timeout`
    /// elapses. Returns `true` when a lane is non-empty or the queue is
    /// closed (spurious wakeups simply re-loop in the caller).
    pub fn wait_for_work(&self, timeout: Duration) -> bool {
        let g = self.inner.lock().unwrap();
        if !g.ro.is_empty() || !g.rw.is_empty() || g.closed {
            return true;
        }
        let (g, _timeout) = self.work.wait_timeout(g, timeout).unwrap();
        !g.ro.is_empty() || !g.rw.is_empty() || g.closed
    }
}

impl<T> std::fmt::Debug for SubmitQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (ro, rw) = self.depths();
        f.debug_struct("SubmitQueue")
            .field("ro", &format_args!("{ro}/{}", self.ro_cap))
            .field("rw", &format_args!("{rw}/{}", self.rw_cap))
            .field("closed", &self.is_closed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_are_fifo_and_independent() {
        let q = SubmitQueue::new(8, 8);
        q.try_push(true, 1).unwrap();
        q.try_push(false, 10).unwrap();
        q.try_push(true, 2).unwrap();
        q.try_push(false, 11).unwrap();
        assert_eq!(q.depths(), (2, 2));
        assert_eq!(q.try_pop_update(), Some(10));
        assert_eq!(q.try_pop_update(), Some(11));
        assert_eq!(q.try_pop_update(), None);
        let mut batch = Vec::new();
        assert_eq!(q.try_pop_ro_batch(16, &mut batch), 2);
        assert_eq!(batch, vec![1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn full_lane_sheds_without_touching_the_other() {
        let q = SubmitQueue::new(2, 1);
        q.try_push(true, 1).unwrap();
        q.try_push(true, 2).unwrap();
        assert_eq!(q.try_push(true, 3), Err(PushError::Full(3)));
        // Update lane unaffected by the full RO lane.
        q.try_push(false, 9).unwrap();
        assert_eq!(q.try_push(false, 9), Err(PushError::Full(9)));
        assert_eq!(q.depths(), (2, 1));
    }

    #[test]
    fn batch_pop_respects_max() {
        let q = SubmitQueue::new(64, 1);
        for i in 0..10 {
            q.try_push(true, i).unwrap();
        }
        let mut batch = Vec::new();
        assert_eq!(q.try_pop_ro_batch(4, &mut batch), 4);
        assert_eq!(batch, vec![0, 1, 2, 3]);
        batch.clear();
        assert_eq!(q.try_pop_ro_batch(100, &mut batch), 6);
        assert_eq!(batch, vec![4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn close_rejects_pushes_but_keeps_queued_work() {
        let q = SubmitQueue::new(4, 4);
        q.try_push(false, 1).unwrap();
        q.close();
        assert_eq!(q.try_push(false, 2), Err(PushError::Closed(2)));
        assert_eq!(q.try_push(true, 2), Err(PushError::Closed(2)));
        assert!(!q.is_done(), "closed but not yet drained");
        assert_eq!(q.try_pop_update(), Some(1));
        assert!(q.is_done());
    }

    #[test]
    fn wait_for_work_sees_pushes_and_close() {
        let q = std::sync::Arc::new(SubmitQueue::new(4, 4));
        // Timeout path: nothing arrives.
        assert!(!q.wait_for_work(Duration::from_millis(1)));
        // Wake on push.
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.wait_for_work(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(5));
        q.try_push(false, 7).unwrap();
        assert!(t.join().unwrap());
        assert_eq!(q.try_pop_update(), Some(7));
        // Wake on close.
        let q3 = q.clone();
        let t = std::thread::spawn(move || q3.wait_for_work(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(5));
        q.close();
        assert!(t.join().unwrap());
    }
}
