//! # txkv — a transactional key-value service layer over `tm-api`
//!
//! Every workload in this tree is a *closed-loop driver*: the thread that
//! generates an operation also executes it. A serving tier is the
//! opposite shape — requests arrive from the outside at their own rate,
//! queue, get executed by a fixed pool of workers, and are answered with
//! a measurable end-to-end latency. `txkv` adds that layer:
//!
//! * [`KvStore`] — an embedded transactional key-value store
//!   (get / put / delete / cas, multi-key reads and read-write
//!   transactions, prefix scans) written once against [`tm_api::Tx`] /
//!   [`tm_api::TmThread`], so it runs unchanged over all four backends
//!   (SI-HTM, HTM+SGL, P8TM, Silo);
//! * [`queue::SubmitQueue`] — bounded MPMC submission queues with
//!   shed-on-full admission control (a typed [`KvError::Overloaded`]
//!   instead of unbounded queue growth);
//! * [`Pipeline`] — per-core executor threads, each owning one backend
//!   thread handle, that **batch read-only requests into a single
//!   read-only transaction**. On SI-HTM that transaction runs on the
//!   unbounded, never-aborting RO fast path (§3.3 of the paper), so an
//!   arbitrarily large batch of gets/scans costs one quiescence
//!   interaction instead of one per request — the serving-tier payoff of
//!   the paper's headline property;
//! * per-op-class latency histograms ([`tm_api::LatencyHist`]) recording
//!   end-to-end (enqueue → reply) and service-only time, with
//!   p50/p90/p99/p999 SLO reporting;
//! * graceful drain/shutdown: in-flight requests are either answered or
//!   cleanly shed with [`KvReply::Shed`], never lost;
//! * [`ShardMap`] + [`Pipeline::start_sharded`] — scale-out across N
//!   *independent* backend instances (each its own conflict directory
//!   and quiescence domain) with shard-affine routing: single-shard
//!   requests pay zero cross-shard coordination, and multi-shard updates
//!   run two-phase commit over per-shard transactions with SGL
//!   escalation as the fall-back (see [`shard`] and DESIGN.md §11);
//! * [`durability`] — an opt-in per-shard commit-ordered write-ahead
//!   log with group-commit fsync ([`DurabilityMode`]: Off / Async /
//!   Sync-on-ack), periodic checkpoints with log truncation, and crash
//!   recovery that replays into fresh backend instances — resolving
//!   in-flight 2PC transactions from decision records. Logging happens
//!   strictly after commit (on SI-HTM: after the quiescence wait), so
//!   the RO fast path is untouched — the DUMBO discipline (see
//!   [`durability`] and DESIGN.md §12).
//!
//! The PR-4 resilience layer covers the service path too: executors are
//! yield points for the `txmem::hooks` chaos injector (stalls and forced
//! aborts land inside the service loop), and each executor owns a
//! [`tm_api::ContentionManager`] used to pace idle re-polls so a large
//! executor pool doesn't stampede the queue lock.
//!
//! ## Isolation contract
//!
//! What a multi-key read observes depends on the backend underneath —
//! exactly the per-backend guarantee spread that Raad–Lahav–Vafeiadis
//! formalize for SI APIs (see PAPERS.md):
//!
//! | backend  | multi-key reads            | read-write txns        |
//! |----------|----------------------------|------------------------|
//! | SI-HTM   | consistent snapshot (SI)   | SI (write skew allowed; `cas`/`multi_add` serialize via write-write conflicts) |
//! | HTM+SGL  | serializable               | serializable           |
//! | P8TM     | serializable               | serializable           |
//! | Silo     | serializable               | serializable           |
//!
//! A whole RO batch executes as **one** transaction, so batched requests
//! additionally share a single snapshot — strictly stronger than serving
//! them one by one, and always admissible: any snapshot between a
//! request's enqueue and its reply is a correct answer for that request.
//!
//! ## Example
//!
//! ```
//! use txkv::{KvOp, KvReply, KvStore, Pipeline, PipelineConfig};
//!
//! let backend = si_htm::SiHtm::with_defaults(1 << 16);
//! let store = KvStore::create(tm_api::TmBackend::memory(&backend), 0, 1 << 16);
//! let pipeline = Pipeline::start(backend, store, PipelineConfig::quick());
//! let client = pipeline.client();
//! client.call(KvOp::Put { key: 7, val: 42 }).unwrap();
//! assert_eq!(client.call(KvOp::Get { key: 7 }), Ok(KvReply::Value(Some(42))));
//! let report = pipeline.shutdown();
//! assert_eq!(report.replies, 2);
//! ```

pub mod durability;
pub mod pipeline;
pub mod proc;
pub mod queue;
pub mod shard;
pub mod store;

pub use durability::{
    recover, recover_and_open, CrashSite, CrashSpec, DurabilityConfig, DurabilityMode, FaultGuard,
    FaultPlan, FaultReport, FaultTarget, RecoveryReport, ShardHealth, StorageError,
    StorageErrorKind, WalError, WalSet,
};
pub use pipeline::{ClassLat, KvClient, PendingReply, Pipeline, PipelineConfig, ServiceReport};
pub use proc::{KvTx, LocalTx, ProcCtx, ProcRegistry, Procedure, PROC_WRITE_MAX};
pub use queue::{PushError, SubmitQueue};
pub use shard::{Partitioning, Route, ShardMap, XLock};
pub use store::{KvOp, KvReply, KvStore, OpClass};

/// Typed service-layer errors surfaced to submitters.
///
/// Refusals carry the refused op's [`OpClass`] and (where routing has
/// already happened) the shard that refused, so a fronting layer — the
/// wire protocol in `txkv-net`, the BENCH rows — can report *which*
/// lane/class shed without re-deriving the route. All variants stay
/// `Copy`: a refusal is a small value that crosses thread and wire
/// boundaries freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// Admission control shed the request: the submission queue lane for
    /// its op class is full. Back off and retry; the queue never grows
    /// without bound. `shard` is `None` for cross-shard requests refused
    /// at the shared xqueue.
    Overloaded {
        /// Class of the refused op.
        class: OpClass,
        /// Shard whose queue was full, or `None` for the cross-shard queue.
        shard: Option<u32>,
    },
    /// The pipeline is draining or stopped; no new work is accepted.
    ShuttingDown,
    /// A multi-key write exceeds the pipeline's `multi_key_max` (executor
    /// scratch is pre-sized; unbounded write sets are refused up front).
    TooLarge {
        /// Class of the refused op.
        class: OpClass,
        /// Keys the op carried.
        keys: u32,
        /// The pipeline's `multi_key_max`.
        max: u32,
    },
    /// An update routed to a shard whose log is degraded (`ReadOnly` or
    /// `Failed` storage health). Reads still serve; the shard rejoins
    /// via probe writes once the medium heals.
    Unavailable {
        /// Class of the refused op.
        class: OpClass,
        /// First degraded shard on the op's route.
        shard: u32,
    },
}

impl KvError {
    /// The refused op's class, when the refusal is class-specific
    /// (`ShuttingDown` refuses everything and carries none).
    pub fn class(&self) -> Option<OpClass> {
        match self {
            KvError::Overloaded { class, .. }
            | KvError::TooLarge { class, .. }
            | KvError::Unavailable { class, .. } => Some(*class),
            KvError::ShuttingDown => None,
        }
    }

    /// The shard that refused, where routing had already resolved one.
    pub fn shard(&self) -> Option<u32> {
        match self {
            KvError::Overloaded { shard, .. } => *shard,
            KvError::Unavailable { shard, .. } => Some(*shard),
            KvError::TooLarge { .. } | KvError::ShuttingDown => None,
        }
    }
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::Overloaded { class, shard: Some(s) } => {
                write!(f, "overloaded: {} lane full on shard {s}", class.name())
            }
            KvError::Overloaded { class, shard: None } => {
                write!(f, "overloaded: {} lane full on the cross-shard queue", class.name())
            }
            KvError::ShuttingDown => write!(f, "shutting down: submissions closed"),
            KvError::TooLarge { class, keys, max } => {
                write!(
                    f,
                    "{} with {keys} keys exceeds the pipeline's multi_key_max {max}",
                    class.name()
                )
            }
            KvError::Unavailable { class, shard } => {
                write!(f, "unavailable: {} refused, shard {shard}'s log is degraded", class.name())
            }
        }
    }
}

impl std::error::Error for KvError {}
