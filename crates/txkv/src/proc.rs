//! Server-side procedures: multi-step transactions registered with the
//! pipeline and invoked by name through [`crate::KvOp::Call`].
//!
//! A procedure is the service-side unit a typed schema layer compiles a
//! transaction class down to (see the `txkv-schema` crate): a body that
//! reads and writes store keys *inside* one backend transaction, so the
//! whole class inherits the backend's isolation, the WAL's durability,
//! and — when its footprint spans shards — the 2PC machinery, without
//! the client shipping reads back and forth.
//!
//! ## Execution shapes
//!
//! * **Single-shard** (footprint routes to one shard): one update or
//!   read-only transaction on that shard's executor; the post-image is
//!   captured in-transaction and logged exactly like a `MultiPut`.
//! * **Cross-shard**: the procedure body runs once per participant
//!   shard — a *leg* — inside that shard's own transaction, with
//!   [`ProcCtx::is_local`] gating which keys the leg may touch. Legs
//!   must not need data read on another shard: everything a leg writes
//!   is derived from `args` plus its own local reads (replicated tables
//!   below [`ProcRegistry::replicated_below`] read locally everywhere).
//!   Each committed leg's pre-image is captured in-transaction, so an
//!   incomplete call is compensated (live or at recovery) by restoring
//!   images — the `XUpdate::Put` undo discipline of DESIGN.md §11/§12.
//! * **Read-only** (`read_only() == true`): batched with the other RO
//!   requests into one snapshot transaction — on SI-HTM the unbounded,
//!   never-aborting RO fast path.
//!
//! Returning [`Abort::User`] from any leg rolls the whole call back
//! semantically ([`crate::KvReply::CallAborted`]): committed legs are
//! compensated, nothing is acked as done, and the request is answered.

use crate::durability::Writes;
use crate::shard::{ShardMap, UndoImage};
use crate::store::KvStore;
use std::sync::Arc;
use tm_api::{Abort, Tx};
use workloads::btree::NodeScratch;

/// Upper bound on keys a single procedure leg may insert or delete.
/// Executor scratches (and WAL write-set buffers) are pre-sized to it.
pub const PROC_WRITE_MAX: usize = 192;

/// The in-transaction surface a procedure body (or a typed layer above
/// it) programs against. Implemented by [`ProcCtx`] on the service path
/// and by [`LocalTx`] for embedded/direct use.
pub trait KvTx {
    fn get(&mut self, key: u64) -> Result<Option<u64>, Abort>;
    /// Insert or overwrite. On capturing contexts this also records the
    /// pre-image (2PC undo) and post-image (WAL) of the write.
    fn put(&mut self, key: u64, val: u64) -> Result<(), Abort>;
    /// Remove; `true` when the key existed.
    fn delete(&mut self, key: u64) -> Result<bool, Abort>;
    /// Ordered entry scan over `[from, to)`, up to `limit` matches;
    /// returns the match count.
    fn scan_range(
        &mut self,
        from: u64,
        to: u64,
        limit: u64,
        f: &mut dyn FnMut(u64, u64),
    ) -> Result<u64, Abort>;
    /// Whether `key` is readable/writable in this leg. Single-shard and
    /// embedded contexts own everything; a cross-shard leg owns its
    /// shard's keys plus the replicated prefix (read-only).
    fn is_local(&self, key: u64) -> bool;
}

/// One registered server-side transaction class.
pub trait Procedure: Send + Sync {
    /// Stable identifier clients put in [`crate::KvOp::Call`].
    fn id(&self) -> u64;
    /// Human-readable name (per-procedure latency report rows).
    fn name(&self) -> &'static str;
    /// Read-only procedures batch onto the RO fast path and must not
    /// write; update procedures may do both.
    fn read_only(&self) -> bool {
        false
    }
    /// Execute one leg. For single-shard and RO calls this runs exactly
    /// once with every key local; for cross-shard calls it runs once per
    /// participant shard and must gate writes with [`KvTx::is_local`].
    /// Returned words are concatenated across legs in ascending shard
    /// order into [`crate::KvReply::CallOk`].
    fn run(&self, ctx: &mut ProcCtx<'_>, args: &[u64]) -> Result<Vec<u64>, Abort>;
}

/// The procedures a pipeline serves, plus the shared routing facts the
/// executors need to run their legs.
#[derive(Clone, Default)]
pub struct ProcRegistry {
    procs: Vec<Arc<dyn Procedure>>,
    replicated_below: u64,
}

impl ProcRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Keys `< below` are replicated into **every** shard's store at
    /// load time (small read-mostly dimension tables). They are local to
    /// all legs, must never be written by procedures, and must not
    /// appear in call footprints.
    pub fn with_replicated_below(mut self, below: u64) -> Self {
        self.replicated_below = below;
        self
    }

    pub fn register(mut self, proc: Arc<dyn Procedure>) -> Self {
        debug_assert!(
            self.procs.iter().all(|p| p.id() != proc.id()),
            "duplicate procedure id {}",
            proc.id()
        );
        self.procs.push(proc);
        self
    }

    pub fn get(&self, id: u64) -> Option<&Arc<dyn Procedure>> {
        self.procs.iter().find(|p| p.id() == id)
    }

    /// Dense report slot for a procedure id (registration order).
    pub fn index_of(&self, id: u64) -> Option<usize> {
        self.procs.iter().position(|p| p.id() == id)
    }

    pub fn procs(&self) -> &[Arc<dyn Procedure>] {
        &self.procs
    }

    pub fn len(&self) -> usize {
        self.procs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    pub fn replicated_below(&self) -> u64 {
        self.replicated_below
    }
}

impl std::fmt::Debug for ProcRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcRegistry")
            .field("procs", &self.procs.iter().map(|p| p.name()).collect::<Vec<_>>())
            .field("replicated_below", &self.replicated_below)
            .finish()
    }
}

/// The execution context the pipeline hands a procedure leg: the shard's
/// store and transaction, plus optional pre-/post-image capture. Built
/// only by the pipeline (and [`LocalTx::ctx`] for embedded use).
pub struct ProcCtx<'a> {
    store: &'a KvStore,
    tx: &'a mut dyn Tx,
    scratch: &'a mut NodeScratch,
    map: Option<&'a ShardMap>,
    shard: usize,
    /// Whole call runs in this one transaction: everything is local.
    single: bool,
    replicated_below: u64,
    /// WAL post-image capture (update legs under durability).
    writes: Option<&'a mut Writes>,
    /// 2PC pre-image capture (cross-shard legs): first-write-wins per
    /// key, so restoring the image in order undoes the leg.
    undo: Option<&'a mut UndoImage>,
}

impl<'a> ProcCtx<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        store: &'a KvStore,
        tx: &'a mut dyn Tx,
        scratch: &'a mut NodeScratch,
        map: Option<&'a ShardMap>,
        shard: usize,
        single: bool,
        replicated_below: u64,
        writes: Option<&'a mut Writes>,
        undo: Option<&'a mut UndoImage>,
    ) -> Self {
        ProcCtx { store, tx, scratch, map, shard, single, replicated_below, writes, undo }
    }

    /// The shard this leg runs on.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

impl KvTx for ProcCtx<'_> {
    fn get(&mut self, key: u64) -> Result<Option<u64>, Abort> {
        debug_assert!(self.is_local(key), "leg on shard {} read foreign key {key:#x}", self.shard);
        self.store.get_in(self.tx, key)
    }

    fn put(&mut self, key: u64, val: u64) -> Result<(), Abort> {
        debug_assert!(self.is_local(key), "leg on shard {} wrote foreign key {key:#x}", self.shard);
        debug_assert!(key >= self.replicated_below, "procedure wrote replicated key {key:#x}");
        if let Some(undo) = self.undo.as_deref_mut() {
            if !undo.iter().any(|&(k, _)| k == key) {
                let old = self.store.get_in(self.tx, key)?;
                undo.push((key, old));
            }
        }
        self.store.put_in(self.tx, self.scratch, key, val)?;
        if let Some(writes) = self.writes.as_deref_mut() {
            writes.push((key, Some(val)));
        }
        Ok(())
    }

    fn delete(&mut self, key: u64) -> Result<bool, Abort> {
        debug_assert!(self.is_local(key), "leg on shard {} wrote foreign key {key:#x}", self.shard);
        debug_assert!(key >= self.replicated_below, "procedure wrote replicated key {key:#x}");
        if let Some(undo) = self.undo.as_deref_mut() {
            if !undo.iter().any(|&(k, _)| k == key) {
                let old = self.store.get_in(self.tx, key)?;
                undo.push((key, old));
            }
        }
        let existed = self.store.delete_in(self.tx, key)?;
        if let Some(writes) = self.writes.as_deref_mut() {
            writes.push((key, None));
        }
        Ok(existed)
    }

    fn scan_range(
        &mut self,
        from: u64,
        to: u64,
        limit: u64,
        f: &mut dyn FnMut(u64, u64),
    ) -> Result<u64, Abort> {
        self.store.scan_range_entries_in(self.tx, from, to, limit, f)
    }

    fn is_local(&self, key: u64) -> bool {
        if self.single || key < self.replicated_below {
            return true;
        }
        match self.map {
            Some(map) => map.shard_of(key) == self.shard,
            None => true,
        }
    }
}

/// Direct (non-pipelined) transaction surface over a store: what
/// embedded callers — the typed schema layer's unit tests, tm-check
/// scenario bodies — use to run the same code paths inside a plain
/// [`tm_api::Tx`] body.
pub struct LocalTx<'a> {
    pub store: &'a KvStore,
    pub tx: &'a mut dyn Tx,
    pub scratch: &'a mut NodeScratch,
}

impl KvTx for LocalTx<'_> {
    fn get(&mut self, key: u64) -> Result<Option<u64>, Abort> {
        self.store.get_in(self.tx, key)
    }

    fn put(&mut self, key: u64, val: u64) -> Result<(), Abort> {
        self.store.put_in(self.tx, self.scratch, key, val).map(|_| ())
    }

    fn delete(&mut self, key: u64) -> Result<bool, Abort> {
        self.store.delete_in(self.tx, key)
    }

    fn scan_range(
        &mut self,
        from: u64,
        to: u64,
        limit: u64,
        f: &mut dyn FnMut(u64, u64),
    ) -> Result<u64, Abort> {
        self.store.scan_range_entries_in(self.tx, from, to, limit, f)
    }

    fn is_local(&self, _key: u64) -> bool {
        true
    }
}
