//! The request pipeline: submission queues in front of per-core executor
//! threads, each owning one backend thread handle.
//!
//! ```text
//!  clients ──try_push──▶ SubmitQueue ──try_pop──▶ executor 0 ─▶ backend thread 0
//!   (any #)   (bounded,    ro | rw lanes          executor 1 ─▶ backend thread 1
//!             shed-on-full)                          ...
//! ```
//!
//! Each executor iteration serves **one** update request and then **one
//! batch** of read-only requests (everything queued, up to
//! `ro_batch_max`), so neither lane can starve the other. The whole RO
//! batch runs inside a single `TxKind::ReadOnly` transaction: on SI-HTM
//! that is the unbounded, never-aborting read-only fast path, so batching
//! amortizes the one quiescence interaction over the entire batch — and
//! every request in the batch reads the same snapshot.
//!
//! Latency is recorded per op class in two [`LatencyHist`]s: *end-to-end*
//! (enqueue → reply, the number a client observes) and *service-only*
//! (the transaction execution, what the backend is responsible for). The
//! gap between them is queueing delay — the quantity admission control
//! bounds.
//!
//! Every accepted request is eventually answered: served normally, or
//! filled with [`KvReply::Shed`] when the drain grace expires at
//! shutdown. A `Drop` backstop on the internal request envelope
//! guarantees this even if an executor unwinds.

use crate::queue::{PushError, SubmitQueue};
use crate::store::{KvOp, KvReply, KvStore, OpClass};
use crate::KvError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tm_api::{Abort, AbortReason, BackoffPolicy, ContentionManager, LatencyHist};
use tm_api::{ThreadStats, TmBackend, TmThread, TxKind};
use txmem::hooks::{self, Event};
use workloads::btree::NodeScratch;

/// Pipeline tuning knobs.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Executor threads (each registers one backend thread).
    pub executors: usize,
    /// Read-only submission-lane capacity (admission control bound).
    pub ro_queue_cap: usize,
    /// Update submission-lane capacity.
    pub rw_queue_cap: usize,
    /// Most read-only requests folded into one RO transaction.
    pub ro_batch_max: usize,
    /// Largest multi-key write op accepted ([`KvError::TooLarge`] above).
    pub multi_key_max: usize,
    /// How long an idle executor parks before re-polling.
    pub idle_wait: Duration,
    /// Contention-manager policy for the executors (abort backoff +
    /// idle-repoll jitter). `BackoffPolicy::none()` disables both.
    pub backoff: BackoffPolicy,
    /// Flat jitter ceiling for idle re-polls, in ns (anti-stampede).
    pub idle_jitter_ns: u64,
    /// Graceful-drain budget at shutdown before in-flight work is shed.
    pub drain_grace: Duration,
}

impl PipelineConfig {
    pub fn new() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        PipelineConfig {
            executors: cores.min(8),
            ro_queue_cap: 1024,
            rw_queue_cap: 1024,
            ro_batch_max: 64,
            multi_key_max: 16,
            idle_wait: Duration::from_millis(2),
            backoff: BackoffPolicy::none(),
            idle_jitter_ns: 0,
            drain_grace: Duration::from_secs(2),
        }
    }

    /// Small pool for tests and doc examples.
    pub fn quick() -> Self {
        PipelineConfig { executors: 2, ro_queue_cap: 256, rw_queue_cap: 256, ..Self::new() }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Write-once reply cell a client blocks on.
struct ReplySlot {
    cell: Mutex<Option<KvReply>>,
    filled: Condvar,
}

impl ReplySlot {
    fn new() -> Self {
        ReplySlot { cell: Mutex::new(None), filled: Condvar::new() }
    }

    /// First write wins; later fills are no-ops (the `Drop` backstop).
    fn fill(&self, reply: KvReply) {
        let mut g = self.cell.lock().unwrap();
        if g.is_none() {
            *g = Some(reply);
            self.filled.notify_all();
        }
    }

    fn wait(&self) -> KvReply {
        let mut g = self.cell.lock().unwrap();
        loop {
            if let Some(r) = g.as_ref() {
                return r.clone();
            }
            g = self.filled.wait(g).unwrap();
        }
    }

    fn try_get(&self) -> Option<KvReply> {
        self.cell.lock().unwrap().clone()
    }
}

/// Internal request envelope. The `Drop` impl guarantees the slot is
/// always answered: any envelope destroyed unanswered (executor panic,
/// shed path) resolves to [`KvReply::Shed`].
struct Request {
    op: KvOp,
    slot: Arc<ReplySlot>,
    enqueued: Instant,
}

impl Drop for Request {
    fn drop(&mut self) {
        self.slot.fill(KvReply::Shed);
    }
}

struct Shared {
    queue: SubmitQueue<Request>,
    hard_stop: AtomicBool,
    overloaded: AtomicU64,
    multi_key_max: usize,
}

/// Cheap cloneable submission handle (no backend type parameter, so it
/// crosses thread and API boundaries freely).
#[derive(Clone)]
pub struct KvClient {
    shared: Arc<Shared>,
}

impl KvClient {
    /// Submit and block for the reply.
    pub fn call(&self, op: KvOp) -> Result<KvReply, KvError> {
        Ok(self.submit(op)?.wait())
    }

    /// Submit without blocking; the returned handle can be waited on (or
    /// dropped — open-loop load generators fire and forget, and the
    /// pipeline still records the end-to-end latency at reply time).
    pub fn submit(&self, op: KvOp) -> Result<PendingReply, KvError> {
        match &op {
            KvOp::MultiPut { pairs } if pairs.len() > self.shared.multi_key_max => {
                return Err(KvError::TooLarge)
            }
            KvOp::MultiAdd { deltas } if deltas.len() > self.shared.multi_key_max => {
                return Err(KvError::TooLarge)
            }
            _ => {}
        }
        let slot = Arc::new(ReplySlot::new());
        let read_only = op.read_only();
        let req = Request { op, slot: slot.clone(), enqueued: Instant::now() };
        match self.shared.queue.try_push(read_only, req) {
            Ok(()) => Ok(PendingReply { slot }),
            Err(PushError::Full(req)) => {
                self.shared.overloaded.fetch_add(1, Ordering::Relaxed);
                // Forget nothing: the envelope's Drop fills Shed, but the
                // slot is ours and unreturned, so nobody observes it.
                drop(req);
                Err(KvError::Overloaded)
            }
            Err(PushError::Closed(_)) => Err(KvError::ShuttingDown),
        }
    }

    /// Current `(read-only, update)` submission-lane depths.
    pub fn queue_depths(&self) -> (usize, usize) {
        self.shared.queue.depths()
    }
}

/// Handle to one in-flight request.
pub struct PendingReply {
    slot: Arc<ReplySlot>,
}

impl PendingReply {
    /// Block until the request is answered (or shed at shutdown).
    pub fn wait(self) -> KvReply {
        self.slot.wait()
    }

    /// Non-blocking poll.
    pub fn try_get(&self) -> Option<KvReply> {
        self.slot.try_get()
    }
}

/// End-to-end and service-only latency for one op class.
#[derive(Debug, Clone)]
pub struct ClassLat {
    pub class: OpClass,
    /// Enqueue → reply.
    pub e2e: LatencyHist,
    /// Transaction execution only (a whole RO batch's service time is
    /// attributed to every request it carried).
    pub service: LatencyHist,
}

impl ClassLat {
    fn new(class: OpClass) -> Self {
        ClassLat { class, e2e: LatencyHist::new(), service: LatencyHist::new() }
    }

    pub fn count(&self) -> u64 {
        self.e2e.count()
    }
}

/// What one executor hands back at join time.
struct ExecOut {
    classes: Vec<ClassLat>,
    served: u64,
    shed: u64,
    ro_batches: u64,
    ro_batch_ops: u64,
    max_ro_batch: u64,
    ro_batch_aborts: u64,
    backoffs: u64,
    stats: ThreadStats,
}

impl ExecOut {
    fn new() -> Self {
        ExecOut {
            classes: OpClass::ALL.iter().map(|&c| ClassLat::new(c)).collect(),
            served: 0,
            shed: 0,
            ro_batches: 0,
            ro_batch_ops: 0,
            max_ro_batch: 0,
            ro_batch_aborts: 0,
            backoffs: 0,
            stats: ThreadStats::default(),
        }
    }
}

/// Aggregated pipeline report returned by [`Pipeline::shutdown`].
#[derive(Debug, Clone)]
pub struct ServiceReport {
    pub backend: &'static str,
    pub executors: usize,
    /// Requests answered with a real result.
    pub replies: u64,
    /// Requests answered with [`KvReply::Shed`] at shutdown.
    pub shed: u64,
    /// Requests refused at admission ([`KvError::Overloaded`]).
    pub overloaded: u64,
    /// Read-only transactions executed for batches.
    pub ro_batches: u64,
    /// Read-only requests carried by those transactions.
    pub ro_batch_ops: u64,
    /// Largest single batch.
    pub max_ro_batch: u64,
    /// Backend aborts observed across all RO batch transactions (must be
    /// 0 on SI-HTM: the RO fast path never aborts).
    pub ro_batch_aborts: u64,
    /// Executors that served zero requests (load-balance check).
    pub starved_executors: usize,
    /// Executors that panicked (their in-flight request resolves Shed).
    pub panicked_executors: usize,
    /// Contention-manager delays executed by executors.
    pub executor_backoffs: u64,
    /// Per-op-class latency, in [`OpClass::ALL`] order.
    pub class: Vec<ClassLat>,
    /// Backend-side statistics summed over all executor threads.
    pub backend_stats: ThreadStats,
}

impl ServiceReport {
    fn new(backend: &'static str, executors: usize) -> Self {
        ServiceReport {
            backend,
            executors,
            replies: 0,
            shed: 0,
            overloaded: 0,
            ro_batches: 0,
            ro_batch_ops: 0,
            max_ro_batch: 0,
            ro_batch_aborts: 0,
            starved_executors: 0,
            panicked_executors: 0,
            executor_backoffs: 0,
            class: OpClass::ALL.iter().map(|&c| ClassLat::new(c)).collect(),
            backend_stats: ThreadStats::default(),
        }
    }

    fn merge(&mut self, out: ExecOut) {
        if out.served == 0 {
            self.starved_executors += 1;
        }
        self.replies += out.served;
        self.shed += out.shed;
        self.ro_batches += out.ro_batches;
        self.ro_batch_ops += out.ro_batch_ops;
        self.max_ro_batch = self.max_ro_batch.max(out.max_ro_batch);
        self.ro_batch_aborts += out.ro_batch_aborts;
        self.executor_backoffs += out.backoffs;
        for (mine, theirs) in self.class.iter_mut().zip(&out.classes) {
            mine.e2e.merge(&theirs.e2e);
            mine.service.merge(&theirs.service);
        }
        self.backend_stats += &out.stats;
    }

    /// The latency record for one op class.
    pub fn class(&self, class: OpClass) -> &ClassLat {
        &self.class[class.index()]
    }

    /// Mean read-only requests per RO transaction (the batching payoff;
    /// > 1 means batching actually happened).
    pub fn mean_ro_batch(&self) -> f64 {
        if self.ro_batches == 0 {
            0.0
        } else {
            self.ro_batch_ops as f64 / self.ro_batches as f64
        }
    }

    /// Human-readable per-class SLO table.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{}: {} replies, {} shed, {} overloaded; RO batches {} (mean {:.1}, max {}, aborts {})",
            self.backend,
            self.replies,
            self.shed,
            self.overloaded,
            self.ro_batches,
            self.mean_ro_batch(),
            self.max_ro_batch,
            self.ro_batch_aborts,
        );
        for cl in &self.class {
            if cl.count() == 0 {
                continue;
            }
            let (p50, p90, p99, p999) = cl.e2e.percentiles();
            let (s50, _, s99, _) = cl.service.percentiles();
            let _ = writeln!(
                s,
                "  {:<9} n={:<8} e2e p50/p90/p99/p999 = {}/{}/{}/{} ns  service p50/p99 = {}/{} ns",
                cl.class.name(),
                cl.count(),
                p50,
                p90,
                p99,
                p999,
                s50,
                s99,
            );
        }
        s
    }
}

/// The running service: executor pool + submission queue.
pub struct Pipeline<B: TmBackend> {
    backend: Arc<B>,
    store: KvStore,
    shared: Arc<Shared>,
    cfg: PipelineConfig,
    handles: Vec<JoinHandle<ExecOut>>,
}

impl<B: TmBackend> Pipeline<B> {
    /// Spawn the executor pool and start serving.
    pub fn start(backend: B, store: KvStore, cfg: PipelineConfig) -> Pipeline<B> {
        assert!(cfg.executors > 0, "pipeline needs at least one executor");
        assert!(cfg.ro_batch_max > 0, "ro_batch_max must be nonzero");
        let backend = Arc::new(backend);
        let shared = Arc::new(Shared {
            queue: SubmitQueue::new(cfg.ro_queue_cap, cfg.rw_queue_cap),
            hard_stop: AtomicBool::new(false),
            overloaded: AtomicU64::new(0),
            multi_key_max: cfg.multi_key_max,
        });
        let handles = (0..cfg.executors)
            .map(|i| {
                let backend = Arc::clone(&backend);
                let shared = Arc::clone(&shared);
                let store = store.clone();
                let cfg = cfg.clone();
                std::thread::Builder::new()
                    .name(format!("txkv-exec-{i}"))
                    .spawn(move || executor_loop(i, &*backend, &store, &shared, &cfg))
                    .expect("spawn executor")
            })
            .collect();
        Pipeline { backend, store, shared, cfg, handles }
    }

    /// A new submission handle (clone freely, share across threads).
    pub fn client(&self) -> KvClient {
        KvClient { shared: Arc::clone(&self.shared) }
    }

    pub fn backend(&self) -> &B {
        &self.backend
    }

    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Graceful shutdown: close admission, give queued work `drain_grace`
    /// to complete, then shed the rest ([`KvReply::Shed`]) and join.
    pub fn shutdown(self) -> ServiceReport {
        self.shared.queue.close();
        let deadline = Instant::now() + self.cfg.drain_grace;
        while !self.shared.queue.is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.shared.hard_stop.store(true, Ordering::Release);
        self.shared.queue.wake_all();
        let mut report = ServiceReport::new(self.backend.name(), self.cfg.executors);
        for h in self.handles {
            match h.join() {
                Ok(out) => report.merge(out),
                Err(_) => report.panicked_executors += 1,
            }
        }
        report.overloaded = self.shared.overloaded.load(Ordering::Relaxed);
        report
    }
}

fn executor_loop<B: TmBackend>(
    idx: usize,
    backend: &B,
    store: &KvStore,
    shared: &Shared,
    cfg: &PipelineConfig,
) -> ExecOut {
    let mut thread = backend.register_thread();
    let mut scratch = store.new_batch_scratch(cfg.multi_key_max);
    let mut cm = ContentionManager::new(cfg.backoff, 0x9E37_79B9_7F4A_7C15 ^ (idx as u64 + 1));
    let mut out = ExecOut::new();
    let mut batch: Vec<Request> = Vec::with_capacity(cfg.ro_batch_max);
    loop {
        let mut did_work = false;
        // One update, then one RO batch, per iteration: neither lane can
        // starve the other regardless of mix.
        if let Some(req) = shared.queue.try_pop_update() {
            serve_update(store, &mut thread, &mut scratch, &mut cm, req, &mut out);
            did_work = true;
        }
        if shared.queue.try_pop_ro_batch(cfg.ro_batch_max, &mut batch) > 0 {
            serve_ro_batch(store, &mut thread, &mut batch, &mut out);
            did_work = true;
        }
        if did_work {
            continue;
        }
        if shared.hard_stop.load(Ordering::Acquire) || shared.queue.is_done() {
            break;
        }
        // Idle: give the chaos injector its seam, jitter the re-poll so a
        // large pool doesn't stampede the queue lock, then park briefly.
        if hooks::active() {
            hooks::emit(Event::Poll);
        }
        cm.admission_jitter(cfg.idle_jitter_ns);
        shared.queue.wait_for_work(cfg.idle_wait);
    }
    // Hard stop (or post-drain sweep): everything still queued is shed —
    // answered with KvReply::Shed, never silently dropped.
    loop {
        let mut any = false;
        if let Some(req) = shared.queue.try_pop_update() {
            drop(req); // Drop backstop fills Shed
            out.shed += 1;
            any = true;
        }
        if shared.queue.try_pop_ro_batch(usize::MAX, &mut batch) > 0 {
            out.shed += batch.len() as u64;
            batch.clear(); // Drop backstop fills Shed for each
            any = true;
        }
        if !any {
            break;
        }
    }
    out.backoffs = cm.backoffs;
    out.stats = thread.stats().clone();
    out
}

/// Serve one update request in its own update transaction.
fn serve_update<T: TmThread>(
    store: &KvStore,
    thread: &mut T,
    scratch: &mut NodeScratch,
    cm: &mut ContentionManager,
    req: Request,
    out: &mut ExecOut,
) {
    let aborts_before = thread.stats().aborts();
    let t0 = Instant::now();
    let reply = match &req.op {
        KvOp::Put { key, val } => KvReply::Done { changed: store.put(thread, scratch, *key, *val) },
        KvOp::Delete { key } => KvReply::Done { changed: store.delete(thread, *key) },
        KvOp::Cas { key, expect, new } => match store.cas(thread, scratch, *key, *expect, *new) {
            Ok(()) => KvReply::CasOk,
            Err(observed) => KvReply::CasFail(observed),
        },
        KvOp::MultiPut { pairs } => {
            store.multi_put(thread, scratch, pairs);
            KvReply::Done { changed: true }
        }
        KvOp::MultiAdd { deltas } => {
            store.multi_add(thread, scratch, deltas);
            KvReply::Done { changed: true }
        }
        ro => unreachable!("read-only op {ro:?} in the update lane"),
    };
    let service = t0.elapsed();
    // Abort-aware pacing: a serve that needed backend retries backs the
    // executor off before the next pop; a clean one resets the ceiling.
    if thread.stats().aborts() > aborts_before {
        cm.backoff(AbortReason::Conflict);
    } else {
        cm.reset();
    }
    finish(req, reply, service, out);
}

/// Serve a whole batch of read-only requests in ONE read-only
/// transaction (the SI-HTM RO fast path: unbounded, never aborts, one
/// shared snapshot for the entire batch).
fn serve_ro_batch<T: TmThread>(
    store: &KvStore,
    thread: &mut T,
    batch: &mut Vec<Request>,
    out: &mut ExecOut,
) {
    let aborts_before = thread.stats().aborts();
    let t0 = Instant::now();
    let mut replies: Vec<KvReply> = Vec::with_capacity(batch.len());
    thread.exec(TxKind::ReadOnly, &mut |tx| {
        replies.clear(); // idempotent across retries on fallback paths
        for req in batch.iter() {
            let r = match &req.op {
                KvOp::Get { key } => KvReply::Value(store.get_in(tx, *key)?),
                KvOp::MultiGet { keys } => {
                    let mut vals = Vec::with_capacity(keys.len());
                    for &k in keys {
                        vals.push(store.get_in(tx, k)?);
                    }
                    KvReply::Values(vals)
                }
                KvOp::ScanPrefix { prefix, shift, limit } => {
                    let (count, sum) = store.scan_prefix_in(tx, *prefix, *shift, *limit)?;
                    KvReply::Scan { count, sum }
                }
                up => unreachable!("update op {up:?} in the read-only lane"),
            };
            replies.push(r);
        }
        Ok::<(), Abort>(())
    });
    let service = t0.elapsed();
    out.ro_batches += 1;
    out.ro_batch_ops += batch.len() as u64;
    out.max_ro_batch = out.max_ro_batch.max(batch.len() as u64);
    out.ro_batch_aborts += thread.stats().aborts() - aborts_before;
    for (req, reply) in batch.drain(..).zip(replies) {
        finish(req, reply, service, out);
    }
}

/// Record latency and answer the client.
fn finish(req: Request, reply: KvReply, service: Duration, out: &mut ExecOut) {
    let cl = &mut out.classes[req.op.class().index()];
    cl.e2e.record(req.enqueued.elapsed());
    cl.service.record(service);
    req.slot.fill(reply);
    out.served += 1;
    // `req` drops here with the slot already filled: the backstop no-ops.
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_htm::SiHtm;

    fn pipeline(executors: usize) -> Pipeline<SiHtm> {
        let backend = SiHtm::with_defaults(1 << 16);
        let store = KvStore::create_with(
            tm_api::TmBackend::memory(&backend),
            0,
            1 << 16,
            (0..128u64).map(|k| (k, k)),
        );
        let cfg = PipelineConfig { executors, ..PipelineConfig::quick() };
        Pipeline::start(backend, store, cfg)
    }

    #[test]
    fn serves_point_ops_end_to_end() {
        let p = pipeline(2);
        let client = p.client();
        assert_eq!(client.call(KvOp::Get { key: 5 }), Ok(KvReply::Value(Some(5))));
        assert_eq!(
            client.call(KvOp::Put { key: 500, val: 1 }),
            Ok(KvReply::Done { changed: true })
        );
        assert_eq!(client.call(KvOp::Get { key: 500 }), Ok(KvReply::Value(Some(1))));
        assert_eq!(client.call(KvOp::Delete { key: 500 }), Ok(KvReply::Done { changed: true }));
        assert_eq!(client.call(KvOp::Get { key: 500 }), Ok(KvReply::Value(None)));
        let report = p.shutdown();
        assert_eq!(report.replies, 5);
        assert_eq!(report.shed, 0);
        assert!(report.class(OpClass::Get).count() == 3);
        assert!(report.class(OpClass::Get).e2e.quantile(0.5) > 0);
    }

    #[test]
    fn ro_batches_form_under_concurrent_submission() {
        let p = pipeline(1); // single executor → pending RO requests pile up
        let client = p.client();
        // Park the executor behind a slow update? Simpler: submit a pile of
        // RO requests without waiting, so the queue has depth when the
        // executor next pops.
        let pending: Vec<_> =
            (0..200).map(|i| client.submit(KvOp::Get { key: i % 64 }).unwrap()).collect();
        for pr in pending {
            assert!(matches!(pr.wait(), KvReply::Value(Some(_))));
        }
        let report = p.shutdown();
        assert_eq!(report.replies, 200);
        assert!(
            report.ro_batches < 200,
            "200 gets must not take 200 RO transactions (got {})",
            report.ro_batches
        );
        assert!(report.mean_ro_batch() > 1.0, "batching never engaged");
        assert_eq!(report.ro_batch_aborts, 0, "SI-HTM RO fast path must never abort");
    }

    #[test]
    fn overload_sheds_with_typed_error_and_bounded_queue() {
        let backend = SiHtm::with_defaults(1 << 16);
        let store = KvStore::create(tm_api::TmBackend::memory(&backend), 0, 1 << 16);
        // Zero-throughput trick: executors=1 with a huge idle wait would
        // still serve; instead choke capacity so floods must shed.
        let cfg = PipelineConfig {
            executors: 1,
            ro_queue_cap: 8,
            rw_queue_cap: 8,
            ..PipelineConfig::quick()
        };
        let p = Pipeline::start(backend, store, cfg);
        let client = p.client();
        let mut overloaded = 0u64;
        let mut accepted = Vec::new();
        for i in 0..5_000u64 {
            match client.submit(KvOp::Put { key: i, val: i }) {
                Ok(pr) => accepted.push(pr),
                Err(KvError::Overloaded) => overloaded += 1,
                Err(e) => panic!("unexpected error {e:?}"),
            }
            let (ro, rw) = client.queue_depths();
            assert!(ro <= 8 && rw <= 8, "queue depth exceeded its bound");
        }
        assert!(overloaded > 0, "flood against a tiny queue must shed");
        for pr in accepted {
            assert!(!matches!(pr.wait(), KvReply::Shed));
        }
        let report = p.shutdown();
        assert_eq!(report.overloaded, overloaded);
        assert_eq!(report.panicked_executors, 0);
    }

    #[test]
    fn too_large_multi_ops_are_rejected_at_admission() {
        let p = pipeline(1);
        let client = p.client();
        let pairs: Vec<(u64, u64)> = (0..64).map(|i| (i, i)).collect();
        assert_eq!(client.call(KvOp::MultiPut { pairs }), Err(KvError::TooLarge));
        let deltas: Vec<(u64, i64)> = (0..64).map(|i| (i, 1)).collect();
        assert_eq!(client.call(KvOp::MultiAdd { deltas }), Err(KvError::TooLarge));
        let report = p.shutdown();
        assert_eq!(report.replies, 0);
    }

    #[test]
    fn shutdown_rejects_new_work_and_sheds_nothing_when_drained() {
        let p = pipeline(2);
        let client = p.client();
        client.call(KvOp::Put { key: 1, val: 1 }).unwrap();
        let report = p.shutdown();
        assert_eq!(report.shed, 0);
        assert_eq!(client.call(KvOp::Get { key: 1 }), Err(KvError::ShuttingDown));
    }
}
