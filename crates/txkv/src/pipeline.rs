//! The request pipeline: per-shard submission queues in front of
//! shard-affine executor threads, each owning one backend thread handle
//! *per shard*.
//!
//! ```text
//!  clients ──route──▶ shard 0 SubmitQueue ──▶ executor 0 ─▶ shard 0 backend
//!   (any #)           shard 1 SubmitQueue ──▶ executor 1 ─▶ shard 1 backend
//!                     ...                          ...
//!                     xqueue (cross-shard) ──▶ any executor, 2PC over shards
//! ```
//!
//! The [`crate::ShardMap`] routes every request whose keys live in one
//! shard to that shard's queue; the executors serving that shard run it
//! as a plain backend transaction with zero cross-shard coordination.
//! Each shard is an independent backend instance — its own conflict
//! directory and quiescence domain — so SI-HTM's commit-time safety wait
//! scans only the threads active *in that shard*. With one executor per
//! shard the wait finds no peers at all, which is where sharded
//! throughput comes from on an oversubscribed machine: no cross-executor
//! quiescence spinning.
//!
//! Requests spanning shards go to a shared cross-shard queue; whichever
//! executor pops one coordinates it — per-shard read-only transactions
//! under the shards' [`crate::shard::XLock`]s for reads, two-phase commit
//! ([`crate::shard`]) for updates, with SGL escalation pinning the
//! remaining participants once any participant falls back, and
//! compensating undo if the chaos injector unwinds the apply phase
//! mid-protocol (the request is then answered [`KvReply::Shed`]: fully
//! aborted, never half-applied).
//!
//! Each executor iteration serves **one** update request and then **one
//! batch** of read-only requests per shard it owns (everything queued,
//! up to `ro_batch_max`), so neither lane can starve the other. The
//! whole RO batch runs inside a single `TxKind::ReadOnly` transaction:
//! on SI-HTM that is the unbounded, never-aborting read-only fast path,
//! so batching amortizes the one quiescence interaction over the entire
//! batch — and every request in the batch reads the same snapshot.
//!
//! Latency is recorded per op class in two [`LatencyHist`]s: *end-to-end*
//! (enqueue → reply, the number a client observes) and *service-only*
//! (the transaction execution, what the backend is responsible for). The
//! gap between them is queueing delay — the quantity admission control
//! bounds.
//!
//! Every accepted request is eventually answered: served normally, or
//! filled with [`KvReply::Shed`] when the drain grace expires at
//! shutdown. A `Drop` backstop on the internal request envelope
//! guarantees this even if an executor unwinds.

use crate::durability::{Append, CrashSite, DurabilityMode, WalError, WalSet, Writes};
use crate::proc::{ProcCtx, ProcRegistry, PROC_WRITE_MAX};
use crate::queue::{PushError, SubmitQueue};
use crate::shard::{
    apply_part, group_adds, group_puts, prepare_part, undo_part, Route, ShardMap, ShardPart,
    UndoImage, XLock, XUpdate,
};
use crate::store::{KvOp, KvReply, KvStore, OpClass};
use crate::KvError;
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tm_api::{Abort, AbortReason, BackoffPolicy, ContentionManager, LatencyHist};
use tm_api::{Outcome, ThreadStats, TmBackend, TmThread, TwoPcStats, Tx, TxKind, WalStats};
use txmem::hooks::{self, Event};
use workloads::btree::NodeScratch;

/// Pipeline tuning knobs.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Executor threads. Each registers one backend thread handle per
    /// shard; executor `e` *serves* (polls queues of) shard `e % shards`
    /// when executors ≥ shards, or shards `{s : s % executors == e}`
    /// otherwise, so every shard is served and affinity is maximal.
    pub executors: usize,
    /// Read-only submission-lane capacity (admission control bound),
    /// per shard queue.
    pub ro_queue_cap: usize,
    /// Update submission-lane capacity, per shard queue.
    pub rw_queue_cap: usize,
    /// Most read-only requests folded into one RO transaction.
    pub ro_batch_max: usize,
    /// Largest multi-key write op accepted ([`KvError::TooLarge`] above).
    pub multi_key_max: usize,
    /// How long an idle executor parks before re-polling.
    pub idle_wait: Duration,
    /// Contention-manager policy for the executors (abort backoff +
    /// idle-repoll jitter). `BackoffPolicy::none()` disables both.
    pub backoff: BackoffPolicy,
    /// Flat jitter ceiling for idle re-polls, in ns (anti-stampede).
    pub idle_jitter_ns: u64,
    /// Graceful-drain budget at shutdown before in-flight work is shed.
    pub drain_grace: Duration,
}

impl PipelineConfig {
    pub fn new() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        PipelineConfig {
            executors: cores.min(8),
            ro_queue_cap: 1024,
            rw_queue_cap: 1024,
            ro_batch_max: 64,
            multi_key_max: 16,
            idle_wait: Duration::from_millis(2),
            backoff: BackoffPolicy::none(),
            idle_jitter_ns: 0,
            drain_grace: Duration::from_secs(2),
        }
    }

    /// Small pool for tests and doc examples.
    pub fn quick() -> Self {
        PipelineConfig { executors: 2, ro_queue_cap: 256, rw_queue_cap: 256, ..Self::new() }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Completion callback registered on a [`ReplySlot`]; runs exactly once,
/// at fill time (or immediately on registration if the slot is already
/// filled). Boxed because each request carries at most one.
type FillHook = Box<dyn FnOnce(KvReply) + Send>;

/// Write-once reply cell a client blocks on — or, with a registered
/// [`FillHook`], an async completion a network front end is called back
/// on instead of parking a thread per in-flight request.
struct ReplySlot {
    cell: Mutex<SlotInner>,
    filled: Condvar,
}

struct SlotInner {
    reply: Option<KvReply>,
    hook: Option<FillHook>,
}

/// Hooks run on whichever thread fills the slot — an executor, or an
/// unwinding `Request::drop` — so a panicking hook must not take down
/// the service path (a panic inside `Drop` during unwind aborts the
/// process). Catch it; the slot itself is already filled either way.
fn run_fill_hook(hook: FillHook, reply: KvReply) {
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || hook(reply)));
}

impl ReplySlot {
    fn new() -> Self {
        ReplySlot {
            cell: Mutex::new(SlotInner { reply: None, hook: None }),
            filled: Condvar::new(),
        }
    }

    /// First write wins; later fills are no-ops (the `Drop` backstop).
    /// The hook, if any, is taken under the lock but invoked outside it:
    /// a hook is arbitrary caller code and must not hold up `wait()`ers.
    fn fill(&self, reply: KvReply) {
        let hook = {
            let mut g = self.cell.lock().unwrap();
            if g.reply.is_some() {
                return;
            }
            g.reply = Some(reply.clone());
            self.filled.notify_all();
            g.hook.take()
        };
        if let Some(h) = hook {
            run_fill_hook(h, reply);
        }
    }

    /// Register the completion hook. If the reply already landed the hook
    /// fires right here on the caller's thread — registration can race
    /// with a fast executor, and "exactly once" must survive that race.
    fn on_fill(&self, hook: FillHook) {
        let ready = {
            let mut g = self.cell.lock().unwrap();
            match g.reply.clone() {
                Some(r) => Some(r),
                None => {
                    g.hook = Some(hook);
                    return;
                }
            }
        };
        if let Some(r) = ready {
            run_fill_hook(hook, r);
        }
    }

    fn wait(&self) -> KvReply {
        let mut g = self.cell.lock().unwrap();
        loop {
            if let Some(r) = g.reply.as_ref() {
                return r.clone();
            }
            g = self.filled.wait(g).unwrap();
        }
    }

    fn try_get(&self) -> Option<KvReply> {
        self.cell.lock().unwrap().reply.clone()
    }
}

/// Internal request envelope. The `Drop` impl guarantees the slot is
/// always answered: any envelope destroyed unanswered (executor panic,
/// shed path, aborted cross-shard transaction) resolves to
/// [`KvReply::Shed`].
struct Request {
    op: KvOp,
    slot: Arc<ReplySlot>,
    enqueued: Instant,
}

impl Drop for Request {
    fn drop(&mut self) {
        self.slot.fill(KvReply::Shed);
    }
}

/// One shard's service-side state: its submission queue and the
/// cross-shard coordination lock.
struct ShardCtx {
    queue: SubmitQueue<Request>,
    xlock: XLock,
}

struct Shared {
    shards: Vec<ShardCtx>,
    /// Requests spanning shards (any executor coordinates them).
    xqueue: SubmitQueue<Request>,
    map: ShardMap,
    hard_stop: AtomicBool,
    overloaded: AtomicU64,
    multi_key_max: usize,
    /// Per-shard commit-ordered WAL ([`Pipeline::start_durable`]); `None`
    /// runs the pipeline exactly as before — zero durability overhead.
    wal: Option<Arc<WalSet>>,
    /// Server-side procedures ([`KvOp::Call`] targets); `None` answers
    /// every call [`KvReply::CallAborted`].
    procs: Option<Arc<ProcRegistry>>,
}

/// Cheap cloneable submission handle (no backend type parameter, so it
/// crosses thread and API boundaries freely). Routing happens here, at
/// admission: single-shard requests go straight to their shard's queue.
#[derive(Clone)]
pub struct KvClient {
    shared: Arc<Shared>,
}

impl KvClient {
    /// Submit and block for the reply.
    pub fn call(&self, op: KvOp) -> Result<KvReply, KvError> {
        Ok(self.submit(op)?.wait())
    }

    /// Submit without blocking; the returned handle can be waited on (or
    /// dropped — open-loop load generators fire and forget, and the
    /// pipeline still records the end-to-end latency at reply time).
    pub fn submit(&self, op: KvOp) -> Result<PendingReply, KvError> {
        let too_large = |keys: usize| KvError::TooLarge {
            class: op.class(),
            keys: keys as u32,
            max: self.shared.multi_key_max as u32,
        };
        match &op {
            KvOp::MultiPut { pairs } if pairs.len() > self.shared.multi_key_max => {
                return Err(too_large(pairs.len()))
            }
            KvOp::MultiAdd { deltas } if deltas.len() > self.shared.multi_key_max => {
                return Err(too_large(deltas.len()))
            }
            _ => {}
        }
        let class = op.class();
        let read_only = op.read_only();
        let route = self.shared.map.route(&op);
        // Health-based admission: an update routed to a shard whose log
        // is degraded is refused up front with the typed outcome (reads
        // still flow; a halted WAL keeps the serve-time shed path so
        // crash semantics are unchanged).
        if !read_only {
            if let Some(w) = &self.shared.wal {
                if w.alive() {
                    let degraded = match &route {
                        Route::Single(s) if !w.health(*s).writable() => Some(*s as u32),
                        Route::Cross(set) => {
                            set.iter().find(|&&s| !w.health(s).writable()).map(|&s| s as u32)
                        }
                        _ => None,
                    };
                    if let Some(shard) = degraded {
                        w.note_degraded_shed();
                        return Err(KvError::Unavailable { class, shard });
                    }
                }
            }
        }
        let slot = Arc::new(ReplySlot::new());
        let req = Request { op, slot: slot.clone(), enqueued: Instant::now() };
        let (pushed, refused_shard) = match route {
            Route::Single(s) => {
                (self.shared.shards[s].queue.try_push(read_only, req), Some(s as u32))
            }
            Route::Cross(_) => {
                let r = self.shared.xqueue.try_push(read_only, req);
                if r.is_ok() {
                    // Executors park on their primary shard's queue, not
                    // the xqueue: wake them all (cross-shard is rare).
                    for ctx in &self.shared.shards {
                        ctx.queue.wake_all();
                    }
                }
                (r, None)
            }
        };
        match pushed {
            Ok(()) => Ok(PendingReply { slot }),
            Err(PushError::Full(req)) => {
                self.shared.overloaded.fetch_add(1, Ordering::Relaxed);
                // Forget nothing: the envelope's Drop fills Shed, but the
                // slot is ours and unreturned, so nobody observes it.
                drop(req);
                Err(KvError::Overloaded { class, shard: refused_shard })
            }
            Err(PushError::Closed(_)) => Err(KvError::ShuttingDown),
        }
    }

    /// `(read-only, update)` submission-lane depths summed over all shard
    /// queues and the cross-shard queue.
    pub fn queue_depths(&self) -> (usize, usize) {
        let (mut ro, mut rw) = self.shared.xqueue.depths();
        for ctx in &self.shared.shards {
            let (r, w) = ctx.queue.depths();
            ro += r;
            rw += w;
        }
        (ro, rw)
    }
}

/// Handle to one in-flight request.
pub struct PendingReply {
    slot: Arc<ReplySlot>,
}

impl PendingReply {
    /// Block until the request is answered (or shed at shutdown).
    pub fn wait(self) -> KvReply {
        self.slot.wait()
    }

    /// Non-blocking poll.
    pub fn try_get(&self) -> Option<KvReply> {
        self.slot.try_get()
    }

    /// Register a completion callback instead of blocking. The callback
    /// runs **exactly once** with the final reply — including the
    /// `Drop`-backstop [`KvReply::Shed`] when the request is shed at
    /// shutdown or executor panic — on whichever thread fills the slot
    /// (an executor, usually). If the reply already landed, the callback
    /// fires immediately on the calling thread. This is the network front
    /// end's completion path: no parked thread per in-flight request.
    ///
    /// A panicking callback is caught and discarded (fills can happen
    /// inside `Drop` during unwind; a second panic there would abort).
    pub fn on_reply(self, f: impl FnOnce(KvReply) + Send + 'static) {
        self.slot.on_fill(Box::new(f));
    }
}

/// End-to-end and service-only latency for one op class.
#[derive(Debug, Clone)]
pub struct ClassLat {
    pub class: OpClass,
    /// Enqueue → reply.
    pub e2e: LatencyHist,
    /// Transaction execution only (a whole RO batch's service time is
    /// attributed to every request it carried).
    pub service: LatencyHist,
}

impl ClassLat {
    fn new(class: OpClass) -> Self {
        ClassLat { class, e2e: LatencyHist::new(), service: LatencyHist::new() }
    }

    pub fn count(&self) -> u64 {
        self.e2e.count()
    }
}

/// End-to-end and service-only latency for one registered procedure —
/// the per-transaction-class SLO rows of a typed workload (every call
/// also lands in the coarse [`OpClass::Call`] bucket).
#[derive(Debug, Clone)]
pub struct ProcLat {
    /// The procedure's [`crate::Procedure::id`].
    pub proc: u64,
    pub name: &'static str,
    pub e2e: LatencyHist,
    pub service: LatencyHist,
}

impl ProcLat {
    fn new(proc: u64, name: &'static str) -> Self {
        ProcLat { proc, name, e2e: LatencyHist::new(), service: LatencyHist::new() }
    }

    pub fn count(&self) -> u64 {
        self.e2e.count()
    }
}

fn proc_lats(reg: Option<&ProcRegistry>) -> Vec<ProcLat> {
    reg.map(|r| r.procs().iter().map(|p| ProcLat::new(p.id(), p.name())).collect())
        .unwrap_or_default()
}

/// What one executor hands back at join time.
struct ExecOut {
    classes: Vec<ClassLat>,
    procs: Vec<ProcLat>,
    served: u64,
    shed: u64,
    ro_batches: u64,
    ro_batch_ops: u64,
    max_ro_batch: u64,
    ro_batch_aborts: u64,
    backoffs: u64,
    twopc: TwoPcStats,
    /// Backend thread handles this executor re-registered after catching
    /// a mid-protocol panic (chaos recovery).
    handle_resets: u64,
    /// Requests served per shard by this executor.
    shard_served: Vec<u64>,
    /// Backend statistics per shard (this executor's handles).
    shard_stats: Vec<ThreadStats>,
}

impl ExecOut {
    fn new(shards: usize, reg: Option<&ProcRegistry>) -> Self {
        ExecOut {
            classes: OpClass::ALL.iter().map(|&c| ClassLat::new(c)).collect(),
            procs: proc_lats(reg),
            served: 0,
            shed: 0,
            ro_batches: 0,
            ro_batch_ops: 0,
            max_ro_batch: 0,
            ro_batch_aborts: 0,
            backoffs: 0,
            twopc: TwoPcStats::default(),
            handle_resets: 0,
            shard_served: vec![0; shards],
            shard_stats: vec![ThreadStats::default(); shards],
        }
    }
}

/// Aggregated pipeline report returned by [`Pipeline::shutdown`].
#[derive(Debug, Clone)]
pub struct ServiceReport {
    pub backend: &'static str,
    pub executors: usize,
    /// Shard count (1 = unsharded).
    pub shards: usize,
    /// Requests answered with a real result.
    pub replies: u64,
    /// Requests answered with [`KvReply::Shed`] at shutdown (plus any
    /// cross-shard transactions aborted by chaos recovery).
    pub shed: u64,
    /// Requests refused at admission ([`KvError::Overloaded`]).
    pub overloaded: u64,
    /// Read-only transactions executed for batches.
    pub ro_batches: u64,
    /// Read-only requests carried by those transactions.
    pub ro_batch_ops: u64,
    /// Largest single batch.
    pub max_ro_batch: u64,
    /// Backend aborts observed across all RO batch transactions (must be
    /// 0 on SI-HTM: the RO fast path never aborts).
    pub ro_batch_aborts: u64,
    /// Executors that served zero requests (load-balance check).
    pub starved_executors: usize,
    /// Executors that panicked (their in-flight request resolves Shed).
    pub panicked_executors: usize,
    /// Contention-manager delays executed by executors.
    pub executor_backoffs: u64,
    /// Cross-shard two-phase-commit activity, summed over executors.
    pub twopc: TwoPcStats,
    /// Backend handles re-registered after caught mid-protocol panics.
    pub handle_resets: u64,
    /// Requests served per shard (shard-affinity / balance check).
    pub shard_served: Vec<u64>,
    /// Backend statistics per shard, summed over executors. Each shard is
    /// an independent quiescence domain, so `quiesce_waits` here shows
    /// exactly where commit-time safety waits happen.
    pub shard_stats: Vec<ThreadStats>,
    /// Per-op-class latency, in [`OpClass::ALL`] order.
    pub class: Vec<ClassLat>,
    /// Per-procedure latency (registration order; empty without a
    /// procedure registry).
    pub procs: Vec<ProcLat>,
    /// Backend-side statistics summed over all executor threads and
    /// shards.
    pub backend_stats: ThreadStats,
    /// Durability mode the pipeline ran with (`"off"` without a WAL).
    pub durability: &'static str,
    /// WAL / checkpoint / recovery counters (all zero without a WAL).
    pub wal: WalStats,
    /// Final per-shard storage health, by [`crate::ShardHealth`] name
    /// (empty without a WAL).
    pub shard_health: Vec<&'static str>,
}

impl ServiceReport {
    fn new(backend: &'static str, executors: usize, shards: usize) -> Self {
        ServiceReport {
            backend,
            executors,
            shards,
            replies: 0,
            shed: 0,
            overloaded: 0,
            ro_batches: 0,
            ro_batch_ops: 0,
            max_ro_batch: 0,
            ro_batch_aborts: 0,
            starved_executors: 0,
            panicked_executors: 0,
            executor_backoffs: 0,
            twopc: TwoPcStats::default(),
            handle_resets: 0,
            shard_served: vec![0; shards],
            shard_stats: vec![ThreadStats::default(); shards],
            class: OpClass::ALL.iter().map(|&c| ClassLat::new(c)).collect(),
            procs: Vec::new(),
            backend_stats: ThreadStats::default(),
            durability: "off",
            wal: WalStats::default(),
            shard_health: Vec::new(),
        }
    }

    fn merge(&mut self, out: ExecOut) {
        if out.served == 0 {
            self.starved_executors += 1;
        }
        self.replies += out.served;
        self.shed += out.shed;
        self.ro_batches += out.ro_batches;
        self.ro_batch_ops += out.ro_batch_ops;
        self.max_ro_batch = self.max_ro_batch.max(out.max_ro_batch);
        self.ro_batch_aborts += out.ro_batch_aborts;
        self.executor_backoffs += out.backoffs;
        self.twopc += &out.twopc;
        self.handle_resets += out.handle_resets;
        for (mine, theirs) in self.shard_served.iter_mut().zip(&out.shard_served) {
            *mine += theirs;
        }
        for (mine, theirs) in self.shard_stats.iter_mut().zip(&out.shard_stats) {
            *mine += theirs;
            self.backend_stats += theirs;
        }
        for (mine, theirs) in self.class.iter_mut().zip(&out.classes) {
            mine.e2e.merge(&theirs.e2e);
            mine.service.merge(&theirs.service);
        }
        for (mine, theirs) in self.procs.iter_mut().zip(&out.procs) {
            mine.e2e.merge(&theirs.e2e);
            mine.service.merge(&theirs.service);
        }
    }

    /// The latency record for one op class.
    pub fn class(&self, class: OpClass) -> &ClassLat {
        &self.class[class.index()]
    }

    /// The latency record for one registered procedure, by name.
    pub fn proc(&self, name: &str) -> Option<&ProcLat> {
        self.procs.iter().find(|p| p.name == name)
    }

    /// Mean read-only requests per RO transaction (the batching payoff;
    /// > 1 means batching actually happened).
    pub fn mean_ro_batch(&self) -> f64 {
        if self.ro_batches == 0 {
            0.0
        } else {
            self.ro_batch_ops as f64 / self.ro_batches as f64
        }
    }

    /// Human-readable per-class SLO table.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{}: {} shard(s), {} replies, {} shed, {} overloaded; RO batches {} (mean {:.1}, max {}, aborts {})",
            self.backend,
            self.shards,
            self.replies,
            self.shed,
            self.overloaded,
            self.ro_batches,
            self.mean_ro_batch(),
            self.max_ro_batch,
            self.ro_batch_aborts,
        );
        if self.shards > 1 {
            let _ = writeln!(
                s,
                "  2PC: {} prepares, {} aborts, {} escalations, {} cross-shard RO; served/shard {:?}",
                self.twopc.prepares,
                self.twopc.aborts,
                self.twopc.escalations,
                self.twopc.ro_multi,
                self.shard_served,
            );
        }
        if self.durability != "off" {
            let _ = writeln!(
                s,
                "  wal[{}]: {} appends, {} fsync batches (mean group {:.1}), {} checkpoints, recovered {} records (+{} torn tails), {} dead-log sheds",
                self.durability,
                self.wal.wal_appends,
                self.wal.fsync_batches,
                self.wal.mean_group_commit(),
                self.wal.checkpoints,
                self.wal.recovery_replayed,
                self.wal.recovery_torn,
                self.wal.wal_dead_sheds,
            );
            let w = &self.wal;
            let unhealthy = self.shard_health.iter().any(|&h| h != "healthy");
            if unhealthy
                || w.wal_retries + w.degraded_sheds + w.wal_rejoins + w.scrub_corruptions > 0
            {
                let _ = writeln!(
                    s,
                    "  health {:?}: {} flush retries, {} degraded sheds, {} rejoins, {} ckpt failures; scrub {} passes / {} corruptions",
                    self.shard_health,
                    w.wal_retries,
                    w.degraded_sheds,
                    w.wal_rejoins,
                    w.checkpoint_failures,
                    w.scrub_passes,
                    w.scrub_corruptions,
                );
            }
        }
        for cl in &self.class {
            if cl.count() == 0 {
                continue;
            }
            let (p50, p90, p99, p999) = cl.e2e.percentiles();
            let (s50, _, s99, _) = cl.service.percentiles();
            let _ = writeln!(
                s,
                "  {:<9} n={:<8} e2e p50/p90/p99/p999 = {}/{}/{}/{} ns  service p50/p99 = {}/{} ns",
                cl.class.name(),
                cl.count(),
                p50,
                p90,
                p99,
                p999,
                s50,
                s99,
            );
        }
        for pl in &self.procs {
            if pl.count() == 0 {
                continue;
            }
            let (p50, p90, p99, p999) = pl.e2e.percentiles();
            let (s50, _, s99, _) = pl.service.percentiles();
            let _ = writeln!(
                s,
                "  call:{:<12} n={:<8} e2e p50/p90/p99/p999 = {}/{}/{}/{} ns  service p50/p99 = {}/{} ns",
                pl.name,
                pl.count(),
                p50,
                p90,
                p99,
                p999,
                s50,
                s99,
            );
        }
        s
    }
}

/// The running service: executor pool + per-shard submission queues.
pub struct Pipeline<B: TmBackend> {
    domains: Arc<Vec<(B, KvStore)>>,
    shared: Arc<Shared>,
    cfg: PipelineConfig,
    handles: Vec<JoinHandle<ExecOut>>,
    /// Storage-health maintenance loop (rejoin probes + scrubber); only
    /// spawned for durable pipelines with a nonzero maintenance cadence.
    maint: Option<JoinHandle<()>>,
}

impl<B: TmBackend> Pipeline<B> {
    /// Spawn the executor pool over a single unsharded backend (the
    /// 1-shard special case of [`Pipeline::start_sharded`]).
    pub fn start(backend: B, store: KvStore, cfg: PipelineConfig) -> Pipeline<B> {
        Self::start_sharded(vec![(backend, store)], ShardMap::hash(1), cfg)
    }

    /// Spawn the executor pool over one independent backend instance per
    /// shard. `map` must agree with `domains` on the shard count, and
    /// each store must have been loaded with only its shard's keys
    /// (see [`crate::shard::build_domains`]).
    pub fn start_sharded(
        domains: Vec<(B, KvStore)>,
        map: ShardMap,
        cfg: PipelineConfig,
    ) -> Pipeline<B> {
        Self::start_inner(domains, map, cfg, None, None)
    }

    /// Spawn a **durable** sharded pipeline: every update is appended to
    /// the shard's commit-ordered WAL (under the shard commit lock, after
    /// the backend transaction committed — on SI-HTM that is after the
    /// pre-commit quiescence wait, strictly outside the hardware
    /// transaction), group-commit fsynced, and — in
    /// [`DurabilityMode::Sync`] — acked only once durable. Cross-shard
    /// updates additionally write 2PC `XBegin`/`XApply`/`XDecide` records
    /// so recovery resolves them all-or-nothing. The read-only lane never
    /// touches the WAL: the SI-HTM RO fast path stays untouched.
    ///
    /// `wal` usually comes from [`crate::recover_and_open`], which also
    /// rebuilds `domains` from the latest checkpoint + log tail.
    pub fn start_durable(
        domains: Vec<(B, KvStore)>,
        map: ShardMap,
        cfg: PipelineConfig,
        wal: Arc<WalSet>,
    ) -> Pipeline<B> {
        assert_eq!(wal.shards(), map.shards(), "one WAL per shard");
        Self::start_inner(domains, map, cfg, Some(wal), None)
    }

    /// Spawn a pipeline with every optional subsystem chosen explicitly:
    /// a per-shard commit-ordered WAL (or `None` for in-memory service)
    /// and a [`ProcRegistry`] of server-side procedures answering
    /// [`KvOp::Call`] (or `None` to answer every call
    /// [`KvReply::CallAborted`]). The other constructors are shorthands
    /// for this one.
    pub fn start_with(
        domains: Vec<(B, KvStore)>,
        map: ShardMap,
        cfg: PipelineConfig,
        wal: Option<Arc<WalSet>>,
        procs: Option<Arc<ProcRegistry>>,
    ) -> Pipeline<B> {
        if let Some(w) = &wal {
            assert_eq!(w.shards(), map.shards(), "one WAL per shard");
        }
        Self::start_inner(domains, map, cfg, wal, procs)
    }

    fn start_inner(
        domains: Vec<(B, KvStore)>,
        map: ShardMap,
        cfg: PipelineConfig,
        wal: Option<Arc<WalSet>>,
        procs: Option<Arc<ProcRegistry>>,
    ) -> Pipeline<B> {
        assert!(cfg.executors > 0, "pipeline needs at least one executor");
        assert!(cfg.ro_batch_max > 0, "ro_batch_max must be nonzero");
        assert_eq!(map.shards(), domains.len(), "one backend domain per shard");
        let domains = Arc::new(domains);
        let shared = Arc::new(Shared {
            shards: (0..map.shards())
                .map(|_| ShardCtx {
                    queue: SubmitQueue::new(cfg.ro_queue_cap, cfg.rw_queue_cap),
                    xlock: XLock::new(),
                })
                .collect(),
            xqueue: SubmitQueue::new(cfg.ro_queue_cap, cfg.rw_queue_cap),
            map,
            hard_stop: AtomicBool::new(false),
            overloaded: AtomicU64::new(0),
            multi_key_max: cfg.multi_key_max,
            wal,
            procs,
        });
        let handles = (0..cfg.executors)
            .map(|i| {
                let domains = Arc::clone(&domains);
                let shared = Arc::clone(&shared);
                let cfg = cfg.clone();
                std::thread::Builder::new()
                    .name(format!("txkv-exec-{i}"))
                    .spawn(move || executor_loop(i, &domains, &shared, &cfg))
                    .expect("spawn executor")
            })
            .collect();
        // Background storage maintenance: probe degraded shards back to
        // health, scrub checkpoints + log tails for latent corruption.
        let maint = shared.wal.as_ref().filter(|w| w.maintenance_interval_ms() > 0).map(|w| {
            let w = Arc::clone(w);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("txkv-wal-maint".into())
                .spawn(move || {
                    let tick = Duration::from_millis(w.maintenance_interval_ms());
                    let scrub_every = Duration::from_millis(w.scrub_interval_ms().max(1));
                    let mut last_scrub = Instant::now();
                    while !shared.hard_stop.load(Ordering::Acquire) {
                        for s in 0..w.shards() {
                            if !w.health(s).writable() {
                                w.probe(s);
                            }
                        }
                        if w.scrub_interval_ms() > 0 && last_scrub.elapsed() >= scrub_every {
                            last_scrub = Instant::now();
                            for s in 0..w.shards() {
                                w.scrub(s);
                            }
                        }
                        std::thread::sleep(tick);
                    }
                })
                .expect("spawn wal maintenance")
        });
        Pipeline { domains, shared, cfg, handles, maint }
    }

    /// A new submission handle (clone freely, share across threads).
    pub fn client(&self) -> KvClient {
        KvClient { shared: Arc::clone(&self.shared) }
    }

    /// Shard 0's backend (the only one when unsharded).
    pub fn backend(&self) -> &B {
        &self.domains[0].0
    }

    /// Shard 0's store (the only one when unsharded).
    pub fn store(&self) -> &KvStore {
        &self.domains[0].1
    }

    /// Shard `s`'s backend instance.
    pub fn shard_backend(&self, s: usize) -> &B {
        &self.domains[s].0
    }

    /// Shard `s`'s store.
    pub fn shard_store(&self, s: usize) -> &KvStore {
        &self.domains[s].1
    }

    /// The WAL set, when running durably (crash tests pull the plug
    /// through this: [`WalSet::halt_all`]).
    pub fn wal(&self) -> Option<&Arc<WalSet>> {
        self.shared.wal.as_ref()
    }

    /// Graceful shutdown: close admission, give queued work `drain_grace`
    /// to complete, then shed the rest ([`KvReply::Shed`]) and join.
    pub fn shutdown(self) -> ServiceReport {
        for ctx in &self.shared.shards {
            ctx.queue.close();
        }
        self.shared.xqueue.close();
        let drained = |shared: &Shared| {
            shared.xqueue.is_empty() && shared.shards.iter().all(|c| c.queue.is_empty())
        };
        let deadline = Instant::now() + self.cfg.drain_grace;
        while !drained(&self.shared) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.shared.hard_stop.store(true, Ordering::Release);
        for ctx in &self.shared.shards {
            ctx.queue.wake_all();
        }
        self.shared.xqueue.wake_all();
        if let Some(m) = self.maint {
            let _ = m.join();
        }
        let mut report = ServiceReport::new(
            self.domains[0].0.name(),
            self.cfg.executors,
            self.shared.map.shards(),
        );
        report.procs = proc_lats(self.shared.procs.as_deref());
        for h in self.handles {
            match h.join() {
                Ok(out) => report.merge(out),
                Err(_) => report.panicked_executors += 1,
            }
        }
        report.overloaded = self.shared.overloaded.load(Ordering::Relaxed);
        if let Some(w) = &self.shared.wal {
            report.durability = w.mode().name();
            report.wal = w.stats();
            report.shard_health = w.health_names();
        }
        report
    }
}

/// Shards executor `idx` polls (it holds registered handles for *all*
/// shards regardless, for cross-shard coordination).
fn served_shards(idx: usize, executors: usize, shards: usize) -> Vec<usize> {
    if executors <= shards {
        (0..shards).filter(|s| s % executors == idx).collect()
    } else {
        vec![idx % shards]
    }
}

/// Executor scratch capacity: procedure legs can write far more keys
/// than a client multi-op ([`PROC_WRITE_MAX`] vs `multi_key_max`), so a
/// pipeline serving calls pre-sizes for the larger bound.
fn scratch_keys(cfg: &PipelineConfig, shared: &Shared) -> usize {
    if shared.procs.is_some() {
        cfg.multi_key_max.max(PROC_WRITE_MAX)
    } else {
        cfg.multi_key_max
    }
}

fn executor_loop<B: TmBackend>(
    idx: usize,
    domains: &[(B, KvStore)],
    shared: &Shared,
    cfg: &PipelineConfig,
) -> ExecOut {
    let shards = domains.len();
    let served = served_shards(idx, cfg.executors, shards);
    let procs = shared.procs.as_deref();
    let batch_keys = scratch_keys(cfg, shared);
    let mut threads: Vec<B::Thread> = domains.iter().map(|(b, _)| b.register_thread()).collect();
    let mut scratches: Vec<NodeScratch> =
        domains.iter().map(|(_, st)| st.new_batch_scratch(batch_keys)).collect();
    let mut cm = ContentionManager::new(cfg.backoff, 0x9E37_79B9_7F4A_7C15 ^ (idx as u64 + 1));
    let mut out = ExecOut::new(shards, procs);
    let mut batch: Vec<Request> = Vec::with_capacity(cfg.ro_batch_max);
    let wal = shared.wal.as_deref();
    // Sync-mode acks waiting for their WAL record to become durable, and
    // a reusable post-image capture buffer for the update lane.
    let mut pending: Vec<PendingAck> = Vec::new();
    let mut writes: Writes = Vec::new();
    let primary = served[0];
    loop {
        let mut did_work = false;
        for &s in &served {
            // One update, then one RO batch, per shard per iteration:
            // neither lane can starve the other regardless of mix.
            // Both serves are unwind barriers: a panic inside a
            // transaction body (chaos) must not kill the executor —
            // in a sharded pipeline that would orphan the executor's
            // whole shard. The in-flight request(s) resolve Shed via
            // the drop backstop and the mid-transaction handle is
            // replaced, exactly as on the cross-shard paths.
            if let Some(req) = shared.shards[s].queue.try_pop_update() {
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    serve_update(
                        &domains[s].1,
                        &mut threads[s],
                        &mut scratches[s],
                        &mut cm,
                        req,
                        &mut out,
                        wal,
                        s,
                        &mut pending,
                        &mut writes,
                        &shared.shards[s].xlock,
                        procs,
                    );
                }));
                if attempt.is_err() {
                    out.shed += 1;
                    recover_handle(domains, &mut threads, &mut scratches, s, batch_keys, &mut out);
                }
                out.shard_served[s] += 1;
                did_work = true;
            }
            if shared.shards[s].queue.try_pop_ro_batch(cfg.ro_batch_max, &mut batch) > 0 {
                out.shard_served[s] += batch.len() as u64;
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    serve_ro_batch(
                        &domains[s].1,
                        &mut threads[s],
                        &mut scratches[s],
                        &mut batch,
                        procs,
                        s,
                        &mut out,
                    );
                }));
                if attempt.is_err() {
                    out.shed += batch.len() as u64;
                    batch.clear(); // drop backstop answers Shed
                    recover_handle(domains, &mut threads, &mut scratches, s, batch_keys, &mut out);
                }
                did_work = true;
            }
        }
        // Cross-shard work: any executor coordinates (contention on the
        // xqueue is negligible — cross-shard traffic is the rare case).
        if let Some(req) = shared.xqueue.try_pop_update() {
            serve_xshard_update(
                domains,
                shared,
                &mut threads,
                &mut scratches,
                cfg,
                req,
                &mut out,
                &mut pending,
                &mut writes,
            );
            did_work = true;
        }
        if shared.xqueue.try_pop_ro_batch(1, &mut batch) > 0 {
            let req = batch.pop().expect("popped one");
            serve_xshard_ro(domains, shared, &mut threads, &mut scratches, req, &mut out);
            did_work = true;
        }
        // Durability maintenance every iteration: group-commit flushes,
        // settle Sync acks that became durable, take due checkpoints.
        if let Some(w) = wal {
            wal_maintain(w, shared, &served, &mut pending, false, &mut out);
            if w.alive() {
                for &s in &served {
                    if w.wants_checkpoint(s) {
                        checkpoint_shard(
                            domains,
                            shared,
                            w,
                            &mut threads,
                            &mut scratches,
                            s,
                            batch_keys,
                            &mut out,
                        );
                    }
                }
            }
        }
        if did_work {
            continue;
        }
        let served_done = served.iter().all(|&s| shared.shards[s].queue.is_done());
        if shared.hard_stop.load(Ordering::Acquire) || (served_done && shared.xqueue.is_done()) {
            break;
        }
        // Idle: nothing to batch behind, so force the group commit out
        // before parking (bounds Sync ack latency at light load).
        if let Some(w) = wal {
            wal_maintain(w, shared, &served, &mut pending, true, &mut out);
        }
        // Give the chaos injector its seam, jitter the re-poll so a
        // large pool doesn't stampede the queue lock, then park briefly.
        if hooks::active() {
            hooks::emit(Event::Poll);
        }
        cm.admission_jitter(cfg.idle_jitter_ns);
        shared.shards[primary].queue.wait_for_work(cfg.idle_wait);
    }
    // Final group commit: push every shard's tail out (cheap no-op on
    // empty buffers), settle what became durable, and shed the rest —
    // an un-durable Sync ack must never escape, even at shutdown.
    if let Some(w) = wal {
        if w.alive() {
            for s in 0..shards {
                let _ = w.flush(s);
            }
        }
        wal_maintain(w, shared, &served, &mut pending, true, &mut out);
        for p in pending.drain(..) {
            w.note_dead_shed();
            out.shed += 1;
            drop(p.req);
        }
    }
    // Hard stop (or post-drain sweep): everything still queued is shed —
    // answered with KvReply::Shed, never silently dropped.
    loop {
        let mut any = false;
        for &s in &served {
            if let Some(req) = shared.shards[s].queue.try_pop_update() {
                drop(req); // Drop backstop fills Shed
                out.shed += 1;
                any = true;
            }
            if shared.shards[s].queue.try_pop_ro_batch(usize::MAX, &mut batch) > 0 {
                out.shed += batch.len() as u64;
                batch.clear(); // Drop backstop fills Shed for each
                any = true;
            }
        }
        if let Some(req) = shared.xqueue.try_pop_update() {
            drop(req);
            out.shed += 1;
            any = true;
        }
        if shared.xqueue.try_pop_ro_batch(usize::MAX, &mut batch) > 0 {
            out.shed += batch.len() as u64;
            batch.clear();
            any = true;
        }
        if !any {
            break;
        }
    }
    out.backoffs = cm.backoffs;
    for (slot, th) in out.shard_stats.iter_mut().zip(&threads) {
        *slot = th.stats().clone();
    }
    out
}

/// A served update whose reply is withheld until its WAL record is
/// durable ([`DurabilityMode::Sync`]): the group-commit ack list.
struct PendingAck {
    req: Request,
    reply: KvReply,
    service: Duration,
    lsn: u64,
    shard: usize,
}

/// Per-iteration durability maintenance: group-commit flush decisions
/// and Sync-ack settlement.
///
/// A served shard's buffer is flushed when the group is full, when the
/// shard's update lane has gone idle (no later commit to ride with), or
/// when `force`d (idle park / shutdown). Pending acks are settled
/// strictly by the durable-LSN watermark — an ack never outruns its
/// fsync. A dead WAL (simulated power loss) sheds every withheld ack:
/// those clients were never acked, matching what recovery will replay.
fn wal_maintain(
    wal: &WalSet,
    shared: &Shared,
    served: &[usize],
    pending: &mut Vec<PendingAck>,
    force: bool,
    out: &mut ExecOut,
) {
    if wal.alive() {
        for &s in served {
            if wal.buffered(s) == 0 {
                continue;
            }
            if force
                || wal.buffered(s) >= wal.group_commit_max()
                || shared.shards[s].queue.depths().1 == 0
            {
                let _ = wal.flush(s);
            }
        }
        let mut i = 0;
        while i < pending.len() {
            if wal.durable_lsn(pending[i].shard) >= pending[i].lsn {
                let p = pending.swap_remove(i);
                finish(p.req, p.reply, p.service, out);
            } else if !wal.health(pending[i].shard).writable() {
                // The shard's log degraded under this ack: answer the
                // typed outcome now (never ack — the fsync didn't land).
                // The frame stays retained in the shard's buffer, so the
                // write may still persist at rejoin — indeterminate for
                // the client, like any un-acked write.
                let p = pending.swap_remove(i);
                wal.note_degraded_shed();
                out.shed += 1;
                p.req.slot.fill(KvReply::Unavailable);
                drop(p.req);
            } else {
                i += 1;
            }
        }
    }
    if !wal.alive() {
        for p in pending.drain(..) {
            wal.note_dead_shed();
            out.shed += 1;
            drop(p.req); // answered Shed: the write was never acked
        }
    }
}

/// Take one shard's checkpoint: quiesce its writers (xlock, then the
/// commit lock — the same order 2PC uses), force the log tail out so the
/// snapshot and the durable log agree on exactly which transactions are
/// included, snapshot via one RO transaction (the SI-HTM fast path), and
/// install atomically. A chaos panic inside the snapshot skips this
/// round (the trigger re-fires) after replacing the poisoned handle.
#[allow(clippy::too_many_arguments)]
fn checkpoint_shard<B: TmBackend>(
    domains: &[(B, KvStore)],
    shared: &Shared,
    wal: &WalSet,
    threads: &mut [B::Thread],
    scratches: &mut [NodeScratch],
    s: usize,
    multi_key_max: usize,
    out: &mut ExecOut,
) {
    let _x = shared.shards[s].xlock.lock();
    let _cl = wal.commit_lock(s);
    // Re-check under the locks: another executor serving this shard may
    // have just checkpointed it.
    if !wal.wants_checkpoint(s) || wal.flush(s).is_err() {
        return;
    }
    let attempt = catch_unwind(AssertUnwindSafe(|| domains[s].1.snapshot(&mut threads[s])));
    match attempt {
        Ok(entries) => {
            let _ = wal.install_checkpoint(s, &entries);
        }
        Err(_) => recover_handle(domains, threads, scratches, s, multi_key_max, out),
    }
}

/// Serve one update request in its own update transaction.
///
/// With a WAL, the shard's commit lock spans execute + append, so the
/// log is a commit-ordered journal of post-images: on SI-HTM the append
/// happens after the pre-commit quiescence wait — strictly outside the
/// hardware transaction (the DUMBO discipline) — and on the fall-back
/// paths after the SGL/commit-lock serialization point. In Sync mode the
/// reply is withheld on `pending` until the record's fsync lands.
///
/// Procedure calls additionally take the shard's [`XLock`] for the
/// duration of the serve. A procedure read-modify-writes keys that
/// cross-shard call legs may also touch, and a compensated cross-shard
/// call restores pre-images — admissible only if no acked local call
/// committed in between. Mutual exclusion against in-flight 2PC on this
/// shard (same lock, acquired before the commit lock, matching the
/// coordinator's order) closes that window; plain single-key ops keep
/// their lock-free path (their blind/delta semantics never needed it).
#[allow(clippy::too_many_arguments)]
fn serve_update<T: TmThread>(
    store: &KvStore,
    thread: &mut T,
    scratch: &mut NodeScratch,
    cm: &mut ContentionManager,
    req: Request,
    out: &mut ExecOut,
    wal: Option<&WalSet>,
    shard: usize,
    pending: &mut Vec<PendingAck>,
    writes: &mut Writes,
    xlock: &XLock,
    procs: Option<&ProcRegistry>,
) {
    if let Some(w) = wal {
        match w.admits(shard) {
            Ok(()) => {}
            Err(WalError::Dead) => {
                // Simulated power loss: nothing can become durable, so
                // accepting updates would hand out un-loggable acks.
                w.note_dead_shed();
                out.shed += 1;
                drop(req);
                return;
            }
            Err(WalError::Unavailable) => {
                // Degraded storage on this shard: shed the update with
                // the typed outcome (reads still serve; the maintenance
                // probe rejoins the shard when its medium heals).
                w.note_degraded_shed();
                out.shed += 1;
                req.slot.fill(KvReply::Unavailable);
                drop(req);
                return;
            }
        }
    }
    let aborts_before = thread.stats().aborts();
    let t0 = Instant::now();
    let xguard = match &req.op {
        KvOp::Call { .. } => Some(xlock.lock()),
        _ => None,
    };
    let guard = wal.map(|w| w.commit_lock(shard));
    writes.clear();
    let reply = match &req.op {
        KvOp::Put { key, val } => {
            let changed = store.put(thread, scratch, *key, *val);
            writes.push((*key, Some(*val)));
            KvReply::Done { changed }
        }
        KvOp::Delete { key } => {
            let changed = store.delete(thread, *key);
            writes.push((*key, None));
            KvReply::Done { changed }
        }
        KvOp::Cas { key, expect, new } => match store.cas(thread, scratch, *key, *expect, *new) {
            Ok(()) => {
                writes.push((*key, Some(*new)));
                KvReply::CasOk
            }
            // A failed CAS committed nothing: no record, immediate ack.
            Err(observed) => KvReply::CasFail(observed),
        },
        KvOp::MultiPut { pairs } => {
            store.multi_put(thread, scratch, pairs);
            writes.extend(pairs.iter().map(|&(k, v)| (k, Some(v))));
            KvReply::Done { changed: true }
        }
        KvOp::MultiAdd { deltas } => {
            // Add post-images depend on the read values, so they must be
            // captured inside the transaction body (reset per attempt).
            if wal.is_some() {
                store.multi_add_logged(thread, scratch, deltas, writes);
            } else {
                store.multi_add(thread, scratch, deltas);
            }
            KvReply::Done { changed: true }
        }
        KvOp::Call { proc, args, .. } => match procs.and_then(|r| r.get(*proc)) {
            None => KvReply::CallAborted,
            Some(p) => {
                let below = procs.expect("registry present").replicated_below();
                let capture = wal.is_some();
                let mut outv: Vec<u64> = Vec::new();
                let outcome = thread.exec(TxKind::Update, &mut |tx| {
                    // Post-images depend on in-transaction reads: reset
                    // the capture per attempt, like MultiAdd.
                    scratch.reset();
                    writes.clear();
                    outv.clear();
                    let mut ctx = ProcCtx::new(
                        store,
                        tx,
                        scratch,
                        None,
                        shard,
                        true,
                        below,
                        capture.then_some(&mut *writes),
                        None,
                    );
                    outv = p.run(&mut ctx, args)?;
                    Ok(())
                });
                match outcome {
                    Outcome::Committed => {
                        scratch.refill(store.alloc());
                        KvReply::CallOk(std::mem::take(&mut outv))
                    }
                    Outcome::UserAborted => {
                        // Nothing committed: no record, immediate ack.
                        writes.clear();
                        KvReply::CallAborted
                    }
                }
            }
        },
        ro => unreachable!("read-only op {ro:?} in the update lane"),
    };
    let appended = match wal {
        Some(w) if !writes.is_empty() => {
            w.crash_point(CrashSite::AfterCommit);
            Some(w.append(shard, Append::Write(writes)))
        }
        _ => None,
    };
    drop(guard);
    drop(xguard);
    let service = t0.elapsed();
    // Abort-aware pacing: a serve that needed backend retries backs the
    // executor off before the next pop; a clean one resets the ceiling.
    if thread.stats().aborts() > aborts_before {
        cm.backoff(AbortReason::Conflict);
    } else {
        cm.reset();
    }
    match (wal, appended) {
        (Some(w), Some(Ok(lsn))) if w.mode() == DurabilityMode::Sync => {
            pending.push(PendingAck { req, reply, service, lsn, shard });
        }
        (Some(w), Some(Err(WalError::Dead))) if w.mode() == DurabilityMode::Sync => {
            // Committed in memory but lost the log before the fsync: the
            // client is shed (never acked), exactly what recovery shows.
            w.note_dead_shed();
            out.shed += 1;
            drop(req);
        }
        (Some(w), Some(Err(WalError::Unavailable))) if w.mode() == DurabilityMode::Sync => {
            // The shard degraded between admission and append: committed
            // in memory, nothing logged — answer the typed outcome
            // un-acked (indeterminate for the client, like any timeout).
            w.note_degraded_shed();
            out.shed += 1;
            req.slot.fill(KvReply::Unavailable);
            drop(req);
        }
        _ => finish(req, reply, service, out),
    }
}

/// Serve a whole batch of read-only requests in ONE read-only
/// transaction (the SI-HTM RO fast path: unbounded, never aborts, one
/// shared snapshot for the entire batch). Read-only procedure calls ride
/// in the same transaction — a typed workload's whole read mix shares
/// the batch's snapshot and its single quiescence interaction.
#[allow(clippy::too_many_arguments)]
fn serve_ro_batch<T: TmThread>(
    store: &KvStore,
    thread: &mut T,
    scratch: &mut NodeScratch,
    batch: &mut Vec<Request>,
    procs: Option<&ProcRegistry>,
    shard: usize,
    out: &mut ExecOut,
) {
    let aborts_before = thread.stats().aborts();
    let t0 = Instant::now();
    let mut replies: Vec<KvReply> = Vec::with_capacity(batch.len());
    thread.exec(TxKind::ReadOnly, &mut |tx| {
        replies.clear(); // idempotent across retries on fallback paths
        for req in batch.iter() {
            let r = match &req.op {
                KvOp::Get { key } => KvReply::Value(store.get_in(tx, *key)?),
                KvOp::MultiGet { keys } => {
                    let mut vals = Vec::with_capacity(keys.len());
                    for &k in keys {
                        vals.push(store.get_in(tx, k)?);
                    }
                    KvReply::Values(vals)
                }
                KvOp::ScanPrefix { prefix, shift, limit } => {
                    let (count, sum) = store.scan_prefix_in(tx, *prefix, *shift, *limit)?;
                    KvReply::Scan { count, sum }
                }
                KvOp::ScanRange { from, to, limit } => {
                    let (count, sum) = store.scan_range_in(tx, *from, *to, *limit)?;
                    KvReply::Scan { count, sum }
                }
                KvOp::Call { proc, args, .. } => match procs.and_then(|r| r.get(*proc)) {
                    None => KvReply::CallAborted,
                    Some(p) => {
                        let below = procs.expect("registry present").replicated_below();
                        let mut ctx =
                            ProcCtx::new(store, tx, scratch, None, shard, true, below, None, None);
                        match p.run(&mut ctx, args) {
                            Ok(outs) => KvReply::CallOk(outs),
                            // A user abort in a read-only call answers
                            // just that request; the batch's snapshot
                            // (and the other requests) are unaffected.
                            Err(Abort::User) => KvReply::CallAborted,
                            Err(e) => return Err(e),
                        }
                    }
                },
                up => unreachable!("update op {up:?} in the read-only lane"),
            };
            replies.push(r);
        }
        Ok::<(), Abort>(())
    });
    let service = t0.elapsed();
    out.ro_batches += 1;
    out.ro_batch_ops += batch.len() as u64;
    out.max_ro_batch = out.max_ro_batch.max(batch.len() as u64);
    out.ro_batch_aborts += thread.stats().aborts() - aborts_before;
    for (req, reply) in batch.drain(..).zip(replies) {
        finish(req, reply, service, out);
    }
}

/// Replace a backend thread handle (and its scratch) after a caught
/// panic left it mid-transaction: dropping the old handle runs the
/// backend's unwind cleanup (abort in-flight tx, release state-array
/// slot / SGL), and the fresh registration starts clean.
fn recover_handle<B: TmBackend>(
    domains: &[(B, KvStore)],
    threads: &mut [B::Thread],
    scratches: &mut [NodeScratch],
    s: usize,
    multi_key_max: usize,
    out: &mut ExecOut,
) {
    threads[s] = domains[s].0.register_thread();
    scratches[s] = domains[s].1.new_batch_scratch(multi_key_max);
    out.handle_resets += 1;
}

/// Coordinate one cross-shard update via two-phase commit (see
/// [`crate::shard`]). On a mid-protocol panic (chaos), already-applied
/// participants are rolled back from the undo images and the request is
/// answered [`KvReply::Shed`] — fully aborted, never half-applied.
///
/// With a WAL the protocol interleaves durability so recovery can always
/// resolve it all-or-nothing (DESIGN.md §12):
///
/// 1. after the in-memory prepares, every participant's `XBegin`
///    (participant set + undo image) is appended and flushed — durable
///    before anyone applies;
/// 2. each participant's apply commits under its shard commit lock and
///    its `XApply` post-image is flushed before the next participant
///    applies;
/// 3. an `XDecide` is appended + flushed to every participant; the
///    client is acked once the **first** one is durable (a decision in
///    any single log commits the transaction everywhere at recovery).
///
/// If the log dies before any decision is durable, the applied
/// participants are compensated live and each compensation is logged as
/// one atomic `XAbort` (marker + compensation post-image), so recovery
/// and the live path agree whichever records survived.
#[allow(clippy::too_many_arguments)]
fn serve_xshard_update<B: TmBackend>(
    domains: &[(B, KvStore)],
    shared: &Shared,
    threads: &mut [B::Thread],
    scratches: &mut [NodeScratch],
    cfg: &PipelineConfig,
    req: Request,
    out: &mut ExecOut,
    pending: &mut Vec<PendingAck>,
    writes: &mut Writes,
) {
    let wal = shared.wal.as_deref();
    let set = match shared.map.route(&req.op) {
        Route::Cross(set) => set,
        // Defensive: a Single-routed op in the xqueue just runs locally.
        Route::Single(s) => {
            let mut cm = ContentionManager::new(BackoffPolicy::none(), 1);
            serve_update(
                &domains[s].1,
                &mut threads[s],
                &mut scratches[s],
                &mut cm,
                req,
                out,
                wal,
                s,
                pending,
                writes,
                &shared.shards[s].xlock,
                shared.procs.as_deref(),
            );
            out.shard_served[s] += 1;
            return;
        }
    };
    if let Some(w) = wal {
        if !w.alive() {
            w.note_dead_shed();
            out.shed += 1;
            drop(req);
            return;
        }
        // 2PC never starts against a degraded participant: one shard's
        // bad disk must not burn prepare/compensate work on the others.
        if set.iter().any(|&s| !w.health(s).writable()) {
            w.note_degraded_shed();
            out.shed += 1;
            req.slot.fill(KvReply::Unavailable);
            drop(req);
            return;
        }
    }
    if matches!(&req.op, KvOp::Call { .. }) {
        serve_xshard_call(domains, shared, threads, scratches, cfg, req, out, set);
        return;
    }
    let ups = match &req.op {
        KvOp::MultiPut { pairs } => group_puts(&shared.map, &set, pairs),
        KvOp::MultiAdd { deltas } => group_adds(&shared.map, &set, deltas),
        up => unreachable!("non-update op {up:?} in the cross-shard update lane"),
    };
    let t0 = Instant::now();
    // Ascending shard order → deadlock-free against every other
    // coordinator.
    let _guards: Vec<_> = set.iter().map(|&s| shared.shards[s].xlock.lock()).collect();
    out.twopc.prepares += 1;
    let xid = wal.map(|w| w.next_xid()).unwrap_or(0);
    let committed = Cell::new(0usize); // fully-applied participants
    let escalations = Cell::new(0u64);
    let inflight = Cell::new(None::<usize>); // shard mid-transaction at panic time
    let xbegun = Cell::new(false); // XBegin records are durable
    let undos: RefCell<Vec<UndoImage>> = RefCell::new(Vec::with_capacity(set.len()));
    let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<(), WalError> {
        for (pi, &s) in set.iter().enumerate() {
            inflight.set(Some(s));
            let mut part = ShardPart {
                store: &domains[s].1,
                thread: &mut threads[s],
                scratch: &mut scratches[s],
            };
            let undo = prepare_part(&mut part, &ups[pi]);
            undos.borrow_mut().push(undo);
        }
        inflight.set(None);
        // Durable prepare: every participant's XBegin on disk before
        // anyone applies, so a crash mid-apply can always compensate.
        if let Some(w) = wal {
            let undos = undos.borrow();
            for (pi, &s) in set.iter().enumerate() {
                let _cl = w.commit_lock(s);
                w.append(s, Append::XBegin { xid, parts: &set, upd: &ups[pi], undo: &undos[pi] })?;
            }
            for &s in set.iter() {
                w.flush(s)?;
            }
            xbegun.set(true);
            w.crash_point(CrashSite::AfterPrepare);
        }
        // The prepare → apply seam: the chaos injector's crash window the
        // atomicity tests aim at.
        if hooks::active() {
            hooks::emit(Event::Poll);
        }
        let mut escalated = false;
        let mut xw: Writes = Vec::new();
        for (pi, &s) in set.iter().enumerate() {
            inflight.set(Some(s));
            let mut part = ShardPart {
                store: &domains[s].1,
                thread: &mut threads[s],
                scratch: &mut scratches[s],
            };
            // The commit lock spans apply + append (commit order), and
            // the XApply is durable before the next participant applies.
            let cl = wal.map(|w| w.commit_lock(s));
            if apply_part(&mut part, &ups[pi], escalated, &mut xw) && !escalated {
                escalated = true;
                escalations.set(escalations.get() + 1);
            }
            committed.set(pi + 1);
            if let Some(w) = wal {
                w.append(s, Append::XApply { xid, writes: &xw })?;
                drop(cl);
                w.flush(s)?;
                w.crash_point(CrashSite::AfterApply);
            }
        }
        inflight.set(None);
        // Decision: the first durable XDecide commits the transaction
        // everywhere at recovery; write it to every participant so any
        // single surviving log suffices.
        if let Some(w) = wal {
            let mut decided = false;
            for &s in set.iter() {
                let appended = {
                    let _cl = w.commit_lock(s);
                    w.append(s, Append::XDecide { xid })
                };
                if appended.is_ok() && w.flush(s).is_ok() {
                    decided = true;
                } else if decided {
                    break; // durably committed already; the log just died
                } else {
                    return Err(WalError::Dead);
                }
            }
            w.crash_point(CrashSite::AfterDecision);
        }
        Ok(())
    }));
    out.twopc.escalations += escalations.get();
    for &s in &set {
        out.shard_served[s] += 1;
    }
    let mut degraded = false;
    let failed = match attempt {
        Ok(Ok(())) => false,
        // The log died (power loss) or a participant degraded before any
        // decision became durable: recovery will presume abort, so the
        // live side must abort too — through the same compensation.
        Ok(Err(e)) => {
            degraded = e == WalError::Unavailable;
            true
        }
        Err(_) => {
            // The panicking participant's transaction did not commit (the
            // injector fires inside transaction bodies); its handle is
            // mid-transaction and must be replaced before reuse.
            if let Some(s) = inflight.get() {
                recover_handle(domains, threads, scratches, s, scratch_keys(cfg, shared), out);
            }
            true
        }
    };
    if !failed {
        let service = t0.elapsed();
        // Sync-on-ack already holds: the decision fsync above is the
        // durability point, so the reply needs no pending delay.
        finish(req, KvReply::Done { changed: true }, service, out);
        return;
    }
    let undos = undos.into_inner();
    let mut comp: Writes = Vec::new();
    for (pi, &s) in set.iter().enumerate().take(committed.get()) {
        // Compensation must land even if chaos keeps firing: retry,
        // replacing the handle after each caught panic.
        let mut attempts = 0;
        loop {
            let r = catch_unwind(AssertUnwindSafe(|| {
                let mut part = ShardPart {
                    store: &domains[s].1,
                    thread: &mut threads[s],
                    scratch: &mut scratches[s],
                };
                let cl = wal.map(|w| w.commit_lock(s));
                undo_part(&mut part, &ups[pi], &undos[pi], &mut comp);
                if let Some(w) = wal {
                    if xbegun.get() {
                        // One atomic record at the compensation's true
                        // commit position: abort marker + rollback
                        // post-image. Best-effort on a dying log —
                        // recovery compensates any participant whose
                        // XAbort didn't make it.
                        let _ = w.append(s, Append::XAbort { xid, writes: &comp });
                    }
                }
                drop(cl);
            }));
            if r.is_ok() {
                break;
            }
            recover_handle(domains, threads, scratches, s, scratch_keys(cfg, shared), out);
            attempts += 1;
            assert!(attempts < 1000, "2PC compensation could not complete");
        }
        if let Some(w) = wal {
            let _ = w.flush(s);
        }
    }
    out.twopc.aborts += 1;
    out.shed += 1;
    if degraded {
        // A participant's log degraded mid-protocol (it won the race
        // against the admission pre-check): fully compensated, answered
        // with the same typed refusal the pre-check gives.
        if let Some(w) = wal {
            w.note_degraded_shed();
        }
        req.slot.fill(KvReply::Unavailable);
    }
    drop(req); // Drop backstop answers KvReply::Shed: fully aborted
}

/// Coordinate one cross-shard procedure call. Unlike `MultiPut` /
/// `MultiAdd`, a procedure's write set is *computed* by its body, so
/// the classic prepare-then-apply split (undo capture in a separate
/// read-only pass) is impossible — the undo keys aren't known until the
/// body runs. Instead each participant runs one **combined** leg: the
/// body executes inside that shard's update transaction with pre-images
/// (2PC undo, first-write-wins per key) and post-images (WAL) captured
/// in-transaction, and the leg's `XBegin` (participant set + undo) and
/// `XApply` (post-image) are appended *together* under the shard commit
/// lock, flushed before the next leg runs. A surviving log therefore
/// shows both records or neither, and recovery's image-restore
/// compensation (DESIGN.md §12) applies unchanged — no record format
/// grew for calls.
///
/// The decision protocol, SGL escalation pinning, chaos compensation
/// and `XAbort` logging are exactly the classic path's. A leg returning
/// [`Abort::User`] rolls the committed legs back through the same
/// compensation and answers [`KvReply::CallAborted`] — a served
/// semantic reply, not a shed (and not a 2PC abort in the stats).
#[allow(clippy::too_many_arguments)]
fn serve_xshard_call<B: TmBackend>(
    domains: &[(B, KvStore)],
    shared: &Shared,
    threads: &mut [B::Thread],
    scratches: &mut [NodeScratch],
    cfg: &PipelineConfig,
    req: Request,
    out: &mut ExecOut,
    set: Vec<usize>,
) {
    let wal = shared.wal.as_deref();
    let reg = shared.procs.as_deref();
    let (p, args) = match (
        &req.op,
        reg.and_then(|r| match &req.op {
            KvOp::Call { proc, .. } => r.get(*proc),
            _ => None,
        }),
    ) {
        (KvOp::Call { args, .. }, Some(p)) => (Arc::clone(p), args.clone()),
        _ => {
            finish(req, KvReply::CallAborted, Duration::ZERO, out);
            return;
        }
    };
    let below = reg.map(|r| r.replicated_below()).unwrap_or(0);
    let t0 = Instant::now();
    // Ascending shard order → deadlock-free against every other
    // coordinator (and against single-shard calls, which take their
    // shard's xlock too).
    let _guards: Vec<_> = set.iter().map(|&s| shared.shards[s].xlock.lock()).collect();
    out.twopc.prepares += 1;
    let xid = wal.map(|w| w.next_xid()).unwrap_or(0);
    // The undo image carries the whole rollback; the update half of the
    // XBegin record is an empty Put (see `undo_part`).
    let noop = XUpdate::Put(Vec::new());
    let committed = Cell::new(0usize);
    let escalations = Cell::new(0u64);
    let inflight = Cell::new(None::<usize>);
    let xbegun = Cell::new(false);
    let user_abort = Cell::new(false);
    let undos: RefCell<Vec<UndoImage>> = RefCell::new(Vec::with_capacity(set.len()));
    let outputs: RefCell<Vec<u64>> = RefCell::new(Vec::new());
    let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<(), WalError> {
        let mut escalated = false;
        let mut xw: Writes = Vec::new();
        for &s in set.iter() {
            inflight.set(Some(s));
            let store = &domains[s].1;
            let sgl_before = threads[s].stats().sgl_acquisitions;
            // The commit lock spans execute + append: the XBegin/XApply
            // pair sits at the leg's true commit position in the log.
            let cl = wal.map(|w| w.commit_lock(s));
            let mut undo: UndoImage = Vec::new();
            let mut leg_out: Vec<u64> = Vec::new();
            let outcome = {
                let scratch = &mut scratches[s];
                let thread = &mut threads[s];
                let mut body = |tx: &mut dyn Tx| {
                    // All captures depend on in-transaction reads:
                    // reset per attempt.
                    scratch.reset();
                    xw.clear();
                    undo.clear();
                    leg_out.clear();
                    let mut ctx = ProcCtx::new(
                        store,
                        tx,
                        scratch,
                        Some(&shared.map),
                        s,
                        false,
                        below,
                        wal.is_some().then_some(&mut xw),
                        Some(&mut undo),
                    );
                    leg_out = p.run(&mut ctx, &args)?;
                    Ok(())
                };
                let outcome = if escalated {
                    thread.exec_escalated(&mut body)
                } else {
                    thread.exec(TxKind::Update, &mut body)
                };
                if outcome == Outcome::Committed {
                    scratch.refill(store.alloc());
                    if thread.stats().sgl_acquisitions > sgl_before && !escalated {
                        escalated = true;
                        escalations.set(escalations.get() + 1);
                    }
                }
                outcome
            };
            if outcome == Outcome::UserAborted {
                drop(cl);
                user_abort.set(true);
                inflight.set(None);
                return Ok(());
            }
            undos.borrow_mut().push(undo);
            outputs.borrow_mut().extend(leg_out);
            committed.set(committed.get() + 1);
            if let Some(w) = wal {
                {
                    let undos = undos.borrow();
                    w.append(
                        s,
                        Append::XBegin {
                            xid,
                            parts: &set,
                            upd: &noop,
                            undo: undos.last().expect("just pushed"),
                        },
                    )?;
                }
                w.append(s, Append::XApply { xid, writes: &xw })?;
                drop(cl);
                w.flush(s)?;
                xbegun.set(true);
                // Both classic crash windows collapse onto the per-leg
                // flush here ("durably prepared" and "applied" are the
                // same instant for a combined leg), so both sites arm
                // on the same seam and stay reachable for call-only
                // traffic.
                w.crash_point(CrashSite::AfterPrepare);
                w.crash_point(CrashSite::AfterApply);
            } else {
                drop(cl);
            }
            // Leg → leg seam: the chaos injector's crash window.
            if hooks::active() {
                hooks::emit(Event::Poll);
            }
        }
        inflight.set(None);
        // Decision: identical to the classic path — the first durable
        // XDecide commits the call everywhere at recovery.
        if let Some(w) = wal {
            let mut decided = false;
            for &s in set.iter() {
                let appended = {
                    let _cl = w.commit_lock(s);
                    w.append(s, Append::XDecide { xid })
                };
                if appended.is_ok() && w.flush(s).is_ok() {
                    decided = true;
                } else if decided {
                    break; // durably committed already; the log just died
                } else {
                    return Err(WalError::Dead);
                }
            }
            w.crash_point(CrashSite::AfterDecision);
        }
        Ok(())
    }));
    out.twopc.escalations += escalations.get();
    for &s in &set {
        out.shard_served[s] += 1;
    }
    let mut degraded = false;
    let failed = match attempt {
        Ok(Ok(())) => false,
        Ok(Err(e)) => {
            degraded = e == WalError::Unavailable;
            true
        }
        Err(_) => {
            if let Some(s) = inflight.get() {
                recover_handle(domains, threads, scratches, s, scratch_keys(cfg, shared), out);
            }
            true
        }
    };
    if !failed && !user_abort.get() {
        finish(req, KvReply::CallOk(outputs.into_inner()), t0.elapsed(), out);
        return;
    }
    // Roll the committed legs back by restoring their pre-images —
    // semantic rollback (user abort) and failure compensation share the
    // machinery and the XAbort records.
    let undos = undos.into_inner();
    let mut comp: Writes = Vec::new();
    for (pi, &s) in set.iter().enumerate().take(committed.get()) {
        let mut attempts = 0;
        loop {
            let r = catch_unwind(AssertUnwindSafe(|| {
                let mut part = ShardPart {
                    store: &domains[s].1,
                    thread: &mut threads[s],
                    scratch: &mut scratches[s],
                };
                let cl = wal.map(|w| w.commit_lock(s));
                undo_part(&mut part, &noop, &undos[pi], &mut comp);
                if let Some(w) = wal {
                    if xbegun.get() {
                        let _ = w.append(s, Append::XAbort { xid, writes: &comp });
                    }
                }
                drop(cl);
            }));
            if r.is_ok() {
                break;
            }
            recover_handle(domains, threads, scratches, s, scratch_keys(cfg, shared), out);
            attempts += 1;
            assert!(attempts < 1000, "call compensation could not complete");
        }
        if let Some(w) = wal {
            let _ = w.flush(s);
        }
    }
    if !failed {
        // User abort, fully rolled back: a served semantic reply.
        finish(req, KvReply::CallAborted, t0.elapsed(), out);
    } else {
        out.twopc.aborts += 1;
        out.shed += 1;
        if degraded {
            // Same typed refusal as the admission pre-check: a leg's log
            // degraded mid-call, everything is rolled back.
            if let Some(w) = wal {
                w.note_degraded_shed();
            }
            req.slot.fill(KvReply::Unavailable);
        }
        drop(req); // Drop backstop answers KvReply::Shed: fully aborted
    }
}

/// Serve one cross-shard read-only request: per-shard read-only
/// transactions under the participants' xlocks (so no half-applied
/// cross-shard update can be observed). Point reads merge positionally;
/// scans merge into one globally key-ordered result.
fn serve_xshard_ro<B: TmBackend>(
    domains: &[(B, KvStore)],
    shared: &Shared,
    threads: &mut [B::Thread],
    scratches: &mut [NodeScratch],
    req: Request,
    out: &mut ExecOut,
) {
    let set = match shared.map.route(&req.op) {
        Route::Cross(set) => set,
        Route::Single(s) => {
            // Defensive: serve as a batch of one on the owning shard.
            let mut one = vec![req];
            out.shard_served[s] += 1;
            serve_ro_batch(
                &domains[s].1,
                &mut threads[s],
                &mut scratches[s],
                &mut one,
                shared.procs.as_deref(),
                s,
                out,
            );
            return;
        }
    };
    let t0 = Instant::now();
    let _guards: Vec<_> = set.iter().map(|&s| shared.shards[s].xlock.lock()).collect();
    out.twopc.ro_multi += 1;
    let inflight = Cell::new(None::<usize>);
    let attempt = catch_unwind(AssertUnwindSafe(|| match &req.op {
        KvOp::MultiGet { keys } => {
            let mut vals: Vec<Option<u64>> = vec![None; keys.len()];
            for &s in &set {
                inflight.set(Some(s));
                let store = &domains[s].1;
                let map = &shared.map;
                threads[s].exec(TxKind::ReadOnly, &mut |tx| {
                    for (i, &k) in keys.iter().enumerate() {
                        if map.shard_of(k) == s {
                            vals[i] = store.get_in(tx, k)?;
                        }
                    }
                    Ok(())
                });
            }
            KvReply::Values(vals)
        }
        KvOp::ScanPrefix { .. } | KvOp::ScanRange { .. } => {
            let (from, to, limit) = match &req.op {
                KvOp::ScanPrefix { prefix, shift, limit } => {
                    let (f, t) = KvStore::prefix_range(*prefix, *shift);
                    (f, t, *limit)
                }
                KvOp::ScanRange { from, to, limit } => (*from, *to, *limit),
                _ => unreachable!(),
            };
            // Merge the per-shard scans into ONE key-ordered result cut
            // at the client's limit. Each shard is scanned with the full
            // limit (any one of them might hold the first `limit`
            // matches); summing per-shard-limited views would over-count
            // whenever the range spans a shard boundary.
            let mut entries: Vec<(u64, u64)> = Vec::new();
            for &s in &set {
                inflight.set(Some(s));
                let store = &domains[s].1;
                let start = entries.len();
                threads[s].exec(TxKind::ReadOnly, &mut |tx| {
                    entries.truncate(start); // idempotent across retries
                    store.scan_range_entries_in(tx, from, to, limit, &mut |k, v| {
                        entries.push((k, v));
                    })?;
                    Ok(())
                });
            }
            // Under range partitioning ascending shards already yield
            // ascending keys (the sort is a linear no-op pass); hash
            // partitioning interleaves and genuinely needs it.
            entries.sort_unstable_by_key(|&(k, _)| k);
            entries.truncate(limit.min(usize::MAX as u64) as usize);
            let count = entries.len() as u64;
            let sum = entries.iter().fold(0u64, |a, &(_, v)| a.wrapping_add(v));
            KvReply::Scan { count, sum }
        }
        KvOp::Call { proc, args, .. } => {
            // Read-only cross-shard call: one RO leg per participant
            // under the xlocks; leg outputs concatenate in ascending
            // shard order, like update legs.
            match shared.procs.as_deref().and_then(|r| r.get(*proc)) {
                None => KvReply::CallAborted,
                Some(p) => {
                    let below = shared.procs.as_deref().map(|r| r.replicated_below()).unwrap_or(0);
                    let mut outs: Vec<u64> = Vec::new();
                    let mut user = false;
                    for &s in &set {
                        inflight.set(Some(s));
                        let store = &domains[s].1;
                        let scratch = &mut scratches[s];
                        let mut leg: Vec<u64> = Vec::new();
                        let mut user_leg = false;
                        threads[s].exec(TxKind::ReadOnly, &mut |tx| {
                            leg.clear();
                            user_leg = false;
                            let mut ctx = ProcCtx::new(
                                store,
                                tx,
                                scratch,
                                Some(&shared.map),
                                s,
                                false,
                                below,
                                None,
                                None,
                            );
                            match p.run(&mut ctx, args) {
                                Ok(v) => {
                                    leg = v;
                                    Ok(())
                                }
                                Err(Abort::User) => {
                                    user_leg = true;
                                    Ok(())
                                }
                                Err(e) => Err(e),
                            }
                        });
                        if user_leg {
                            user = true;
                            break;
                        }
                        outs.extend(leg);
                    }
                    if user {
                        KvReply::CallAborted
                    } else {
                        KvReply::CallOk(outs)
                    }
                }
            }
        }
        up => unreachable!("update op {up:?} in the cross-shard read-only lane"),
    }));
    for &s in &set {
        out.shard_served[s] += 1;
    }
    match attempt {
        Ok(reply) => {
            let service = t0.elapsed();
            finish(req, reply, service, out);
        }
        Err(_) => {
            if let Some(s) = inflight.get() {
                threads[s] = domains[s].0.register_thread();
                out.handle_resets += 1;
            }
            out.shed += 1;
            drop(req); // answered Shed
        }
    }
}

/// Record latency and answer the client.
fn finish(req: Request, reply: KvReply, service: Duration, out: &mut ExecOut) {
    let e2e = req.enqueued.elapsed();
    let cl = &mut out.classes[req.op.class().index()];
    cl.e2e.record(e2e);
    cl.service.record(service);
    if let KvOp::Call { proc, .. } = &req.op {
        if let Some(pl) = out.procs.iter_mut().find(|pl| pl.proc == *proc) {
            pl.e2e.record(e2e);
            pl.service.record(service);
        }
    }
    req.slot.fill(reply);
    out.served += 1;
    // `req` drops here with the slot already filled: the backstop no-ops.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc::{KvTx, Procedure};
    use crate::shard::build_domains;
    use si_htm::SiHtm;

    /// args `[from, to, amount, cap?]`: moves `amount` from `from` to
    /// `to`, user-aborting on insufficient funds or when the destination
    /// would exceed `cap`. Each leg touches only its local keys, so the
    /// same body serves single-shard and cross-shard calls.
    struct Transfer;

    impl Procedure for Transfer {
        fn id(&self) -> u64 {
            1
        }
        fn name(&self) -> &'static str {
            "transfer"
        }
        fn run(&self, ctx: &mut ProcCtx<'_>, args: &[u64]) -> Result<Vec<u64>, Abort> {
            let (from, to, amt) = (args[0], args[1], args[2]);
            let cap = args.get(3).copied().unwrap_or(u64::MAX);
            let mut outs = Vec::new();
            if ctx.is_local(from) {
                let v = ctx.get(from)?.unwrap_or(0);
                if v < amt {
                    return Err(Abort::User);
                }
                ctx.put(from, v - amt)?;
                outs.push(v - amt);
            }
            if ctx.is_local(to) {
                let v = ctx.get(to)?.unwrap_or(0);
                if v.saturating_add(amt) > cap {
                    return Err(Abort::User);
                }
                ctx.put(to, v + amt)?;
                outs.push(v + amt);
            }
            Ok(outs)
        }
    }

    /// Read-only: returns the value of every local key in `args`.
    struct ReadVals;

    impl Procedure for ReadVals {
        fn id(&self) -> u64 {
            2
        }
        fn name(&self) -> &'static str {
            "read_vals"
        }
        fn read_only(&self) -> bool {
            true
        }
        fn run(&self, ctx: &mut ProcCtx<'_>, args: &[u64]) -> Result<Vec<u64>, Abort> {
            let mut outs = Vec::new();
            for &k in args {
                if ctx.is_local(k) {
                    outs.push(ctx.get(k)?.unwrap_or(0));
                }
            }
            Ok(outs)
        }
    }

    fn registry() -> Arc<ProcRegistry> {
        Arc::new(ProcRegistry::new().register(Arc::new(Transfer)).register(Arc::new(ReadVals)))
    }

    fn proc_pipeline(shards: usize, executors: usize) -> Pipeline<SiHtm> {
        let map = ShardMap::range(shards, 64);
        let domains = build_domains(
            &map,
            |_| SiHtm::with_defaults(1 << 16),
            0,
            1 << 16,
            (0..64 * shards as u64).map(|k| (k, k)),
        );
        let cfg = PipelineConfig { executors, ..PipelineConfig::quick() };
        Pipeline::start_with(domains, map, cfg, None, Some(registry()))
    }

    fn transfer_op(from: u64, to: u64, amt: u64, cap: Option<u64>) -> KvOp {
        let mut args = vec![from, to, amt];
        if let Some(c) = cap {
            args.push(c);
        }
        KvOp::Call { proc: 1, args, footprint: vec![from, to], read_only: false }
    }

    fn pipeline(executors: usize) -> Pipeline<SiHtm> {
        let backend = SiHtm::with_defaults(1 << 16);
        let store = KvStore::create_with(
            tm_api::TmBackend::memory(&backend),
            0,
            1 << 16,
            (0..128u64).map(|k| (k, k)),
        );
        let cfg = PipelineConfig { executors, ..PipelineConfig::quick() };
        Pipeline::start(backend, store, cfg)
    }

    fn sharded_pipeline(shards: usize, executors: usize) -> Pipeline<SiHtm> {
        let map = ShardMap::range(shards, 64);
        let domains = build_domains(
            &map,
            |_| SiHtm::with_defaults(1 << 16),
            0,
            1 << 16,
            (0..64 * shards as u64).map(|k| (k, k)),
        );
        let cfg = PipelineConfig { executors, ..PipelineConfig::quick() };
        Pipeline::start_sharded(domains, map, cfg)
    }

    #[test]
    fn serves_point_ops_end_to_end() {
        let p = pipeline(2);
        let client = p.client();
        assert_eq!(client.call(KvOp::Get { key: 5 }), Ok(KvReply::Value(Some(5))));
        assert_eq!(
            client.call(KvOp::Put { key: 500, val: 1 }),
            Ok(KvReply::Done { changed: true })
        );
        assert_eq!(client.call(KvOp::Get { key: 500 }), Ok(KvReply::Value(Some(1))));
        assert_eq!(client.call(KvOp::Delete { key: 500 }), Ok(KvReply::Done { changed: true }));
        assert_eq!(client.call(KvOp::Get { key: 500 }), Ok(KvReply::Value(None)));
        let report = p.shutdown();
        assert_eq!(report.replies, 5);
        assert_eq!(report.shed, 0);
        assert!(report.class(OpClass::Get).count() == 3);
        assert!(report.class(OpClass::Get).e2e.quantile(0.5) > 0);
    }

    #[test]
    fn ro_batches_form_under_concurrent_submission() {
        let p = pipeline(1); // single executor → pending RO requests pile up
        let client = p.client();
        // Park the executor behind a slow update? Simpler: submit a pile of
        // RO requests without waiting, so the queue has depth when the
        // executor next pops.
        let pending: Vec<_> =
            (0..200).map(|i| client.submit(KvOp::Get { key: i % 64 }).unwrap()).collect();
        for pr in pending {
            assert!(matches!(pr.wait(), KvReply::Value(Some(_))));
        }
        let report = p.shutdown();
        assert_eq!(report.replies, 200);
        assert!(
            report.ro_batches < 200,
            "200 gets must not take 200 RO transactions (got {})",
            report.ro_batches
        );
        assert!(report.mean_ro_batch() > 1.0, "batching never engaged");
        assert_eq!(report.ro_batch_aborts, 0, "SI-HTM RO fast path must never abort");
    }

    #[test]
    fn overload_sheds_with_typed_error_and_bounded_queue() {
        let backend = SiHtm::with_defaults(1 << 16);
        let store = KvStore::create(tm_api::TmBackend::memory(&backend), 0, 1 << 16);
        // Zero-throughput trick: executors=1 with a huge idle wait would
        // still serve; instead choke capacity so floods must shed.
        let cfg = PipelineConfig {
            executors: 1,
            ro_queue_cap: 8,
            rw_queue_cap: 8,
            ..PipelineConfig::quick()
        };
        let p = Pipeline::start(backend, store, cfg);
        let client = p.client();
        let mut overloaded = 0u64;
        let mut accepted = Vec::new();
        for i in 0..5_000u64 {
            match client.submit(KvOp::Put { key: i, val: i }) {
                Ok(pr) => accepted.push(pr),
                Err(KvError::Overloaded { class, shard }) => {
                    assert_eq!(class, OpClass::Put);
                    assert_eq!(shard, Some(0), "single-shard refusal names its shard");
                    overloaded += 1;
                }
                Err(e) => panic!("unexpected error {e:?}"),
            }
            let (ro, rw) = client.queue_depths();
            assert!(ro <= 8 && rw <= 8, "queue depth exceeded its bound");
        }
        assert!(overloaded > 0, "flood against a tiny queue must shed");
        for pr in accepted {
            assert!(!matches!(pr.wait(), KvReply::Shed));
        }
        let report = p.shutdown();
        assert_eq!(report.overloaded, overloaded);
        assert_eq!(report.panicked_executors, 0);
    }

    #[test]
    fn too_large_multi_ops_are_rejected_at_admission() {
        let p = pipeline(1);
        let client = p.client();
        let pairs: Vec<(u64, u64)> = (0..64).map(|i| (i, i)).collect();
        assert_eq!(
            client.call(KvOp::MultiPut { pairs }),
            Err(KvError::TooLarge { class: OpClass::MultiPut, keys: 64, max: 16 })
        );
        let deltas: Vec<(u64, i64)> = (0..64).map(|i| (i, 1)).collect();
        assert_eq!(
            client.call(KvOp::MultiAdd { deltas }),
            Err(KvError::TooLarge { class: OpClass::MultiAdd, keys: 64, max: 16 })
        );
        let report = p.shutdown();
        assert_eq!(report.replies, 0);
    }

    #[test]
    fn shutdown_rejects_new_work_and_sheds_nothing_when_drained() {
        let p = pipeline(2);
        let client = p.client();
        client.call(KvOp::Put { key: 1, val: 1 }).unwrap();
        let report = p.shutdown();
        assert_eq!(report.shed, 0);
        assert_eq!(client.call(KvOp::Get { key: 1 }), Err(KvError::ShuttingDown));
    }

    #[test]
    fn sharded_pipeline_serves_single_and_cross_shard_ops() {
        // 2 shards of 64 keys each, range-partitioned: 100 is shard 1.
        let p = sharded_pipeline(2, 2);
        let client = p.client();
        // Single-shard point ops on both shards.
        assert_eq!(client.call(KvOp::Get { key: 5 }), Ok(KvReply::Value(Some(5))));
        assert_eq!(client.call(KvOp::Get { key: 100 }), Ok(KvReply::Value(Some(100))));
        assert_eq!(
            client.call(KvOp::Put { key: 10, val: 999 }),
            Ok(KvReply::Done { changed: false })
        );
        // Cross-shard read: positional, spanning both shards.
        assert_eq!(
            client.call(KvOp::MultiGet { keys: vec![5, 100, 10] }),
            Ok(KvReply::Values(vec![Some(5), Some(100), Some(999)]))
        );
        // Cross-shard transfer via 2PC: conserved.
        assert_eq!(
            client.call(KvOp::MultiAdd { deltas: vec![(5, -3), (100, 3)] }),
            Ok(KvReply::Done { changed: true })
        );
        assert_eq!(
            client.call(KvOp::MultiGet { keys: vec![5, 100] }),
            Ok(KvReply::Values(vec![Some(2), Some(103)]))
        );
        // Cross-shard scan: keys 0..128 present, values mutated above.
        match client.call(KvOp::ScanPrefix { prefix: 0, shift: 7, limit: 1000 }) {
            Ok(KvReply::Scan { count, .. }) => assert_eq!(count, 128),
            other => panic!("unexpected scan reply {other:?}"),
        }
        let report = p.shutdown();
        assert_eq!(report.shards, 2);
        assert_eq!(report.twopc.prepares, 1, "exactly one cross-shard update ran 2PC");
        assert_eq!(report.twopc.aborts, 0);
        assert!(report.twopc.ro_multi >= 3, "cross-shard reads coordinated");
        assert!(report.shard_served.iter().all(|&n| n > 0), "both shards served work");
        assert_eq!(report.shed, 0);
    }

    #[test]
    fn call_procedures_execute_single_shard() {
        let p = proc_pipeline(1, 2);
        let client = p.client();
        // 5 -> 9, amount 3: both keys shard 0, one update transaction.
        assert_eq!(client.call(transfer_op(5, 9, 3, None)), Ok(KvReply::CallOk(vec![2, 12])));
        // Insufficient funds: semantic abort, nothing changed.
        assert_eq!(client.call(transfer_op(5, 9, 100, None)), Ok(KvReply::CallAborted));
        assert_eq!(
            client.call(KvOp::MultiGet { keys: vec![5, 9] }),
            Ok(KvReply::Values(vec![Some(2), Some(12)]))
        );
        // Read-only call batches onto the RO lane.
        assert_eq!(
            client.call(KvOp::Call {
                proc: 2,
                args: vec![5, 9],
                footprint: vec![5, 9],
                read_only: true,
            }),
            Ok(KvReply::CallOk(vec![2, 12]))
        );
        // Unknown procedure: answered, not wedged.
        assert_eq!(
            client.call(KvOp::Call {
                proc: 99,
                args: vec![],
                footprint: vec![5],
                read_only: false
            }),
            Ok(KvReply::CallAborted)
        );
        let report = p.shutdown();
        assert_eq!(report.shed, 0);
        let tl = report.proc("transfer").expect("registered");
        assert_eq!(tl.count(), 2, "both transfer calls (ok + user abort) recorded");
        assert_eq!(report.proc("read_vals").expect("registered").count(), 1);
        assert!(report.class(OpClass::Call).count() >= 4);
    }

    #[test]
    fn call_procedures_execute_cross_shard_with_rollback() {
        // Range map, 64 keys/shard: key 5 is shard 0, key 100 is shard 1.
        let p = proc_pipeline(2, 2);
        let client = p.client();
        assert_eq!(client.call(transfer_op(5, 100, 3, None)), Ok(KvReply::CallOk(vec![2, 103])));
        // Second leg user-aborts (cap exceeded) AFTER the first leg
        // committed: the first leg must be compensated back to 2.
        assert_eq!(client.call(transfer_op(5, 100, 1, Some(10))), Ok(KvReply::CallAborted));
        assert_eq!(
            client.call(KvOp::MultiGet { keys: vec![5, 100] }),
            Ok(KvReply::Values(vec![Some(2), Some(103)]))
        );
        // Cross-shard read-only call under the xlocks.
        assert_eq!(
            client.call(KvOp::Call {
                proc: 2,
                args: vec![5, 100],
                footprint: vec![5, 100],
                read_only: true,
            }),
            Ok(KvReply::CallOk(vec![2, 103]))
        );
        let report = p.shutdown();
        assert_eq!(report.shed, 0, "user aborts are served replies, not sheds");
        assert_eq!(report.twopc.prepares, 2, "both cross-shard calls coordinated");
        assert_eq!(report.twopc.aborts, 0, "semantic rollback is not a 2PC failure");
        assert_eq!(report.proc("transfer").expect("registered").count(), 2);
    }

    #[test]
    fn cross_shard_scans_merge_ordered_and_respect_limit() {
        // 2 shards, range-partitioned at 64, values == keys.
        let p = sharded_pipeline(2, 2);
        let client = p.client();
        // The whole keyspace with a limit smaller than either shard's
        // share: the answer is the first 10 keys GLOBALLY (0..10), not
        // 10 per shard summed.
        match client.call(KvOp::ScanPrefix { prefix: 0, shift: 7, limit: 10 }) {
            Ok(KvReply::Scan { count, sum }) => {
                assert_eq!(count, 10, "global limit, not per-shard limit summed");
                assert_eq!(sum, (0..10).sum::<u64>());
            }
            other => panic!("unexpected scan reply {other:?}"),
        }
        // A range straddling the shard boundary merges both sides.
        match client.call(KvOp::ScanRange { from: 60, to: 70, limit: 100 }) {
            Ok(KvReply::Scan { count, sum }) => {
                assert_eq!(count, 10);
                assert_eq!(sum, (60..70).sum::<u64>());
            }
            other => panic!("unexpected scan reply {other:?}"),
        }
        // Straddling range cut mid-merge: first 5 keys of 60..70.
        match client.call(KvOp::ScanRange { from: 60, to: 70, limit: 5 }) {
            Ok(KvReply::Scan { count, sum }) => {
                assert_eq!(count, 5);
                assert_eq!(sum, (60..65).sum::<u64>());
            }
            other => panic!("unexpected scan reply {other:?}"),
        }
        // Single-shard range routes shard-affine and needs no xlocks.
        match client.call(KvOp::ScanRange { from: 0, to: 64, limit: 1000 }) {
            Ok(KvReply::Scan { count, .. }) => assert_eq!(count, 64),
            other => panic!("unexpected scan reply {other:?}"),
        }
        let report = p.shutdown();
        assert_eq!(report.shed, 0);
        assert!(report.twopc.ro_multi >= 3, "boundary-spanning scans coordinated");
    }

    #[test]
    fn sharded_routing_is_shard_affine_for_single_shard_ops() {
        let p = sharded_pipeline(4, 4);
        let client = p.client();
        for k in 0..256u64 {
            client.call(KvOp::Get { key: k % 200 }).unwrap();
        }
        let report = p.shutdown();
        assert_eq!(report.twopc.prepares, 0, "point gets never enter 2PC");
        assert_eq!(report.twopc.ro_multi, 0, "point gets never take xlocks");
        assert_eq!(report.replies, 256);
    }
}
