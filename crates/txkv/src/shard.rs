//! Sharding: keyspace partitioning, cross-shard routing, and the
//! two-phase-commit core for multi-shard read-write transactions.
//!
//! Each shard is a *complete, independent* backend instance — its own
//! simulated memory, conflict directory, TMCAM pool, `StateArray`, and
//! (critically, for SI-HTM) its own quiescence domain. A writer's
//! commit-time safety wait scans only the threads active *in its shard*,
//! so partitioning the keyspace turns the paper's main scaling cost from
//! O(total writers) into O(writers per shard). The [`ShardMap`] decides
//! which shard owns which key; the pipeline routes single-shard requests
//! to a shard-affine executor so the common case pays zero cross-shard
//! coordination.
//!
//! ## Cross-shard transactions
//!
//! A multi-key update whose keys span shards cannot run as one backend
//! transaction — there is no backend that sees both memories. The
//! coordinator (any executor) runs a two-phase protocol over per-shard
//! transactions, under per-shard coordination locks ([`XLock`]) acquired
//! in ascending shard order (deadlock-free):
//!
//! 1. **prepare** — one read-only transaction per participant records an
//!    undo image of the op's keys;
//! 2. **apply** — one update transaction per participant applies its
//!    part. If a participant escalated to its serialized fall-back path
//!    (observable as an `sgl_acquisitions` delta), the remaining
//!    participants are pinned to [`TmThread::exec_escalated`] — once the
//!    protocol is half-applied, optimism only risks more mid-protocol
//!    aborts.
//!
//! If apply unwinds (the chaos injector panics inside a transaction
//! body), the caller compensates: already-applied participants are rolled
//! back from the undo images ([`undo_parts`]), so an accepted cross-shard
//! transfer either fully applies or fully aborts.
//!
//! ## What the locks do and don't serialize
//!
//! Single-shard operations never touch an [`XLock`]: within one shard the
//! backend's own concurrency control is complete. The locks mutually
//! exclude *cross-shard* operations with overlapping participant sets —
//! a cross-shard audit (multi-shard `MultiGet`) therefore cannot observe
//! a half-applied cross-shard transfer. Concurrent single-shard updates
//! can still commit between a cross-shard reader's per-shard snapshots;
//! that is admissible exactly because local operations are atomic per
//! shard (a conserving local transfer keeps its shard's total fixed, so
//! the audit's per-shard sums still add up). Undo for `MultiAdd` is
//! delta-form (apply the negated deltas), which commutes with concurrent
//! local adds; undo for `MultiPut` restores prepare-time images, which is
//! admissible for blind writes (a concurrent racing blind write to the
//! same key has no serialization-order claim either way).

use crate::store::{KvOp, KvStore};
use std::sync::atomic::{AtomicBool, Ordering};
use tm_api::{Outcome, TmThread, TxKind};
use txmem::hooks::{self, Event};
use workloads::btree::NodeScratch;

/// How the keyspace is partitioned across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioning {
    /// Multiplicative hashing: keys scatter uniformly; range scans touch
    /// every shard.
    Hash,
    /// Contiguous ranges of `keys_per_shard` keys per shard (the tail
    /// shard absorbs the rest of the keyspace); range scans touch only
    /// the shards covering the range.
    Range { keys_per_shard: u64 },
}

/// Key → shard assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
    part: Partitioning,
}

/// Where one [`KvOp`] must execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// All keys live in one shard: backend-native execution, no
    /// coordination.
    Single(usize),
    /// Participant shards, ascending and deduplicated. Read-only ops run
    /// one read-only transaction per shard; updates run two-phase commit.
    Cross(Vec<usize>),
}

impl ShardMap {
    /// Hash partitioning over `shards` shards.
    pub fn hash(shards: usize) -> ShardMap {
        assert!(shards > 0, "need at least one shard");
        ShardMap { shards, part: Partitioning::Hash }
    }

    /// Range partitioning: shard `i` owns `[i*keys_per_shard, (i+1)*keys_per_shard)`
    /// (last shard unbounded above).
    pub fn range(shards: usize, keys_per_shard: u64) -> ShardMap {
        assert!(shards > 0, "need at least one shard");
        assert!(keys_per_shard > 0, "keys_per_shard must be nonzero");
        ShardMap { shards, part: Partitioning::Range { keys_per_shard } }
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    pub fn partitioning(&self) -> Partitioning {
        self.part
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: u64) -> usize {
        if self.shards == 1 {
            return 0;
        }
        match self.part {
            Partitioning::Hash => {
                // Fibonacci multiplicative mix; low bits of the product are
                // poorly mixed, so fold the high half down first.
                let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((h >> 32) % self.shards as u64) as usize
            }
            Partitioning::Range { keys_per_shard } => {
                ((key / keys_per_shard) as usize).min(self.shards - 1)
            }
        }
    }

    /// Shards covering the key range `[from, to)`, ascending and deduped.
    /// Under hash partitioning a wide range touches every shard; a narrow
    /// one (≤ 64 keys) is resolved exactly.
    pub fn shards_for_range(&self, from: u64, to: u64) -> Vec<usize> {
        if self.shards == 1 || from >= to {
            return vec![0];
        }
        match self.part {
            Partitioning::Hash => {
                if to - from <= 64 {
                    let mut set: Vec<usize> = (from..to).map(|k| self.shard_of(k)).collect();
                    set.sort_unstable();
                    set.dedup();
                    set
                } else {
                    (0..self.shards).collect()
                }
            }
            Partitioning::Range { .. } => {
                let lo = self.shard_of(from);
                let hi = self.shard_of(to - 1);
                (lo..=hi).collect()
            }
        }
    }

    /// Shard set of a key list, ascending and deduped (empty list → shard 0).
    fn shards_of_keys(&self, keys: impl Iterator<Item = u64>) -> Vec<usize> {
        let mut set: Vec<usize> = keys.map(|k| self.shard_of(k)).collect();
        if set.is_empty() {
            return vec![0];
        }
        set.sort_unstable();
        set.dedup();
        set
    }

    /// Route one operation.
    pub fn route(&self, op: &KvOp) -> Route {
        if self.shards == 1 {
            return Route::Single(0);
        }
        let set = match op {
            KvOp::Get { key }
            | KvOp::Put { key, .. }
            | KvOp::Delete { key }
            | KvOp::Cas { key, .. } => return Route::Single(self.shard_of(*key)),
            KvOp::MultiGet { keys } => self.shards_of_keys(keys.iter().copied()),
            KvOp::MultiPut { pairs } => self.shards_of_keys(pairs.iter().map(|&(k, _)| k)),
            KvOp::MultiAdd { deltas } => self.shards_of_keys(deltas.iter().map(|&(k, _)| k)),
            KvOp::ScanPrefix { prefix, shift, .. } => {
                let (from, to) = KvStore::prefix_range(*prefix, *shift);
                self.shards_for_range(from, to)
            }
            KvOp::ScanRange { from, to, .. } => self.shards_for_range(*from, *to),
            KvOp::Call { footprint, .. } => self.shards_of_keys(footprint.iter().copied()),
        };
        match set.as_slice() {
            [one] => Route::Single(*one),
            _ => Route::Cross(set),
        }
    }
}

/// Cross-shard coordination lock: a plain test-and-set spinlock whose
/// spin emits [`Event::Poll`], so it works both under free-running OS
/// threads (yield between probes) and under `tm-check`'s cooperative
/// baton scheduler (the emit *is* the yield point — an OS mutex would
/// deadlock the baton). No poisoning: an unwinding holder releases via
/// the guard's `Drop`, and the lock state cannot be corrupted mid-flight
/// because the flag is the entire state.
#[derive(Debug, Default)]
pub struct XLock {
    locked: AtomicBool,
}

impl XLock {
    pub fn new() -> XLock {
        XLock { locked: AtomicBool::new(false) }
    }

    /// Non-blocking acquire.
    pub fn try_lock(&self) -> Option<XGuard<'_>> {
        if self.locked.compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed).is_ok() {
            Some(XGuard(self))
        } else {
            None
        }
    }

    /// Spin until acquired, yielding (and emitting [`Event::Poll`]) each
    /// probe. Callers must acquire multiple locks in ascending shard
    /// order; that global order makes the protocol deadlock-free.
    pub fn lock(&self) -> XGuard<'_> {
        loop {
            if let Some(g) = self.try_lock() {
                return g;
            }
            if hooks::active() {
                hooks::emit(Event::Poll);
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }
}

/// RAII release handle for [`XLock`].
#[derive(Debug)]
pub struct XGuard<'a>(&'a XLock);

impl Drop for XGuard<'_> {
    fn drop(&mut self) {
        self.0.locked.store(false, Ordering::Release);
    }
}

/// One participant's slice of a cross-shard update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XUpdate {
    /// Blind writes (`MultiPut` keys owned by this shard).
    Put(Vec<(u64, u64)>),
    /// Read-modify-write deltas (`MultiAdd` keys owned by this shard).
    Add(Vec<(u64, i64)>),
}

impl XUpdate {
    fn keys(&self) -> Box<dyn Iterator<Item = u64> + '_> {
        match self {
            XUpdate::Put(pairs) => Box::new(pairs.iter().map(|&(k, _)| k)),
            XUpdate::Add(deltas) => Box::new(deltas.iter().map(|&(k, _)| k)),
        }
    }
}

/// Per-key undo image recorded at prepare (`None` = key was absent).
pub type UndoImage = Vec<(u64, Option<u64>)>;

/// Borrowed execution context for one participant shard. The coordinator
/// owns a registered thread handle and a write scratch *per shard*; the
/// 2PC functions below only see them through this view, so the pipeline
/// (monomorphic backend handles) and the `tm-check` scenario (boxed
/// handles) share the protocol implementation.
pub struct ShardPart<'a> {
    pub store: &'a KvStore,
    pub thread: &'a mut dyn TmThread,
    pub scratch: &'a mut NodeScratch,
}

/// Phase 1 for one participant: record its undo image in one read-only
/// transaction. Caller holds all participating [`XLock`]s and calls this
/// once per participant, in ascending shard order.
pub fn prepare_part(part: &mut ShardPart<'_>, upd: &XUpdate) -> UndoImage {
    let mut undo: UndoImage = Vec::new();
    let store = part.store;
    part.thread.exec(TxKind::ReadOnly, &mut |tx| {
        undo.clear(); // idempotent across fallback-path retries
        for key in upd.keys() {
            undo.push((key, store.get_in(tx, key)?));
        }
        Ok(())
    });
    undo
}

/// Phase 2 for one participant: apply its part in one update
/// transaction. Returns `true` if this participant escalated to the
/// serialized fall-back path during the apply (callers then pin the
/// remaining participants by passing `escalated = true`). An unwind
/// inside the transaction body (chaos panic) leaves this participant
/// *not* applied — the injector only panics at transactional access
/// points, never after the commit — so callers count a participant as
/// applied only once this returns.
///
/// `writes` receives the committed post-image (captured inside the
/// transaction body, reset per attempt) — what a durable pipeline logs
/// as this participant's `XApply` record. Pass a scratch vec and ignore
/// it when not logging.
pub fn apply_part(
    part: &mut ShardPart<'_>,
    upd: &XUpdate,
    escalated: bool,
    writes: &mut Vec<(u64, Option<u64>)>,
) -> bool {
    let sgl_before = part.thread.stats().sgl_acquisitions;
    let store = part.store;
    let scratch = &mut *part.scratch;
    let mut body = |tx: &mut dyn tm_api::Tx| {
        scratch.reset();
        writes.clear();
        match upd {
            XUpdate::Put(pairs) => {
                for &(k, v) in pairs {
                    store.put_in(tx, scratch, k, v)?;
                    writes.push((k, Some(v)));
                }
            }
            XUpdate::Add(deltas) => {
                for &(k, d) in deltas {
                    let cur = store.get_in(tx, k)?.unwrap_or(0);
                    let v = cur.wrapping_add(d as u64);
                    store.put_in(tx, scratch, k, v)?;
                    writes.push((k, Some(v)));
                }
            }
        }
        Ok(())
    };
    let out = if escalated {
        part.thread.exec_escalated(&mut body)
    } else {
        part.thread.exec(TxKind::Update, &mut body)
    };
    if out == Outcome::Committed {
        part.scratch.refill(part.store.alloc());
    }
    part.thread.stats().sgl_acquisitions > sgl_before
}

/// Compensate one *applied* participant of an interrupted 2PC. `Add`
/// parts undo in delta form (commutes with concurrent local adds); `Put`
/// parts restore the prepare-time image.
///
/// `writes` receives the committed compensation post-image (a durable
/// pipeline logs it as an ordinary `Write` record before the `XAbort`
/// marker, so replay sees the rollback at its true position in commit
/// order). Pass a scratch vec and ignore it when not logging.
pub fn undo_part(
    part: &mut ShardPart<'_>,
    upd: &XUpdate,
    undo: &UndoImage,
    writes: &mut Vec<(u64, Option<u64>)>,
) {
    let store = part.store;
    let scratch = &mut *part.scratch;
    let out = part.thread.exec(TxKind::Update, &mut |tx| {
        scratch.reset();
        writes.clear();
        match upd {
            XUpdate::Add(deltas) => {
                for &(k, d) in deltas {
                    let cur = store.get_in(tx, k)?.unwrap_or(0);
                    let v = cur.wrapping_sub(d as u64);
                    store.put_in(tx, scratch, k, v)?;
                    writes.push((k, Some(v)));
                }
            }
            XUpdate::Put(_) => {
                for &(k, old) in undo.iter() {
                    match old {
                        Some(v) => {
                            store.put_in(tx, scratch, k, v)?;
                            writes.push((k, Some(v)));
                        }
                        None => {
                            store.delete_in(tx, k)?;
                            writes.push((k, None));
                        }
                    }
                }
            }
        }
        Ok(())
    });
    if out == Outcome::Committed {
        part.scratch.refill(part.store.alloc());
    }
}

/// Build one `(backend, store)` domain per shard: `mk_backend(s)`
/// constructs shard `s`'s instance (own memory, own quiescence domain),
/// and its store is bulk-loaded with exactly the `entries` the
/// [`ShardMap`] assigns to it. Node arenas span `[base, base + words)`
/// of each shard's private memory.
pub fn build_domains<B: tm_api::TmBackend>(
    map: &ShardMap,
    mut mk_backend: impl FnMut(usize) -> B,
    base: txmem::Addr,
    words: u64,
    entries: impl Iterator<Item = (u64, u64)> + Clone,
) -> Vec<(B, KvStore)> {
    (0..map.shards())
        .map(|s| {
            let backend = mk_backend(s);
            let store = KvStore::create_with(
                tm_api::TmBackend::memory(&backend),
                base,
                words,
                entries.clone().filter(|&(k, _)| map.shard_of(k) == s),
            );
            (backend, store)
        })
        .collect()
}

/// Group `MultiPut` pairs by owning shard, in `set` order.
pub fn group_puts(map: &ShardMap, set: &[usize], pairs: &[(u64, u64)]) -> Vec<XUpdate> {
    set.iter()
        .map(|&s| {
            XUpdate::Put(pairs.iter().copied().filter(|&(k, _)| map.shard_of(k) == s).collect())
        })
        .collect()
}

/// Group `MultiAdd` deltas by owning shard, in `set` order.
pub fn group_adds(map: &ShardMap, set: &[usize], deltas: &[(u64, i64)]) -> Vec<XUpdate> {
    set.iter()
        .map(|&s| {
            XUpdate::Add(deltas.iter().copied().filter(|&(k, _)| map.shard_of(k) == s).collect())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_map_covers_all_shards_and_is_stable() {
        let map = ShardMap::hash(4);
        let mut seen = [false; 4];
        for k in 0..256u64 {
            let s = map.shard_of(k);
            assert!(s < 4);
            assert_eq!(s, map.shard_of(k), "assignment must be deterministic");
            seen[s] = true;
        }
        assert!(seen.iter().all(|&b| b), "256 keys must hit all 4 shards");
    }

    #[test]
    fn range_map_is_contiguous() {
        let map = ShardMap::range(4, 100);
        assert_eq!(map.shard_of(0), 0);
        assert_eq!(map.shard_of(99), 0);
        assert_eq!(map.shard_of(100), 1);
        assert_eq!(map.shard_of(399), 3);
        assert_eq!(map.shard_of(u64::MAX), 3, "tail shard absorbs the rest");
        assert_eq!(map.shards_for_range(50, 250), vec![0, 1, 2]);
        assert_eq!(map.shards_for_range(100, 200), vec![1]);
    }

    #[test]
    fn routing_classifies_single_vs_cross() {
        let map = ShardMap::range(2, 100);
        assert_eq!(map.route(&KvOp::Get { key: 5 }), Route::Single(0));
        assert_eq!(map.route(&KvOp::Put { key: 150, val: 1 }), Route::Single(1));
        assert_eq!(map.route(&KvOp::MultiGet { keys: vec![1, 2] }), Route::Single(0));
        assert_eq!(
            map.route(&KvOp::MultiAdd { deltas: vec![(1, -5), (150, 5)] }),
            Route::Cross(vec![0, 1])
        );
        // One shard → everything is Single, even wide scans.
        let one = ShardMap::hash(1);
        assert_eq!(
            one.route(&KvOp::ScanPrefix { prefix: 0, shift: 60, limit: 10 }),
            Route::Single(0)
        );
    }

    #[test]
    fn grouping_partitions_without_loss() {
        let map = ShardMap::range(2, 100);
        let adds = vec![(10u64, -3i64), (150, 3), (20, 1)];
        let set = vec![0, 1];
        let grouped = group_adds(&map, &set, &adds);
        assert_eq!(grouped[0], XUpdate::Add(vec![(10, -3), (20, 1)]));
        assert_eq!(grouped[1], XUpdate::Add(vec![(150, 3)]));
    }

    #[test]
    fn xlock_excludes_and_releases_on_drop() {
        let l = XLock::new();
        let g = l.try_lock().expect("uncontended acquire");
        assert!(l.try_lock().is_none(), "held lock must refuse");
        drop(g);
        assert!(l.try_lock().is_some(), "drop must release");
    }
}
