//! Sharded service-layer semantics, on all four backends:
//!
//! * cross-shard transfers (two-phase commit over per-shard
//!   transactions) conserve the global balance;
//! * cross-shard snapshot audits never observe a half-applied transfer
//!   (the coordination locks exclude them from the 2PC window);
//! * with the chaos injector panicking inside transaction bodies — i.e.
//!   landing between a 2PC prepare and its applies — every accepted
//!   transfer still fully applies or fully aborts (compensation from the
//!   prepare-time undo images), so conservation survives chaos.

use std::sync::Mutex;
use std::time::Duration;
use tm_api::TmBackend;
use txkv::shard::build_domains;
use txkv::{KvError, KvOp, KvReply, KvStore, Pipeline, PipelineConfig, ServiceReport, ShardMap};
use txmem::hooks::chaos::{self, ChaosConfig};

/// Chaos arming is process-global: every test in this binary runs under
/// this gate so an armed injector never bleeds into a clean test.
static GATE: Mutex<()> = Mutex::new(());

const SHARDS: usize = 4;
const PER_SHARD: u64 = 8;
const KEYS: u64 = SHARDS as u64 * PER_SHARD;
const INITIAL: u64 = 1_000;
const EXPECTED_TOTAL: u64 = KEYS * INITIAL;
const CLIENTS: u64 = 3;
const OPS_PER_CLIENT: u64 = 300;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Drive a mixed local/cross-shard transfer + audit workload through a
/// sharded pipeline; returns the service report and the post-shutdown
/// raw balance total (summed across every shard's private memory).
fn run_sharded<B: TmBackend + Clone>(mk: impl FnMut(usize) -> B) -> (ServiceReport, u64) {
    let map = ShardMap::range(SHARDS, PER_SHARD);
    // Roomy arenas: every executor pre-allocates a batch scratch per
    // shard from that shard's bump arena, and each chaos recovery burns
    // a fresh scratch (bump allocators don't reuse), so size for the
    // worst case rather than the data (8 keys/shard).
    let domains = build_domains(&map, mk, 0, 1 << 16, (0..KEYS).map(|k| (k, INITIAL)));
    // Keep probes into each shard's backend + store: `shutdown` consumes
    // the pipeline, and conservation is checked on the raw memories.
    let probes: Vec<(B, KvStore)> = domains.iter().map(|(b, s)| (b.clone(), s.clone())).collect();
    let cfg = PipelineConfig {
        executors: 4,
        multi_key_max: 4,
        drain_grace: Duration::from_millis(500),
        ..PipelineConfig::quick()
    };
    let pipeline = Pipeline::start_sharded(domains, map, cfg);
    let all_keys: Vec<u64> = (0..KEYS).collect();
    std::thread::scope(|sc| {
        for t in 0..CLIENTS {
            let client = pipeline.client();
            let all_keys = &all_keys;
            sc.spawn(move || {
                let mut rng = 0x5EED_0000 ^ (t << 32);
                for _ in 0..OPS_PER_CLIENT {
                    let r = splitmix(&mut rng);
                    let amount = 1 + (r % 9) as i64;
                    let op = match r % 10 {
                        // 40 %: cross-shard conserving transfer (2PC).
                        0..=3 => {
                            let sa = ((r >> 8) as usize) % SHARDS;
                            let sb = (sa + 1 + ((r >> 16) as usize) % (SHARDS - 1)) % SHARDS;
                            let ka = sa as u64 * PER_SHARD + (r >> 24) % PER_SHARD;
                            let kb = sb as u64 * PER_SHARD + (r >> 32) % PER_SHARD;
                            KvOp::MultiAdd { deltas: vec![(ka, -amount), (kb, amount)] }
                        }
                        // 30 %: shard-local conserving transfer.
                        4..=6 => {
                            let s = ((r >> 8) as usize) % SHARDS;
                            let base = s as u64 * PER_SHARD;
                            let ka = base + (r >> 16) % PER_SHARD;
                            let off = (ka - base + 1 + (r >> 24) % (PER_SHARD - 1)) % PER_SHARD;
                            KvOp::MultiAdd { deltas: vec![(ka, -amount), (base + off, amount)] }
                        }
                        // 30 %: global audit — a cross-shard snapshot read.
                        _ => KvOp::MultiGet { keys: all_keys.clone() },
                    };
                    let audit = matches!(op, KvOp::MultiGet { .. });
                    match client.call(op) {
                        Ok(KvReply::Values(vals)) if audit => {
                            let sum: u64 = vals.iter().map(|v| v.expect("account vanished")).sum();
                            assert_eq!(
                                sum, EXPECTED_TOTAL,
                                "audit observed a half-applied cross-shard transfer"
                            );
                        }
                        Ok(_) => {}
                        Err(KvError::Overloaded { .. }) => {}
                        Err(e) => panic!("unexpected admission error {e:?}"),
                    }
                }
            });
        }
    });
    let report = pipeline.shutdown();
    let mut total = 0u64;
    for (s, (backend, store)) in probes.iter().enumerate() {
        for k in (s as u64 * PER_SHARD)..((s as u64 + 1) * PER_SHARD) {
            total =
                total.wrapping_add(store.load_raw(backend.memory(), k).expect("account vanished"));
        }
    }
    (report, total)
}

fn conserves_clean<B: TmBackend + Clone>(mk: impl FnMut(usize) -> B) {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (report, total) = run_sharded(mk);
    assert_eq!(total, EXPECTED_TOTAL, "cross-shard transfers must conserve the global balance");
    assert!(report.twopc.prepares > 0, "the mix must exercise the 2PC path");
    assert_eq!(report.twopc.aborts, 0, "no chaos armed: no 2PC may abort");
    assert_eq!(report.panicked_executors, 0, "no chaos armed: no executor may die");
}

/// Chaos-armed variant: the injector panics inside transaction bodies,
/// which lands inside the 2PC window (between a participant's prepare
/// and the applies). Every accepted transfer must still fully apply or
/// fully abort — a half-applied transfer would break the raw total.
fn conserves_under_chaos<B: TmBackend + Clone>(mk: impl FnMut(usize) -> B) {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let guard = chaos::install(ChaosConfig {
        seed: 0xC4A05,
        abort_access: 0.005,
        abort_commit: 0.002,
        capacity_share: 0.5,
        stall: 0.0,
        stall_max_us: 0,
        panic: 0.001,
    });
    let (report, total) = run_sharded(mk);
    let chaos_report = guard.report();
    drop(guard);
    assert_eq!(
        total, EXPECTED_TOTAL,
        "a chaos panic inside the 2PC window half-applied a transfer \
         (injected: {chaos_report:?}, twopc: {:?})",
        report.twopc
    );
    assert!(
        chaos_report.injected_aborts > 0,
        "the injector never fired; the chaos variant tested nothing"
    );
}

macro_rules! sharding_suite {
    ($name:ident, $make:expr) => {
        mod $name {
            use super::*;

            #[test]
            fn cross_shard_transfers_conserve() {
                conserves_clean($make);
            }

            #[test]
            fn cross_shard_transfers_conserve_under_chaos() {
                conserves_under_chaos($make);
            }
        }
    };
}

sharding_suite!(on_si_htm, |_s| si_htm::SiHtm::with_defaults(1 << 16));
sharding_suite!(on_htm_sgl, |_s| htm_sgl::HtmSgl::with_defaults(1 << 16));
sharding_suite!(on_p8tm, |_s| p8tm::P8tm::with_defaults(1 << 16));
sharding_suite!(on_silo, |_s| silo::Silo::with_defaults(1 << 16));
