//! Kill-and-restart durability tests, on all four backends.
//!
//! Each scenario runs a durable pipeline (commit-ordered WAL, group
//! commit, checkpoints) under a mixed put/transfer load, pulls the
//! simulated power plug at a scripted crash site — including the
//! quiescence-adjacent commit window and every 2PC window — then
//! recovers from disk into fresh backend instances and asserts:
//!
//! * **no acked write is lost** (Sync mode: a `Done` reply implies the
//!   record's fsync landed before the crash);
//! * **no torn cross-shard state**: every transfer fully applied or
//!   fully compensated, so the account total is conserved;
//! * **torn tail records** (a crash mid-`write(2)`) are detected by
//!   checksum and cleanly ignored;
//! * recovery is **idempotent** (a second pass reproduces the state).
//!
//! On a failed invariant the test writes a machine-readable
//! `target/RECOVERY_FAILURE.json` (uploaded by the CI `durability-smoke`
//! job) before panicking.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tm_api::TmBackend;
use txkv::durability::storage as faults;
use txkv::durability::{checkpoint, Append, Writes};
use txkv::{
    recover, recover_and_open, CrashSite, CrashSpec, DurabilityConfig, DurabilityMode, FaultPlan,
    FaultTarget, KvClient, KvError, KvOp, KvReply, Pipeline, PipelineConfig, RecoveryReport,
    ShardMap, WalError, WalSet,
};
use txmem::hooks::chaos::{self, ChaosConfig};

/// Chaos arming is process-global: every test in this binary runs under
/// this gate so an armed injector never bleeds into a clean test.
static GATE: Mutex<()> = Mutex::new(());

const SHARDS: usize = 4;
const PER_SHARD: u64 = 8;
const KEYS: u64 = SHARDS as u64 * PER_SHARD;
/// Even keys are transfer accounts (their sum is conserved); odd keys
/// are per-client put targets carrying monotone counters.
const INITIAL: u64 = 1_000;
const EXPECTED_TOTAL: u64 = (KEYS / 2) * INITIAL;
const CLIENTS: u64 = 3;
const OPS_PER_CLIENT: u64 = 400;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d =
        std::env::temp_dir().join(format!("txkv-durability-test-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn shard_map() -> ShardMap {
    ShardMap::range(SHARDS, PER_SHARD)
}

fn pipeline_cfg() -> PipelineConfig {
    PipelineConfig {
        executors: 4,
        multi_key_max: 4,
        drain_grace: Duration::from_millis(500),
        ..PipelineConfig::quick()
    }
}

/// Crash countdowns calibrated so seeding (16 single-shard puts, all
/// acked) always completes before the plug is pulled, while the mixed
/// load phase (~1200 ops) reliably reaches the countdown.
fn site_after(site: CrashSite) -> u64 {
    match site {
        CrashSite::AfterCommit => 60,
        CrashSite::MidGroupCommit | CrashSite::TornTail => 40,
        CrashSite::AfterPrepare | CrashSite::AfterApply | CrashSite::AfterDecision => 8,
    }
}

/// Recover the directory and check the durability invariants. Returns
/// the report and recovered account total. On failure, dumps
/// `target/RECOVERY_FAILURE.json` for the CI artifact before panicking.
fn verify_recovered<B: TmBackend>(
    dir: &Path,
    mk: &mut impl FnMut(usize) -> B,
    acked: Option<&HashMap<u64, u64>>,
    ctx: &str,
) -> (RecoveryReport, u64) {
    let map = shard_map();
    let (domains, report) = recover(dir, &map, &mut *mk, 0, 1 << 16).expect("recovery failed");
    let read = |k: u64| {
        let s = (k / PER_SHARD) as usize;
        domains[s].1.load_raw(domains[s].0.memory(), k)
    };
    let total: u64 = (0..KEYS).step_by(2).map(|k| read(k).unwrap_or(0)).sum();
    let mut failures: Vec<String> = Vec::new();
    if total != EXPECTED_TOTAL {
        failures.push(format!(
            r#"{{"invariant":"conservation","expected":{EXPECTED_TOTAL},"got":{total}}}"#
        ));
    }
    if let Some(acked) = acked {
        for (&k, &v) in acked {
            let got = read(k).unwrap_or(0);
            if got < v {
                failures.push(format!(
                    r#"{{"invariant":"acked-write","key":{k},"acked":{v},"recovered":{got}}}"#
                ));
            }
        }
    }
    if !failures.is_empty() {
        let body = format!(
            r#"{{"context":{ctx:?},"report":{:?},"failures":[{}]}}"#,
            format!("{report:?}"),
            failures.join(",")
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/RECOVERY_FAILURE.json");
        let _ = std::fs::write(path, &body);
        panic!("recovery verification failed ({ctx}): {body}");
    }
    (report, total)
}

/// One client thread's mixed load: durable puts with a monotone counter
/// on its own odd keys (40 %), cross-shard transfers (30 %) and
/// shard-local transfers (30 %) over the even account keys. Returns the
/// highest acked counter per put key and the acked-transfer count.
fn client_load(t: u64, client: KvClient, wal: Arc<WalSet>) -> (HashMap<u64, u64>, u64) {
    let mut rng = 0xD00B_0000u64 ^ (t << 32);
    let my_keys: Vec<u64> = (0..KEYS).filter(|k| k % 2 == 1 && (k / 2) % CLIENTS == t).collect();
    let mut acked: HashMap<u64, u64> = HashMap::new();
    let mut xacked = 0u64;
    let mut ctr = 0u64;
    for _ in 0..OPS_PER_CLIENT {
        if !wal.alive() {
            break; // the plug is pulled: everything from here on sheds
        }
        let r = splitmix(&mut rng);
        let amount = 1 + (r % 9) as i64;
        let (op, put_key, put_val) = match r % 10 {
            0..=3 => {
                ctr += 1;
                let k = my_keys[((r >> 8) as usize) % my_keys.len()];
                (KvOp::Put { key: k, val: ctr }, Some(k), ctr)
            }
            4..=6 => {
                let sa = ((r >> 8) as usize) % SHARDS;
                let sb = (sa + 1 + ((r >> 16) as usize) % (SHARDS - 1)) % SHARDS;
                let ka = sa as u64 * PER_SHARD + 2 * ((r >> 24) % (PER_SHARD / 2));
                let kb = sb as u64 * PER_SHARD + 2 * ((r >> 32) % (PER_SHARD / 2));
                (KvOp::MultiAdd { deltas: vec![(ka, -amount), (kb, amount)] }, None, 0)
            }
            _ => {
                let s = ((r >> 8) as usize) % SHARDS;
                let base = s as u64 * PER_SHARD;
                let ka = base + 2 * ((r >> 16) % (PER_SHARD / 2));
                let mut kb = base + 2 * ((r >> 24) % (PER_SHARD / 2));
                if kb == ka {
                    kb = base + (ka - base + 2) % PER_SHARD;
                }
                (KvOp::MultiAdd { deltas: vec![(ka, -amount), (kb, amount)] }, None, 0)
            }
        };
        match client.call(op) {
            Ok(KvReply::Done { .. }) => match put_key {
                Some(k) => {
                    acked.insert(k, put_val);
                }
                None => xacked += 1,
            },
            Ok(KvReply::Shed) => {}
            Ok(other) => panic!("unexpected update reply {other:?}"),
            Err(KvError::Overloaded { .. } | KvError::ShuttingDown) => {}
            Err(e) => panic!("unexpected admission error {e:?}"),
        }
    }
    (acked, xacked)
}

/// Boot a durable pipeline on `dir`, seed the accounts (acked before any
/// armed crash window opens), run the mixed client load, and shut down.
/// Returns the per-key acked-put watermarks, acked transfers, the
/// service report, and whether the scripted crash tripped.
fn run_durable<B: TmBackend>(
    mk: &mut impl FnMut(usize) -> B,
    dcfg: &DurabilityConfig,
    chaos_armed: bool,
) -> (HashMap<u64, u64>, u64, txkv::ServiceReport, bool) {
    let map = shard_map();
    let (domains, wal, _) =
        recover_and_open(dcfg, &map, &mut *mk, 0, 1 << 16).expect("open durable domains");
    let pipeline = Pipeline::start_durable(domains, map, pipeline_cfg(), Arc::clone(&wal));
    let client = pipeline.client();
    for k in (0..KEYS).step_by(2) {
        let reply = client.call(KvOp::Put { key: k, val: INITIAL });
        assert!(
            matches!(reply, Ok(KvReply::Done { .. })),
            "seeding put must be acked, got {reply:?}"
        );
    }
    assert!(wal.alive(), "crash tripped during seeding; raise the countdown");
    // Arm chaos only once seeding is acked: the injector's panics shed
    // requests, and a shed seed would skew the conservation baseline.
    let guard = chaos_armed.then(|| {
        chaos::install(ChaosConfig {
            seed: 0x0D07_AB1E,
            abort_access: 0.005,
            abort_commit: 0.002,
            capacity_share: 0.5,
            stall: 0.0,
            stall_max_us: 0,
            panic: 0.001,
        })
    });
    let mut acked: HashMap<u64, u64> = HashMap::new();
    let mut xacked = 0u64;
    std::thread::scope(|sc| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let client = pipeline.client();
                let wal = Arc::clone(&wal);
                sc.spawn(move || client_load(t, client, wal))
            })
            .collect();
        for h in handles {
            let (a, x) = h.join().expect("client panicked");
            for (k, v) in a {
                let e = acked.entry(k).or_insert(0);
                *e = (*e).max(v);
            }
            xacked += x;
        }
    });
    let crashed = !wal.alive();
    let report = pipeline.shutdown();
    drop(guard);
    (acked, xacked, report, crashed)
}

/// The core kill-and-restart scenario: load, crash at `site`, recover,
/// assert no acked write lost and no torn cross-shard state — twice,
/// because recovery must be idempotent.
fn crash_and_recover<B: TmBackend>(
    mut mk: impl FnMut(usize) -> B,
    mode: DurabilityMode,
    site: CrashSite,
    chaos_armed: bool,
) {
    let dir = tmpdir(&format!("{site:?}-{}", mode.name()));
    let mut dcfg = DurabilityConfig::new(mode, &dir);
    dcfg.group_commit_max = 8;
    dcfg.checkpoint_every = 48;
    dcfg.crash = Some(CrashSpec { site, after: site_after(site) });
    let (acked, xacked, report, crashed) = run_durable(&mut mk, &dcfg, chaos_armed);
    assert!(crashed, "the scripted {site:?} crash never tripped — the test exercised nothing");
    assert!(report.wal.wal_appends > 0, "the load never reached the WAL");
    assert!(xacked > 0 || !matches!(site, CrashSite::AfterDecision), "no transfer was acked");
    // Sync acks imply durability; Async acks are only flush-bounded, so
    // just the cross-shard atomicity invariant applies there.
    let check_acked = (mode == DurabilityMode::Sync).then_some(&acked);
    let ctx = format!("{site:?}/{}/chaos={chaos_armed}", mode.name());
    let (rec, total) = verify_recovered(&dir, &mut mk, check_acked, &ctx);
    if site == CrashSite::TornTail {
        assert!(
            rec.torn_tails >= 1,
            "a TornTail crash must leave a checksum-rejected tail (report {rec:?})"
        );
    }
    // Idempotence: recovery compacted to a checkpoint + pruned segments;
    // a second pass must reproduce exactly the same state.
    let (_, total2) = verify_recovered(&dir, &mut mk, check_acked, &format!("{ctx}/again"));
    assert_eq!(total, total2, "recovery must be idempotent");
    let _ = std::fs::remove_dir_all(&dir);
}

/// No crash at all: a graceful shutdown flushes everything, so restart
/// recovers every acked write — and the load is long enough to roll
/// through checkpoints and segment rotation on the way.
fn graceful_restart<B: TmBackend>(mut mk: impl FnMut(usize) -> B, mode: DurabilityMode) {
    let dir = tmpdir(&format!("graceful-{}", mode.name()));
    let mut dcfg = DurabilityConfig::new(mode, &dir);
    dcfg.group_commit_max = 8;
    dcfg.checkpoint_every = 48;
    let (acked, xacked, report, crashed) = run_durable(&mut mk, &dcfg, false);
    assert!(!crashed, "no crash was scripted");
    assert!(xacked > 0, "the mix must exercise durable 2PC");
    assert!(report.wal.wal_appends > 0);
    assert!(report.wal.fsync_batches > 0);
    assert!(
        report.wal.checkpoints >= 1,
        "checkpoint_every=48 over this load must checkpoint (wal {:?})",
        report.wal
    );
    assert_eq!(report.wal.sync_acks_early, 0, "an ack outran its fsync");
    // Graceful shutdown flushes every buffer, so even Async acks are on
    // disk: check them all regardless of mode.
    let ctx = format!("graceful/{}", mode.name());
    verify_recovered(&dir, &mut mk, Some(&acked), &ctx);
    verify_recovered(&dir, &mut mk, Some(&acked), &format!("{ctx}/again"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Deterministic 2PC crash windows: one cross-shard transfer with the
/// plug pulled at the exact protocol step, then recovery must resolve it
/// all-or-nothing consistently with what the client saw.
fn twopc_window<B: TmBackend>(mut mk: impl FnMut(usize) -> B, site: CrashSite) {
    let dir = tmpdir(&format!("twopc-{site:?}"));
    let mut dcfg = DurabilityConfig::new(DurabilityMode::Sync, &dir);
    dcfg.crash = Some(CrashSpec { site, after: 0 });
    let map = shard_map();
    let (domains, wal, _) =
        recover_and_open(&dcfg, &map, &mut mk, 0, 1 << 16).expect("open durable domains");
    let pipeline = Pipeline::start_durable(domains, map, pipeline_cfg(), Arc::clone(&wal));
    let client = pipeline.client();
    // Seed two accounts on different shards (single-shard puts never hit
    // the armed 2PC crash sites).
    assert!(client.call(KvOp::Put { key: 0, val: 100 }).is_ok());
    assert!(client.call(KvOp::Put { key: 8, val: 100 }).is_ok());
    let reply = client.call(KvOp::MultiAdd { deltas: vec![(0, -5), (8, 5)] }).expect("admitted");
    pipeline.shutdown();
    assert!(!wal.alive(), "the scripted {site:?} crash never tripped");
    let (domains, rec) = recover(&dir, &shard_map(), &mut mk, 0, 1 << 16).expect("recovery");
    let read = |k: u64| {
        let s = (k / PER_SHARD) as usize;
        domains[s].1.load_raw(domains[s].0.memory(), k).unwrap_or(0)
    };
    let (v0, v8) = (read(0), read(8));
    assert_eq!(v0 + v8, 200, "2PC crash at {site:?} tore the transfer: {v0}/{v8}");
    match site {
        // No decision record could become durable: the client was shed
        // and recovery presumes abort — both sides untouched.
        CrashSite::AfterPrepare | CrashSite::AfterApply => {
            assert_eq!(reply, KvReply::Shed, "no durable decision, so no ack");
            assert_eq!((v0, v8), (100, 100), "{site:?} must resolve as aborted (report {rec:?})");
        }
        // The first XDecide was fsynced before the ack: committed
        // everywhere, on every log that survived.
        CrashSite::AfterDecision => {
            assert_eq!(reply, KvReply::Done { changed: true }, "decision durable ⇒ acked");
            assert_eq!((v0, v8), (95, 105), "{site:?} must resolve as committed (report {rec:?})");
            assert_eq!(rec.xids_committed, 1, "recovery must commit the in-flight xid");
        }
        _ => unreachable!("not a 2PC window"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash scripted at the single-shard commit point (after the memory
/// commit, before the append): the write must be shed, and recovery must
/// not resurrect it.
fn after_commit_window<B: TmBackend>(mut mk: impl FnMut(usize) -> B) {
    let dir = tmpdir("after-commit");
    let mut dcfg = DurabilityConfig::new(DurabilityMode::Sync, &dir);
    dcfg.crash = Some(CrashSpec { site: CrashSite::AfterCommit, after: 0 });
    let map = shard_map();
    let (domains, wal, _) =
        recover_and_open(&dcfg, &map, &mut mk, 0, 1 << 16).expect("open durable domains");
    let pipeline = Pipeline::start_durable(domains, map, pipeline_cfg(), Arc::clone(&wal));
    let client = pipeline.client();
    let reply = client.call(KvOp::Put { key: 1, val: 7 }).expect("admitted");
    assert_eq!(reply, KvReply::Shed, "the log died before the record: no ack");
    pipeline.shutdown();
    let (domains, _) = recover(&dir, &shard_map(), &mut mk, 0, 1 << 16).expect("recovery");
    assert_eq!(
        domains[0].1.load_raw(domains[0].0.memory(), 1),
        None,
        "an un-acked, un-logged write must not survive recovery"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The graceful-degradation scenario of ISSUE 9: a permanent fsync
/// fault on one shard must leave the others at full ack rate, shed that
/// shard's updates as the typed `Unavailable` outcome (never a Sync
/// ack), keep serving its reads, rejoin it via probe writes once the
/// fault clears, and lose no acked write across a subsequent
/// crash + recovery.
fn storage_degradation<B: TmBackend>(mut mk: impl FnMut(usize) -> B) {
    let dir = tmpdir("degrade");
    let mut dcfg = DurabilityConfig::new(DurabilityMode::Sync, &dir);
    dcfg.group_commit_max = 4;
    dcfg.flush_retries = 1;
    dcfg.retry_base_us = 1;
    dcfg.maintenance_interval_ms = 5;
    dcfg.scrub_interval_ms = 0;
    let map = shard_map();
    let (domains, wal, _) =
        recover_and_open(&dcfg, &map, &mut mk, 0, 1 << 16).expect("open durable domains");
    let pipeline = Pipeline::start_durable(domains, map, pipeline_cfg(), Arc::clone(&wal));
    let client = pipeline.client();
    let mut acked: HashMap<u64, u64> = HashMap::new();
    for k in (0..KEYS).step_by(2) {
        let reply = client.call(KvOp::Put { key: k, val: INITIAL });
        assert!(matches!(reply, Ok(KvReply::Done { .. })), "seeding put not acked: {reply:?}");
    }
    // Shard 1's disk goes permanently bad (fsync always fails).
    let tag = dir.to_string_lossy().into_owned();
    let guard = faults::install(FaultPlan::fsync_permanent(1, 0).tagged(&tag));
    let bad_key = PER_SHARD + 1; // odd key on shard 1: outside conservation
    let deadline = Instant::now() + Duration::from_secs(30);
    while wal.health(1).writable() {
        let _ = client.call(KvOp::Put { key: bad_key, val: 1 });
        assert!(Instant::now() < deadline, "shard 1 never degraded under a permanent fault");
    }
    // Degraded shard: every update is refused with the typed outcome —
    // a Sync ack is impossible (the fsync can't land), so any `Done`
    // here would be a lie.
    for i in 0..20u64 {
        match client.call(KvOp::Put { key: bad_key, val: 100 + i }) {
            Ok(KvReply::Unavailable) | Err(KvError::Unavailable { .. }) => {}
            other => panic!("degraded shard must shed updates as Unavailable, got {other:?}"),
        }
    }
    // ...but its reads still serve, from the intact in-memory store.
    match client.call(KvOp::Get { key: PER_SHARD }) {
        Ok(KvReply::Value(Some(v))) => assert_eq!(v, INITIAL),
        other => panic!("degraded shard must keep serving reads, got {other:?}"),
    }
    // The healthy shards stay at full ack rate: every single update to
    // them must be served and acked while shard 1 is down.
    for round in 0..50u64 {
        for s in [0usize, 2, 3] {
            let k = s as u64 * PER_SHARD + 1;
            let reply = client.call(KvOp::Put { key: k, val: round + 1 });
            assert!(
                matches!(reply, Ok(KvReply::Done { .. })),
                "healthy shard {s} must ack at full rate while shard 1 is degraded: {reply:?}"
            );
            acked.insert(k, round + 1);
        }
    }
    // 2PC never starts against the degraded participant…
    match client.call(KvOp::MultiAdd { deltas: vec![(0, -1), (PER_SHARD, 1)] }) {
        Ok(KvReply::Unavailable) | Err(KvError::Unavailable { .. }) => {}
        other => panic!("2PC touching a degraded shard must be refused, got {other:?}"),
    }
    // …while 2PC avoiding it commits normally.
    let reply = client.call(KvOp::MultiAdd { deltas: vec![(0, -1), (2 * PER_SHARD, 1)] });
    assert!(matches!(reply, Ok(KvReply::Done { .. })), "healthy-shard 2PC must serve: {reply:?}");
    assert!(!wal.health(1).writable(), "the permanent fault must hold shard 1 degraded");
    // The medium heals: the maintenance probe rejoins the shard…
    guard.clear();
    let deadline = Instant::now() + Duration::from_secs(30);
    while !wal.health(1).writable() {
        assert!(Instant::now() < deadline, "cleared fault but shard 1 never rejoined");
        std::thread::sleep(Duration::from_millis(2));
    }
    // …and acks resume.
    let reply = client.call(KvOp::Put { key: bad_key, val: 777 });
    assert!(matches!(reply, Ok(KvReply::Done { .. })), "rejoined shard must ack: {reply:?}");
    acked.insert(bad_key, 777);
    // Pull the plug: everything acked above must survive recovery.
    wal.halt_all();
    let report = pipeline.shutdown();
    drop(guard);
    assert_eq!(report.wal.sync_acks_early, 0, "an ack outran its fsync under storage faults");
    assert!(report.wal.degraded_sheds > 0, "the degraded shard never shed a typed Unavailable");
    assert!(report.wal.wal_rejoins >= 1, "the probe rejoin was never counted");
    verify_recovered(&dir, &mut mk, Some(&acked), "storage-degradation");
    let _ = std::fs::remove_dir_all(&dir);
}

/// ENOSPC in the middle of a checkpoint: the tmp → fsync → rename path
/// must leave the previous checkpoint valid, the shard healthy (the log
/// still covers its state), and recovery must replay from the old
/// checkpoint + log tail.
#[test]
fn enospc_mid_checkpoint_keeps_previous_checkpoint_valid() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let _serial = faults::gate();
    let dir = tmpdir("enospc-ckpt");
    let dcfg = DurabilityConfig::new(DurabilityMode::Sync, &dir);
    let wal = WalSet::open(&dcfg, 1).expect("open wal");
    wal.install_checkpoint(0, &[(0, 1_000)]).expect("baseline checkpoint");
    let w: Writes = vec![(2, Some(7))];
    wal.append(0, Append::Write(&w)).expect("append");
    wal.flush(0).expect("flush");
    // The disk fills up exactly when the next checkpoint's tmp file is
    // written (segments stay writable: Checkpoint-targeted fault).
    let tag = dir.to_string_lossy().into_owned();
    let guard = faults::install(FaultPlan::enospc(0, FaultTarget::Checkpoint, 0).tagged(&tag));
    assert_eq!(
        wal.install_checkpoint(0, &[(0, 1_000), (2, 7)]),
        Err(WalError::Unavailable),
        "a full disk must surface as the typed error"
    );
    assert_eq!(
        wal.health(0),
        txkv::ShardHealth::Healthy,
        "a failed checkpoint write must not degrade the shard: the previous checkpoint and the uncut log still cover its state"
    );
    assert!(wal.stats().checkpoint_failures >= 1);
    drop(guard);
    // The previous checkpoint is still the newest valid one…
    let sdir = dir.join("shard-0");
    let (ckpt_lsn, entries) = checkpoint::latest_valid(&sdir).expect("previous checkpoint valid");
    assert_eq!(entries, vec![(0, 1_000)]);
    assert!(ckpt_lsn < 2, "the failed checkpoint must not have been published");
    // …and recovery replays the log tail on top of it.
    let map = ShardMap::range(1, PER_SHARD);
    let (domains, _) = recover(&dir, &map, |_| si_htm::SiHtm::with_defaults(1 << 16), 0, 1 << 16)
        .expect("recovery");
    let read = |k: u64| domains[0].1.load_raw(domains[0].0.memory(), k);
    assert_eq!(read(0), Some(1_000));
    assert_eq!(read(2), Some(7), "the log record past the old checkpoint must replay");
    let _ = std::fs::remove_dir_all(&dir);
}

macro_rules! durability_suite {
    ($name:ident, $make:expr) => {
        mod $name {
            use super::*;

            #[test]
            fn graceful_restart_preserves_acked_state() {
                let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
                graceful_restart($make, DurabilityMode::Sync);
            }

            #[test]
            fn sync_crash_sites_lose_no_acked_write() {
                let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
                for site in CrashSite::ALL {
                    crash_and_recover($make, DurabilityMode::Sync, site, false);
                }
            }

            #[test]
            fn async_crash_keeps_cross_shard_state_consistent() {
                let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
                crash_and_recover($make, DurabilityMode::Async, CrashSite::MidGroupCommit, false);
            }

            #[test]
            fn sync_crash_under_chaos_loses_no_acked_write() {
                let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
                for site in [CrashSite::MidGroupCommit, CrashSite::AfterApply] {
                    crash_and_recover($make, DurabilityMode::Sync, site, true);
                }
            }

            #[test]
            fn twopc_crash_windows_resolve_all_or_nothing() {
                let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
                for site in
                    [CrashSite::AfterPrepare, CrashSite::AfterApply, CrashSite::AfterDecision]
                {
                    twopc_window($make, site);
                }
            }

            #[test]
            fn commit_point_crash_sheds_instead_of_lying() {
                let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
                after_commit_window($make);
            }

            #[test]
            fn storage_fault_degrades_one_shard_and_rejoins() {
                let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
                let _serial = faults::gate();
                storage_degradation($make);
            }
        }
    };
}

durability_suite!(on_si_htm, |_| si_htm::SiHtm::with_defaults(1 << 16));
durability_suite!(on_htm_sgl, |_| htm_sgl::HtmSgl::with_defaults(1 << 16));
durability_suite!(on_p8tm, |_| p8tm::P8tm::with_defaults(1 << 16));
durability_suite!(on_silo, |_| silo::Silo::with_defaults(1 << 16));
