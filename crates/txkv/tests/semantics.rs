//! Cross-backend semantics of the KV layer: what the isolation-contract
//! table in the crate docs promises, demonstrated.
//!
//! * multi-key reads return a consistent snapshot (sum conservation under
//!   concurrent transfers) — all four backends;
//! * the classic write-skew pair **commits on SI-HTM** (snapshot
//!   isolation permits it) but is **serialized on HTM+SGL and Silo**;
//! * `cas` linearizes on every backend (the read is guarded by the write
//!   set, so SI's write-write conflict detection is enough);
//! * shutdown answers or cleanly sheds every accepted request.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use tm_api::{TmBackend, TmThread, TxKind};
use txkv::{KvError, KvOp, KvReply, KvStore, Pipeline, PipelineConfig};

// ---------------------------------------------------------------- helpers

/// Concurrent conserving transfers vs. multi-key snapshot audits.
fn multi_key_reads_conserve_the_sum<B: TmBackend>(backend: B) {
    const ACCOUNTS: u64 = 16;
    const PER_ACCOUNT: u64 = 100;
    let store =
        KvStore::create_with(backend.memory(), 0, 1 << 16, (0..ACCOUNTS).map(|k| (k, PER_ACCOUNT)));
    let keys: Vec<u64> = (0..ACCOUNTS).collect();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut t = backend.register_thread();
            let mut scratch = store.new_batch_scratch(2);
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let from = i % ACCOUNTS;
                let to = (i + 7) % ACCOUNTS;
                if from != to {
                    store.multi_add(&mut t, &mut scratch, &[(from, -1), (to, 1)]);
                }
                i += 1;
            }
        });
        for _ in 0..2 {
            s.spawn(|| {
                let mut t = backend.register_thread();
                for _ in 0..500 {
                    let vals = store.multi_get(&mut t, &keys);
                    let sum: u64 = vals.iter().map(|v| v.expect("account vanished")).sum();
                    assert_eq!(
                        sum,
                        ACCOUNTS * PER_ACCOUNT,
                        "multi-key read observed a torn (non-snapshot) state"
                    );
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    });
}

const X: u64 = 3;
const Y: u64 = 11;

/// One side of the write-skew pair: read the *other* key, rendezvous with
/// the peer so both reads happen before either write, then zero *my* key
/// iff the other was 1. Flags are sticky (never cleared), so retried
/// bodies skip the rendezvous and simply act on what they re-read.
fn skew_side<B: TmBackend>(
    backend: &B,
    store: &KvStore,
    mine: u64,
    theirs: u64,
    my_flag: &AtomicBool,
    peer_flag: &AtomicBool,
) {
    let mut t = backend.register_thread();
    let mut scratch = store.new_scratch();
    t.exec(TxKind::Update, &mut |tx| {
        scratch.reset();
        let other = store.get_in(tx, theirs)?;
        my_flag.store(true, Ordering::SeqCst);
        let mut spins = 0u64;
        while !peer_flag.load(Ordering::SeqCst) && spins < 500_000_000 {
            std::hint::spin_loop();
            spins += 1;
        }
        if other == Some(1) {
            store.put_in(tx, &mut scratch, mine, 0)?;
        }
        Ok(())
    });
}

/// Run the write-skew pair to completion; returns the final `(x, y)`.
fn write_skew_outcome<B: TmBackend>(backend: B) -> (u64, u64) {
    let store = KvStore::create_with(backend.memory(), 0, 1 << 14, [(X, 1), (Y, 1)].into_iter());
    let a = AtomicBool::new(false);
    let b = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| skew_side(&backend, &store, X, Y, &a, &b));
        s.spawn(|| skew_side(&backend, &store, Y, X, &b, &a));
    });
    (store.load_raw(backend.memory(), X).unwrap(), store.load_raw(backend.memory(), Y).unwrap())
}

/// N client threads race `cas` increments through the pipeline; every
/// failure reports the observed value, which seeds the retry. If cas
/// linearizes, exactly one increment wins per observed value and the
/// final counter equals the global success count.
fn cas_linearizes<B: TmBackend>(backend: B) {
    const KEY: u64 = 42;
    const CLIENTS: usize = 4;
    const INCREMENTS: u64 = 50;
    let store = KvStore::create_with(backend.memory(), 0, 1 << 16, [(KEY, 0)].into_iter());
    let pipeline = Pipeline::start(backend, store, PipelineConfig::quick());
    std::thread::scope(|s| {
        for _ in 0..CLIENTS {
            let client = pipeline.client();
            s.spawn(move || {
                let mut done = 0u64;
                let mut expect = None::<u64>;
                while done < INCREMENTS {
                    let cur = expect.unwrap_or(0);
                    match client
                        .call(KvOp::Cas { key: KEY, expect: Some(cur), new: cur + 1 })
                        .expect("pipeline running")
                    {
                        KvReply::CasOk => {
                            done += 1;
                            expect = Some(cur + 1);
                        }
                        KvReply::CasFail(observed) => expect = observed,
                        other => panic!("unexpected reply {other:?}"),
                    }
                }
            });
        }
    });
    let client = pipeline.client();
    let final_val = match client.call(KvOp::Get { key: KEY }).unwrap() {
        KvReply::Value(v) => v.unwrap(),
        other => panic!("unexpected reply {other:?}"),
    };
    assert_eq!(
        final_val,
        CLIENTS as u64 * INCREMENTS,
        "lost or duplicated cas increment: cas did not linearize"
    );
    let report = pipeline.shutdown();
    assert_eq!(report.panicked_executors, 0);
}

/// Flood, then shut down with a tiny drain grace: every accepted request
/// must resolve — served or explicitly shed — and the books must balance.
fn drain_answers_or_sheds<B: TmBackend>(backend: B) {
    let store = KvStore::create(backend.memory(), 0, 1 << 16);
    let cfg = PipelineConfig {
        executors: 1,
        rw_queue_cap: 512,
        ro_queue_cap: 512,
        drain_grace: Duration::from_millis(2),
        ..PipelineConfig::quick()
    };
    let pipeline = Pipeline::start(backend, store, cfg);
    let client = pipeline.client();
    let mut accepted = Vec::new();
    for i in 0..2_000u64 {
        let op = if i % 2 == 0 { KvOp::Put { key: i, val: i } } else { KvOp::Get { key: i } };
        match client.submit(op) {
            Ok(pending) => accepted.push(pending),
            Err(KvError::Overloaded { .. }) => {}
            Err(e) => panic!("unexpected admission error {e:?}"),
        }
    }
    let n_accepted = accepted.len() as u64;
    let report = pipeline.shutdown();
    // Every accepted request resolves promptly — no hangs, no losses.
    let mut shed_seen = 0u64;
    for pending in accepted {
        if matches!(pending.wait(), KvReply::Shed) {
            shed_seen += 1;
        }
    }
    assert_eq!(
        report.replies + report.shed,
        n_accepted,
        "accepted requests must all be answered or shed"
    );
    assert_eq!(report.shed, shed_seen, "shed accounting must match client-visible Shed replies");
    assert!(client.submit(KvOp::Get { key: 0 }).is_err(), "post-shutdown submissions refused");
}

// ------------------------------------------------------------ the matrix

macro_rules! backend_suite {
    ($name:ident, $make:expr) => {
        mod $name {
            use super::*;

            #[test]
            fn multi_key_reads_conserve() {
                multi_key_reads_conserve_the_sum($make);
            }

            #[test]
            fn cas_is_linearizable() {
                cas_linearizes($make);
            }
        }
    };
}

backend_suite!(on_si_htm, si_htm::SiHtm::with_defaults(1 << 16));
backend_suite!(on_htm_sgl, htm_sgl::HtmSgl::with_defaults(1 << 16));
backend_suite!(on_p8tm, p8tm::P8tm::with_defaults(1 << 16));
backend_suite!(on_silo, silo::Silo::with_defaults(1 << 16));

#[test]
fn write_skew_commits_under_si_htm() {
    // Snapshot isolation: both sides read the pre-state (untracked ROT
    // reads, disjoint write sets), so both zero their key — the anomaly
    // the paper's §2.1 read promotion exists to plug.
    let (x, y) = write_skew_outcome(si_htm::SiHtm::with_defaults(1 << 14));
    assert_eq!((x, y), (0, 0), "SI must admit the write-skew pair (both commit)");
}

#[test]
fn write_skew_is_serialized_under_htm_sgl() {
    let (x, y) = write_skew_outcome(htm_sgl::HtmSgl::with_defaults(1 << 14));
    assert!(x + y >= 1, "serializable backend let both skew writes commit: x={x} y={y}");
}

#[test]
fn write_skew_is_serialized_under_silo() {
    let (x, y) = write_skew_outcome(silo::Silo::with_defaults(1 << 14));
    assert!(x + y >= 1, "serializable backend let both skew writes commit: x={x} y={y}");
}

#[test]
fn drain_answers_or_sheds_under_si_htm() {
    drain_answers_or_sheds(si_htm::SiHtm::with_defaults(1 << 16));
}

#[test]
fn drain_answers_or_sheds_under_htm_sgl() {
    drain_answers_or_sheds(htm_sgl::HtmSgl::with_defaults(1 << 16));
}
