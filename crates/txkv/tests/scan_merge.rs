//! Cross-shard range-scan merge semantics, on all four backends.
//!
//! A scan whose key range spans a shard boundary under range sharding
//! must behave exactly like the same scan against an unsharded store:
//! the per-shard scans are merged into one globally ordered result and
//! the limit applies to the *merged* sequence, not per shard. The
//! regression this pins down: the earlier implementation applied the
//! limit inside each shard and summed the views, so a limited scan over
//! N shards could return up to N×limit rows drawn from the wrong end of
//! the range.
//!
//! Values are chosen unequal to their keys (`val = key * 7 + 1`) so the
//! checked `sum` detects "right count, wrong rows" as well.

use std::time::Duration;
use tm_api::TmBackend;
use txkv::shard::build_domains;
use txkv::{KvOp, KvReply, Pipeline, PipelineConfig, ShardMap};

const SHARDS: usize = 4;
const PER_SHARD: u64 = 16;
const KEYS: u64 = SHARDS as u64 * PER_SHARD;

fn val(k: u64) -> u64 {
    k * 7 + 1
}

/// Expected `(count, sum)` of the first `limit` live keys in `[from, to)`
/// in global key order — the unsharded reference semantics.
fn reference(from: u64, to: u64, limit: u64) -> (u64, u64) {
    let mut count = 0u64;
    let mut sum = 0u64;
    for k in from..to.min(KEYS) {
        if count == limit {
            break;
        }
        count += 1;
        sum = sum.wrapping_add(val(k));
    }
    (count, sum)
}

fn scans_merge<B: TmBackend>(mk: impl FnMut(usize) -> B) {
    let map = ShardMap::range(SHARDS, PER_SHARD);
    let domains = build_domains(&map, mk, 0, 1 << 16, (0..KEYS).map(|k| (k, val(k))));
    let cfg = PipelineConfig {
        executors: 2,
        multi_key_max: 4,
        drain_grace: Duration::from_millis(500),
        ..PipelineConfig::quick()
    };
    let pipeline = Pipeline::start_sharded(domains, map, cfg);
    let client = pipeline.client();
    let scan = |op: KvOp| match client.call(op).expect("scan admitted") {
        KvReply::Scan { count, sum } => (count, sum),
        other => panic!("scan answered {other:?}"),
    };

    // Limited scan spanning all four shards: the limit must select the
    // globally smallest keys, not `limit` keys from each shard.
    let limit = PER_SHARD / 2;
    assert_eq!(
        scan(KvOp::ScanRange { from: 0, to: KEYS, limit }),
        reference(0, KEYS, limit),
        "limit must apply to the merged scan, not per shard"
    );

    // Range starting mid-shard and ending mid-next-shard: the merged
    // view must cover exactly the requested keys across the boundary.
    let from = PER_SHARD - 3;
    let to = PER_SHARD + 5;
    assert_eq!(scan(KvOp::ScanRange { from, to, limit: u64::MAX }), reference(from, to, u64::MAX));

    // Boundary-straddling range with a limit smaller than the first
    // shard's share: everything must come from the low shard.
    assert_eq!(scan(KvOp::ScanRange { from, to, limit: 2 }), reference(from, to, 2));

    // Prefix scan covering several shards (prefix 0, shift past two
    // shards' worth of keys), limited below the full population.
    let shift = (2 * PER_SHARD).trailing_zeros();
    assert_eq!(
        scan(KvOp::ScanPrefix { prefix: 0, shift, limit: PER_SHARD + 3 }),
        reference(0, 2 * PER_SHARD, PER_SHARD + 3)
    );

    // Unlimited full sweep still sees every key exactly once.
    assert_eq!(
        scan(KvOp::ScanRange { from: 0, to: u64::MAX, limit: u64::MAX }),
        reference(0, KEYS, u64::MAX)
    );

    // Single-shard scans keep working through the same path.
    assert_eq!(
        scan(KvOp::ScanRange { from: 0, to: PER_SHARD, limit: u64::MAX }),
        reference(0, PER_SHARD, u64::MAX)
    );

    let report = pipeline.shutdown();
    assert_eq!(report.shed, 0, "no scan may be shed");
    assert!(report.twopc.ro_multi >= 5, "the spanning scans must take the cross-shard RO path");
}

macro_rules! scan_merge_suite {
    ($name:ident, $make:expr) => {
        mod $name {
            use super::*;

            #[test]
            fn cross_shard_scans_merge() {
                scans_merge($make);
            }
        }
    };
}

scan_merge_suite!(on_si_htm, |_s| si_htm::SiHtm::with_defaults(1 << 16));
scan_merge_suite!(on_htm_sgl, |_s| htm_sgl::HtmSgl::with_defaults(1 << 16));
scan_merge_suite!(on_p8tm, |_s| p8tm::P8tm::with_defaults(1 << 16));
scan_merge_suite!(on_silo, |_s| silo::Silo::with_defaults(1 << 16));
