//! TPC-C through the txkv service pipeline, on all four backends.
//!
//! Each cell starts a 2-shard service (`place_sharding` keeps every
//! warehouse's rows on one shard; the replicated ITEM table is loaded
//! into both), populates through the pipeline, then drives the paper's
//! transaction mixes as registered procedures:
//!
//! * both paper mixes commit work in **every** class, remote payments /
//!   remote order lines take the cross-shard 2PC path, and the two
//!   read-only classes ride the batched RO path;
//! * the 60 % select-by-last-name rule is served by the `CUST_LAST`
//!   secondary index — asserted through the schema layer's index-hit
//!   counter, not by scanning the base table;
//! * a read-only audit procedure checks TPC-C consistency (W_YTD =
//!   ΣD_YTD, pending-window/NEW_ORDER agreement, well-formed orders,
//!   base ↔ index agreement) and its facts bound the acked state;
//! * under Sync durability with a scripted crash (2PC prepare/decide
//!   windows and the single-shard commit window), recovery loses **no
//!   acked write**: every `CallOk`'d order id and payment amount is at
//!   or below the recovered state, which also passes the full audit.
//!
//! A failed recovery audit writes `target/TPCC_SERVICE_FAILURE.json`.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tm_api::{TmBackend, TmThread, TxKind};
use tpcc::layout::from_word;
use tpcc::schema::{place_of, WAREHOUSE};
use tpcc::service::{self, audit_warehouse, MixOutcome, Scale, TxClass};
use tpcc::{TpccConfig, TxMix};
use txkv::shard::build_domains;
use txkv::{
    recover, recover_and_open, CrashSite, CrashSpec, DurabilityConfig, DurabilityMode, KvReply,
    Pipeline, PipelineConfig,
};
use txkv_schema::index_hits;

/// The index-hit counter is process-global; serialize tests that touch
/// the index (all of them).
static GATE: Mutex<()> = Mutex::new(());

const SHARDS: usize = 2;
const WORDS: u64 = 1 << 20;

fn test_cfg(mix: TxMix) -> TpccConfig {
    let mut cfg = TpccConfig::tiny(mix);
    // The spec-faithful 60 % select-by-last-name rule (clause 2.5.2.2),
    // exercising the secondary index from payment and order-status.
    cfg.by_lastname_pct = 60;
    cfg
}

fn pipeline_cfg() -> PipelineConfig {
    PipelineConfig {
        executors: 2,
        multi_key_max: 32,
        drain_grace: Duration::from_millis(500),
        ..PipelineConfig::quick()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("txkv-tpcc-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Both paper mixes, non-durable: every class commits, 2PC and the RO
/// batch path are exercised, consistency holds, and the last-name path
/// is index-served.
fn service_mix<B: TmBackend>(mk: impl FnMut(usize) -> B, mix: TxMix, seed: u64) {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = test_cfg(mix);
    let map = service::shard_map(&cfg, SHARDS);
    let domains = build_domains(&map, mk, 0, WORDS, std::iter::empty());
    service::load_items(&domains, &cfg);
    let pipeline =
        Pipeline::start_with(domains, map, pipeline_cfg(), None, Some(service::registry(&cfg)));
    let client = pipeline.client();
    let pop = service::populate(&cfg);
    service::load_warehouses(&client, &cfg, &pop, 32);

    let hits_before = index_hits();
    let out = service::run_mix(&client, &cfg, &pop, 4, 150, seed, None);
    let delta = index_hits() - hits_before;

    for cls in TxClass::ALL {
        assert!(
            out.acked[cls.index()] > 0,
            "{} never committed (acked {:?}, user-aborted {:?})",
            cls.name(),
            out.acked,
            out.user_aborted
        );
    }
    assert_eq!(out.shed, 0, "nothing may shed without a crash");
    assert!(out.lastname_acks > 0, "the 60% by-name rule must fire");
    assert!(
        delta >= out.lastname_acks,
        "{} by-name selections but only {delta} index hits — the \
         last-name path is not index-served",
        out.lastname_acks
    );

    // Consistency + acked floors through the read-only audit procedure.
    for w in 0..cfg.warehouses {
        let KvReply::CallOk(words) = client.call(service::audit_op(w)).expect("audit admitted")
        else {
            panic!("audit did not commit")
        };
        assert_eq!(words[0], 0, "warehouse {w} failed its consistency audit");
        check_acked_floors(&cfg, w, from_word(words[1]), |d| words[3 + 2 * d as usize], &out)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    let report = pipeline.shutdown();
    assert!(report.twopc.prepares > 0, "remote payments/lines must take the 2PC path");
    assert!(report.ro_batch_ops > 0, "order-status/stock-level must ride the RO batch path");
    for cls in TxClass::ALL {
        let lat = report
            .procs
            .iter()
            .find(|p| p.proc == cls.proc_id())
            .unwrap_or_else(|| panic!("no latency row for {}", cls.name()));
        assert!(lat.count() > 0, "no recorded latency for {}", cls.name());
    }
}

/// `Err` describing any acked write the state regressed below.
/// `next_of(d)` is district `d`'s recovered `next_o_id`.
fn check_acked_floors(
    cfg: &TpccConfig,
    w: u64,
    w_ytd: i64,
    next_of: impl Fn(u64) -> u64,
    out: &MixOutcome,
) -> Result<(), String> {
    let initial = (cfg.districts_per_w * 3_000_000) as i64;
    let paid = out.paid.get(&w).copied().unwrap_or(0);
    if w_ytd < initial + paid {
        return Err(format!(
            "w{w}: acked payments lost (W_YTD {w_ytd} < initial {initial} + acked {paid})"
        ));
    }
    for d in 0..cfg.districts_per_w {
        if let Some(&max_o) = out.max_o_id.get(&(w, d)) {
            if next_of(d) <= max_o {
                return Err(format!(
                    "w{w} d{d}: acked order {max_o} lost (next_o_id {})",
                    next_of(d)
                ));
            }
        }
    }
    Ok(())
}

/// Pipeline `MultiPut` batches the population takes (the single-shard
/// commit-window countdown must outlast them).
fn population_batches(cfg: &TpccConfig) -> u64 {
    let pop = service::populate(cfg);
    (0..cfg.warehouses)
        .map(|w| {
            let mut n = 0u64;
            service::warehouse_rows(cfg, &pop, w, &mut |_, _| n += 1);
            n.div_ceil(32)
        })
        .sum()
}

fn crash_sites(cfg: &TpccConfig) -> [(CrashSite, u64); 3] {
    [
        // 2PC windows are armed only by cross-shard calls (remote
        // payment / remote order lines), never by population batches.
        (CrashSite::AfterPrepare, 4),
        (CrashSite::AfterDecision, 4),
        // The single-shard commit window fires on every population
        // batch too; land the crash ~25 commits into the mix.
        (CrashSite::AfterCommit, population_batches(cfg) + 25),
    ]
}

/// Sync durability + scripted crash: the service dies mid-mix; after
/// recovery the full audit passes and no acked write has regressed.
fn durable_crash<B: TmBackend>(mut mk: impl FnMut(usize) -> B) {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = test_cfg(TxMix::standard());
    for (site, after) in crash_sites(&cfg) {
        let dir = tmpdir(&format!("{site:?}"));
        let mut dcfg = DurabilityConfig::new(DurabilityMode::Sync, &dir);
        dcfg.group_commit_max = 8;
        dcfg.checkpoint_every = 64;
        dcfg.crash = Some(CrashSpec { site, after });
        let map = service::shard_map(&cfg, SHARDS);
        let (domains, wal, _) =
            recover_and_open(&dcfg, &map, &mut mk, 0, WORDS).expect("open durable service");
        service::load_items(&domains, &cfg);
        let pipeline = Pipeline::start_with(
            domains,
            map,
            pipeline_cfg(),
            Some(Arc::clone(&wal)),
            Some(service::registry(&cfg)),
        );
        let client = pipeline.client();
        let pop = service::populate(&cfg);
        service::load_warehouses(&client, &cfg, &pop, 32);
        let out = service::run_mix(&client, &cfg, &pop, 3, 250, 0xD1E5 ^ after, Some(&wal));
        let crashed = !wal.alive();
        let report = pipeline.shutdown();
        assert!(crashed, "the scripted {site:?} crash never tripped");
        assert!(report.wal.wal_appends > 0, "the load never reached the WAL");
        verify_recovered(&dir, &mut mk, &cfg, &out, &format!("{site:?}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Recover the shards directly (no pipeline) and audit every warehouse
/// through the typed layer; on failure write a machine-readable
/// artifact before panicking.
fn verify_recovered<B: TmBackend>(
    dir: &Path,
    mk: &mut impl FnMut(usize) -> B,
    cfg: &TpccConfig,
    out: &MixOutcome,
    ctx: &str,
) {
    let map = service::shard_map(cfg, SHARDS);
    let (domains, _) = recover(dir, &map, &mut *mk, 0, WORDS).expect("recovery failed");
    let s = Scale::of(cfg);
    let mut failures: Vec<String> = Vec::new();
    for w in 0..cfg.warehouses {
        let shard = map.shard_of(WAREHOUSE.key(place_of(w), 0, 0));
        let (backend, store) = &domains[shard];
        let mut thread = backend.register_thread();
        let mut scratch = store.new_scratch();
        let mut res = None;
        thread.exec(TxKind::ReadOnly, &mut |tx| {
            let mut ltx = txkv::LocalTx { store, tx, scratch: &mut scratch };
            res = Some(audit_warehouse(&mut ltx, &s, w)?);
            Ok(())
        });
        let (fails, facts) = res.expect("recovered audit ran");
        failures.extend(fails);
        if let Err(e) = check_acked_floors(
            cfg,
            w,
            from_word(facts.w_ytd),
            |d| facts.districts[d as usize].0,
            out,
        ) {
            failures.push(e);
        }
    }
    if !failures.is_empty() {
        let body = format!(r#"{{"context":{ctx:?},"failures":{:?}}}"#, failures);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/TPCC_SERVICE_FAILURE.json");
        let _ = std::fs::write(path, &body);
        panic!("TPC-C service recovery failed ({ctx}): {body}");
    }
}

macro_rules! tpcc_service_suite {
    ($name:ident, $make:expr) => {
        mod $name {
            use super::*;

            #[test]
            fn standard_mix_through_service() {
                service_mix($make, TxMix::standard(), 0x51A0);
            }

            #[test]
            fn read_dominated_mix_through_service() {
                service_mix($make, TxMix::read_dominated(), 0x51A1);
            }

            #[test]
            fn durable_crash_recovers_acked_state() {
                durable_crash($make);
            }
        }
    };
}

tpcc_service_suite!(on_si_htm, |_s| si_htm::SiHtm::with_defaults(1 << 20));
tpcc_service_suite!(on_htm_sgl, |_s| htm_sgl::HtmSgl::with_defaults(1 << 20));
tpcc_service_suite!(on_p8tm, |_s| p8tm::P8tm::with_defaults(1 << 20));
tpcc_service_suite!(on_silo, |_s| silo::Silo::with_defaults(1 << 20));
