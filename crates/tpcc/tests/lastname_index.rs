//! Tests of the customer last-name secondary index (clause 2.5.2.2):
//! population builds consistent buckets, lookups resolve to customers that
//! actually carry the name, and the spec's 60 %-by-last-name selection
//! keeps the database consistent under the full mix.

use std::sync::Arc;
use tm_api::{Outcome, TmBackend, TmThread, TxKind};
use tpcc::layout::{C_LAST, IDX_BUCKET_LINES, LASTNAMES};
use tpcc::{txns, TpccConfig, TpccLayout, TpccWorker, TxMix};

fn setup(by_lastname_pct: u32) -> (si_htm::SiHtm, Arc<TpccLayout>) {
    let mut cfg = TpccConfig::tiny(TxMix::standard());
    cfg.customers_per_d = 64;
    cfg.by_lastname_pct = by_lastname_pct;
    let layout = Arc::new(TpccLayout::new(cfg));
    let backend = si_htm::SiHtm::new(
        htm_sim::HtmConfig::small(),
        layout.memory_words(),
        si_htm::SiHtmConfig::default(),
    );
    layout.populate(backend.memory());
    (backend, layout)
}

#[test]
fn population_builds_consistent_buckets() {
    let (backend, l) = setup(0);
    let memory = backend.memory();
    for w in 0..l.cfg.warehouses {
        for d in 0..l.cfg.districts_per_w {
            let mut indexed = 0u64;
            for name in 0..LASTNAMES {
                let ba = l.lastname_bucket(w, d, name);
                let n = memory.load(ba);
                assert!(n < IDX_BUCKET_LINES * 16, "bucket overflow at name {name}");
                for slot in 0..n {
                    let c = memory.load(ba + 1 + slot);
                    assert!(
                        (1..=l.cfg.customers_per_d).contains(&c),
                        "bucket holds invalid customer id {c}"
                    );
                    assert_eq!(
                        memory.load(l.customer(w, d, c) + C_LAST),
                        name,
                        "customer {c} indexed under the wrong name"
                    );
                }
                indexed += n;
            }
            assert_eq!(
                indexed, l.cfg.customers_per_d,
                "every customer of w{w}d{d} must be indexed exactly once"
            );
        }
    }
}

#[test]
fn lookup_resolves_to_a_customer_with_that_name() {
    let (backend, l) = setup(0);
    let mut t = backend.register_thread();
    // Use the name of a known customer so the bucket is non-empty.
    let name = backend.memory().load(l.customer(0, 0, 1) + C_LAST);
    let mut resolved = None;
    t.exec(TxKind::ReadOnly, &mut |tx| {
        resolved = txns::customer_by_lastname(&l, tx, 0, 0, name)?;
        Ok(())
    });
    let c = resolved.expect("bucket for a populated name cannot be empty");
    assert_eq!(backend.memory().load(l.customer(0, 0, c) + C_LAST), name);
}

#[test]
fn empty_name_resolves_to_none() {
    let (backend, l) = setup(0);
    let memory = backend.memory();
    // Find an unpopulated name in district (0,0).
    let empty = (0..LASTNAMES)
        .find(|&n| memory.load(l.lastname_bucket(0, 0, n)) == 0)
        .expect("64 customers cannot fill 1000 names");
    let mut t = backend.register_thread();
    let mut resolved = Some(0);
    t.exec(TxKind::ReadOnly, &mut |tx| {
        resolved = txns::customer_by_lastname(&l, tx, 0, 0, empty)?;
        Ok(())
    });
    assert_eq!(resolved, None);
}

#[test]
fn payment_by_lastname_charges_the_resolved_customer() {
    let (backend, l) = setup(0);
    let mut t = backend.register_thread();
    let name = backend.memory().load(l.customer(0, 0, 5) + C_LAST);
    let input = txns::PaymentInput {
        w: 0,
        d: 0,
        c_w: 0,
        c_d: 0,
        c: 1, // fallback id, must NOT be used
        by_lastname: Some(name),
        amount: 777,
    };
    // Determine who the index resolves to, then verify the balance moved
    // on exactly that customer.
    let mut resolved = None;
    t.exec(TxKind::ReadOnly, &mut |tx| {
        resolved = txns::customer_by_lastname(&l, tx, 0, 0, name)?;
        Ok(())
    });
    let c = resolved.unwrap();
    let ca = l.customer(0, 0, c) + tpcc::layout::C_BALANCE;
    let before = tpcc::layout::from_word(backend.memory().load(ca));
    let out = t.exec(TxKind::Update, &mut |tx| txns::payment(&l, &input, tx));
    assert_eq!(out, Outcome::Committed);
    let after = tpcc::layout::from_word(backend.memory().load(ca));
    assert_eq!(after, before - 777);
    l.check_consistency(backend.memory()).unwrap();
}

#[test]
fn full_mix_with_spec_lastname_rate_stays_consistent() {
    let (backend, l) = setup(60);
    let mut t = backend.register_thread();
    let mut w = TpccWorker::new(Arc::clone(&l), 0);
    for _ in 0..1500 {
        w.run_op(&mut t);
    }
    l.check_consistency(backend.memory()).expect("consistency with 60% by-last-name selection");
    assert!(w.counters.payment > 0 && w.counters.order_status > 0);
}
