//! TPC-C as a typed `txkv-schema` database.
//!
//! Where [`crate::layout`] computes flat array addresses (the paper's
//! indexing-disabled harness), this module expresses the same nine
//! tables as [`txkv_schema`] definitions over the txkv service: every
//! row is a tuple of named `u64` columns behind an order-preserving
//! key, and the customer last-name path is a *real* multi-valued
//! secondary index instead of fixed-capacity hash buckets.
//!
//! ## Placement
//!
//! The schema uses one *place* per warehouse — [`place_of`]`(w) = w + 1`
//! — so [`txkv_schema::place_sharding`] keeps each warehouse's rows on
//! one shard and cross-warehouse transactions (remote payment, remote
//! new-order lines) become cross-shard 2PC exactly when the warehouses
//! land on different shards. Place `0` is the replicated prefix
//! (`key < REPLICATED_BOUNDARY`): the read-only ITEM dimension table is
//! bulk-loaded into **every** shard's store (see
//! [`crate::service::load_items`]) and read locally by all legs; it is
//! never written after load and never WAL-logged.
//!
//! ## Rings
//!
//! ORDER / ORDER-LINE / NEW-ORDER keep the crate's bounded-ring
//! discipline: the key slot is `o_id & (order_ring - 1)` and the row
//! stores the real `o_id`, so readers detect slots recycled by ring
//! wrap. HISTORY is a per-warehouse ring driven by the warehouse row's
//! `hist_next` cursor.

use txkv_schema::{def_key, def_row, Index, Schema, Table};

/// Replicated dimension place: ITEM rows live below
/// [`txkv_schema::REPLICATED_BOUNDARY`] and are loaded into every shard.
pub const ITEM_PLACE: u64 = 0;

/// Warehouse `w` (0-based) keeps all of its rows at place `w + 1`.
pub fn place_of(w: u64) -> u64 {
    w + 1
}

// Composite tuple keys. Widths bound the supported scale (asserted by
// `crate::service::Scale::of`): ≤ 32 districts, ≤ 16 383 customers per
// district, order rings ≤ 65 536 slots, 1 000 last names.
def_key! {
    /// Customer primary key: (district, customer id).
    pub struct CustKey { d: 5, c: 14 }
}
def_key! {
    /// Order-ring slot key: (district, `o_id & (order_ring - 1)`).
    pub struct OrderKey { d: 5, slot: 16 }
}
def_key! {
    /// Order line: (district, order slot, line number).
    pub struct OlKey { d: 5, slot: 16, ol: 4 }
}
def_key! {
    /// Secondary-index key: (district, last-name id, customer id). The
    /// customer id folds into the tuple tail so same-name customers
    /// coexist and scan in id order.
    pub struct LastKey { d: 5, last: 10, c: 14 }
}

def_row! {
    /// ITEM: `price` in cents, `im_id` an opaque image id.
    pub struct ItemRow { price, im_id }
}
def_row! {
    /// WAREHOUSE: `ytd` is signed cents ([`crate::layout::to_word`]),
    /// `tax` basis points, `hist_next` the history-ring cursor.
    pub struct WarehouseRow { ytd, tax, hist_next }
}
def_row! {
    /// DISTRICT: `next_o_id`/`no_first` bound the pending-order window
    /// (1-based o_ids), `ytd` signed cents, `tax` basis points.
    pub struct DistrictRow { next_o_id, no_first, ytd, tax }
}
def_row! {
    /// CUSTOMER: money columns are signed cents, `discount` basis
    /// points, `last` the last-name id (mirrored by [`CUST_LAST`]),
    /// `last_o_id` the most recent order for Order-Status.
    pub struct CustomerRow { balance, ytd_payment, payment_cnt, delivery_cnt, discount, last, last_o_id }
}
def_row! {
    /// STOCK, per (warehouse, item).
    pub struct StockRow { quantity, ytd, order_cnt, remote_cnt }
}
def_row! {
    /// ORDER ring slot; `o_id` detects ring wrap, `carrier` is 0 until
    /// delivered.
    pub struct OrderRow { o_id, c_id, entry_d, carrier, ol_cnt }
}
def_row! {
    /// ORDER-LINE; `amount` unsigned cents, `delivery_d` 0 until
    /// delivered.
    pub struct OlRow { i_id, supply_w, qty, amount, delivery_d }
}
def_row! {
    /// NEW-ORDER: presence marks a pending order; `o_id` detects wrap.
    pub struct NewOrderRow { o_id }
}
def_row! {
    /// HISTORY ring slot. `c_sel` records the customer *selector* the
    /// payment carried (id, or last-name id when selected by name): a
    /// by-name payment resolves the id on the customer's shard, which
    /// the home leg cannot see — an audit-trail deviation noted in
    /// DESIGN.md §13.
    pub struct HistoryRow { amount, c_w, c_d, c_sel }
}

// Table ids are stable protocol constants (6-bit space). Registration
// order in [`schema()`] must match.
pub const ITEM: Table<u64, ItemRow> = Table::new(0, "item");
pub const WAREHOUSE: Table<u64, WarehouseRow> = Table::new(1, "warehouse");
pub const DISTRICT: Table<u64, DistrictRow> = Table::new(2, "district");
pub const CUSTOMER: Table<CustKey, CustomerRow> = Table::new(3, "customer");
pub const STOCK: Table<u64, StockRow> = Table::new(4, "stock");
pub const ORDERS: Table<OrderKey, OrderRow> = Table::new(5, "orders");
pub const ORDER_LINE: Table<OlKey, OlRow> = Table::new(6, "order_line");
pub const NEW_ORDERS: Table<OrderKey, NewOrderRow> = Table::new(7, "new_order");
pub const HISTORY: Table<u64, HistoryRow> = Table::new(8, "history");
/// Customer-by-last-name secondary index (multi-valued); the primary
/// word is the packed [`CustKey`]. Maintained in the same transaction as
/// customer writes — last names are immutable after population, so in
/// TPC-C that transaction is the population load itself.
pub const CUST_LAST: Index<LastKey> = Index::new(9, "customer_by_lastname", false);

/// Column indices for the granular `read_col`/`write_col`/`update_col`
/// paths (must match the `def_row!` field order above).
pub mod col {
    pub const W_YTD: u64 = 0;
    pub const W_TAX: u64 = 1;
    pub const W_HIST_NEXT: u64 = 2;

    pub const D_NEXT_O_ID: u64 = 0;
    pub const D_NO_FIRST: u64 = 1;
    pub const D_YTD: u64 = 2;
    pub const D_TAX: u64 = 3;

    pub const C_BALANCE: u64 = 0;
    pub const C_YTD_PAYMENT: u64 = 1;
    pub const C_PAYMENT_CNT: u64 = 2;
    pub const C_DELIVERY_CNT: u64 = 3;
    pub const C_DISCOUNT: u64 = 4;
    pub const C_LAST: u64 = 5;
    pub const C_LAST_O_ID: u64 = 6;

    pub const O_CARRIER: u64 = 3;

    pub const OL_I_ID: u64 = 0;
    pub const OL_AMOUNT: u64 = 3;
    pub const OL_DELIVERY_D: u64 = 4;

    pub const S_QUANTITY: u64 = 0;
}

/// The registered schema — names resolve through
/// [`txkv_schema::Schema::id_of`] and the allocator cross-checks the
/// constant table ids above (same registration order).
pub fn schema() -> Schema {
    let mut s = Schema::new();
    assert_eq!(s.table::<u64, ItemRow>("item").id(), ITEM.id());
    assert_eq!(s.table::<u64, WarehouseRow>("warehouse").id(), WAREHOUSE.id());
    assert_eq!(s.table::<u64, DistrictRow>("district").id(), DISTRICT.id());
    assert_eq!(s.table::<CustKey, CustomerRow>("customer").id(), CUSTOMER.id());
    assert_eq!(s.table::<u64, StockRow>("stock").id(), STOCK.id());
    assert_eq!(s.table::<OrderKey, OrderRow>("orders").id(), ORDERS.id());
    assert_eq!(s.table::<OlKey, OlRow>("order_line").id(), ORDER_LINE.id());
    assert_eq!(s.table::<OrderKey, NewOrderRow>("new_order").id(), NEW_ORDERS.id());
    assert_eq!(s.table::<u64, HistoryRow>("history").id(), HISTORY.id());
    assert_eq!(s.index::<LastKey>("customer_by_lastname", false).id(), CUST_LAST.id());
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use txkv_schema::{place_of as key_place, TupleKey, REPLICATED_BOUNDARY};

    #[test]
    fn schema_matches_table_constants() {
        let s = schema();
        assert_eq!(s.id_of("customer"), Some(CUSTOMER.id()));
        assert_eq!(s.id_of("customer_by_lastname"), Some(CUST_LAST.id()));
        assert_eq!(s.names().len(), 10);
    }

    #[test]
    fn item_rows_are_replicated_warehouse_rows_are_not() {
        assert!(ITEM.key(ITEM_PLACE, 100_000, 1) < REPLICATED_BOUNDARY);
        assert!(WAREHOUSE.key(place_of(0), 0, 0) >= REPLICATED_BOUNDARY);
        assert_eq!(key_place(CUSTOMER.key(place_of(3), CustKey { d: 1, c: 2 }, 0)), 4);
    }

    #[test]
    fn lastname_index_scans_in_customer_order() {
        // Same (d, last) bucket: keys differ only in the customer tail
        // and sort by customer id — the scan order Payment's
        // middle-of-bucket selection relies on.
        let a = LastKey { d: 3, last: 77, c: 5 }.pack();
        let b = LastKey { d: 3, last: 77, c: 1999 }.pack();
        let other = LastKey { d: 3, last: 78, c: 0 }.pack();
        assert!(a < b && b < other);
    }

    #[test]
    fn order_ring_slots_do_not_collide_across_districts() {
        let k1 = ORDERS.key(place_of(0), OrderKey { d: 1, slot: 7 }, 0);
        let k2 = ORDERS.key(place_of(0), OrderKey { d: 2, slot: 7 }, 0);
        let k3 = ORDER_LINE.key(place_of(0), OlKey { d: 1, slot: 7, ol: 0 }, 0);
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
    }
}
