//! # tpcc — in-memory TPC-C over simulated transactional memory
//!
//! The real-world benchmark of the paper's §4.2: the five TPC-C
//! transactions (New-Order, Payment, Order-Status, Delivery, Stock-Level)
//! over array-backed in-memory tables, with the paper's two mixes:
//!
//! * **standard**  `-s 4 -d 4 -o 4 -p 43 -r 45` — update-dominated,
//!   roughly half the update transactions with large footprints;
//! * **read-dominated**  `-s 4 -d 4 -o 80 -p 4 -r 8`.
//!
//! Like the paper's setup (which disables record indexing in Silo "so the
//! analysis focuses exclusively on the core concurrency control"), rows
//! live at computed addresses in flat arrays — no index structures. Money
//! is integer cents; rates are basis points.
//!
//! Documented deviations from the TPC-C spec (see DESIGN.md):
//!
//! * Delivery is executed per district (the spec's deferred-batch execution
//!   is commonly split this way), delivering up to
//!   [`TpccConfig::delivery_batch`] pending orders so the order rings stay
//!   bounded;
//! * customers are selected by id by default; the spec's 60 %
//!   select-by-last-name path is available through a secondary index
//!   (`TpccConfig::by_lastname_pct`, see [`layout`]), default off to match
//!   the paper's indexing-disabled setup;
//! * History is a per-warehouse ring.
//!
//! Contention is controlled by the warehouse count: the paper's *high*
//! contention uses a single warehouse, *low* uses several.

pub mod layout;
pub mod nurand;
pub mod schema;
pub mod service;
pub mod txns;
pub mod worker;

pub use layout::TpccLayout;
pub use worker::TpccWorker;

/// Transaction mix in percent (must sum to 100). Field names follow the
/// artifact's flags: `-s -d -o -p -r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxMix {
    pub stock_level: u32,
    pub delivery: u32,
    pub order_status: u32,
    pub payment: u32,
    pub new_order: u32,
}

impl TxMix {
    /// The paper's standard mix: `-s 4 -d 4 -o 4 -p 43 -r 45`.
    pub fn standard() -> Self {
        TxMix { stock_level: 4, delivery: 4, order_status: 4, payment: 43, new_order: 45 }
    }

    /// The paper's read-dominated mix: `-s 4 -d 4 -o 80 -p 4 -r 8`.
    pub fn read_dominated() -> Self {
        TxMix { stock_level: 4, delivery: 4, order_status: 80, payment: 4, new_order: 8 }
    }

    pub fn total(&self) -> u32 {
        self.stock_level + self.delivery + self.order_status + self.payment + self.new_order
    }

    /// Fraction of read-only transactions (order-status + stock-level).
    pub fn ro_fraction(&self) -> f64 {
        (self.stock_level + self.order_status) as f64 / self.total() as f64
    }
}

/// Scale and behaviour parameters.
#[derive(Debug, Clone)]
pub struct TpccConfig {
    pub warehouses: u64,
    pub districts_per_w: u64,
    pub customers_per_d: u64,
    pub items: u64,
    /// Order-ring capacity per district (power of two).
    pub order_ring: u64,
    /// Orders populated per district (≤ `order_ring`).
    pub initial_orders: u64,
    /// Of which: already delivered (the rest are pending new-orders).
    pub delivered_prefix: u64,
    /// History-ring slots per warehouse (power of two).
    pub history_ring: u64,
    /// Max pending orders delivered per Delivery transaction (per district).
    pub delivery_batch: u64,
    /// Percentage of Payment transactions hitting a remote warehouse.
    pub remote_payment_pct: u32,
    /// Percentage of New-Order lines supplied by a remote warehouse.
    pub remote_item_pct: u32,
    /// Percentage of New-Order transactions rolled back (invalid item).
    pub invalid_item_pct: u32,
    /// Percentage of Payment / Order-Status transactions that select the
    /// customer **by last name** through the secondary index (TPC-C clause
    /// 2.5.2.2 says 60 %). Default 0: the paper's harness (like many HTM
    /// TPC-C ports) selects by id only; enable for the spec-faithful
    /// variant — it adds an index-bucket read to the footprint.
    pub by_lastname_pct: u32,
    pub mix: TxMix,
}

impl TpccConfig {
    /// Spec-scale configuration with `warehouses` warehouses.
    pub fn paper(warehouses: u64, mix: TxMix) -> Self {
        TpccConfig {
            warehouses,
            districts_per_w: 10,
            customers_per_d: 3000,
            items: 100_000,
            order_ring: 4096,
            initial_orders: 3000,
            delivered_prefix: 2100,
            history_ring: 256,
            delivery_batch: 4,
            remote_payment_pct: 15,
            remote_item_pct: 1,
            invalid_item_pct: 1,
            by_lastname_pct: 0,
            mix,
        }
    }

    /// The paper's low-contention setting: several home warehouses.
    pub fn low_contention(mix: TxMix) -> Self {
        Self::paper(4, mix)
    }

    /// The paper's high-contention setting: one warehouse for everyone.
    pub fn high_contention(mix: TxMix) -> Self {
        Self::paper(1, mix)
    }

    /// A miniature configuration for unit/integration tests.
    pub fn tiny(mix: TxMix) -> Self {
        TpccConfig {
            warehouses: 2,
            districts_per_w: 2,
            customers_per_d: 8,
            items: 64,
            order_ring: 32,
            initial_orders: 12,
            delivered_prefix: 8,
            history_ring: 16,
            delivery_batch: 4,
            remote_payment_pct: 15,
            remote_item_pct: 10,
            invalid_item_pct: 1,
            by_lastname_pct: 0,
            mix,
        }
    }

    pub fn validate(&self) {
        assert!(self.warehouses >= 1);
        assert!(self.order_ring.is_power_of_two(), "order_ring must be a power of two");
        assert!(self.history_ring.is_power_of_two(), "history_ring must be a power of two");
        assert!(self.initial_orders < self.order_ring);
        assert!(self.delivered_prefix <= self.initial_orders);
        assert_eq!(self.mix.total(), 100, "mix percentages must sum to 100");
        assert!(self.customers_per_d >= 2);
        assert!(self.items >= txns::MAX_OL_CNT);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_sum_to_100() {
        assert_eq!(TxMix::standard().total(), 100);
        assert_eq!(TxMix::read_dominated().total(), 100);
    }

    #[test]
    fn read_dominated_is_read_dominated() {
        assert!(TxMix::read_dominated().ro_fraction() > 0.8);
        assert!(TxMix::standard().ro_fraction() < 0.1);
    }

    #[test]
    fn paper_configs_validate() {
        TpccConfig::low_contention(TxMix::standard()).validate();
        TpccConfig::high_contention(TxMix::read_dominated()).validate();
        TpccConfig::tiny(TxMix::standard()).validate();
        assert_eq!(TpccConfig::high_contention(TxMix::standard()).warehouses, 1);
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_mix_rejected() {
        let mut c = TpccConfig::tiny(TxMix::standard());
        c.mix.payment += 1;
        c.validate();
    }
}
