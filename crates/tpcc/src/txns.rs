//! The five TPC-C transactions as backend-agnostic bodies.
//!
//! Inputs are drawn *outside* the transaction body (a body may be re-run
//! on abort; its inputs must stay fixed across retries). Each body takes
//! the pre-drawn input and a [`tm_api::Tx`] handle.

use crate::layout::*;
use crate::nurand;
use crate::TpccLayout;
use rand::Rng;
use tm_api::{Abort, Tx};

/// Maximum order lines per order (TPC-C: 5–15).
pub const MAX_OL_CNT: u64 = 15;

// ---------------------------------------------------------------- inputs

#[derive(Debug, Clone)]
pub struct NewOrderInput {
    pub w: u64,
    pub d: u64,
    pub c: u64,
    pub entry_d: u64,
    /// `(item_id, supply_warehouse, quantity)` per line.
    pub lines: Vec<(u64, u64, u64)>,
    /// Simulate the spec's 1 % invalid-item rollback.
    pub rollback: bool,
}

pub fn gen_new_order<R: Rng>(
    l: &TpccLayout,
    rng: &mut R,
    home_w: u64,
    entry_d: u64,
) -> NewOrderInput {
    let cfg = &l.cfg;
    let d = rng.gen_range(0..cfg.districts_per_w);
    let c = nurand::customer_id(rng, cfg.customers_per_d);
    let ol_cnt = rng.gen_range(5..=MAX_OL_CNT).min(cfg.items);
    let mut lines = Vec::with_capacity(ol_cnt as usize);
    for _ in 0..ol_cnt {
        let item = nurand::item_id(rng, cfg.items);
        let supply_w = if cfg.warehouses > 1 && rng.gen_range(0..100) < cfg.remote_item_pct {
            let mut sw = rng.gen_range(0..cfg.warehouses);
            if sw == home_w {
                sw = (sw + 1) % cfg.warehouses;
            }
            sw
        } else {
            home_w
        };
        lines.push((item, supply_w, rng.gen_range(1..=10)));
    }
    let rollback = rng.gen_range(0..100) < cfg.invalid_item_pct;
    NewOrderInput { w: home_w, d, c, entry_d, lines, rollback }
}

#[derive(Debug, Clone)]
pub struct PaymentInput {
    pub w: u64,
    pub d: u64,
    /// Customer's home warehouse/district (15 % remote).
    pub c_w: u64,
    pub c_d: u64,
    pub c: u64,
    /// When set, resolve the customer through the last-name index instead
    /// of `c` (clause 2.5.2.2; falls back to `c` for unpopulated names).
    pub by_lastname: Option<u64>,
    /// Amount in cents.
    pub amount: u64,
}

pub fn gen_payment<R: Rng>(l: &TpccLayout, rng: &mut R, home_w: u64) -> PaymentInput {
    let cfg = &l.cfg;
    let d = rng.gen_range(0..cfg.districts_per_w);
    let (c_w, c_d) = if cfg.warehouses > 1 && rng.gen_range(0..100) < cfg.remote_payment_pct {
        let mut cw = rng.gen_range(0..cfg.warehouses);
        if cw == home_w {
            cw = (cw + 1) % cfg.warehouses;
        }
        (cw, rng.gen_range(0..cfg.districts_per_w))
    } else {
        (home_w, d)
    };
    PaymentInput {
        w: home_w,
        d,
        c_w,
        c_d,
        c: nurand::customer_id(rng, cfg.customers_per_d),
        by_lastname: (rng.gen_range(0..100) < cfg.by_lastname_pct)
            .then(|| nurand::nurand(rng, 255, 0, LASTNAMES - 1)),
        amount: rng.gen_range(100..=500_000),
    }
}

/// Resolve a customer through the last-name secondary index: the middle
/// member of the name's bucket (the spec's "n/2-th by first name").
/// Returns `None` for unpopulated names.
pub fn customer_by_lastname(
    l: &TpccLayout,
    tx: &mut dyn Tx,
    w: u64,
    d: u64,
    name: u64,
) -> Result<Option<u64>, Abort> {
    let ba = l.lastname_bucket(w, d, name);
    let n = tx.read(ba)?;
    if n == 0 {
        return Ok(None);
    }
    Ok(Some(tx.read(ba + 1 + n / 2)?))
}

#[derive(Debug, Clone)]
pub struct OrderStatusInput {
    pub w: u64,
    pub d: u64,
    pub c: u64,
    /// When set, resolve the customer through the last-name index.
    pub by_lastname: Option<u64>,
}

pub fn gen_order_status<R: Rng>(l: &TpccLayout, rng: &mut R, home_w: u64) -> OrderStatusInput {
    OrderStatusInput {
        w: home_w,
        d: rng.gen_range(0..l.cfg.districts_per_w),
        c: nurand::customer_id(rng, l.cfg.customers_per_d),
        by_lastname: (rng.gen_range(0..100) < l.cfg.by_lastname_pct)
            .then(|| nurand::nurand(rng, 255, 0, LASTNAMES - 1)),
    }
}

#[derive(Debug, Clone)]
pub struct DeliveryInput {
    pub w: u64,
    pub d: u64,
    pub carrier: u64,
    pub delivery_d: u64,
}

pub fn gen_delivery<R: Rng>(
    rng: &mut R,
    home_w: u64,
    district: u64,
    delivery_d: u64,
) -> DeliveryInput {
    DeliveryInput { w: home_w, d: district, carrier: rng.gen_range(1..=10), delivery_d }
}

#[derive(Debug, Clone)]
pub struct StockLevelInput {
    pub w: u64,
    pub d: u64,
    pub threshold: u64,
}

pub fn gen_stock_level<R: Rng>(l: &TpccLayout, rng: &mut R, home_w: u64) -> StockLevelInput {
    StockLevelInput {
        w: home_w,
        d: rng.gen_range(0..l.cfg.districts_per_w),
        threshold: rng.gen_range(10..=20),
    }
}

// ----------------------------------------------------------------- bodies

/// Read-modify-write increment helper (`addr += delta`).
fn add(tx: &mut dyn Tx, addr: u64, delta: u64) -> Result<(), Abort> {
    let v = tx.read(addr)?;
    tx.write(addr, v + delta)
}

/// Touch the remaining lines of a multi-line row (a tuple read reads the
/// whole record; the fields the code uses all live in the first line).
fn touch_row(tx: &mut dyn Tx, base: u64, lines: u64) -> Result<(), Abort> {
    for i in 1..lines {
        tx.read(base + i * 16)?;
    }
    Ok(())
}

/// New-Order (clause 2.4): the backbone update transaction. Returns the
/// total order amount (cents, tax and discount applied).
pub fn new_order(l: &TpccLayout, input: &NewOrderInput, tx: &mut dyn Tx) -> Result<u64, Abort> {
    let wa = l.warehouse(input.w);
    let da = l.district(input.w, input.d);
    let ca = l.customer(input.w, input.d, input.c);

    let w_tax = tx.read(wa + W_TAX)?;
    let d_tax = tx.read(da + D_TAX)?;
    let o_id = tx.read(da + D_NEXT_O_ID)?;
    // Ring-capacity guard: reject the order (a user rollback, like the
    // spec's invalid-item case) rather than overwrite a pending slot. The
    // catch-up logic in `delivery` keeps the backlog near ring/2, so this
    // guard only fires under pathological mixes.
    let first = tx.read(da + D_NO_FIRST)?;
    if o_id - first >= l.cfg.order_ring - 1 {
        return Err(Abort::User);
    }
    tx.write(da + D_NEXT_O_ID, o_id + 1)?;

    let c_discount = tx.read(ca + C_DISCOUNT)?;
    touch_row(tx, ca, CUSTOMER_LINES)?;
    tx.write(ca + C_LAST_O_ID, o_id)?;

    let oa = l.order(input.w, input.d, o_id);
    let all_local = input.lines.iter().all(|&(_, sw, _)| sw == input.w);
    tx.write(oa + O_C_ID, input.c)?;
    tx.write(oa + O_ENTRY_D, input.entry_d)?;
    tx.write(oa + O_CARRIER_ID, 0)?;
    tx.write(oa + O_OL_CNT, input.lines.len() as u64)?;
    tx.write(oa + O_ALL_LOCAL, u64::from(all_local))?;

    let mut total = 0u64;
    let last = input.lines.len() - 1;
    for (idx, &(item, supply_w, qty)) in input.lines.iter().enumerate() {
        if input.rollback && idx == last {
            // Unused item number: the whole transaction rolls back
            // (clause 2.4.1.4) — exercised through the TM user-abort path.
            return Err(Abort::User);
        }
        let price = tx.read(l.item(item) + I_PRICE)?;
        let sa = l.stock(supply_w, item);
        let s_qty = tx.read(sa + S_QUANTITY)?;
        touch_row(tx, sa, STOCK_LINES)?;
        let new_qty = if s_qty >= qty + 10 { s_qty - qty } else { s_qty + 91 - qty };
        tx.write(sa + S_QUANTITY, new_qty)?;
        add(tx, sa + S_YTD, qty)?;
        add(tx, sa + S_ORDER_CNT, 1)?;
        if supply_w != input.w {
            add(tx, sa + S_REMOTE_CNT, 1)?;
        }
        let amount = qty * price;
        let ola = l.order_line(input.w, input.d, o_id, idx as u64);
        tx.write(ola + OL_I_ID, item)?;
        tx.write(ola + OL_SUPPLY_W, supply_w)?;
        tx.write(ola + OL_QUANTITY, qty)?;
        tx.write(ola + OL_AMOUNT, amount)?;
        tx.write(ola + OL_DELIVERY_D, 0)?;
        total += amount;
    }
    // total × (1 − discount) × (1 + w_tax + d_tax), rates in basis points.
    let total = total * (10_000 - c_discount) / 10_000 * (10_000 + w_tax + d_tax) / 10_000;
    Ok(total)
}

/// Payment (clause 2.5): small, warehouse-hot update transaction.
pub fn payment(l: &TpccLayout, input: &PaymentInput, tx: &mut dyn Tx) -> Result<(), Abort> {
    let wa = l.warehouse(input.w);
    let da = l.district(input.w, input.d);
    let c = match input.by_lastname {
        Some(name) => customer_by_lastname(l, tx, input.c_w, input.c_d, name)?.unwrap_or(input.c),
        None => input.c,
    };
    let ca = l.customer(input.c_w, input.c_d, c);

    add(tx, wa + W_YTD, input.amount)?;
    add(tx, da + D_YTD, input.amount)?;

    let balance = from_word(tx.read(ca + C_BALANCE)?) - input.amount as i64;
    touch_row(tx, ca, CUSTOMER_LINES)?;
    tx.write(ca + C_BALANCE, to_word(balance))?;
    add(tx, ca + C_YTD_PAYMENT, input.amount)?;
    add(tx, ca + C_PAYMENT_CNT, 1)?;

    // History insert (per-warehouse ring; the slot counter lives in the
    // warehouse row we already write).
    let slot = tx.read(wa + W_HIST_NEXT)?;
    tx.write(wa + W_HIST_NEXT, slot + 1)?;
    let ha = l.history(input.w, slot);
    tx.write(ha + H_AMOUNT, input.amount)?;
    tx.write(ha + H_C_ID, c)?;
    tx.write(ha + H_C_W, input.c_w)?;
    tx.write(ha + H_D_ID, input.d)?;
    Ok(())
}

/// Order-Status (clause 2.6): read-only; returns `(balance, last order id,
/// order-line count read)`.
pub fn order_status(
    l: &TpccLayout,
    input: &OrderStatusInput,
    tx: &mut dyn Tx,
) -> Result<(i64, u64, u64), Abort> {
    let c = match input.by_lastname {
        Some(name) => customer_by_lastname(l, tx, input.w, input.d, name)?.unwrap_or(input.c),
        None => input.c,
    };
    let ca = l.customer(input.w, input.d, c);
    let balance = from_word(tx.read(ca + C_BALANCE)?);
    touch_row(tx, ca, CUSTOMER_LINES)?;
    let o_id = tx.read(ca + C_LAST_O_ID)?;
    if o_id == 0 {
        return Ok((balance, 0, 0));
    }
    let oa = l.order(input.w, input.d, o_id);
    let ol_cnt = tx.read(oa + O_OL_CNT)?.min(MAX_OL_CNT);
    let _carrier = tx.read(oa + O_CARRIER_ID)?;
    for idx in 0..ol_cnt {
        let ola = l.order_line(input.w, input.d, o_id, idx);
        let _ = tx.read(ola + OL_I_ID)?;
        let _ = tx.read(ola + OL_AMOUNT)?;
        let _ = tx.read(ola + OL_DELIVERY_D)?;
    }
    Ok((balance, o_id, ol_cnt))
}

/// Delivery (clause 2.7), split per district as commonly implemented for
/// the deferred batch: delivers up to `cfg.delivery_batch` oldest pending
/// orders of one district. Returns the number delivered (0 is a legal
/// commit: "skipped delivery").
pub fn delivery(l: &TpccLayout, input: &DeliveryInput, tx: &mut dyn Tx) -> Result<u64, Abort> {
    let da = l.district(input.w, input.d);
    let first = tx.read(da + D_NO_FIRST)?;
    let next = tx.read(da + D_NEXT_O_ID)?;
    let pending = next - first;
    // Nominal batch, with catch-up when the backlog exceeds half the ring
    // (new-orders outpace deliveries in the standard mix — as in real
    // TPC-C, where the delivery queue is allowed to lag; here the ring
    // must stay bounded). Catch-up batches are capped at 64 orders.
    let soft_cap = l.cfg.order_ring / 2;
    let n = if pending > soft_cap {
        (pending - soft_cap).max(l.cfg.delivery_batch).min(64)
    } else {
        pending.min(l.cfg.delivery_batch)
    };
    if n == 0 {
        return Ok(0);
    }
    tx.write(da + D_NO_FIRST, first + n)?;
    for o_id in first..first + n {
        let oa = l.order(input.w, input.d, o_id);
        let c_id = tx.read(oa + O_C_ID)?;
        let ol_cnt = tx.read(oa + O_OL_CNT)?.min(MAX_OL_CNT);
        tx.write(oa + O_CARRIER_ID, input.carrier)?;
        let mut sum = 0u64;
        for idx in 0..ol_cnt {
            let ola = l.order_line(input.w, input.d, o_id, idx);
            sum += tx.read(ola + OL_AMOUNT)?;
            tx.write(ola + OL_DELIVERY_D, input.delivery_d)?;
        }
        let ca = l.customer(input.w, input.d, c_id);
        let balance = from_word(tx.read(ca + C_BALANCE)?) + sum as i64;
        touch_row(tx, ca, CUSTOMER_LINES)?;
        tx.write(ca + C_BALANCE, to_word(balance))?;
        add(tx, ca + C_DELIVERY_CNT, 1)?;
    }
    Ok(n)
}

/// Stock-Level (clause 2.8): read-only with a very large footprint — scans
/// the order lines of the district's last 20 orders and reads each item's
/// stock row. Returns the count of distinct items below the threshold.
pub fn stock_level(l: &TpccLayout, input: &StockLevelInput, tx: &mut dyn Tx) -> Result<u64, Abort> {
    let da = l.district(input.w, input.d);
    let next = tx.read(da + D_NEXT_O_ID)?;
    let newest = next - 1;
    let oldest = newest.saturating_sub(19).max(1);
    let mut low = 0u64;
    let mut seen: Vec<u64> = Vec::with_capacity(64);
    for o_id in oldest..=newest {
        let oa = l.order(input.w, input.d, o_id);
        let ol_cnt = tx.read(oa + O_OL_CNT)?.min(MAX_OL_CNT);
        for idx in 0..ol_cnt {
            let item = tx.read(l.order_line(input.w, input.d, o_id, idx) + OL_I_ID)?;
            if item == 0 || seen.contains(&item) {
                continue;
            }
            seen.push(item);
            let sa = l.stock(input.w, item);
            touch_row(tx, sa, STOCK_LINES)?;
            if tx.read(sa + S_QUANTITY)? < input.threshold {
                low += 1;
            }
        }
    }
    Ok(low)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TpccConfig, TxMix};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tm_api::{Outcome, TmBackend, TmThread, TxKind};

    fn setup() -> (si_htm::SiHtm, TpccLayout) {
        let layout = TpccLayout::new(TpccConfig::tiny(TxMix::standard()));
        let backend = si_htm::SiHtm::new(
            htm_sim::HtmConfig::small(),
            layout.memory_words(),
            si_htm::SiHtmConfig::default(),
        );
        layout.populate(backend.memory());
        (backend, layout)
    }

    #[test]
    fn new_order_advances_district_and_writes_rows() {
        let (backend, l) = setup();
        let mut t = backend.register_thread();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut input = gen_new_order(&l, &mut rng, 0, 99);
        input.rollback = false;
        let next_before = backend.memory().load(l.district(0, input.d) + D_NEXT_O_ID);
        let mut total = 0;
        let out = t.exec(TxKind::Update, &mut |tx| {
            total = new_order(&l, &input, tx)?;
            Ok(())
        });
        assert_eq!(out, Outcome::Committed);
        assert!(total > 0);
        let da = l.district(0, input.d);
        assert_eq!(backend.memory().load(da + D_NEXT_O_ID), next_before + 1);
        let oa = l.order(0, input.d, next_before);
        assert_eq!(backend.memory().load(oa + O_C_ID), input.c);
        assert_eq!(backend.memory().load(oa + O_OL_CNT), input.lines.len() as u64);
        assert_eq!(backend.memory().load(oa + O_CARRIER_ID), 0);
        l.check_consistency(backend.memory()).unwrap();
    }

    #[test]
    fn new_order_rollback_leaves_no_trace() {
        let (backend, l) = setup();
        let mut t = backend.register_thread();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut input = gen_new_order(&l, &mut rng, 0, 1);
        input.rollback = true;
        let da = l.district(0, input.d) + D_NEXT_O_ID;
        let before = backend.memory().load(da);
        let out = t.exec(TxKind::Update, &mut |tx| {
            new_order(&l, &input, tx)?;
            Ok(())
        });
        assert_eq!(out, Outcome::UserAborted);
        assert_eq!(backend.memory().load(da), before, "rollback must undo D_NEXT_O_ID");
        l.check_consistency(backend.memory()).unwrap();
    }

    #[test]
    fn payment_moves_money_consistently() {
        let (backend, l) = setup();
        let mut t = backend.register_thread();
        let mut rng = SmallRng::seed_from_u64(11);
        let input = gen_payment(&l, &mut rng, 1);
        let ca = l.customer(input.c_w, input.c_d, input.c);
        let bal_before = from_word(backend.memory().load(ca + C_BALANCE));
        let out = t.exec(TxKind::Update, &mut |tx| payment(&l, &input, tx));
        assert_eq!(out, Outcome::Committed);
        let bal_after = from_word(backend.memory().load(ca + C_BALANCE));
        assert_eq!(bal_after, bal_before - input.amount as i64);
        // Condition 1 (W_YTD = Σ D_YTD) must survive payments.
        l.check_consistency(backend.memory()).unwrap();
        // History row recorded.
        let ha = l.history(input.w, 0);
        assert_eq!(backend.memory().load(ha + H_AMOUNT), input.amount);
    }

    #[test]
    fn order_status_reads_last_order() {
        let (backend, l) = setup();
        let mut t = backend.register_thread();
        // Find a customer that owns an order.
        let mut target = None;
        for c in 1..=l.cfg.customers_per_d {
            if backend.memory().load(l.customer(0, 0, c) + C_LAST_O_ID) != 0 {
                target = Some(c);
                break;
            }
        }
        let c = target.expect("population assigns orders to customers");
        let input = OrderStatusInput { w: 0, d: 0, c, by_lastname: None };
        let mut got = (0, 0, 0);
        let out = t.exec(TxKind::ReadOnly, &mut |tx| {
            got = order_status(&l, &input, tx)?;
            Ok(())
        });
        assert_eq!(out, Outcome::Committed);
        assert!(got.1 > 0, "customer had an order");
        assert!((5..=15).contains(&got.2), "ol_cnt plausible");
    }

    #[test]
    fn delivery_delivers_oldest_pending() {
        let (backend, l) = setup();
        let mut t = backend.register_thread();
        let da = l.district(0, 0);
        let first = backend.memory().load(da + D_NO_FIRST);
        let next = backend.memory().load(da + D_NEXT_O_ID);
        let pending = next - first;
        assert!(pending > 0, "population leaves pending orders");
        let input = DeliveryInput { w: 0, d: 0, carrier: 7, delivery_d: 123 };
        let mut delivered = 0;
        let out = t.exec(TxKind::Update, &mut |tx| {
            delivered = delivery(&l, &input, tx)?;
            Ok(())
        });
        assert_eq!(out, Outcome::Committed);
        assert_eq!(delivered, pending.min(l.cfg.delivery_batch));
        assert_eq!(backend.memory().load(da + D_NO_FIRST), first + delivered);
        let oa = l.order(0, 0, first);
        assert_eq!(backend.memory().load(oa + O_CARRIER_ID), 7);
        l.check_consistency(backend.memory()).unwrap();
    }

    #[test]
    fn delivery_on_empty_district_commits_zero() {
        let (backend, l) = setup();
        let mut t = backend.register_thread();
        // Drain district 0 of warehouse 0.
        loop {
            let input = DeliveryInput { w: 0, d: 0, carrier: 1, delivery_d: 5 };
            let mut n = 0;
            t.exec(TxKind::Update, &mut |tx| {
                n = delivery(&l, &input, tx)?;
                Ok(())
            });
            if n == 0 {
                break;
            }
        }
        let da = l.district(0, 0);
        assert_eq!(backend.memory().load(da + D_NO_FIRST), backend.memory().load(da + D_NEXT_O_ID));
        l.check_consistency(backend.memory()).unwrap();
    }

    #[test]
    fn stock_level_counts_low_stock() {
        let (backend, l) = setup();
        let mut t = backend.register_thread();
        let input = StockLevelInput { w: 0, d: 0, threshold: 200 };
        let mut low = 0;
        let out = t.exec(TxKind::ReadOnly, &mut |tx| {
            low = stock_level(&l, &input, tx)?;
            Ok(())
        });
        assert_eq!(out, Outcome::Committed);
        // Threshold 200 exceeds the max populated quantity (100): every
        // distinct item in the scanned orders counts.
        assert!(low > 0, "with threshold 200 every scanned item is low");
        let zero_input = StockLevelInput { w: 0, d: 0, threshold: 0 };
        t.exec(TxKind::ReadOnly, &mut |tx| {
            low = stock_level(&l, &zero_input, tx)?;
            Ok(())
        });
        assert_eq!(low, 0, "threshold 0 matches nothing");
    }
}
