//! Per-thread TPC-C terminal: draws transactions according to the mix and
//! executes them against a [`tm_api::TmThread`].

use crate::txns::{self};
use crate::TpccLayout;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tm_api::{TmThread, TxKind};

/// Per-transaction-type commit counters (for mix verification and the
/// per-type throughput the artifact's summaries report).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MixCounters {
    pub new_order: u64,
    pub payment: u64,
    pub order_status: u64,
    pub delivery: u64,
    pub stock_level: u64,
    pub rollbacks: u64,
}

impl MixCounters {
    pub fn total(&self) -> u64 {
        self.new_order + self.payment + self.order_status + self.delivery + self.stock_level
    }
}

impl MixCounters {
    fn add(&mut self, other: &MixCounters) {
        self.new_order += other.new_order;
        self.payment += other.payment;
        self.order_status += other.order_status;
        self.delivery += other.delivery;
        self.stock_level += other.stock_level;
        self.rollbacks += other.rollbacks;
    }
}

/// A TPC-C terminal bound to a home warehouse.
pub struct TpccWorker {
    layout: Arc<TpccLayout>,
    rng: SmallRng,
    home_w: u64,
    /// Round-robin district cursor for Delivery.
    next_delivery_d: u64,
    /// Monotonic timestamp source for entry/delivery dates.
    date: u64,
    pub counters: MixCounters,
    /// Optional shared sink the counters are flushed into periodically
    /// (the per-type summary of the artifact's reports).
    sink: Option<Arc<std::sync::Mutex<MixCounters>>>,
}

impl TpccWorker {
    pub fn new(layout: Arc<TpccLayout>, thread_index: usize) -> Self {
        let home_w = thread_index as u64 % layout.cfg.warehouses;
        TpccWorker {
            layout,
            rng: SmallRng::seed_from_u64(0x7CC ^ (thread_index as u64) << 8),
            home_w,
            next_delivery_d: thread_index as u64,
            date: 1,
            counters: MixCounters::default(),
            sink: None,
        }
    }

    /// Flush the per-type counters into `sink` every 64 operations (and
    /// leave the final partial batch to the caller via [`Self::flush`]).
    pub fn with_sink(mut self, sink: Arc<std::sync::Mutex<MixCounters>>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Push accumulated counters into the sink and reset them.
    pub fn flush(&mut self) {
        if let Some(sink) = &self.sink {
            sink.lock().unwrap().add(&self.counters);
            self.counters = MixCounters::default();
        }
    }

    pub fn home_warehouse(&self) -> u64 {
        self.home_w
    }

    /// Execute one transaction drawn from the configured mix.
    pub fn run_op<T: TmThread>(&mut self, thread: &mut T) {
        if self.sink.is_some() && self.counters.total() >= 64 {
            self.flush();
        }
        let l = Arc::clone(&self.layout);
        let mix = &l.cfg.mix;
        let roll = self.rng.gen_range(0..mix.total());
        self.date += 1;
        if roll < mix.new_order {
            let input = txns::gen_new_order(&l, &mut self.rng, self.home_w, self.date);
            let out = thread.exec(TxKind::Update, &mut |tx| {
                txns::new_order(&l, &input, tx)?;
                Ok(())
            });
            match out {
                tm_api::Outcome::Committed => self.counters.new_order += 1,
                tm_api::Outcome::UserAborted => self.counters.rollbacks += 1,
            }
        } else if roll < mix.new_order + mix.payment {
            let input = txns::gen_payment(&l, &mut self.rng, self.home_w);
            thread.exec(TxKind::Update, &mut |tx| txns::payment(&l, &input, tx));
            self.counters.payment += 1;
        } else if roll < mix.new_order + mix.payment + mix.order_status {
            let input = txns::gen_order_status(&l, &mut self.rng, self.home_w);
            thread.exec(TxKind::ReadOnly, &mut |tx| {
                txns::order_status(&l, &input, tx)?;
                Ok(())
            });
            self.counters.order_status += 1;
        } else if roll < mix.new_order + mix.payment + mix.order_status + mix.delivery {
            self.next_delivery_d = (self.next_delivery_d + 1) % l.cfg.districts_per_w;
            let input =
                txns::gen_delivery(&mut self.rng, self.home_w, self.next_delivery_d, self.date);
            thread.exec(TxKind::Update, &mut |tx| {
                txns::delivery(&l, &input, tx)?;
                Ok(())
            });
            self.counters.delivery += 1;
        } else {
            let input = txns::gen_stock_level(&l, &mut self.rng, self.home_w);
            thread.exec(TxKind::ReadOnly, &mut |tx| {
                txns::stock_level(&l, &input, tx)?;
                Ok(())
            });
            self.counters.stock_level += 1;
        }
    }
}

impl Drop for TpccWorker {
    fn drop(&mut self) {
        // Deliver the final partial batch to the sink (if any).
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TpccConfig, TxMix};
    use tm_api::TmBackend;

    #[test]
    fn worker_respects_the_mix_and_keeps_db_consistent() {
        let layout = Arc::new(TpccLayout::new(TpccConfig::tiny(TxMix::standard())));
        let backend = si_htm::SiHtm::new(
            htm_sim::HtmConfig::small(),
            layout.memory_words(),
            si_htm::SiHtmConfig::default(),
        );
        layout.populate(backend.memory());
        let mut t = backend.register_thread();
        let mut w = TpccWorker::new(Arc::clone(&layout), 0);
        for _ in 0..2000 {
            w.run_op(&mut t);
        }
        layout.check_consistency(backend.memory()).expect("db consistent after serial run");
        let c = &w.counters;
        let total = c.total() + c.rollbacks;
        assert_eq!(total, 2000);
        // Mix shares within ±5 points of the configured percentages.
        let share = |n: u64| n as f64 * 100.0 / total as f64;
        assert!((share(c.new_order + c.rollbacks) - 45.0).abs() < 5.0, "new-order share");
        assert!((share(c.payment) - 43.0).abs() < 5.0, "payment share");
        assert!((share(c.order_status) - 4.0).abs() < 3.0, "order-status share");
        assert!((share(c.delivery) - 4.0).abs() < 3.0, "delivery share");
        assert!((share(c.stock_level) - 4.0).abs() < 3.0, "stock-level share");
        // ~1% rollbacks.
        assert!(c.rollbacks > 0, "invalid-item rollbacks occurred");
    }

    #[test]
    fn workers_spread_over_warehouses() {
        let layout = Arc::new(TpccLayout::new(TpccConfig::tiny(TxMix::standard())));
        let w0 = TpccWorker::new(Arc::clone(&layout), 0);
        let w1 = TpccWorker::new(Arc::clone(&layout), 1);
        let w2 = TpccWorker::new(Arc::clone(&layout), 2);
        assert_eq!(w0.home_warehouse(), 0);
        assert_eq!(w1.home_warehouse(), 1);
        assert_eq!(w2.home_warehouse(), 0, "round-robin over 2 warehouses");
    }
}
