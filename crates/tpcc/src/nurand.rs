//! TPC-C random-input helpers (clause 2.1.6): `NURand` non-uniform ids.

use rand::Rng;

/// TPC-C constant `C` for NURand. The spec draws it once per run; a fixed
//  value keeps experiments reproducible across backends.
const C: u64 = 259;

/// `NURand(A, x, y)` per TPC-C clause 2.1.6: a non-uniform distribution
/// over `[x, y]` skewed towards a hot subset.
pub fn nurand<R: Rng>(rng: &mut R, a: u64, x: u64, y: u64) -> u64 {
    debug_assert!(x <= y);
    let r1 = rng.gen_range(0..=a);
    let r2 = rng.gen_range(x..=y);
    (((r1 | r2) + C) % (y - x + 1)) + x
}

/// Customer id (1-based): `NURand(1023, 1, customers)`.
pub fn customer_id<R: Rng>(rng: &mut R, customers: u64) -> u64 {
    nurand(rng, 1023.min(customers - 1), 1, customers)
}

/// Item id (1-based): `NURand(8191, 1, items)`.
pub fn item_id<R: Rng>(rng: &mut R, items: u64) -> u64 {
    nurand(rng, 8191.min(items - 1), 1, items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn nurand_stays_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = nurand(&mut rng, 1023, 1, 3000);
            assert!((1..=3000).contains(&v));
        }
    }

    #[test]
    fn nurand_is_nonuniform() {
        // The OR-fold concentrates mass on ids with many set bits; check
        // the distribution is visibly skewed vs uniform.
        let mut rng = SmallRng::seed_from_u64(2);
        let n: u64 = 100_000;
        let range = 1000u64;
        let mut counts = vec![0u64; range as usize + 1];
        for _ in 0..n {
            counts[nurand(&mut rng, 255, 1, range) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let expected = n as f64 / range as f64;
        assert!(max > expected * 2.0, "distribution looks uniform (max {max}, mean {expected})");
    }

    #[test]
    fn helpers_cover_small_domains() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let c = customer_id(&mut rng, 8);
            assert!((1..=8).contains(&c));
            let i = item_id(&mut rng, 64);
            assert!((1..=64).contains(&i));
        }
    }
}
