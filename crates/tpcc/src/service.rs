//! TPC-C as a txkv *service* client: the five transaction classes
//! registered as server-side [`Procedure`]s over the typed schema of
//! [`crate::schema`], driven through the batched request pipeline.
//!
//! This is the service-side twin of [`crate::txns`] (which runs the same
//! transactions against the flat address layout inside one process).
//! Here every class goes through [`txkv::KvOp::Call`]:
//!
//! * **New-Order** — home leg allocates the order id, writes the order /
//!   order-line / new-order rows and computes the total from replicated
//!   ITEM prices; remote-supplied lines update stock on their own
//!   warehouse's shard, making the call a cross-shard 2PC when supply
//!   warehouses are sharded apart. An invalid item id aborts the whole
//!   call ([`tm_api::Abort::User`] → [`txkv::KvReply::CallAborted`]).
//! * **Payment** — home leg moves warehouse/district YTD and appends the
//!   history ring; the customer leg (remote for 15 % of payments)
//!   resolves the customer — by id, or *by last name through the
//!   [`crate::schema::CUST_LAST`] secondary index* — and moves the
//!   balance. Two legs, one 2PC transaction.
//! * **Order-Status** (read-only) — rides the pipeline's batched RO path
//!   (on SI-HTM the never-aborting unbounded-read path), resolving the
//!   customer through the same index.
//! * **Delivery** — single-shard update batch over the pending-order
//!   window.
//! * **Stock-Level** (read-only) — scans the last 20 orders' lines.
//!
//! Population is split by durability class: the read-only ITEM dimension
//! table is bulk-loaded into **every** shard store at open time
//! ([`load_items`], never WAL-logged), while all per-warehouse rows go
//! through the pipeline as `MultiPut` batches ([`load_warehouses`]) so a
//! durable service recovers them from its own WAL.

use crate::layout::{from_word, to_word};
use crate::schema::{
    col, place_of, CustKey, CustomerRow, DistrictRow, HistoryRow, ItemRow, LastKey, NewOrderRow,
    OlKey, OlRow, OrderKey, OrderRow, StockRow, WarehouseRow, CUSTOMER, CUST_LAST, DISTRICT,
    HISTORY, ITEM, ITEM_PLACE, NEW_ORDERS, ORDERS, ORDER_LINE, STOCK, WAREHOUSE,
};
use crate::txns::MAX_OL_CNT;
use crate::{nurand, TpccConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use tm_api::{Abort, Outcome, TmBackend, TmThread, TxKind};
use txkv::{
    KvClient, KvError, KvOp, KvReply, KvStore, KvTx, LocalTx, ProcCtx, ProcRegistry, Procedure,
    ShardMap, WalSet,
};
use txkv_schema::{place_sharding, Row, TupleKey, REPLICATED_BOUNDARY};

pub const NEW_ORDER_ID: u64 = 1;
pub const PAYMENT_ID: u64 = 2;
pub const ORDER_STATUS_ID: u64 = 3;
pub const DELIVERY_ID: u64 = 4;
pub const STOCK_LEVEL_ID: u64 = 5;
/// Read-only consistency audit (test/ops surface, not part of the mix).
pub const AUDIT_ID: u64 = 6;

/// Deterministic population seed (shared by [`populate`], [`item_rows`]
/// and [`warehouse_rows`], so re-deriving any slice reproduces it).
const SEED: u64 = 0x7C5C_0FF5_EED0_0001;

/// The five TPC-C transaction classes, in mix-drawing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxClass {
    NewOrder,
    Payment,
    OrderStatus,
    Delivery,
    StockLevel,
}

impl TxClass {
    pub const ALL: [TxClass; 5] = [
        TxClass::NewOrder,
        TxClass::Payment,
        TxClass::OrderStatus,
        TxClass::Delivery,
        TxClass::StockLevel,
    ];

    pub fn name(self) -> &'static str {
        match self {
            TxClass::NewOrder => "new_order",
            TxClass::Payment => "payment",
            TxClass::OrderStatus => "order_status",
            TxClass::Delivery => "delivery",
            TxClass::StockLevel => "stock_level",
        }
    }

    pub fn proc_id(self) -> u64 {
        match self {
            TxClass::NewOrder => NEW_ORDER_ID,
            TxClass::Payment => PAYMENT_ID,
            TxClass::OrderStatus => ORDER_STATUS_ID,
            TxClass::Delivery => DELIVERY_ID,
            TxClass::StockLevel => STOCK_LEVEL_ID,
        }
    }

    pub fn index(self) -> usize {
        self as usize
    }
}

/// Scale facts the procedures need, extracted from [`TpccConfig`] and
/// checked against the schema's key widths.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    pub warehouses: u64,
    pub districts: u64,
    pub customers: u64,
    pub items: u64,
    pub order_ring: u64,
    pub history_ring: u64,
    pub delivery_batch: u64,
}

impl Scale {
    pub fn of(cfg: &TpccConfig) -> Scale {
        cfg.validate();
        assert!(cfg.warehouses + 1 < 1 << 10, "place space: at most 1022 warehouses");
        assert!(cfg.districts_per_w < 32, "CustKey.d is 5 bits (and audits scan to d+1)");
        assert!(cfg.customers_per_d < 1 << 14, "CustKey.c is 14 bits");
        assert!(cfg.order_ring <= 1 << 16, "OrderKey.slot is 16 bits");
        Scale {
            warehouses: cfg.warehouses,
            districts: cfg.districts_per_w,
            customers: cfg.customers_per_d,
            items: cfg.items,
            order_ring: cfg.order_ring,
            history_ring: cfg.history_ring,
            delivery_batch: cfg.delivery_batch,
        }
    }

    fn slot(&self, o_id: u64) -> u64 {
        o_id & (self.order_ring - 1)
    }
}

/// Signed-cents arithmetic on stored money words.
fn wadd(word: u64, delta: i64) -> u64 {
    to_word(from_word(word) + delta)
}

/// Resolve a customer selector on the customer's own shard: either a
/// direct id, or a last-name id looked up through [`CUST_LAST`] picking
/// the middle bucket member (TPC-C clause 2.5.2.2). An empty bucket is a
/// user abort (invalid input).
fn resolve_customer(
    ctx: &mut dyn KvTx,
    place: u64,
    d: u64,
    by_name: bool,
    sel: u64,
) -> Result<u64, Abort> {
    if !by_name {
        return Ok(sel);
    }
    let mut members: Vec<u64> = Vec::new();
    CUST_LAST.scan(
        ctx,
        place,
        LastKey { d, last: sel, c: 0 },
        LastKey { d, last: sel + 1, c: 0 },
        u64::MAX,
        &mut |ik, _| members.push(ik.c),
    )?;
    if members.is_empty() {
        return Err(Abort::User);
    }
    Ok(members[members.len() / 2])
}

/// New-Order: args `[w, d, c, entry_d, n, (i_id, supply_w, qty) * n]`;
/// reply `[o_id, total_word]` from the home leg.
pub struct NewOrderProc(pub Scale);

impl Procedure for NewOrderProc {
    fn id(&self) -> u64 {
        NEW_ORDER_ID
    }
    fn name(&self) -> &'static str {
        "new_order"
    }
    fn run(&self, ctx: &mut ProcCtx<'_>, args: &[u64]) -> Result<Vec<u64>, Abort> {
        let s = self.0;
        let (w, d, c, entry_d) = (args[0], args[1], args[2], args[3]);
        let n = args[4] as usize;
        let lines = &args[5..5 + 3 * n];
        let home = place_of(w);
        let mut out = Vec::new();
        if ctx.is_local(DISTRICT.key(home, d, 0)) {
            let dist = DISTRICT.get(ctx, home, d)?.ok_or(Abort::User)?;
            let o_id = dist.next_o_id;
            if o_id - dist.no_first >= s.order_ring - 1 {
                return Err(Abort::User); // pending ring full: refuse the order
            }
            DISTRICT.write_col(ctx, home, d, col::D_NEXT_O_ID, o_id + 1)?;
            let slot = s.slot(o_id);
            let mut sum: i64 = 0;
            for (ol, line) in lines.chunks(3).enumerate() {
                let (i_id, supply_w, qty) = (line[0], line[1], line[2]);
                // Replicated dimension read — local on every leg. A
                // missing item is the spec's 1 % invalid-order rollback.
                let item = ITEM.get(ctx, ITEM_PLACE, i_id)?.ok_or(Abort::User)?;
                let amount = item.price * qty;
                sum += amount as i64;
                ORDER_LINE.put(
                    ctx,
                    home,
                    OlKey { d, slot, ol: ol as u64 },
                    &OlRow { i_id, supply_w, qty, amount, delivery_d: 0 },
                )?;
            }
            ORDERS.put(
                ctx,
                home,
                OrderKey { d, slot },
                &OrderRow { o_id, c_id: c, entry_d, carrier: 0, ol_cnt: n as u64 },
            )?;
            NEW_ORDERS.put(ctx, home, OrderKey { d, slot }, &NewOrderRow { o_id })?;
            let ck = CustKey { d, c };
            let discount = CUSTOMER.read_col(ctx, home, ck, col::C_DISCOUNT)? as i64;
            CUSTOMER.write_col(ctx, home, ck, col::C_LAST_O_ID, o_id)?;
            let w_tax = WAREHOUSE.read_col(ctx, home, 0, col::W_TAX)? as i64;
            let total =
                sum * (10_000 - discount) / 10_000 * (10_000 + w_tax + dist.tax as i64) / 10_000;
            out = vec![o_id, to_word(total)];
        }
        // Stock legs: every line whose supply warehouse lives on this
        // shard (the home shard handles its own lines here too).
        for line in lines.chunks(3) {
            let (i_id, supply_w, qty) = (line[0], line[1], line[2]);
            let sp = place_of(supply_w);
            if !ctx.is_local(STOCK.key(sp, i_id, 0)) {
                continue;
            }
            // An invalid item has no stock row on any warehouse, so the
            // rollback is reached on remote-only legs as well.
            let mut st = STOCK.get(ctx, sp, i_id)?.ok_or(Abort::User)?;
            st.quantity =
                if st.quantity >= qty + 10 { st.quantity - qty } else { st.quantity + 91 - qty };
            st.ytd += qty;
            st.order_cnt += 1;
            if supply_w != w {
                st.remote_cnt += 1;
            }
            STOCK.put(ctx, sp, i_id, &st)?;
        }
        Ok(out)
    }
}

/// Payment: args `[w, d, c_w, c_d, by_name, sel, amount]`; reply
/// `[resolved_c]` from the customer leg.
pub struct PaymentProc(pub Scale);

impl Procedure for PaymentProc {
    fn id(&self) -> u64 {
        PAYMENT_ID
    }
    fn name(&self) -> &'static str {
        "payment"
    }
    fn run(&self, ctx: &mut ProcCtx<'_>, args: &[u64]) -> Result<Vec<u64>, Abort> {
        let s = self.0;
        let (w, d, c_w, c_d) = (args[0], args[1], args[2], args[3]);
        let (by_name, sel) = (args[4] != 0, args[5]);
        let amount = args[6] as i64;
        let home = place_of(w);
        let cp = place_of(c_w);
        let mut out = Vec::new();
        if ctx.is_local(WAREHOUSE.key(home, 0, 0)) {
            WAREHOUSE.update_col(ctx, home, 0, col::W_YTD, |y| wadd(y, amount))?;
            DISTRICT.update_col(ctx, home, d, col::D_YTD, |y| wadd(y, amount))?;
            let next = WAREHOUSE.update_col(ctx, home, 0, col::W_HIST_NEXT, |h| h + 1)?;
            HISTORY.put(
                ctx,
                home,
                (next - 1) & (s.history_ring - 1),
                &HistoryRow { amount: amount as u64, c_w, c_d, c_sel: sel },
            )?;
        }
        if ctx.is_local(WAREHOUSE.key(cp, 0, 0)) {
            let c = resolve_customer(ctx, cp, c_d, by_name, sel)?;
            let ck = CustKey { d: c_d, c };
            CUSTOMER.update_col(ctx, cp, ck, col::C_BALANCE, |b| wadd(b, -amount))?;
            CUSTOMER.update_col(ctx, cp, ck, col::C_YTD_PAYMENT, |y| wadd(y, amount))?;
            CUSTOMER.update_col(ctx, cp, ck, col::C_PAYMENT_CNT, |x| x + 1)?;
            out = vec![c];
        }
        Ok(out)
    }
}

/// Order-Status (read-only): args `[w, d, by_name, sel]`; reply
/// `[c, balance_word, last_o_id, lines, delivered_lines]`.
pub struct OrderStatusProc(pub Scale);

impl Procedure for OrderStatusProc {
    fn id(&self) -> u64 {
        ORDER_STATUS_ID
    }
    fn name(&self) -> &'static str {
        "order_status"
    }
    fn read_only(&self) -> bool {
        true
    }
    fn run(&self, ctx: &mut ProcCtx<'_>, args: &[u64]) -> Result<Vec<u64>, Abort> {
        let s = self.0;
        let (w, d) = (args[0], args[1]);
        let (by_name, sel) = (args[2] != 0, args[3]);
        let p = place_of(w);
        let c = resolve_customer(ctx, p, d, by_name, sel)?;
        let ck = CustKey { d, c };
        let cust = CUSTOMER.get(ctx, p, ck)?.ok_or(Abort::User)?;
        let o_id = cust.last_o_id;
        let (mut lines, mut delivered) = (0u64, 0u64);
        if o_id != 0 {
            let slot = s.slot(o_id);
            if let Some(ord) = ORDERS.get(ctx, p, OrderKey { d, slot })? {
                if ord.o_id == o_id {
                    for ol in 0..ord.ol_cnt {
                        let l =
                            ORDER_LINE.get(ctx, p, OlKey { d, slot, ol })?.ok_or(Abort::User)?;
                        lines += 1;
                        if l.delivery_d != 0 {
                            delivered += 1;
                        }
                    }
                }
            }
        }
        Ok(vec![c, cust.balance, o_id, lines, delivered])
    }
}

/// Delivery: args `[w, d, carrier, delivery_d]`; reply `[delivered]`.
/// Per-district deferred batch over the pending window, as in
/// [`crate::txns::delivery`].
pub struct DeliveryProc(pub Scale);

impl Procedure for DeliveryProc {
    fn id(&self) -> u64 {
        DELIVERY_ID
    }
    fn name(&self) -> &'static str {
        "delivery"
    }
    fn run(&self, ctx: &mut ProcCtx<'_>, args: &[u64]) -> Result<Vec<u64>, Abort> {
        let s = self.0;
        let (w, d, carrier, delivery_d) = (args[0], args[1], args[2], args[3]);
        let p = place_of(w);
        let dist = DISTRICT.get(ctx, p, d)?.ok_or(Abort::User)?;
        let n = (dist.next_o_id - dist.no_first).min(s.delivery_batch);
        for k in 0..n {
            let o_id = dist.no_first + k;
            let slot = s.slot(o_id);
            let ok = OrderKey { d, slot };
            NEW_ORDERS.delete(ctx, p, ok)?;
            let ord = ORDERS.get(ctx, p, ok)?.ok_or(Abort::User)?;
            ORDERS.write_col(ctx, p, ok, col::O_CARRIER, carrier)?;
            let mut sum: i64 = 0;
            for ol in 0..ord.ol_cnt {
                let olk = OlKey { d, slot, ol };
                sum += ORDER_LINE.read_col(ctx, p, olk, col::OL_AMOUNT)? as i64;
                ORDER_LINE.write_col(ctx, p, olk, col::OL_DELIVERY_D, delivery_d)?;
            }
            let ck = CustKey { d, c: ord.c_id };
            CUSTOMER.update_col(ctx, p, ck, col::C_BALANCE, |b| wadd(b, sum))?;
            CUSTOMER.update_col(ctx, p, ck, col::C_DELIVERY_CNT, |x| x + 1)?;
        }
        if n > 0 {
            DISTRICT.write_col(ctx, p, d, col::D_NO_FIRST, dist.no_first + n)?;
        }
        Ok(vec![n])
    }
}

/// Stock-Level (read-only): args `[w, d, threshold]`; reply
/// `[low_stock_items]` over the last 20 orders' distinct items.
pub struct StockLevelProc(pub Scale);

impl Procedure for StockLevelProc {
    fn id(&self) -> u64 {
        STOCK_LEVEL_ID
    }
    fn name(&self) -> &'static str {
        "stock_level"
    }
    fn read_only(&self) -> bool {
        true
    }
    fn run(&self, ctx: &mut ProcCtx<'_>, args: &[u64]) -> Result<Vec<u64>, Abort> {
        let s = self.0;
        let (w, d, threshold) = (args[0], args[1], args[2]);
        let p = place_of(w);
        let dist = DISTRICT.get(ctx, p, d)?.ok_or(Abort::User)?;
        let lo = dist.next_o_id.saturating_sub(20).max(1);
        let mut items: Vec<u64> = Vec::new();
        for o_id in lo..dist.next_o_id {
            let slot = s.slot(o_id);
            let Some(ord) = ORDERS.get(ctx, p, OrderKey { d, slot })? else { continue };
            if ord.o_id != o_id {
                continue; // slot recycled by ring wrap
            }
            for ol in 0..ord.ol_cnt {
                let i = ORDER_LINE.read_col(ctx, p, OlKey { d, slot, ol }, col::OL_I_ID)?;
                if i != 0 && !items.contains(&i) {
                    items.push(i);
                }
            }
        }
        let mut low = 0u64;
        for &i in &items {
            if STOCK.read_col(ctx, p, i, col::S_QUANTITY)? < threshold {
                low += 1;
            }
        }
        Ok(vec![low])
    }
}

/// Facts an audit reports besides pass/fail — enough for acked-write
/// checks without re-reading the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFacts {
    /// Warehouse YTD money word.
    pub w_ytd: u64,
    /// Per district: `(next_o_id, no_first)`.
    pub districts: Vec<(u64, u64)>,
}

/// One warehouse's consistency audit over any [`KvTx`] surface (a
/// read-only snapshot): returns human-readable violations plus
/// [`AuditFacts`]. Used by [`AuditProc`] through the service and
/// directly over recovered domains in crash tests.
pub fn audit_warehouse(
    tx: &mut dyn KvTx,
    s: &Scale,
    w: u64,
) -> Result<(Vec<String>, AuditFacts), Abort> {
    let p = place_of(w);
    let mut fail: Vec<String> = Vec::new();
    let wrow = WAREHOUSE.get(tx, p, 0)?.ok_or(Abort::User)?;
    let mut d_ytd_sum: i64 = 0;
    let mut facts = AuditFacts { w_ytd: wrow.ytd, districts: Vec::new() };
    for d in 0..s.districts {
        let dist = DISTRICT.get(tx, p, d)?.ok_or(Abort::User)?;
        facts.districts.push((dist.next_o_id, dist.no_first));
        d_ytd_sum += from_word(dist.ytd);
        if dist.no_first < 1 || dist.no_first > dist.next_o_id {
            fail.push(format!(
                "w{w} d{d}: pending window [{}, {}) is inverted",
                dist.no_first, dist.next_o_id
            ));
        }
        // Pending orders: exactly one NEW_ORDER row per o_id in the
        // window, nothing outside it (detail check capped at 256 rows).
        let pending = dist.next_o_id - dist.no_first;
        let mut no_rows = 0u64;
        let mut strays = 0u64;
        NEW_ORDERS.scan_keys(
            tx,
            p,
            OrderKey { d, slot: 0 },
            OrderKey { d: d + 1, slot: 0 },
            u64::MAX,
            &mut |_| no_rows += 1,
        )?;
        if no_rows != pending {
            fail.push(format!("w{w} d{d}: {no_rows} NEW_ORDER rows for {pending} pending orders"));
        }
        for o_id in dist.no_first..dist.next_o_id.min(dist.no_first + 256) {
            match NEW_ORDERS.get(tx, p, OrderKey { d, slot: s.slot(o_id) })? {
                Some(r) if r.o_id == o_id => {}
                got => {
                    strays += 1;
                    if strays <= 3 {
                        fail.push(format!("w{w} d{d}: pending order {o_id} has NEW_ORDER {got:?}"));
                    }
                }
            }
        }
        // Recent orders well-formed; delivered ⇔ carrier assigned.
        let lo = dist.next_o_id.saturating_sub(64.min(s.order_ring)).max(1);
        for o_id in lo..dist.next_o_id {
            let slot = s.slot(o_id);
            let Some(ord) = ORDERS.get(tx, p, OrderKey { d, slot })? else {
                fail.push(format!("w{w} d{d}: order {o_id} missing"));
                continue;
            };
            if ord.o_id != o_id {
                fail.push(format!("w{w} d{d}: order {o_id} slot holds {}", ord.o_id));
                continue;
            }
            if !(5..=MAX_OL_CNT).contains(&ord.ol_cnt) || ord.c_id < 1 || ord.c_id > s.customers {
                fail.push(format!("w{w} d{d}: order {o_id} malformed ({:?})", ord));
                continue;
            }
            let delivered = o_id < dist.no_first;
            if delivered != (ord.carrier != 0) {
                fail.push(format!(
                    "w{w} d{d}: order {o_id} delivered={delivered} but carrier={}",
                    ord.carrier
                ));
            }
            for ol in 0..ord.ol_cnt {
                match ORDER_LINE.get(tx, p, OlKey { d, slot, ol })? {
                    Some(l) if l.i_id >= 1 && l.i_id <= s.items => {
                        if delivered != (l.delivery_d != 0) {
                            fail.push(format!("w{w} d{d}: order {o_id} line {ol} delivery split"));
                        }
                    }
                    got => fail.push(format!("w{w} d{d}: order {o_id} line {ol} bad ({got:?})")),
                }
            }
        }
        // Base ↔ last-name index agreement, both directions: every
        // index entry resolves to a live customer with that name, every
        // customer is reachable through exactly one entry.
        let mut entries = 0u64;
        let mut bad = 0u64;
        let mut idx_of: HashMap<u64, u64> = HashMap::new();
        CUST_LAST.scan(
            tx,
            p,
            LastKey { d, last: 0, c: 0 },
            LastKey { d: d + 1, last: 0, c: 0 },
            u64::MAX,
            &mut |ik, primary| {
                entries += 1;
                if primary != (CustKey { d, c: ik.c }).pack()
                    || idx_of.insert(ik.c, ik.last).is_some()
                {
                    bad += 1;
                }
            },
        )?;
        for c in 1..=s.customers {
            let cust = CUSTOMER.get(tx, p, CustKey { d, c })?;
            match (cust, idx_of.get(&c)) {
                (Some(cu), Some(&l)) if cu.last == l => {}
                (cu, l) => fail.push(format!(
                    "w{w} d{d}: customer {c} base/index split (base {:?}, index {l:?})",
                    cu.map(|x| x.last)
                )),
            }
        }
        if entries != s.customers || bad != 0 {
            fail.push(format!(
                "w{w} d{d}: {entries} index entries ({bad} bad) for {} customers",
                s.customers
            ));
        }
    }
    if from_word(wrow.ytd) != d_ytd_sum {
        fail.push(format!("w{w}: W_YTD {} != sum of D_YTD {d_ytd_sum}", from_word(wrow.ytd)));
    }
    Ok((fail, facts))
}

/// Read-only audit procedure: args `[w]`; reply
/// `[violations, w_ytd_word, n_districts, (next_o_id, no_first) * n]`.
pub struct AuditProc(pub Scale);

impl Procedure for AuditProc {
    fn id(&self) -> u64 {
        AUDIT_ID
    }
    fn name(&self) -> &'static str {
        "audit"
    }
    fn read_only(&self) -> bool {
        true
    }
    fn run(&self, ctx: &mut ProcCtx<'_>, args: &[u64]) -> Result<Vec<u64>, Abort> {
        let (fail, facts) = audit_warehouse(ctx, &self.0, args[0])?;
        let mut out = vec![fail.len() as u64, facts.w_ytd, facts.districts.len() as u64];
        for (next, first) in facts.districts {
            out.push(next);
            out.push(first);
        }
        Ok(out)
    }
}

/// Wire op invoking [`AuditProc`] for warehouse `w`.
pub fn audit_op(w: u64) -> KvOp {
    KvOp::Call {
        proc: AUDIT_ID,
        args: vec![w],
        footprint: vec![WAREHOUSE.key(place_of(w), 0, 0)],
        read_only: true,
    }
}

/// The registered procedure set for one TPC-C service.
pub fn registry(cfg: &TpccConfig) -> Arc<ProcRegistry> {
    let s = Scale::of(cfg);
    Arc::new(
        ProcRegistry::new()
            .with_replicated_below(REPLICATED_BOUNDARY)
            .register(Arc::new(NewOrderProc(s)))
            .register(Arc::new(PaymentProc(s)))
            .register(Arc::new(OrderStatusProc(s)))
            .register(Arc::new(DeliveryProc(s)))
            .register(Arc::new(StockLevelProc(s)))
            .register(Arc::new(AuditProc(s))),
    )
}

/// Range sharding that keeps each warehouse (place) on one shard; the
/// replicated place 0 nominally maps to shard 0 but is loaded
/// everywhere by [`load_items`].
pub fn shard_map(cfg: &TpccConfig, shards: usize) -> ShardMap {
    place_sharding(cfg.warehouses + 1, shards)
}

// ---------------------------------------------------------------------
// Population
// ---------------------------------------------------------------------

/// Deterministic population facts the *generators* need at run time —
/// today just the last-name assignment, so by-name selectors always hit
/// a non-empty bucket.
#[derive(Debug, Clone)]
pub struct Population {
    pub scale: Scale,
    last: Vec<u64>,
}

impl Population {
    pub fn last_of(&self, w: u64, d: u64, c: u64) -> u64 {
        let s = &self.scale;
        self.last[(((w * s.districts) + d) * s.customers + (c - 1)) as usize]
    }
}

/// Draw the population-side randomness that generators must agree with.
pub fn populate(cfg: &TpccConfig) -> Population {
    let scale = Scale::of(cfg);
    let mut rng = SmallRng::seed_from_u64(SEED);
    let mut last =
        Vec::with_capacity((scale.warehouses * scale.districts * scale.customers) as usize);
    for _ in 0..scale.warehouses * scale.districts * scale.customers {
        // TPC-C clause 4.3.2.3: last names drawn NURand(255) over the
        // 1000 syllable triples.
        last.push(nurand::nurand(&mut rng, 255, 0, 999));
    }
    Population { scale, last }
}

/// Deterministic per-item prices (shared between [`item_rows`] and the
/// pending-order amounts in [`warehouse_rows`]).
fn item_prices(s: &Scale) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(SEED ^ 0xA5A5);
    (0..s.items).map(|_| rng.gen_range(100..=10_000)).collect()
}

/// Emit the replicated ITEM rows (place 0) as `(key, value)` pairs.
pub fn item_rows(cfg: &TpccConfig, f: &mut dyn FnMut(u64, u64)) {
    let s = Scale::of(cfg);
    let prices = item_prices(&s);
    let mut rng = SmallRng::seed_from_u64(SEED ^ 0x17E4);
    for i in 1..=s.items {
        let row = ItemRow { price: prices[(i - 1) as usize], im_id: rng.gen_range(1..=10_000) };
        row.to_cols(&mut |c, v| f(ITEM.key(ITEM_PLACE, i, c), v));
    }
}

/// Emit every row of warehouse `w` (place `w + 1`) as `(key, value)`
/// pairs: warehouse, districts, customers (+ last-name index entries),
/// stock, the initial order rings and pending NEW_ORDER rows.
pub fn warehouse_rows(cfg: &TpccConfig, pop: &Population, w: u64, f: &mut dyn FnMut(u64, u64)) {
    let s = pop.scale;
    let p = place_of(w);
    let prices = item_prices(&s);
    let mut rng = SmallRng::seed_from_u64(SEED ^ (w << 16) ^ 0xBEEF);
    let wrow = WarehouseRow {
        ytd: to_word((s.districts * 3_000_000) as i64),
        tax: rng.gen_range(0..=2_000),
        hist_next: 0,
    };
    wrow.to_cols(&mut |c, v| f(WAREHOUSE.key(p, 0, c), v));
    for i in 1..=s.items {
        let row =
            StockRow { quantity: rng.gen_range(10..=100), ytd: 0, order_cnt: 0, remote_cnt: 0 };
        row.to_cols(&mut |c, v| f(STOCK.key(p, i, c), v));
    }
    for d in 0..s.districts {
        let drow = DistrictRow {
            next_o_id: cfg.initial_orders + 1,
            no_first: cfg.delivered_prefix + 1,
            ytd: to_word(3_000_000),
            tax: rng.gen_range(0..=2_000),
        };
        drow.to_cols(&mut |c, v| f(DISTRICT.key(p, d, c), v));
        // Orders first: they decide each customer's last_o_id.
        let mut last_o: HashMap<u64, u64> = HashMap::new();
        for o_id in 1..=cfg.initial_orders {
            let c_id = rng.gen_range(1..=s.customers);
            let ol_cnt = rng.gen_range(5..=MAX_OL_CNT.min(s.items));
            let delivered = o_id <= cfg.delivered_prefix;
            let slot = s.slot(o_id);
            last_o.insert(c_id, o_id);
            let orow = OrderRow {
                o_id,
                c_id,
                entry_d: 1,
                carrier: if delivered { rng.gen_range(1..=10) } else { 0 },
                ol_cnt,
            };
            orow.to_cols(&mut |c, v| f(ORDERS.key(p, OrderKey { d, slot }, c), v));
            for ol in 0..ol_cnt {
                let i_id = rng.gen_range(1..=s.items);
                let qty = rng.gen_range(1..=10);
                let lrow = OlRow {
                    i_id,
                    supply_w: w,
                    qty,
                    amount: if delivered {
                        rng.gen_range(1..=9_999)
                    } else {
                        qty * prices[(i_id - 1) as usize]
                    },
                    delivery_d: u64::from(delivered),
                };
                lrow.to_cols(&mut |c, v| f(ORDER_LINE.key(p, OlKey { d, slot, ol }, c), v));
            }
            if !delivered {
                let nrow = NewOrderRow { o_id };
                nrow.to_cols(&mut |c, v| f(NEW_ORDERS.key(p, OrderKey { d, slot }, c), v));
            }
        }
        for c in 1..=s.customers {
            let last = pop.last_of(w, d, c);
            let crow = CustomerRow {
                balance: to_word(-1_000),
                ytd_payment: to_word(1_000),
                payment_cnt: 1,
                delivery_cnt: 0,
                discount: rng.gen_range(0..=5_000),
                last,
                last_o_id: last_o.get(&c).copied().unwrap_or(0),
            };
            let ck = CustKey { d, c };
            crow.to_cols(&mut |cc, v| f(CUSTOMER.key(p, ck, cc), v));
            f(CUST_LAST.key(p, LastKey { d, last, c }), ck.pack());
        }
    }
}

/// Bulk-load the replicated ITEM dimension into **every** shard's store
/// through direct backend transactions. Runs at open time (including
/// after recovery): replicated rows are never WAL-logged, exactly like
/// the schema layer's contract for keys below `REPLICATED_BOUNDARY`.
pub fn load_items<B: TmBackend>(domains: &[(B, KvStore)], cfg: &TpccConfig) {
    let mut pairs: Vec<(u64, u64)> = Vec::new();
    item_rows(cfg, &mut |k, v| pairs.push((k, v)));
    for (backend, store) in domains {
        let mut thread = backend.register_thread();
        let mut scratch = store.new_batch_scratch(64);
        for chunk in pairs.chunks(32) {
            let outcome = thread.exec(TxKind::Update, &mut |tx| {
                scratch.reset();
                let mut ltx = LocalTx { store, tx, scratch: &mut scratch };
                for &(k, v) in chunk {
                    ltx.put(k, v)?;
                }
                Ok(())
            });
            assert_eq!(outcome, Outcome::Committed, "item load must commit");
            scratch.refill(store.alloc());
        }
    }
}

/// Push every warehouse's rows through the pipeline as `MultiPut`
/// batches of at most `chunk` pairs (≤ the pipeline's `multi_key_max`).
/// On a durable pipeline this writes the population into the WAL, so
/// recovery rebuilds it.
pub fn load_warehouses(client: &KvClient, cfg: &TpccConfig, pop: &Population, chunk: usize) {
    for w in 0..cfg.warehouses {
        let mut pairs: Vec<(u64, u64)> = Vec::new();
        warehouse_rows(cfg, pop, w, &mut |k, v| pairs.push((k, v)));
        for group in pairs.chunks(chunk) {
            loop {
                match client.call(KvOp::MultiPut { pairs: group.to_vec() }) {
                    Ok(KvReply::Done { .. }) => break,
                    Ok(other) => panic!("population MultiPut answered {other:?}"),
                    Err(KvError::Overloaded { .. }) => {
                        std::thread::sleep(std::time::Duration::from_millis(1))
                    }
                    Err(e) => panic!("population MultiPut refused: {e:?}"),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Run-time input generation and the mix driver
// ---------------------------------------------------------------------

/// One generated transaction: the class, the wire op, and the facts the
/// driver needs to account for an ack.
#[derive(Debug, Clone)]
pub struct TxInput {
    pub class: TxClass,
    pub op: KvOp,
    pub home_w: u64,
    pub district: u64,
    /// Payment amount in cents (0 for other classes).
    pub amount: i64,
    /// Customer selected by last name (index-served path).
    pub by_name: bool,
}

/// Draw one transaction for a terminal homed at `home_w`, per the mix.
pub fn gen_tx(cfg: &TpccConfig, pop: &Population, rng: &mut SmallRng, home_w: u64) -> TxInput {
    let s = pop.scale;
    let w = home_w;
    let home = place_of(w);
    let d = rng.gen_range(0..s.districts);
    let mix = cfg.mix;
    let mut r = rng.gen_range(0..100u32);
    if r < mix.new_order {
        let c = nurand::customer_id(rng, s.customers);
        let n = rng.gen_range(5..=MAX_OL_CNT.min(s.items));
        let invalid = rng.gen_range(0..100) < cfg.invalid_item_pct;
        let mut args = vec![w, d, c, 2, n];
        let mut footprint = vec![DISTRICT.key(home, d, 0)];
        for ol in 0..n {
            let mut i_id = nurand::item_id(rng, s.items);
            if invalid && ol == n - 1 {
                i_id = s.items + 1; // unused id → Abort::User on every leg
            }
            let supply_w = if s.warehouses > 1 && rng.gen_range(0..100) < cfg.remote_item_pct {
                (w + rng.gen_range(1..s.warehouses)) % s.warehouses
            } else {
                w
            };
            let qty = rng.gen_range(1..=10);
            args.extend_from_slice(&[i_id, supply_w, qty]);
            footprint.push(STOCK.key(place_of(supply_w), i_id, 0));
        }
        return TxInput {
            class: TxClass::NewOrder,
            op: KvOp::Call { proc: NEW_ORDER_ID, args, footprint, read_only: false },
            home_w: w,
            district: d,
            amount: 0,
            by_name: false,
        };
    }
    r -= mix.new_order;
    if r < mix.payment {
        let (c_w, c_d) = if s.warehouses > 1 && rng.gen_range(0..100) < cfg.remote_payment_pct {
            ((w + rng.gen_range(1..s.warehouses)) % s.warehouses, rng.gen_range(0..s.districts))
        } else {
            (w, d)
        };
        let by_name = rng.gen_range(0..100) < cfg.by_lastname_pct;
        let c = nurand::customer_id(rng, s.customers);
        let sel = if by_name { pop.last_of(c_w, c_d, c) } else { c };
        let amount = rng.gen_range(100..=500_000u64);
        return TxInput {
            class: TxClass::Payment,
            op: KvOp::Call {
                proc: PAYMENT_ID,
                args: vec![w, d, c_w, c_d, u64::from(by_name), sel, amount],
                footprint: vec![WAREHOUSE.key(home, 0, 0), WAREHOUSE.key(place_of(c_w), 0, 0)],
                read_only: false,
            },
            home_w: w,
            district: d,
            amount: amount as i64,
            by_name,
        };
    }
    r -= mix.payment;
    if r < mix.order_status {
        let by_name = rng.gen_range(0..100) < cfg.by_lastname_pct;
        let c = nurand::customer_id(rng, s.customers);
        let sel = if by_name { pop.last_of(w, d, c) } else { c };
        return TxInput {
            class: TxClass::OrderStatus,
            op: KvOp::Call {
                proc: ORDER_STATUS_ID,
                args: vec![w, d, u64::from(by_name), sel],
                footprint: vec![WAREHOUSE.key(home, 0, 0)],
                read_only: true,
            },
            home_w: w,
            district: d,
            amount: 0,
            by_name,
        };
    }
    r -= mix.order_status;
    if r < mix.delivery {
        return TxInput {
            class: TxClass::Delivery,
            op: KvOp::Call {
                proc: DELIVERY_ID,
                args: vec![w, d, rng.gen_range(1..=10), 3],
                footprint: vec![DISTRICT.key(home, d, 0)],
                read_only: false,
            },
            home_w: w,
            district: d,
            amount: 0,
            by_name: false,
        };
    }
    TxInput {
        class: TxClass::StockLevel,
        op: KvOp::Call {
            proc: STOCK_LEVEL_ID,
            args: vec![w, d, rng.gen_range(10..=20)],
            footprint: vec![WAREHOUSE.key(home, 0, 0)],
            read_only: true,
        },
        home_w: w,
        district: d,
        amount: 0,
        by_name: false,
    }
}

/// What the mix driver observed — acked watermarks are the recovery
/// contract: a durable service must never regress below them.
#[derive(Debug, Default, Clone)]
pub struct MixOutcome {
    /// Committed calls per class ([`TxClass::index`] order).
    pub acked: [u64; 5],
    /// `CallAborted` per class (ring-full refusals, invalid items).
    pub user_aborted: [u64; 5],
    pub shed: u64,
    pub overloaded: u64,
    /// Acked by-last-name selections (payment + order-status): each one
    /// took at least one secondary-index scan.
    pub lastname_acks: u64,
    /// Highest acked New-Order id per `(warehouse, district)`.
    pub max_o_id: HashMap<(u64, u64), u64>,
    /// Acked payment cents per *home* warehouse (W_YTD floor).
    pub paid: HashMap<u64, i64>,
}

impl MixOutcome {
    fn absorb(&mut self, other: MixOutcome) {
        for i in 0..5 {
            self.acked[i] += other.acked[i];
            self.user_aborted[i] += other.user_aborted[i];
        }
        self.shed += other.shed;
        self.overloaded += other.overloaded;
        self.lastname_acks += other.lastname_acks;
        for (k, v) in other.max_o_id {
            let e = self.max_o_id.entry(k).or_insert(0);
            *e = (*e).max(v);
        }
        for (k, v) in other.paid {
            *self.paid.entry(k).or_insert(0) += v;
        }
    }
}

/// Drive `clients` terminals for `ops_per_client` transactions each.
/// Terminals are homed round-robin across warehouses. When `wal` is
/// given, clients stop as soon as the WAL dies (scripted crash).
pub fn run_mix(
    client: &KvClient,
    cfg: &TpccConfig,
    pop: &Population,
    clients: u64,
    ops_per_client: u64,
    seed: u64,
    wal: Option<&Arc<WalSet>>,
) -> MixOutcome {
    let mut total = MixOutcome::default();
    std::thread::scope(|sc| {
        let handles: Vec<_> = (0..clients)
            .map(|t| {
                let client = client.clone();
                let wal = wal.map(Arc::clone);
                let pop = &*pop;
                sc.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(seed ^ (t << 40) ^ 0x7E11);
                    let home_w = t % cfg.warehouses;
                    let mut out = MixOutcome::default();
                    for _ in 0..ops_per_client {
                        if let Some(w) = &wal {
                            if !w.alive() {
                                break;
                            }
                        }
                        let input = gen_tx(cfg, pop, &mut rng, home_w);
                        let i = input.class.index();
                        match client.call(input.op.clone()) {
                            Ok(KvReply::CallOk(words)) => {
                                out.acked[i] += 1;
                                if input.by_name {
                                    out.lastname_acks += 1;
                                }
                                match input.class {
                                    TxClass::NewOrder => {
                                        let o_id = words[0];
                                        let e = out
                                            .max_o_id
                                            .entry((input.home_w, input.district))
                                            .or_insert(0);
                                        *e = (*e).max(o_id);
                                    }
                                    TxClass::Payment => {
                                        *out.paid.entry(input.home_w).or_insert(0) += input.amount;
                                    }
                                    _ => {}
                                }
                            }
                            Ok(KvReply::CallAborted) => out.user_aborted[i] += 1,
                            Ok(KvReply::Shed) => out.shed += 1,
                            Ok(other) => panic!("call answered {other:?}"),
                            Err(KvError::Overloaded { .. }) => {
                                out.overloaded += 1;
                                std::thread::sleep(std::time::Duration::from_micros(50));
                            }
                            Err(KvError::ShuttingDown) => break,
                            Err(e) => panic!("admission refused: {e:?}"),
                        }
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            total.absorb(h.join().expect("terminal panicked"));
        }
    });
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TxMix;

    #[test]
    fn population_is_deterministic() {
        let cfg = TpccConfig::tiny(TxMix::standard());
        let (a, b) = (populate(&cfg), populate(&cfg));
        assert_eq!(a.last, b.last);
        let mut r1 = Vec::new();
        let mut r2 = Vec::new();
        warehouse_rows(&cfg, &a, 1, &mut |k, v| r1.push((k, v)));
        warehouse_rows(&cfg, &b, 1, &mut |k, v| r2.push((k, v)));
        assert_eq!(r1, r2);
        assert!(!r1.is_empty());
        // All per-warehouse rows live above the replicated boundary.
        assert!(r1.iter().all(|&(k, _)| k >= REPLICATED_BOUNDARY));
        let mut items = Vec::new();
        item_rows(&cfg, &mut |k, v| items.push((k, v)));
        assert_eq!(items.len() as u64, cfg.items * 2);
        assert!(items.iter().all(|&(k, _)| k < REPLICATED_BOUNDARY));
    }

    #[test]
    fn generated_ops_cover_the_mix() {
        let cfg = TpccConfig::tiny(TxMix::standard());
        let pop = populate(&cfg);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [0u64; 5];
        for _ in 0..2_000 {
            let t = gen_tx(&cfg, &pop, &mut rng, 0);
            seen[t.class.index()] += 1;
            match &t.op {
                KvOp::Call { proc, footprint, .. } => {
                    assert_eq!(*proc, t.class.proc_id());
                    assert!(!footprint.is_empty());
                    assert!(footprint.iter().all(|&k| k >= REPLICATED_BOUNDARY));
                }
                other => panic!("generator produced {other:?}"),
            }
        }
        assert!(seen.iter().all(|&n| n > 0), "every class must appear: {seen:?}");
        // Standard mix is update-dominated.
        assert!(seen[0] + seen[1] + seen[3] > seen[2] + seen[4]);
    }

    #[test]
    fn by_name_selectors_hit_populated_buckets() {
        let mut cfg = TpccConfig::tiny(TxMix::standard());
        cfg.by_lastname_pct = 100;
        let pop = populate(&cfg);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..500 {
            let t = gen_tx(&cfg, &pop, &mut rng, 1);
            if let (TxClass::Payment | TxClass::OrderStatus, KvOp::Call { args, .. }) =
                (t.class, &t.op)
            {
                assert!(t.by_name);
                let (c_w, c_d, sel) = if t.class == TxClass::Payment {
                    (args[2], args[3], args[5])
                } else {
                    (args[0], args[1], args[3])
                };
                let s = pop.scale;
                let hit = (1..=s.customers).any(|c| pop.last_of(c_w, c_d, c) == sel);
                assert!(hit, "selector {sel} names an empty bucket");
            }
        }
    }
}
