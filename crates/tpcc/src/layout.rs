//! Table layout and population.
//!
//! Every table is a flat array of rows at computed addresses (indexing
//! disabled, as in the paper's setup). Rows span their realistic TPC-C
//! tuple sizes in cache lines (customer 6, stock 3, others 1; one line per
//! order line), so each transaction's simulated cache-line footprint
//! matches what the paper's C implementation produces on real hardware —
//! the footprints are what drive every capacity effect in the figures.
//!
//! Monetary values are integer cents; negative balances are stored as
//! two's-complement `i64` in the `u64` word. Tax/discount rates are basis
//! points.

use crate::TpccConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use txmem::{Addr, TxMemory, WORDS_PER_LINE};

const LINE: u64 = WORDS_PER_LINE as u64;

// ---- field offsets (words within a row) ----

/// Warehouse: year-to-date balance (cents).
pub const W_YTD: u64 = 0;
/// Warehouse: tax rate (basis points).
pub const W_TAX: u64 = 1;
/// Warehouse: next history-ring slot (monotonic counter).
pub const W_HIST_NEXT: u64 = 2;

/// District: next order id to assign (1-based, monotonic).
pub const D_NEXT_O_ID: u64 = 0;
/// District: year-to-date balance (cents).
pub const D_YTD: u64 = 1;
/// District: tax rate (basis points).
pub const D_TAX: u64 = 2;
/// District: oldest undelivered order id (pending = `[D_NO_FIRST, D_NEXT_O_ID)`).
pub const D_NO_FIRST: u64 = 3;

/// Customer: balance (cents, two's-complement i64).
pub const C_BALANCE: u64 = 0;
pub const C_YTD_PAYMENT: u64 = 1;
pub const C_PAYMENT_CNT: u64 = 2;
pub const C_DELIVERY_CNT: u64 = 3;
/// Customer: discount (basis points).
pub const C_DISCOUNT: u64 = 4;
/// Customer: 0 = good credit, 1 = bad credit.
pub const C_CREDIT: u64 = 5;
/// Customer: id of this customer's most recent order (0 = none).
pub const C_LAST_O_ID: u64 = 6;
/// Customer: last-name id (0..=999, TPC-C syllable-triple names).
pub const C_LAST: u64 = 7;

/// Item: price (cents).
pub const I_PRICE: u64 = 0;
pub const I_IM_ID: u64 = 1;
/// Item: 1 when the item data is "ORIGINAL".
pub const I_DATA_FLAG: u64 = 2;

pub const S_QUANTITY: u64 = 0;
pub const S_YTD: u64 = 1;
pub const S_ORDER_CNT: u64 = 2;
pub const S_REMOTE_CNT: u64 = 3;
pub const S_DATA_FLAG: u64 = 4;

pub const O_C_ID: u64 = 0;
pub const O_ENTRY_D: u64 = 1;
/// 0 = not delivered yet.
pub const O_CARRIER_ID: u64 = 2;
pub const O_OL_CNT: u64 = 3;
pub const O_ALL_LOCAL: u64 = 4;

/// Order line (one row per line, 15 per order).
pub const OL_I_ID: u64 = 0;
pub const OL_SUPPLY_W: u64 = 1;
pub const OL_QUANTITY: u64 = 2;
pub const OL_AMOUNT: u64 = 3;
pub const OL_DELIVERY_D: u64 = 4;
/// One cache line per order line (a ~54 B row on its own line, as separate
/// heap records are in the paper's implementation).
const OL_WORDS: u64 = LINE;
/// Words per order-line block (15 rows of one line each).
const OL_BLOCK_WORDS: u64 = 15 * LINE;

pub const H_AMOUNT: u64 = 0;
pub const H_C_ID: u64 = 1;
pub const H_C_W: u64 = 2;
pub const H_D_ID: u64 = 3;

// ---- row sizes in cache lines (realistic TPC-C tuple sizes; reading a
//      record touches every line of its row, as a tuple read does) ----

/// Customer row: ~655 B in the spec ⇒ 6 cache lines.
pub const CUSTOMER_LINES: u64 = 6;
/// Distinct TPC-C last names (syllable triples, clause 4.3.2.3).
pub const LASTNAMES: u64 = 1000;
/// Last-name index bucket: word 0 = count, words 1.. = customer ids
/// (2 cache lines ⇒ up to 31 customers per name; population re-draws
/// names for overflowing buckets).
pub const IDX_BUCKET_LINES: u64 = 2;
const IDX_SLOTS: u64 = IDX_BUCKET_LINES * LINE - 1;
/// Stock row: ~306 B ⇒ 3 cache lines.
pub const STOCK_LINES: u64 = 3;
/// Warehouse/district/item/order/order-line/history rows fit one line.
pub const ROW_LINE: u64 = 1;

/// Store an `i64` (e.g. a balance) in a memory word.
#[inline]
pub fn to_word(v: i64) -> u64 {
    v as u64
}

/// Read an `i64` back from a memory word.
#[inline]
pub fn from_word(w: u64) -> i64 {
    w as i64
}

/// Computed base addresses of every table.
#[derive(Debug, Clone)]
pub struct TpccLayout {
    pub cfg: TpccConfig,
    w_base: Addr,
    d_base: Addr,
    c_base: Addr,
    i_base: Addr,
    s_base: Addr,
    o_base: Addr,
    ol_base: Addr,
    h_base: Addr,
    idx_base: Addr,
    total_words: u64,
}

impl TpccLayout {
    pub fn new(cfg: TpccConfig) -> Self {
        cfg.validate();
        let w = cfg.warehouses;
        let d = w * cfg.districts_per_w;
        let c = d * cfg.customers_per_d;
        let s = w * cfg.items;
        let o = d * cfg.order_ring;
        let h = w * cfg.history_ring;

        let w_base = 0;
        let d_base = w_base + w * LINE;
        let c_base = d_base + d * LINE;
        let i_base = c_base + c * CUSTOMER_LINES * LINE;
        let s_base = i_base + cfg.items * LINE;
        let o_base = s_base + s * STOCK_LINES * LINE;
        let ol_base = o_base + o * LINE;
        let h_base = ol_base + o * OL_BLOCK_WORDS;
        let idx_base = h_base + h * LINE;
        let total_words = idx_base + d * LASTNAMES * IDX_BUCKET_LINES * LINE;
        TpccLayout {
            cfg,
            w_base,
            d_base,
            c_base,
            i_base,
            s_base,
            o_base,
            ol_base,
            h_base,
            idx_base,
            total_words,
        }
    }

    /// Words of simulated memory the database needs.
    pub fn memory_words(&self) -> usize {
        self.total_words as usize
    }

    // ---- row addresses (warehouses/districts 0-based; customers, items,
    //      order ids 1-based, as produced by the TPC-C input generators) ----

    #[inline]
    pub fn warehouse(&self, w: u64) -> Addr {
        debug_assert!(w < self.cfg.warehouses);
        self.w_base + w * LINE
    }

    #[inline]
    pub fn district(&self, w: u64, d: u64) -> Addr {
        debug_assert!(d < self.cfg.districts_per_w);
        self.d_base + (w * self.cfg.districts_per_w + d) * LINE
    }

    #[inline]
    pub fn customer(&self, w: u64, d: u64, c: u64) -> Addr {
        debug_assert!((1..=self.cfg.customers_per_d).contains(&c));
        self.c_base
            + ((w * self.cfg.districts_per_w + d) * self.cfg.customers_per_d + c - 1)
                * CUSTOMER_LINES
                * LINE
    }

    #[inline]
    pub fn item(&self, i: u64) -> Addr {
        debug_assert!((1..=self.cfg.items).contains(&i));
        self.i_base + (i - 1) * LINE
    }

    #[inline]
    pub fn stock(&self, w: u64, i: u64) -> Addr {
        debug_assert!((1..=self.cfg.items).contains(&i));
        self.s_base + (w * self.cfg.items + i - 1) * STOCK_LINES * LINE
    }

    /// Order row for `o_id` (ring slot `o_id mod order_ring`).
    #[inline]
    pub fn order(&self, w: u64, d: u64, o_id: u64) -> Addr {
        let slot = o_id & (self.cfg.order_ring - 1);
        self.o_base + ((w * self.cfg.districts_per_w + d) * self.cfg.order_ring + slot) * LINE
    }

    /// `idx`-th order line (0-based, < 15) of `o_id`'s block.
    #[inline]
    pub fn order_line(&self, w: u64, d: u64, o_id: u64, idx: u64) -> Addr {
        debug_assert!(idx < 15);
        let slot = o_id & (self.cfg.order_ring - 1);
        self.ol_base
            + ((w * self.cfg.districts_per_w + d) * self.cfg.order_ring + slot) * OL_BLOCK_WORDS
            + idx * OL_WORDS
    }

    /// Last-name index bucket for name id `name` in district `(w, d)`.
    #[inline]
    pub fn lastname_bucket(&self, w: u64, d: u64, name: u64) -> Addr {
        debug_assert!(name < LASTNAMES);
        self.idx_base
            + ((w * self.cfg.districts_per_w + d) * LASTNAMES + name) * IDX_BUCKET_LINES * LINE
    }

    /// History row for ring slot `slot` of warehouse `w`.
    #[inline]
    pub fn history(&self, w: u64, slot: u64) -> Addr {
        self.h_base + (w * self.cfg.history_ring + (slot & (self.cfg.history_ring - 1))) * LINE
    }

    /// Populate the database (raw stores; run before any worker starts).
    pub fn populate(&self, memory: &TxMemory) {
        assert!(
            memory.len() as u64 >= self.total_words,
            "memory too small: need {} words, have {}",
            self.total_words,
            memory.len()
        );
        let cfg = &self.cfg;
        let mut rng = SmallRng::seed_from_u64(0xD15C_0C0A);

        for w in 0..cfg.warehouses {
            let wa = self.warehouse(w);
            memory.store(wa + W_TAX, rng.gen_range(0..=2000));
            // W_YTD = sum of D_YTD (spec consistency condition 1).
            memory.store(wa + W_YTD, cfg.districts_per_w * 3_000_000);
            memory.store(wa + W_HIST_NEXT, 0);

            for i in 1..=cfg.items {
                let sa = self.stock(w, i);
                memory.store(sa + S_QUANTITY, rng.gen_range(10..=100));
                memory.store(sa + S_DATA_FLAG, u64::from(rng.gen_range(0..10) == 0));
            }

            for d in 0..cfg.districts_per_w {
                let da = self.district(w, d);
                memory.store(da + D_NEXT_O_ID, cfg.initial_orders + 1);
                memory.store(da + D_YTD, 3_000_000);
                memory.store(da + D_TAX, rng.gen_range(0..=2000));
                memory.store(da + D_NO_FIRST, cfg.delivered_prefix + 1);

                for c in 1..=cfg.customers_per_d {
                    let ca = self.customer(w, d, c);
                    memory.store(ca + C_BALANCE, to_word(-1000));
                    memory.store(ca + C_YTD_PAYMENT, 1000);
                    memory.store(ca + C_DISCOUNT, rng.gen_range(0..=5000));
                    memory.store(ca + C_CREDIT, u64::from(rng.gen_range(0..10) == 0));
                    // Last name via NURand(255) (clause 4.3.2.3), re-drawn
                    // uniformly while the index bucket is full.
                    let mut name = crate::nurand::nurand(&mut rng, 255, 0, LASTNAMES - 1);
                    loop {
                        let ba = self.lastname_bucket(w, d, name);
                        let n = memory.load(ba);
                        if n < IDX_SLOTS {
                            memory.store(ba + 1 + n, c);
                            memory.store(ba, n + 1);
                            break;
                        }
                        name = rng.gen_range(0..LASTNAMES);
                    }
                    memory.store(ca + C_LAST, name);
                }

                for o_id in 1..=cfg.initial_orders {
                    let oa = self.order(w, d, o_id);
                    let c_id = rng.gen_range(1..=cfg.customers_per_d);
                    let ol_cnt = rng.gen_range(5..=15u64).min(cfg.items);
                    let delivered = o_id <= cfg.delivered_prefix;
                    memory.store(oa + O_C_ID, c_id);
                    memory.store(oa + O_ENTRY_D, o_id);
                    memory.store(
                        oa + O_CARRIER_ID,
                        if delivered { rng.gen_range(1..=10) } else { 0 },
                    );
                    memory.store(oa + O_OL_CNT, ol_cnt);
                    memory.store(oa + O_ALL_LOCAL, 1);
                    memory.store(self.customer(w, d, c_id) + C_LAST_O_ID, o_id);
                    for idx in 0..ol_cnt {
                        let ola = self.order_line(w, d, o_id, idx);
                        memory.store(ola + OL_I_ID, rng.gen_range(1..=cfg.items));
                        memory.store(ola + OL_SUPPLY_W, w);
                        memory.store(ola + OL_QUANTITY, 5);
                        memory.store(
                            ola + OL_AMOUNT,
                            if delivered { rng.gen_range(1..=999_999) } else { 0 },
                        );
                        memory.store(ola + OL_DELIVERY_D, if delivered { o_id } else { 0 });
                    }
                }
            }
        }

        for i in 1..=cfg.items {
            let ia = self.item(i);
            memory.store(ia + I_PRICE, rng.gen_range(100..=10_000));
            memory.store(ia + I_IM_ID, rng.gen_range(1..=10_000));
            memory.store(ia + I_DATA_FLAG, u64::from(rng.gen_range(0..10) == 0));
        }
    }

    /// Database-level consistency checks (TPC-C clause 3.3 conditions 1–3,
    /// adapted to this layout). Call between runs, never concurrently with
    /// workers. Returns a description of the first violation found.
    pub fn check_consistency(&self, memory: &TxMemory) -> Result<(), String> {
        let cfg = &self.cfg;
        for w in 0..cfg.warehouses {
            let w_ytd = memory.load(self.warehouse(w) + W_YTD);
            let mut d_ytd_sum = 0u64;
            for d in 0..cfg.districts_per_w {
                let da = self.district(w, d);
                d_ytd_sum += memory.load(da + D_YTD);
                let next = memory.load(da + D_NEXT_O_ID);
                let first = memory.load(da + D_NO_FIRST);
                if first > next {
                    return Err(format!(
                        "w{w}d{d}: pending window inverted (first {first} > next {next})"
                    ));
                }
                if next - first > cfg.order_ring {
                    return Err(format!(
                        "w{w}d{d}: pending backlog {} overflows the order ring",
                        next - first
                    ));
                }
                // Recent orders must be well-formed.
                let newest = next - 1;
                let oldest_valid = newest.saturating_sub(cfg.initial_orders.min(20)).max(1);
                for o_id in oldest_valid..=newest {
                    let oa = self.order(w, d, o_id);
                    let c_id = memory.load(oa + O_C_ID);
                    let ol_cnt = memory.load(oa + O_OL_CNT);
                    if !(1..=cfg.customers_per_d).contains(&c_id) {
                        return Err(format!("w{w}d{d}o{o_id}: bad customer id {c_id}"));
                    }
                    if !(5..=15).contains(&ol_cnt) && ol_cnt != cfg.items.min(5) {
                        return Err(format!("w{w}d{d}o{o_id}: bad ol_cnt {ol_cnt}"));
                    }
                    let delivered = o_id < first;
                    let carrier = memory.load(oa + O_CARRIER_ID);
                    if delivered && carrier == 0 {
                        return Err(format!("w{w}d{d}o{o_id}: delivered without carrier"));
                    }
                    if !delivered && carrier != 0 {
                        return Err(format!("w{w}d{d}o{o_id}: pending but has carrier {carrier}"));
                    }
                }
            }
            if w_ytd != d_ytd_sum {
                return Err(format!(
                    "w{w}: W_YTD {w_ytd} != sum of D_YTD {d_ytd_sum} (condition 1)"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TxMix;

    fn tiny() -> TpccLayout {
        TpccLayout::new(TpccConfig::tiny(TxMix::standard()))
    }

    #[test]
    fn rows_are_line_aligned_and_disjoint() {
        let l = tiny();
        let mut seen = std::collections::HashSet::new();
        let cfg = &l.cfg;
        for w in 0..cfg.warehouses {
            assert!(seen.insert(l.warehouse(w)));
            for d in 0..cfg.districts_per_w {
                assert!(seen.insert(l.district(w, d)));
                for c in 1..=cfg.customers_per_d {
                    assert!(seen.insert(l.customer(w, d, c)));
                }
            }
            for i in 1..=cfg.items {
                assert!(seen.insert(l.stock(w, i)));
            }
        }
        for i in 1..=cfg.items {
            assert!(seen.insert(l.item(i)));
        }
        for &a in &seen {
            assert_eq!(a % LINE, 0, "row at {a} not line-aligned");
        }
    }

    #[test]
    fn order_ring_wraps() {
        let l = tiny();
        let ring = l.cfg.order_ring;
        assert_eq!(l.order(0, 0, 1), l.order(0, 0, 1 + ring));
        assert_ne!(l.order(0, 0, 1), l.order(0, 0, 2));
        assert_ne!(l.order(0, 0, 1), l.order(0, 1, 1));
    }

    #[test]
    fn order_lines_do_not_collide_with_orders() {
        let l = tiny();
        let ol = l.order_line(1, 1, 5, 14);
        assert!(ol + OL_WORDS <= l.total_words);
        // Last OL of one order must not spill into the next block.
        let next_block = l.order_line(1, 1, 6, 0);
        assert!(ol + OL_WORDS <= next_block || l.order(1, 1, 6) != l.order(1, 1, 5) + LINE);
    }

    #[test]
    fn populate_passes_consistency() {
        let l = tiny();
        let memory = TxMemory::new(l.memory_words());
        l.populate(&memory);
        l.check_consistency(&memory).expect("fresh database must be consistent");
    }

    #[test]
    fn populate_sets_pending_window() {
        let l = tiny();
        let memory = TxMemory::new(l.memory_words());
        l.populate(&memory);
        let da = l.district(0, 0);
        assert_eq!(memory.load(da + D_NEXT_O_ID), l.cfg.initial_orders + 1);
        assert_eq!(memory.load(da + D_NO_FIRST), l.cfg.delivered_prefix + 1);
    }

    #[test]
    fn balance_word_roundtrip() {
        for v in [-1000i64, 0, 42, i64::MIN / 2] {
            assert_eq!(from_word(to_word(v)), v);
        }
    }

    #[test]
    fn paper_scale_fits_in_reasonable_memory() {
        let l = TpccLayout::new(TpccConfig::low_contention(TxMix::standard()));
        let bytes = l.memory_words() * 8;
        assert!(bytes < 2 << 30, "paper-scale DB too large: {} MB", bytes >> 20);
    }
}
