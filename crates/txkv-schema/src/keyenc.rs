//! Order-preserving tuple → `u64` key encoding.
//!
//! The store underneath ([`txkv`]) is a `u64 → u64` B+-tree whose range
//! scans walk keys in ascending integer order. To make typed tables and
//! secondary indexes scannable, every key is packed so that **integer
//! order equals the intended tuple order** — the `u64` analogue of the
//! byte-wise order-preserving encodings relational engines put in front
//! of ordered KV stores (big-endian integers, zero-padded strings,
//! most-significant field first):
//!
//! ```text
//!   63        54 53      48 47                       6 5        0
//!  ┌────────────┬──────────┬──────────────────────────┬──────────┐
//!  │ place (10) │ table (6)│       payload (42)       │ col (6)  │
//!  └────────────┴──────────┴──────────────────────────┴──────────┘
//! ```
//!
//! * **place** — the partitioning prefix (a TPC-C warehouse, a tenant):
//!   range-partitioning on whole places gives shard-affine routing for
//!   every key of a place. Place 0 is reserved for *replicated* tables
//!   (small read-mostly dimension data loaded into every shard).
//! * **table** — the table or index id (namespacing; assigned by
//!   [`crate::Schema`]).
//! * **payload** — the primary-key tuple, packed most-significant field
//!   first by [`TupleKey::pack`] so tuple lexicographic order survives.
//! * **col** — the column id, least significant so all columns of a row
//!   are contiguous and a row scan is a tiny range scan.
//!
//! Strings enter keys through [`pack_str8`]: up to 8 bytes, big-endian,
//! zero-padded — `memcmp` order, exactly what a length-limited VARCHAR
//! prefix index needs (TPC-C's 16-entry last-name dictionary fits with
//! room to spare).

/// Bits for the partitioning prefix (max 1023 places + place 0).
pub const PLACE_BITS: u32 = 10;
/// Bits for the table id (max 64 tables + indexes per schema).
pub const TABLE_BITS: u32 = 6;
/// Bits for the packed primary-key tuple.
pub const PAYLOAD_BITS: u32 = 42;
/// Bits for the column id (max 64 columns per table).
pub const COL_BITS: u32 = 6;

/// Shift of the place field — keys of place `p` occupy
/// `[p << PLACE_SHIFT, (p+1) << PLACE_SHIFT)`.
pub const PLACE_SHIFT: u32 = TABLE_BITS + PAYLOAD_BITS + COL_BITS;

/// First key above the replicated prefix: every key of place 0 (and
/// only place 0) is below this. Feed it to
/// [`txkv::ProcRegistry::with_replicated_below`].
pub const REPLICATED_BOUNDARY: u64 = 1 << PLACE_SHIFT;

/// Pack one key. Debug-asserts each field fits its width.
#[inline]
pub fn encode(place: u64, table: u64, payload: u64, col: u64) -> u64 {
    debug_assert!(place < (1 << PLACE_BITS), "place {place} out of range");
    debug_assert!(table < (1 << TABLE_BITS), "table {table} out of range");
    debug_assert!(payload < (1 << PAYLOAD_BITS), "payload {payload:#x} out of range");
    debug_assert!(col < (1 << COL_BITS), "col {col} out of range");
    (place << PLACE_SHIFT) | (table << (PAYLOAD_BITS + COL_BITS)) | (payload << COL_BITS) | col
}

/// Unpack a key into `(place, table, payload, col)`.
#[inline]
pub fn decode(key: u64) -> (u64, u64, u64, u64) {
    (
        key >> PLACE_SHIFT,
        (key >> (PAYLOAD_BITS + COL_BITS)) & ((1 << TABLE_BITS) - 1),
        (key >> COL_BITS) & ((1 << PAYLOAD_BITS) - 1),
        key & ((1 << COL_BITS) - 1),
    )
}

/// The half-open key range holding every column of every row of one
/// table at one place: the range a full-table scan walks.
#[inline]
pub fn table_range(place: u64, table: u64) -> (u64, u64) {
    let from = encode(place, table, 0, 0);
    (from, from + (1 << (PAYLOAD_BITS + COL_BITS)))
}

/// A primary-key (or index-key) tuple packable into the 42-bit payload
/// such that integer order on the packed value equals lexicographic
/// order on the tuple. Implement via [`crate::def_key!`].
pub trait TupleKey: Copy {
    /// Total payload bits the tuple occupies (≤ [`PAYLOAD_BITS`]).
    const BITS: u32;
    fn pack(&self) -> u64;
    fn unpack(payload: u64) -> Self;
}

/// A single `u64` used directly as payload (small surrogate ids).
impl TupleKey for u64 {
    const BITS: u32 = PAYLOAD_BITS;
    #[inline]
    fn pack(&self) -> u64 {
        *self
    }
    #[inline]
    fn unpack(payload: u64) -> Self {
        payload
    }
}

/// Pack up to 8 bytes of a string big-endian, zero-padded: integer
/// order on the result equals `memcmp` order on the (padded) bytes, so
/// equal-prefix strings stay adjacent under range scans. Longer input
/// is truncated to its first 8 bytes (a prefix index).
#[inline]
pub fn pack_str8(s: &str) -> u64 {
    let mut out = [0u8; 8];
    let b = s.as_bytes();
    let n = b.len().min(8);
    out[..n].copy_from_slice(&b[..n]);
    u64::from_be_bytes(out)
}

/// Define an order-preserving composite key: a struct of `u64` fields
/// with explicit bit widths, packed most-significant field first.
///
/// ```
/// txkv_schema::def_key! {
///     /// (district, customer) primary key.
///     pub struct CustomerKey { d: 5, c: 14 }
/// }
/// use txkv_schema::TupleKey;
/// let k = CustomerKey { d: 3, c: 77 };
/// assert_eq!(CustomerKey::unpack(k.pack()).c, 77);
/// // Order preservation: (3, 77) < (3, 78) < (4, 0).
/// assert!(k.pack() < CustomerKey { d: 3, c: 78 }.pack());
/// assert!(CustomerKey { d: 3, c: 78 }.pack() < CustomerKey { d: 4, c: 0 }.pack());
/// ```
#[macro_export]
macro_rules! def_key {
    ($(#[$meta:meta])* pub struct $name:ident { $($field:ident: $bits:expr),+ $(,)? }) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct $name {
            $(pub $field: u64,)+
        }

        impl $crate::TupleKey for $name {
            const BITS: u32 = 0 $(+ $bits)+;

            #[inline]
            fn pack(&self) -> u64 {
                debug_assert!(
                    <Self as $crate::TupleKey>::BITS <= $crate::keyenc::PAYLOAD_BITS,
                    "key wider than the payload field"
                );
                let mut v: u64 = 0;
                $(
                    debug_assert!(
                        self.$field < (1u64 << $bits),
                        concat!(stringify!($name), ".", stringify!($field), " out of range")
                    );
                    v = (v << $bits) | self.$field;
                )+
                v
            }

            #[inline]
            fn unpack(payload: u64) -> Self {
                let mut shift = <Self as $crate::TupleKey>::BITS;
                $(
                    shift -= $bits;
                    let $field = (payload >> shift) & ((1u64 << $bits) - 1);
                )+
                let _ = shift;
                Self { $($field,)+ }
            }
        }
    };
}
