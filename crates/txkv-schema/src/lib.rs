//! # txkv-schema — typed tables and secondary indexes over `txkv`
//!
//! The service layer underneath ([`txkv`]) speaks `u64 → u64`. Real
//! workloads speak *relations*: named tables with composite primary
//! keys, multi-column rows, and secondary access paths. This crate is
//! the thin, zero-overhead mapping between the two:
//!
//! * [`keyenc`] — an order-preserving tuple → `u64` key encoding
//!   (`[place | table | payload | col]`), so `scan_range` on encoded
//!   keys IS an index-ordered relational scan;
//! * [`Schema`] — named-table namespacing: allocates the 6-bit table
//!   ids, so two tables can never collide in the key space;
//! * [`Table`] — a typed handle `Table<K, R>` (a [`TupleKey`] primary
//!   key, a [`Row`] of named columns) with get/put/delete/per-column
//!   ops and ordered scans;
//! * [`Index`] — secondary indexes (unique and multi-valued), read
//!   through [`Index::get`]/[`Index::scan`] (which count *index hits*,
//!   so tests can assert a lookup was index-served rather than scanned)
//!   and written through the same transaction as the base-table write;
//! * [`def_key!`]/[`def_row!`] — derive the key/row plumbing.
//!
//! Everything programs against [`txkv::KvTx`] — the in-transaction
//! surface implemented by both the service pipeline's procedure context
//! ([`txkv::ProcCtx`]) and the embedded [`txkv::LocalTx`]. A typed
//! transaction is therefore *one* backend transaction whatever path it
//! takes: single-shard, cross-shard 2PC (index entries may live on a
//! different shard than the row — each leg maintains its local half,
//! and the call's undo images cover both), or WAL replay at recovery.
//! Index maintenance is never deferred and never escapes the row's
//! transaction.
//!
//! ## Example
//!
//! ```
//! use txkv_schema::{def_key, def_row, Schema, TupleKey};
//!
//! def_key! { pub struct AcctKey { branch: 6, acct: 20 } }
//! def_row! { pub struct AcctRow { balance, updates } }
//!
//! let mut schema = Schema::new();
//! let accounts = schema.table::<AcctKey, AcctRow>("accounts");
//! let by_branch = schema.index::<u64>("accounts_by_branch", false);
//! // `accounts.put(&mut tx, place, key, &row)` and
//! // `by_branch.put(&mut tx, place, ik, primary)` inside one KvTx.
//! # let _ = (accounts, by_branch);
//! ```

pub mod keyenc;

pub use keyenc::{
    decode, encode, pack_str8, table_range, TupleKey, COL_BITS, PAYLOAD_BITS, PLACE_BITS,
    PLACE_SHIFT, REPLICATED_BOUNDARY, TABLE_BITS,
};

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use tm_api::Abort;
use txkv::{KvTx, ShardMap};

/// A fixed-width multi-column row: column ids are dense `0..COLS`,
/// every column is one `u64` word. Implement via [`def_row!`].
pub trait Row: Sized {
    const COLS: u64;
    /// Emit every `(col, word)` pair.
    fn to_cols(&self, out: &mut dyn FnMut(u64, u64));
    /// Rebuild from a per-column reader (absent columns read as 0).
    fn from_cols(read: &mut dyn FnMut(u64) -> Result<u64, Abort>) -> Result<Self, Abort>;
}

/// Define a [`Row`]: named `u64` columns, ids assigned in declaration
/// order starting at 0.
///
/// ```
/// txkv_schema::def_row! {
///     /// Per-customer balances (cents, two's-complement in a u64).
///     pub struct CustomerRow { balance, ytd_payment, payment_cnt }
/// }
/// use txkv_schema::Row;
/// assert_eq!(CustomerRow::COLS, 3);
/// ```
#[macro_export]
macro_rules! def_row {
    ($(#[$meta:meta])* pub struct $name:ident { $($field:ident),+ $(,)? }) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct $name {
            $(pub $field: u64,)+
        }

        impl $crate::Row for $name {
            const COLS: u64 = 0 $(+ { let _ = stringify!($field); 1 })+;

            fn to_cols(&self, out: &mut dyn FnMut(u64, u64)) {
                let mut col = 0u64;
                $(
                    out(col, self.$field);
                    #[allow(unused_assignments)]
                    { col += 1; }
                )+
            }

            fn from_cols(
                read: &mut dyn FnMut(u64) -> Result<u64, tm_api::Abort>,
            ) -> Result<Self, tm_api::Abort> {
                let mut col = 0u64;
                $(
                    let $field = read(col)?;
                    #[allow(unused_assignments)]
                    { col += 1; }
                )+
                Ok(Self { $($field,)+ })
            }
        }
    };
}

/// Allocates table/index ids within one key space: the named-table
/// namespace. Ids are dense in registration order and must stay below
/// the 6-bit [`TABLE_BITS`] budget.
#[derive(Debug, Default)]
pub struct Schema {
    names: Vec<&'static str>,
}

impl Schema {
    pub fn new() -> Self {
        Self::default()
    }

    fn alloc(&mut self, name: &'static str) -> u64 {
        assert!(!self.names.contains(&name), "table or index named {name:?} registered twice");
        let id = self.names.len() as u64;
        assert!(id < (1 << TABLE_BITS), "schema exceeds {} tables", 1u64 << TABLE_BITS);
        self.names.push(name);
        id
    }

    /// Register a typed table.
    pub fn table<K: TupleKey, R: Row>(&mut self, name: &'static str) -> Table<K, R> {
        Table::new(self.alloc(name), name)
    }

    /// Register a secondary index. A `unique` index holds one entry per
    /// index key; a multi-valued index disambiguates by folding the
    /// primary key into the tail of its [`TupleKey`].
    pub fn index<IK: TupleKey>(&mut self, name: &'static str, unique: bool) -> Index<IK> {
        Index { id: self.alloc(name), name, unique, _ik: PhantomData }
    }

    /// The id a name was assigned, if registered.
    pub fn id_of(&self, name: &str) -> Option<u64> {
        self.names.iter().position(|n| *n == name).map(|i| i as u64)
    }

    pub fn names(&self) -> &[&'static str] {
        &self.names
    }
}

/// A typed table handle: primary key `K`, row type `R`. Stateless and
/// `Copy`-cheap — it only carries the table id, so it can live in
/// statics or inside [`txkv::Procedure`]s freely.
pub struct Table<K, R> {
    id: u64,
    name: &'static str,
    _k: PhantomData<fn(K) -> K>,
    _r: PhantomData<fn(R) -> R>,
}

impl<K, R> Clone for Table<K, R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K, R> Copy for Table<K, R> {}

impl<K: TupleKey, R: Row> Table<K, R> {
    /// Prefer [`Schema::table`]; direct construction is for statics
    /// with hand-assigned ids.
    pub const fn new(id: u64, name: &'static str) -> Self {
        Table { id, name, _k: PhantomData, _r: PhantomData }
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The raw store key of one column of one row.
    #[inline]
    pub fn key(&self, place: u64, k: K, col: u64) -> u64 {
        encode(place, self.id, k.pack(), col)
    }

    /// Whether the row exists (column 0 is the presence column: every
    /// `put` writes it).
    pub fn exists(&self, tx: &mut dyn KvTx, place: u64, k: K) -> Result<bool, Abort> {
        Ok(tx.get(self.key(place, k, 0))?.is_some())
    }

    /// Read a whole row; `None` if it does not exist.
    pub fn get(&self, tx: &mut dyn KvTx, place: u64, k: K) -> Result<Option<R>, Abort> {
        if !self.exists(tx, place, k)? {
            return Ok(None);
        }
        let payload = k.pack();
        R::from_cols(&mut |col| Ok(tx.get(encode(place, self.id, payload, col))?.unwrap_or(0)))
            .map(Some)
    }

    /// Insert or overwrite a whole row (all columns, column 0 first so
    /// presence is established even for partially-read rows).
    pub fn put(&self, tx: &mut dyn KvTx, place: u64, k: K, row: &R) -> Result<(), Abort> {
        let payload = k.pack();
        let mut result = Ok(());
        row.to_cols(&mut |col, val| {
            if result.is_ok() {
                result = tx.put(encode(place, self.id, payload, col), val);
            }
        });
        result
    }

    /// Delete a whole row; `true` if it existed.
    pub fn delete(&self, tx: &mut dyn KvTx, place: u64, k: K) -> Result<bool, Abort> {
        let payload = k.pack();
        let mut existed = false;
        for col in 0..R::COLS {
            existed |= tx.delete(encode(place, self.id, payload, col))?;
        }
        Ok(existed)
    }

    /// Read one column (0 when absent).
    pub fn read_col(&self, tx: &mut dyn KvTx, place: u64, k: K, col: u64) -> Result<u64, Abort> {
        Ok(tx.get(self.key(place, k, col))?.unwrap_or(0))
    }

    /// Write one column.
    pub fn write_col(
        &self,
        tx: &mut dyn KvTx,
        place: u64,
        k: K,
        col: u64,
        val: u64,
    ) -> Result<(), Abort> {
        tx.put(self.key(place, k, col), val)
    }

    /// Read-modify-write one column; returns the new value.
    pub fn update_col(
        &self,
        tx: &mut dyn KvTx,
        place: u64,
        k: K,
        col: u64,
        f: impl FnOnce(u64) -> u64,
    ) -> Result<u64, Abort> {
        let key = self.key(place, k, col);
        let new = f(tx.get(key)?.unwrap_or(0));
        tx.put(key, new)?;
        Ok(new)
    }

    /// Ordered scan over the primary keys in `[from, to)` (packed tuple
    /// order — i.e. index order), up to `limit` rows. Returns the row
    /// count.
    pub fn scan_keys(
        &self,
        tx: &mut dyn KvTx,
        place: u64,
        from: K,
        to: K,
        limit: u64,
        f: &mut dyn FnMut(K),
    ) -> Result<u64, Abort> {
        let lo = encode(place, self.id, from.pack(), 0);
        let hi = encode(place, self.id, to.pack(), 0);
        // The kv scan sees every column; only presence columns count as
        // rows, so widen the kv limit accordingly.
        let kv_limit = limit.saturating_mul(R::COLS.max(1));
        let mut rows = 0u64;
        tx.scan_range(lo, hi, kv_limit, &mut |key, _| {
            let (_, _, payload, col) = decode(key);
            if col == 0 && rows < limit {
                rows += 1;
                f(K::unpack(payload));
            }
        })?;
        Ok(rows)
    }
}

impl<K, R> std::fmt::Debug for Table<K, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table").field("id", &self.id).field("name", &self.name).finish()
    }
}

/// Lookups served through a secondary index, across all indexes in the
/// process — the counter tests assert on to prove an access path went
/// through the index rather than a base-table scan.
static INDEX_HITS: AtomicU64 = AtomicU64::new(0);

/// Total [`Index::get`]/[`Index::scan`] lookups since process start (or
/// the last [`reset_index_hits`]).
pub fn index_hits() -> u64 {
    INDEX_HITS.load(Ordering::Relaxed)
}

pub fn reset_index_hits() {
    INDEX_HITS.store(0, Ordering::Relaxed)
}

/// A secondary index: entries `IK → primary` stored in the index's own
/// table id, maintained by the *caller's* transaction — every write
/// path that touches the indexed column must update the index in the
/// same [`KvTx`], which is what keeps base and index atomic across
/// single-shard commits, cross-shard 2PC legs, and WAL replay alike.
pub struct Index<IK> {
    id: u64,
    name: &'static str,
    unique: bool,
    _ik: PhantomData<fn(IK) -> IK>,
}

impl<IK> Clone for Index<IK> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<IK> Copy for Index<IK> {}

impl<IK: TupleKey> Index<IK> {
    /// Prefer [`Schema::index`]; direct construction is for statics.
    pub const fn new(id: u64, name: &'static str, unique: bool) -> Self {
        Index { id, name, unique, _ik: PhantomData }
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn unique(&self) -> bool {
        self.unique
    }

    /// The encoded store key of one index entry (bulk loaders and
    /// footprint builders use this; transactional paths go through
    /// [`Index::put`] / [`Index::get`] / [`Index::scan`]).
    #[inline]
    pub fn key(&self, place: u64, ik: IK) -> u64 {
        encode(place, self.id, ik.pack(), 0)
    }

    /// Insert (or overwrite) the entry for `ik`.
    pub fn put(&self, tx: &mut dyn KvTx, place: u64, ik: IK, primary: u64) -> Result<(), Abort> {
        tx.put(self.key(place, ik), primary)
    }

    /// Remove the entry for `ik`; `true` if it existed.
    pub fn delete(&self, tx: &mut dyn KvTx, place: u64, ik: IK) -> Result<bool, Abort> {
        tx.delete(self.key(place, ik))
    }

    /// Index maintenance for a moved indexed value: drop the old entry,
    /// insert the new — in the caller's (base-write) transaction.
    pub fn update(
        &self,
        tx: &mut dyn KvTx,
        place: u64,
        old: Option<IK>,
        new: Option<(IK, u64)>,
    ) -> Result<(), Abort> {
        if let Some(o) = old {
            tx.delete(self.key(place, o))?;
        }
        if let Some((n, primary)) = new {
            tx.put(self.key(place, n), primary)?;
        }
        Ok(())
    }

    /// Unique-index point lookup. Counts an index hit.
    pub fn get(&self, tx: &mut dyn KvTx, place: u64, ik: IK) -> Result<Option<u64>, Abort> {
        INDEX_HITS.fetch_add(1, Ordering::Relaxed);
        tx.get(self.key(place, ik))
    }

    /// Ordered scan over entries with packed keys in `[from, to)`, up
    /// to `limit`; yields `(entry key, primary)` in index order and
    /// returns the match count. Counts one index hit. This is how a
    /// multi-valued index enumerates an equal-prefix group: build
    /// `from`/`to` spanning the prefix.
    pub fn scan(
        &self,
        tx: &mut dyn KvTx,
        place: u64,
        from: IK,
        to: IK,
        limit: u64,
        f: &mut dyn FnMut(IK, u64),
    ) -> Result<u64, Abort> {
        INDEX_HITS.fetch_add(1, Ordering::Relaxed);
        let lo = encode(place, self.id, from.pack(), 0);
        let hi = encode(place, self.id, to.pack(), 0);
        tx.scan_range(lo, hi, limit, &mut |key, primary| {
            let (_, _, payload, _) = decode(key);
            f(IK::unpack(payload), primary);
        })
    }

    /// Every entry of this index at `place` (consistency checks).
    pub fn scan_all(
        &self,
        tx: &mut dyn KvTx,
        place: u64,
        f: &mut dyn FnMut(IK, u64),
    ) -> Result<u64, Abort> {
        INDEX_HITS.fetch_add(1, Ordering::Relaxed);
        let (lo, hi) = table_range(place, self.id);
        tx.scan_range(lo, hi, u64::MAX, &mut |key, primary| {
            let (_, _, payload, _) = decode(key);
            f(IK::unpack(payload), primary);
        })
    }
}

impl<IK> std::fmt::Debug for Index<IK> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Index")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("unique", &self.unique)
            .finish()
    }
}

/// Range-partition whole places across `shards`: place `p`'s entire
/// key range maps to shard `p / ceil(places / shards)`. Pass
/// `places` = highest place + 1 (including replicated place 0, which
/// lands on shard 0 but is loaded into every shard's store by the
/// domain builder).
pub fn place_sharding(places: u64, shards: usize) -> ShardMap {
    let per = places.div_ceil(shards as u64).max(1);
    ShardMap::range(shards, per << PLACE_SHIFT)
}

/// The place that owns `key` (inverse of the place field).
pub fn place_of(key: u64) -> u64 {
    key >> PLACE_SHIFT
}

#[cfg(test)]
mod tests {
    use super::*;

    def_key! { pub struct DK { d: 5, c: 14 } }
    def_row! { pub struct DR { a, b, c } }

    #[test]
    fn key_encoding_is_order_preserving() {
        // Across every field, integer order == tuple order.
        let ks = [
            encode(0, 0, 0, 0),
            encode(0, 0, 0, 1),
            encode(0, 0, 1, 0),
            encode(0, 1, 0, 0),
            encode(1, 0, 0, 0),
            encode(1, 0, 0, 63),
            encode(1, 0, 1, 0),
            encode(1, 63, (1 << PAYLOAD_BITS) - 1, 63),
            encode(2, 0, 0, 0),
        ];
        for w in ks.windows(2) {
            assert!(w[0] < w[1], "{:#x} !< {:#x}", w[0], w[1]);
        }
        for &k in &ks {
            let (p, t, pl, c) = decode(k);
            assert_eq!(encode(p, t, pl, c), k);
        }
    }

    #[test]
    fn tuple_keys_round_trip_and_preserve_order() {
        let a = DK { d: 3, c: 100 };
        let b = DK { d: 3, c: 101 };
        let c = DK { d: 4, c: 0 };
        assert!(a.pack() < b.pack() && b.pack() < c.pack());
        assert_eq!(DK::unpack(a.pack()), a);
        assert_eq!(DK::BITS, 19);
    }

    #[test]
    fn str8_packing_matches_memcmp_order() {
        let names = ["ABLE", "BAR", "BARB", "BARBAR", "PRES", "PRESBAR"];
        for w in names.windows(2) {
            assert!(pack_str8(w[0]) < pack_str8(w[1]), "{} !< {} packed", w[0], w[1]);
        }
        // Truncation keeps prefix adjacency: >8 bytes share the packed
        // prefix value.
        assert_eq!(pack_str8("ABCDEFGHI"), pack_str8("ABCDEFGH"));
    }

    #[test]
    fn rows_emit_dense_columns() {
        let r = DR { a: 1, b: 2, c: 3 };
        let mut got = Vec::new();
        r.to_cols(&mut |col, v| got.push((col, v)));
        assert_eq!(got, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(DR::COLS, 3);
        let back = DR::from_cols(&mut |col| Ok(col + 1)).unwrap();
        assert_eq!(back, DR { a: 1, b: 2, c: 3 });
    }

    #[test]
    fn schema_allocates_unique_ids() {
        let mut s = Schema::new();
        let t: Table<DK, DR> = s.table("t");
        let i = s.index::<u64>("t_by_x", true);
        assert_eq!(t.id(), 0);
        assert_eq!(i.id(), 1);
        assert_eq!(s.id_of("t_by_x"), Some(1));
        assert_eq!(s.id_of("nope"), None);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn schema_rejects_duplicate_names() {
        let mut s = Schema::new();
        let _a: Table<DK, DR> = s.table("t");
        let _b: Table<DK, DR> = s.table("t");
    }

    #[test]
    fn place_sharding_keeps_places_whole() {
        let map = place_sharding(3, 2); // place 0 + two places, 2 shards
        assert_eq!(map.shard_of(encode(0, 5, 9, 1)), 0);
        assert_eq!(map.shard_of(encode(1, 5, 9, 1)), 0);
        assert_eq!(map.shard_of(encode(2, 5, 9, 1)), 1);
        // Every key of one place lands on one shard.
        let (lo, hi) = table_range(2, 7);
        assert_eq!(map.shard_of(lo), map.shard_of(hi - 1));
    }
}
