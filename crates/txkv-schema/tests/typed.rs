//! Typed tables and secondary indexes over live TM backends.
//!
//! Everything here drives the schema layer through [`txkv::LocalTx`] —
//! the embedded [`txkv::KvTx`] implementation — inside real backend
//! transactions, on all four backends:
//!
//! * whole-row and per-column round trips, presence semantics, deletes;
//! * ordered `scan_keys` over composite tuple keys (tuple order ==
//!   scan order, the property the key encoding exists for);
//! * secondary-index maintenance in the *same* transaction as the base
//!   write: lookups resolve through the index (asserted via the
//!   index-hit counter), moved values leave no dangling entries, and a
//!   user abort rolls base and index back together.

use std::sync::Mutex;
use tm_api::{Abort, Outcome, TmBackend, TmThread, TxKind};
use txkv::{KvStore, LocalTx};
use txkv_schema::{def_key, def_row, index_hits, Schema, TupleKey};

/// The index-hit counter is process-global; serialize tests that
/// assert on its deltas.
static GATE: Mutex<()> = Mutex::new(());

def_key! { pub struct CustKey { d: 5, c: 14 } }
def_row! { pub struct CustRow { balance, ytd, visits, group } }

// Multi-valued index key: (group, customer) — the customer id folds
// into the tuple tail so equal groups coexist.
def_key! { pub struct GroupKey { g: 8, d: 5, c: 14 } }

const PLACE: u64 = 1;

fn with_backend<B: TmBackend>(backend: B, body: impl FnOnce(&KvStore, &mut B::Thread)) {
    let store = KvStore::create(backend.memory(), 0, 1 << 16);
    let mut thread = backend.register_thread();
    body(&store, &mut thread);
}

/// Run one update transaction with a [`LocalTx`] surface; panics if the
/// body user-aborts unexpectedly.
fn update<T: TmThread>(
    store: &KvStore,
    thread: &mut T,
    body: impl FnMut(&mut LocalTx) -> Result<(), Abort>,
) -> Outcome {
    let mut scratch = store.new_batch_scratch(64);
    let mut body = body;
    let outcome = thread.exec(TxKind::Update, &mut |tx| {
        scratch.reset();
        let mut ltx = LocalTx { store, tx, scratch: &mut scratch };
        body(&mut ltx)
    });
    if outcome == Outcome::Committed {
        scratch.refill(store.alloc());
    }
    outcome
}

fn read<T: TmThread, R>(store: &KvStore, thread: &mut T, body: impl FnMut(&mut LocalTx) -> R) -> R {
    let mut scratch = store.new_scratch();
    let mut body = body;
    let mut out = None;
    thread.exec(TxKind::ReadOnly, &mut |tx| {
        let mut ltx = LocalTx { store, tx, scratch: &mut scratch };
        out = Some(body(&mut ltx));
        Ok(())
    });
    out.expect("read-only transaction ran")
}

fn rows_round_trip<B: TmBackend>(backend: B) {
    let mut schema = Schema::new();
    let customers = schema.table::<CustKey, CustRow>("customers");
    with_backend(backend, |store, thread| {
        let k = CustKey { d: 3, c: 41 };
        let row = CustRow { balance: 500, ytd: 10, visits: 1, group: 7 };
        assert_eq!(
            update(store, thread, |tx| customers.put(tx, PLACE, k, &row)),
            Outcome::Committed
        );

        let got = read(store, thread, |tx| customers.get(tx, PLACE, k).unwrap());
        assert_eq!(got, Some(row));
        assert_eq!(
            read(store, thread, |tx| customers.get(tx, PLACE, CustKey { d: 3, c: 42 }).unwrap()),
            None,
            "a neighbouring key must not alias"
        );
        assert_eq!(
            read(store, thread, |tx| customers.get(tx, 2, k).unwrap()),
            None,
            "the same key at another place must not alias"
        );

        // Column-granular update + RMW.
        update(store, thread, |tx| {
            customers.write_col(tx, PLACE, k, 1, 25)?; // ytd
            customers.update_col(tx, PLACE, k, 0, |b| b - 100)?; // balance
            Ok(())
        });
        let got = read(store, thread, |tx| customers.get(tx, PLACE, k).unwrap()).unwrap();
        assert_eq!((got.balance, got.ytd), (400, 25));

        // Delete removes every column.
        update(store, thread, |tx| customers.delete(tx, PLACE, k).map(|_| ()));
        assert!(!read(store, thread, |tx| customers.exists(tx, PLACE, k).unwrap()));
        assert_eq!(read(store, thread, |tx| customers.read_col(tx, PLACE, k, 1).unwrap()), 0);
    });
}

fn scans_follow_tuple_order<B: TmBackend>(backend: B) {
    let mut schema = Schema::new();
    let customers = schema.table::<CustKey, CustRow>("customers");
    with_backend(backend, |store, thread| {
        // Insert out of order; scans must come back in (d, c) order.
        let keys = [
            CustKey { d: 2, c: 9 },
            CustKey { d: 1, c: 300 },
            CustKey { d: 1, c: 2 },
            CustKey { d: 4, c: 0 },
            CustKey { d: 2, c: 10 },
        ];
        update(store, thread, |tx| {
            for (i, &k) in keys.iter().enumerate() {
                customers.put(
                    tx,
                    PLACE,
                    k,
                    &CustRow { balance: i as u64, ..Default::default() },
                )?;
            }
            Ok(())
        });
        let mut sorted = keys.to_vec();
        sorted.sort_by_key(|k| (k.d, k.c));

        let seen = read(store, thread, |tx| {
            let mut seen = Vec::new();
            let n = customers
                .scan_keys(
                    tx,
                    PLACE,
                    CustKey { d: 0, c: 0 },
                    CustKey { d: 31, c: (1 << 14) - 1 },
                    100,
                    &mut |k| seen.push(k),
                )
                .unwrap();
            assert_eq!(n, seen.len() as u64);
            seen
        });
        assert_eq!(seen, sorted, "scan must walk tuple order");

        // District-limited scan: only d == 2, in c order.
        let d2 = read(store, thread, |tx| {
            let mut seen = Vec::new();
            customers
                .scan_keys(
                    tx,
                    PLACE,
                    CustKey { d: 2, c: 0 },
                    CustKey { d: 3, c: 0 },
                    100,
                    &mut |k| seen.push(k),
                )
                .unwrap();
            seen
        });
        assert_eq!(d2, vec![CustKey { d: 2, c: 9 }, CustKey { d: 2, c: 10 }]);

        // Limit truncates from the front of the order.
        let first2 = read(store, thread, |tx| {
            let mut seen = Vec::new();
            customers
                .scan_keys(
                    tx,
                    PLACE,
                    CustKey { d: 0, c: 0 },
                    CustKey { d: 31, c: (1 << 14) - 1 },
                    2,
                    &mut |k| seen.push(k),
                )
                .unwrap();
            seen
        });
        assert_eq!(first2, sorted[..2]);
    });
}

fn index_stays_consistent_with_base<B: TmBackend>(backend: B) {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let mut schema = Schema::new();
    let customers = schema.table::<CustKey, CustRow>("customers");
    let by_group = schema.index::<GroupKey>("customers_by_group", false);
    let by_card = schema.index::<u64>("customers_by_card", true);
    with_backend(backend, |store, thread| {
        let k = CustKey { d: 1, c: 7 };
        let card = 9_000_007u64;
        // Base write and both index entries in ONE transaction.
        update(store, thread, |tx| {
            customers.put(
                tx,
                PLACE,
                k,
                &CustRow { balance: 100, group: 5, ..Default::default() },
            )?;
            by_group.put(tx, PLACE, GroupKey { g: 5, d: k.d, c: k.c }, k.pack())?;
            by_card.put(tx, PLACE, card, k.pack())
        });

        // Unique-index point lookup resolves to the primary key and is
        // counted as an index hit.
        let before = index_hits();
        let hit = read(store, thread, |tx| by_card.get(tx, PLACE, card).unwrap());
        assert_eq!(hit, Some(k.pack()));
        assert_eq!(index_hits(), before + 1, "the lookup must be index-served");

        // Multi-valued group scan finds the member.
        let members = read(store, thread, |tx| {
            let mut m = Vec::new();
            by_group
                .scan(
                    tx,
                    PLACE,
                    GroupKey { g: 5, d: 0, c: 0 },
                    GroupKey { g: 6, d: 0, c: 0 },
                    100,
                    &mut |ik, primary| m.push((ik, primary)),
                )
                .unwrap();
            m
        });
        assert_eq!(members, vec![(GroupKey { g: 5, d: 1, c: 7 }, k.pack())]);

        // Move the indexed column: base update + index move, one txn.
        update(store, thread, |tx| {
            customers.write_col(tx, PLACE, k, 3, 9)?; // group
            by_group.update(
                tx,
                PLACE,
                Some(GroupKey { g: 5, d: k.d, c: k.c }),
                Some((GroupKey { g: 9, d: k.d, c: k.c }, k.pack())),
            )
        });
        let (old_group, new_group) = read(store, thread, |tx| {
            let mut old = 0u64;
            let mut new = 0u64;
            by_group
                .scan(
                    tx,
                    PLACE,
                    GroupKey { g: 5, d: 0, c: 0 },
                    GroupKey { g: 6, d: 0, c: 0 },
                    10,
                    &mut |_, _| old += 1,
                )
                .unwrap();
            by_group
                .scan(
                    tx,
                    PLACE,
                    GroupKey { g: 9, d: 0, c: 0 },
                    GroupKey { g: 10, d: 0, c: 0 },
                    10,
                    &mut |_, _| new += 1,
                )
                .unwrap();
            (old, new)
        });
        assert_eq!((old_group, new_group), (0, 1), "a moved value must leave no dangling entry");

        // A user abort rolls back base AND index together.
        let outcome = update(store, thread, |tx| {
            customers.write_col(tx, PLACE, k, 3, 2)?;
            by_group.update(
                tx,
                PLACE,
                Some(GroupKey { g: 9, d: k.d, c: k.c }),
                Some((GroupKey { g: 2, d: k.d, c: k.c }, k.pack())),
            )?;
            Err(Abort::User)
        });
        assert_eq!(outcome, Outcome::UserAborted);
        let (group_col, g9) = read(store, thread, |tx| {
            let g = customers.read_col(tx, PLACE, k, 3).unwrap();
            let mut n = 0u64;
            by_group
                .scan(
                    tx,
                    PLACE,
                    GroupKey { g: 9, d: 0, c: 0 },
                    GroupKey { g: 10, d: 0, c: 0 },
                    10,
                    &mut |_, _| n += 1,
                )
                .unwrap();
            (g, n)
        });
        assert_eq!((group_col, g9), (9, 1), "aborted txn must leave base and index untouched");

        // Full base/index agreement audit, in one snapshot.
        read(store, thread, |tx| {
            let mut entries = Vec::new();
            by_group.scan_all(tx, PLACE, &mut |ik, primary| entries.push((ik, primary))).unwrap();
            for (ik, primary) in entries {
                let ck = CustKey::unpack(primary);
                assert!(customers.exists(tx, PLACE, ck).unwrap(), "dangling index entry {ik:?}");
                assert_eq!(
                    customers.read_col(tx, PLACE, ck, 3).unwrap(),
                    ik.g,
                    "index key disagrees"
                );
            }
        });
    });
}

macro_rules! typed_suite {
    ($name:ident, $make:expr) => {
        mod $name {
            use super::*;

            #[test]
            fn rows_round_trip_over_backend() {
                rows_round_trip($make);
            }

            #[test]
            fn scans_follow_tuple_order_over_backend() {
                scans_follow_tuple_order($make);
            }

            #[test]
            fn index_stays_consistent_with_base_over_backend() {
                index_stays_consistent_with_base($make);
            }
        }
    };
}

typed_suite!(on_si_htm, si_htm::SiHtm::with_defaults(1 << 16));
typed_suite!(on_htm_sgl, htm_sgl::HtmSgl::with_defaults(1 << 16));
typed_suite!(on_p8tm, p8tm::P8tm::with_defaults(1 << 16));
typed_suite!(on_silo, silo::Silo::with_defaults(1 << 16));
