//! Crash consistency for secondary indexes, on all four backends.
//!
//! The base row and its index entry live at *different places* — under
//! the place sharding used here, on different shards — so every indexed
//! upsert is a cross-shard procedure call: one 2PC leg writes the row,
//! the other maintains the index (delete old entry, insert new, update
//! the index-side current-group bookkeeping), all under the durable
//! combined-transaction protocol. A single-shard counter procedure
//! rides along so the single-shard commit window is armed too.
//!
//! For every scripted crash site (all six [`CrashSite`]s) plus a
//! graceful restart, recovery must land in a state where:
//!
//! * **base and index agree**: a row exists iff its index bookkeeping
//!   exists, the group column matches the index entry, and no index
//!   entry dangles — i.e. no 2PC resolution ever splits the two legs;
//! * **rows are never torn**: the row's own cross-column invariant
//!   (`group == group_of(version)`) holds, so a replayed transaction
//!   applied all of its writes or none;
//! * **no acked write is lost** (Sync mode): every `CallOk` version /
//!   counter watermark is at or below the recovered value;
//! * recovery is **idempotent** (a second pass reproduces the state).
//!
//! On a failed invariant the test writes a machine-readable
//! `target/INDEX_CRASH_FAILURE.json` before panicking.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tm_api::{Abort, TmBackend, TmThread, TxKind};
use txkv::{
    recover, recover_and_open, CrashSite, CrashSpec, DurabilityConfig, DurabilityMode, KvError,
    KvOp, KvReply, KvStore, KvTx, LocalTx, Pipeline, PipelineConfig, ProcCtx, ProcRegistry,
    Procedure, ShardMap,
};
use txkv_schema::{def_key, def_row, place_sharding, Index, Table, REPLICATED_BOUNDARY};

const SHARDS: usize = 2;
/// Rows + counters at place 1 (shard 0); index + bookkeeping at place 2
/// (shard 1) — `place_sharding(3, 2)` puts places {0, 1} on shard 0 and
/// place 2 on shard 1.
const ROW_PLACE: u64 = 1;
const IDX_PLACE: u64 = 2;
const ITEMS_N: u64 = 24;
const GROUPS: u64 = 5;
const CLIENTS: u64 = 3;
const OPS_PER_CLIENT: u64 = 300;

def_row! { pub struct ItemRow { version, group } }
def_row! { pub struct StateRow { group } }
def_row! { pub struct CounterRow { value } }
def_key! { pub struct GroupKey { g: 8, item: 20 } }

const ITEMS: Table<u64, ItemRow> = Table::new(0, "items");
/// Index-side bookkeeping, co-located with the index: the current group
/// of each indexed item, so the index leg can find the entry to retire
/// without cross-leg communication.
const STATE: Table<u64, StateRow> = Table::new(1, "items_idx_state");
const BY_GROUP: Index<GroupKey> = Index::new(2, "items_by_group", false);
const COUNTERS: Table<u64, CounterRow> = Table::new(3, "counters");

fn group_of(version: u64) -> u64 {
    version % GROUPS
}

/// Cross-shard indexed upsert: args `[item, version]`. The row leg
/// writes the base row; the index leg moves the index entry — one 2PC
/// transaction, index maintenance never escapes it.
struct Upsert;

impl Procedure for Upsert {
    fn id(&self) -> u64 {
        1
    }
    fn name(&self) -> &'static str {
        "upsert"
    }
    fn run(&self, ctx: &mut ProcCtx<'_>, args: &[u64]) -> Result<Vec<u64>, Abort> {
        let (item, version) = (args[0], args[1]);
        let group = group_of(version);
        if ctx.is_local(ITEMS.key(ROW_PLACE, item, 0)) {
            ITEMS.put(ctx, ROW_PLACE, item, &ItemRow { version, group })?;
        }
        if ctx.is_local(STATE.key(IDX_PLACE, item, 0)) {
            if let Some(old) = STATE.get(ctx, IDX_PLACE, item)? {
                BY_GROUP.delete(ctx, IDX_PLACE, GroupKey { g: old.group, item })?;
            }
            BY_GROUP.put(ctx, IDX_PLACE, GroupKey { g: group, item }, item)?;
            STATE.put(ctx, IDX_PLACE, item, &StateRow { group })?;
        }
        Ok(Vec::new())
    }
}

/// Single-shard counter bump: args `[item, value]`. Keeps the
/// single-shard Call commit window (`AfterCommit`) armed.
struct Bump;

impl Procedure for Bump {
    fn id(&self) -> u64 {
        2
    }
    fn name(&self) -> &'static str {
        "bump"
    }
    fn run(&self, ctx: &mut ProcCtx<'_>, args: &[u64]) -> Result<Vec<u64>, Abort> {
        COUNTERS.put(ctx, ROW_PLACE, args[0], &CounterRow { value: args[1] })?;
        Ok(Vec::new())
    }
}

fn registry() -> Arc<ProcRegistry> {
    Arc::new(
        ProcRegistry::new()
            .with_replicated_below(REPLICATED_BOUNDARY)
            .register(Arc::new(Upsert))
            .register(Arc::new(Bump)),
    )
}

fn shard_map() -> ShardMap {
    place_sharding(3, SHARDS)
}

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("txkv-index-crash-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn pipeline_cfg() -> PipelineConfig {
    PipelineConfig {
        executors: 2,
        multi_key_max: 4,
        drain_grace: Duration::from_millis(500),
        ..PipelineConfig::quick()
    }
}

fn upsert_op(item: u64, version: u64) -> KvOp {
    KvOp::Call {
        proc: 1,
        args: vec![item, version],
        footprint: vec![ITEMS.key(ROW_PLACE, item, 0), STATE.key(IDX_PLACE, item, 0)],
        read_only: false,
    }
}

fn bump_op(item: u64, value: u64) -> KvOp {
    KvOp::Call {
        proc: 2,
        args: vec![item, value],
        footprint: vec![COUNTERS.key(ROW_PLACE, item, 0)],
        read_only: false,
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Crash countdowns: cross-shard sites are reached twice per upsert
/// (~60 % of the mix), the single-shard commit window on every bump,
/// the group-commit windows on every flush.
fn site_after(site: CrashSite) -> u64 {
    match site {
        CrashSite::AfterCommit => 10,
        CrashSite::MidGroupCommit | CrashSite::TornTail => 25,
        CrashSite::AfterPrepare | CrashSite::AfterApply | CrashSite::AfterDecision => 6,
    }
}

/// Run the durable indexed load; returns per-item acked upsert-version
/// and bump-value watermarks, the service report, and whether the
/// scripted crash tripped.
fn run_load<B: TmBackend>(
    mk: &mut impl FnMut(usize) -> B,
    dcfg: &DurabilityConfig,
) -> (HashMap<u64, u64>, HashMap<u64, u64>, txkv::ServiceReport, bool) {
    let map = shard_map();
    let (domains, wal, _) =
        recover_and_open(dcfg, &map, &mut *mk, 0, 1 << 20).expect("open durable domains");
    let pipeline = Pipeline::start_with(
        domains,
        map,
        pipeline_cfg(),
        Some(Arc::clone(&wal)),
        Some(registry()),
    );
    let mut acked_up: HashMap<u64, u64> = HashMap::new();
    let mut acked_bump: HashMap<u64, u64> = HashMap::new();
    std::thread::scope(|sc| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let client = pipeline.client();
                let wal = Arc::clone(&wal);
                sc.spawn(move || {
                    let mut rng = 0x1D1D_5EED_u64 ^ (t << 32);
                    let my_items: Vec<u64> = (0..ITEMS_N).filter(|i| i % CLIENTS == t).collect();
                    let mut versions: HashMap<u64, u64> = HashMap::new();
                    let mut up: HashMap<u64, u64> = HashMap::new();
                    let mut bump: HashMap<u64, u64> = HashMap::new();
                    for _ in 0..OPS_PER_CLIENT {
                        if !wal.alive() {
                            break; // plug pulled: everything from here sheds
                        }
                        let r = splitmix(&mut rng);
                        let item = my_items[((r >> 8) as usize) % my_items.len()];
                        let (op, watermark) = if r % 10 < 6 {
                            let v = versions.entry(item).or_insert(0);
                            *v += 1;
                            (upsert_op(item, *v), (&mut up, item, *v))
                        } else {
                            let v = versions.entry(item | (1 << 32)).or_insert(0);
                            *v += 1;
                            (bump_op(item, *v), (&mut bump, item, *v))
                        };
                        match client.call(op) {
                            Ok(KvReply::CallOk(_)) => {
                                let (map, item, v) = watermark;
                                map.insert(item, v);
                            }
                            Ok(KvReply::Shed) => {}
                            Ok(other) => panic!("unexpected call reply {other:?}"),
                            Err(KvError::Overloaded { .. } | KvError::ShuttingDown) => {}
                            Err(e) => panic!("unexpected admission error {e:?}"),
                        }
                    }
                    (up, bump)
                })
            })
            .collect();
        for h in handles {
            let (up, bump) = h.join().expect("client panicked");
            for (k, v) in up {
                let e = acked_up.entry(k).or_insert(0);
                *e = (*e).max(v);
            }
            for (k, v) in bump {
                let e = acked_bump.entry(k).or_insert(0);
                *e = (*e).max(v);
            }
        }
    });
    let crashed = !wal.alive();
    let report = pipeline.shutdown();
    (acked_up, acked_bump, report, crashed)
}

/// One read-only audit transaction per shard, through the typed layer.
fn audit<B: TmBackend>(
    domains: &[(B, KvStore)],
    acked_up: &HashMap<u64, u64>,
    acked_bump: &HashMap<u64, u64>,
    ctx: &str,
) -> Vec<(u64, Option<ItemRow>)> {
    // Shard 0: rows and counters.
    let mut rows: Vec<(u64, Option<ItemRow>)> = Vec::new();
    let mut counters: Vec<(u64, Option<CounterRow>)> = Vec::new();
    {
        let (backend, store) = &domains[0];
        let mut thread = backend.register_thread();
        let mut scratch = store.new_scratch();
        thread.exec(TxKind::ReadOnly, &mut |tx| {
            rows.clear();
            counters.clear();
            let mut ltx = LocalTx { store, tx, scratch: &mut scratch };
            for item in 0..ITEMS_N {
                rows.push((item, ITEMS.get(&mut ltx, ROW_PLACE, item)?));
                counters.push((item, COUNTERS.get(&mut ltx, ROW_PLACE, item)?));
            }
            Ok(())
        });
    }
    // Shard 1: index bookkeeping and the index itself.
    let mut states: Vec<(u64, Option<StateRow>)> = Vec::new();
    let mut entries: Vec<(GroupKey, u64)> = Vec::new();
    {
        let (backend, store) = &domains[1];
        let mut thread = backend.register_thread();
        let mut scratch = store.new_scratch();
        thread.exec(TxKind::ReadOnly, &mut |tx| {
            states.clear();
            entries.clear();
            let mut ltx = LocalTx { store, tx, scratch: &mut scratch };
            for item in 0..ITEMS_N {
                states.push((item, STATE.get(&mut ltx, IDX_PLACE, item)?));
            }
            BY_GROUP.scan_all(&mut ltx, IDX_PLACE, &mut |ik, primary| {
                entries.push((ik, primary));
            })?;
            Ok(())
        });
    }

    let mut failures: Vec<String> = Vec::new();
    for ((item, row), (_, state)) in rows.iter().zip(&states) {
        match (row, state) {
            (Some(r), Some(s)) => {
                if r.group != group_of(r.version) {
                    failures.push(format!(
                        r#"{{"invariant":"torn-row","item":{item},"version":{},"group":{}}}"#,
                        r.version, r.group
                    ));
                }
                if r.group != s.group {
                    failures.push(format!(
                        r#"{{"invariant":"base-index-split","item":{item},"row_group":{},"idx_group":{}}}"#,
                        r.group, s.group
                    ));
                }
            }
            (None, None) => {}
            _ => failures.push(format!(
                r#"{{"invariant":"base-index-split","item":{item},"row":{},"state":{}}}"#,
                row.is_some(),
                state.is_some()
            )),
        }
    }
    // Every index entry points at live bookkeeping with the same group,
    // and each indexed item has exactly one entry.
    let mut per_item: HashMap<u64, u64> = HashMap::new();
    for &(ik, primary) in &entries {
        *per_item.entry(ik.item).or_insert(0) += 1;
        if primary != ik.item {
            failures.push(format!(
                r#"{{"invariant":"index-primary","item":{},"got":{primary}}}"#,
                ik.item
            ));
        }
        match states.iter().find(|(i, _)| *i == ik.item).and_then(|(_, s)| s.as_ref()) {
            Some(s) if s.group == ik.g => {}
            got => failures.push(format!(
                r#"{{"invariant":"dangling-index-entry","item":{},"g":{},"state":{:?}}}"#,
                ik.item,
                ik.g,
                got.map(|s| s.group)
            )),
        }
    }
    for (item, state) in &states {
        let want = u64::from(state.is_some());
        if per_item.get(item).copied().unwrap_or(0) != want {
            failures.push(format!(
                r#"{{"invariant":"index-entry-count","item":{item},"want":{want},"got":{}}}"#,
                per_item.get(item).copied().unwrap_or(0)
            ));
        }
    }
    for (&item, &v) in acked_up {
        let got = rows.iter().find(|(i, _)| *i == item).and_then(|(_, r)| *r);
        if got.map(|r| r.version).unwrap_or(0) < v {
            failures.push(format!(
                r#"{{"invariant":"acked-upsert","item":{item},"acked":{v},"recovered":{:?}}}"#,
                got.map(|r| r.version)
            ));
        }
    }
    for (&item, &v) in acked_bump {
        let got = counters
            .iter()
            .find(|(i, _)| *i == item)
            .and_then(|(_, c)| *c)
            .map(|c| c.value)
            .unwrap_or(0);
        if got < v {
            failures.push(format!(
                r#"{{"invariant":"acked-bump","item":{item},"acked":{v},"recovered":{got}}}"#
            ));
        }
    }
    if !failures.is_empty() {
        let body = format!(r#"{{"context":{ctx:?},"failures":[{}]}}"#, failures.join(","));
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/INDEX_CRASH_FAILURE.json");
        let _ = std::fs::write(path, &body);
        panic!("index crash-consistency failed ({ctx}): {body}");
    }
    rows
}

fn recover_and_audit<B: TmBackend>(
    dir: &Path,
    mk: &mut impl FnMut(usize) -> B,
    acked_up: &HashMap<u64, u64>,
    acked_bump: &HashMap<u64, u64>,
    ctx: &str,
) -> Vec<(u64, Option<ItemRow>)> {
    let (domains, _) = recover(dir, &shard_map(), &mut *mk, 0, 1 << 20).expect("recovery failed");
    audit(&domains, acked_up, acked_bump, ctx)
}

fn crash_and_recover<B: TmBackend>(mut mk: impl FnMut(usize) -> B, site: CrashSite) {
    let dir = tmpdir(&format!("{site:?}"));
    let mut dcfg = DurabilityConfig::new(DurabilityMode::Sync, &dir);
    dcfg.group_commit_max = 8;
    dcfg.checkpoint_every = 48;
    dcfg.crash = Some(CrashSpec { site, after: site_after(site) });
    let (acked_up, acked_bump, report, crashed) = run_load(&mut mk, &dcfg);
    assert!(crashed, "the scripted {site:?} crash never tripped — the test exercised nothing");
    assert!(report.wal.wal_appends > 0, "the load never reached the WAL");
    let ctx = format!("{site:?}");
    let rows = recover_and_audit(&dir, &mut mk, &acked_up, &acked_bump, &ctx);
    // Idempotence: a second recovery pass reproduces the same rows.
    let rows2 = recover_and_audit(&dir, &mut mk, &acked_up, &acked_bump, &format!("{ctx}/again"));
    assert_eq!(rows, rows2, "recovery must be idempotent");
    let _ = std::fs::remove_dir_all(&dir);
}

fn graceful_restart<B: TmBackend>(mut mk: impl FnMut(usize) -> B) {
    let dir = tmpdir("graceful");
    let mut dcfg = DurabilityConfig::new(DurabilityMode::Sync, &dir);
    dcfg.group_commit_max = 8;
    dcfg.checkpoint_every = 48;
    let (acked_up, acked_bump, report, crashed) = run_load(&mut mk, &dcfg);
    assert!(!crashed, "no crash was scripted");
    assert!(!acked_up.is_empty(), "the mix must ack indexed upserts");
    assert!(!acked_bump.is_empty(), "the mix must ack single-shard bumps");
    assert!(report.twopc.prepares > 0, "indexed upserts must take the 2PC path");
    assert_eq!(report.wal.sync_acks_early, 0, "an ack outran its fsync");
    recover_and_audit(&dir, &mut mk, &acked_up, &acked_bump, "graceful");
    let _ = std::fs::remove_dir_all(&dir);
}

macro_rules! index_crash_suite {
    ($name:ident, $make:expr) => {
        mod $name {
            use super::*;

            #[test]
            fn indexes_survive_every_crash_site() {
                for site in CrashSite::ALL {
                    crash_and_recover($make, site);
                }
            }

            #[test]
            fn indexes_survive_graceful_restart() {
                graceful_restart($make);
            }
        }
    };
}

index_crash_suite!(on_si_htm, |_s| si_htm::SiHtm::with_defaults(1 << 20));
index_crash_suite!(on_htm_sgl, |_s| htm_sgl::HtmSgl::with_defaults(1 << 20));
index_crash_suite!(on_p8tm, |_s| p8tm::P8tm::with_defaults(1 << 20));
index_crash_suite!(on_silo, |_s| silo::Silo::with_defaults(1 << 20));
