//! # silo — Silo-style software OCC comparator (Tu et al., SOSP '13)
//!
//! Silo is the software-only optimistic concurrency control the paper
//! compares against on TPC-C ("a software-level optimistic concurrency
//! control for in-memory databases", with record indexing disabled for a
//! fair comparison). This implementation follows Silo's commit protocol at
//! cache-line granularity over the shared simulated memory:
//!
//! * each cache line carries a TID word — `(version << 1) | lock_bit`;
//! * reads use the TID-sandwich: read TID, read data, re-read TID, retry
//!   while locked or changed; the first observed TID per line goes into
//!   the read set;
//! * writes are buffered locally;
//! * commit: lock the write lines in sorted order, validate the read set
//!   (TID unchanged and not locked by others), pick a new TID greater than
//!   everything observed, apply the writes, then store the new TID
//!   (releasing the locks).
//!
//! No epochs/durability (the paper benchmarks raw concurrency control),
//! and no fall-back path: OCC retries until it commits. Silo bypasses the
//! simulated HTM entirely — it is plain software and pays no TMCAM
//! capacity costs, but every read pays the TID protocol.

use crossbeam_utils::Backoff;
use htm_sim::util::{IntMap, IntSet};
use htm_sim::AbortReason;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;
use tm_api::{
    Abort, BackoffPolicy, ContentionManager, Outcome, ThreadStats, TmBackend, TmThread, Tx, TxBody,
    TxKind,
};
use txmem::hooks::{self, AbortCode, Event, InjectPoint};
use txmem::{line_of, Addr, Line, TxMemory};

const LOCK_BIT: u64 = 1;

/// Tunables of the Silo backend.
#[derive(Debug, Clone)]
pub struct SiloConfig {
    /// Cost-model compensation per shared access, in `spin_loop` hints.
    ///
    /// The HTM-based backends route every access through the simulator's
    /// conflict directory, which costs ~100 ns; Silo bypasses the
    /// simulator entirely, so without compensation one Silo access would
    /// be several times cheaper than one HTM access — the opposite of real
    /// hardware, where Silo's *instrumented* reads cost more than HTM's
    /// free ones. The spin restores a uniform per-access baseline, with
    /// Silo's TID protocol as its genuine extra cost (see DESIGN.md).
    /// Set to 0 for the raw-cost ablation.
    pub access_spin: u32,
    /// Randomized exponential backoff between OCC retries.
    pub backoff: BackoffPolicy,
}

impl Default for SiloConfig {
    fn default() -> Self {
        SiloConfig { access_spin: 5, backoff: BackoffPolicy::default() }
    }
}

/// The Silo backend. Cheap to clone.
#[derive(Clone)]
pub struct Silo {
    inner: Arc<Inner>,
}

struct Inner {
    memory: TxMemory,
    /// One TID word per cache line: `(version << 1) | lock`.
    tids: Box<[AtomicU64]>,
    config: SiloConfig,
    /// Per-instance registration counter seeding each thread's contention
    /// manager. Instance-local (not a process-global) so that sharded
    /// deployments running many Silo instances side by side get the same
    /// seed sequence per instance regardless of construction order.
    cm_seq: AtomicU64,
}

impl Inner {
    #[inline]
    fn compensate_access(&self) {
        for _ in 0..self.config.access_spin {
            std::hint::spin_loop();
        }
    }
}

impl Silo {
    /// Build a Silo instance over `memory_words` words of shared memory.
    pub fn new(memory_words: usize) -> Self {
        Self::with_config(memory_words, SiloConfig::default())
    }

    /// Build with explicit tunables.
    pub fn with_config(memory_words: usize, config: SiloConfig) -> Self {
        let memory = TxMemory::new(memory_words);
        let lines = memory.lines();
        let mut tids = Vec::with_capacity(lines);
        tids.resize_with(lines, || AtomicU64::new(0));
        Silo {
            inner: Arc::new(Inner {
                memory,
                tids: tids.into_boxed_slice(),
                config,
                cm_seq: AtomicU64::new(0),
            }),
        }
    }

    /// Alias matching the other backends' constructors.
    pub fn with_defaults(memory_words: usize) -> Self {
        Self::new(memory_words)
    }
}

impl TmBackend for Silo {
    type Thread = SiloThread;

    fn name(&self) -> &'static str {
        "Silo"
    }

    fn register_thread(&self) -> SiloThread {
        let cm = ContentionManager::new(
            self.inner.config.backoff,
            0x5170 ^ self.inner.cm_seq.fetch_add(1, Ordering::Relaxed),
        );
        SiloThread {
            inner: Arc::clone(&self.inner),
            stats: ThreadStats::default(),
            cm,
            injected: None,
            hooked: false,
            last_tid: 0,
            read_set: Vec::new(),
            read_seen: IntSet::default(),
            wbuf: IntMap::default(),
            write_lines: Vec::new(),
        }
    }

    fn memory(&self) -> &TxMemory {
        &self.inner.memory
    }
}

impl std::fmt::Debug for Silo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Silo").field("lines", &self.inner.tids.len()).finish()
    }
}

/// A worker thread of the Silo backend.
pub struct SiloThread {
    inner: Arc<Inner>,
    stats: ThreadStats,
    cm: ContentionManager,
    /// Reason recorded when fault injection aborted the body mid-flight.
    injected: Option<AbortReason>,
    /// `hooks::active()` cached per attempt: gates per-access hook calls.
    hooked: bool,
    /// Last TID this thread committed with (monotonic per thread).
    last_tid: u64,
    read_set: Vec<(Line, u64)>,
    read_seen: IntSet<Line>,
    wbuf: IntMap<Addr, u64>,
    write_lines: Vec<Line>,
}

impl SiloThread {
    /// TID-sandwich read of one word: `(value, observed_tid)`.
    fn read_word(inner: &Inner, addr: Addr) -> (u64, u64) {
        let line = line_of(addr) as usize;
        let backoff = Backoff::new();
        loop {
            let t1 = inner.tids[line].load(Ordering::Acquire);
            if t1 & LOCK_BIT == 0 {
                let v = inner.memory.load_acquire(addr);
                let t2 = inner.tids[line].load(Ordering::Acquire);
                if t1 == t2 {
                    return (v, t1);
                }
            }
            hooks::emit(Event::Poll);
            backoff.snooze();
            if backoff.is_completed() {
                std::thread::yield_now();
            }
        }
    }

    /// Commit protocol. `Err(())` = validation failure (caller retries).
    fn try_commit(&mut self) -> Result<(), ()> {
        // Fault injection treats a forced commit-point abort as a
        // validation failure: the retry loop re-runs the body.
        if self.hooked && hooks::inject(InjectPoint::Commit).is_some() {
            return Err(());
        }
        let inner = &self.inner;
        // Phase 1: lock the write set in global (sorted) order.
        self.write_lines.sort_unstable();
        self.write_lines.dedup();
        let mut locked_prev: Vec<(Line, u64)> = Vec::with_capacity(self.write_lines.len());
        for &line in &self.write_lines {
            let backoff = Backoff::new();
            loop {
                let cur = inner.tids[line as usize].load(Ordering::Acquire);
                if cur & LOCK_BIT == 0
                    && inner.tids[line as usize]
                        .compare_exchange(cur, cur | LOCK_BIT, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                {
                    locked_prev.push((line, cur));
                    break;
                }
                hooks::emit(Event::Poll);
                backoff.snooze();
                if backoff.is_completed() {
                    std::thread::yield_now();
                }
            }
        }
        fence(Ordering::SeqCst);
        // Phase 2: validate the read set.
        let mut ok = true;
        for &(line, t1) in &self.read_set {
            let cur = inner.tids[line as usize].load(Ordering::Acquire);
            if cur >> 1 != t1 >> 1 {
                ok = false;
                break;
            }
            if cur & LOCK_BIT != 0 && !self.write_lines.contains(&line) {
                ok = false;
                break;
            }
        }
        if !ok {
            for (line, prev) in locked_prev {
                inner.tids[line as usize].store(prev, Ordering::Release);
            }
            return Err(());
        }
        // TID assignment: larger than everything observed and than our own
        // previous TID (Silo §3.1, minus epochs).
        let mut new_tid = self.last_tid;
        for &(_, t) in &self.read_set {
            new_tid = new_tid.max(t >> 1);
        }
        for &(_, prev) in &locked_prev {
            new_tid = new_tid.max(prev >> 1);
        }
        new_tid += 1;
        self.last_tid = new_tid;
        // Phase 3: apply buffered writes, then publish the new TID
        // (which also releases the line locks).
        for (&addr, &val) in &self.wbuf {
            inner.memory.store_release(addr, val);
        }
        for &(line, _) in &locked_prev {
            inner.tids[line as usize].store(new_tid << 1, Ordering::Release);
        }
        Ok(())
    }

    fn clear_tx(&mut self) {
        self.read_set.clear();
        self.read_seen.clear();
        self.wbuf.clear();
        self.write_lines.clear();
    }
}

/// Panic safety: Silo's body phase touches no shared state — the per-line
/// locks are taken only inside `try_commit`, which runs no user code and
/// cannot unwind — so an unwinding body strands nothing that peers could
/// wait on. The half-built read/write sets are thread-local and die with
/// the struct; `exec` additionally clears them at the top of every attempt,
/// so even a caller that catches the panic and reuses the thread cannot
/// replay them.
impl Drop for SiloThread {
    fn drop(&mut self) {
        self.clear_tx();
    }
}

impl TmThread for SiloThread {
    fn exec(&mut self, _kind: TxKind, body: TxBody<'_>) -> Outcome {
        self.cm.reset();
        loop {
            self.clear_tx();
            self.injected = None;
            self.hooked = hooks::active();
            hooks::emit(Event::Begin { rot: false });
            let r = {
                let mut tx = SiloTx { thr: self };
                body(&mut tx)
            };
            match r {
                Ok(()) => {
                    if self.try_commit().is_ok() {
                        self.stats.commits += 1;
                        if self.write_lines.is_empty() {
                            self.stats.ro_commits += 1;
                        }
                        hooks::emit(Event::Commit);
                        return Outcome::Committed;
                    }
                    // OCC validation failure: a transactional conflict.
                    self.stats.record_abort(AbortReason::Conflict);
                    hooks::emit(Event::Abort { reason: AbortCode::Conflict });
                    if self.cm.backoff(AbortReason::Conflict) > 0 {
                        self.stats.backoffs += 1;
                    }
                }
                Err(Abort::User) => {
                    self.stats.user_aborts += 1;
                    hooks::emit(Event::Abort { reason: AbortCode::Explicit });
                    return Outcome::UserAborted;
                }
                Err(Abort::Backend) => {
                    // Only fault injection can abort a Silo body (the TID
                    // protocol itself never fails mid-flight): roll back
                    // the local buffers and retry, like any OCC conflict.
                    let reason = self.injected.take().unwrap_or(AbortReason::Conflict);
                    self.stats.record_abort(reason);
                    hooks::emit(Event::Abort { reason: reason.into() });
                    if self.cm.backoff(reason) > 0 {
                        self.stats.backoffs += 1;
                    }
                }
            }
        }
    }

    fn stats(&self) -> &ThreadStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = ThreadStats::default();
    }
}

/// Access handle: buffered writes, TID-sandwich reads.
struct SiloTx<'a> {
    thr: &'a mut SiloThread,
}

impl Tx for SiloTx<'_> {
    fn read(&mut self, addr: Addr) -> Result<u64, Abort> {
        // Fault-injection seam (chaos / tm-check): a forced access abort
        // unwinds to the retry loop like an OCC conflict would. Gated on
        // the flag cached at attempt start so the disarmed fast path
        // never touches the hook statics.
        if self.thr.hooked {
            if let Some(code) = hooks::inject(InjectPoint::Access) {
                self.thr.injected = Some(code.into());
                return Err(Abort::Backend);
            }
        }
        if let Some(v) = self.thr.wbuf.get(&addr) {
            if self.thr.hooked {
                hooks::emit(Event::Read { addr, val: *v, tx: true });
            }
            return Ok(*v);
        }
        self.thr.inner.compensate_access();
        let (v, tid) = SiloThread::read_word(&self.thr.inner, addr);
        let line = line_of(addr);
        if self.thr.read_seen.insert(line) {
            self.thr.read_set.push((line, tid));
        }
        if self.thr.hooked {
            hooks::emit(Event::Read { addr, val: v, tx: true });
        }
        Ok(v)
    }

    fn write(&mut self, addr: Addr, val: u64) -> Result<(), Abort> {
        if self.thr.hooked {
            if let Some(code) = hooks::inject(InjectPoint::Access) {
                self.thr.injected = Some(code.into());
                return Err(Abort::Backend);
            }
        }
        self.thr.wbuf.insert(addr, val);
        self.thr.write_lines.push(line_of(addr));
        if self.thr.hooked {
            hooks::emit(Event::Write { addr, val, tx: true });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_commit_and_read_back() {
        let b = Silo::new(1024);
        let mut t = b.register_thread();
        assert_eq!(
            t.exec(TxKind::Update, &mut |tx| {
                let v = tx.read(0)?;
                tx.write(0, v + 4)
            }),
            Outcome::Committed
        );
        assert_eq!(b.memory().load(0), 4);
        let mut seen = 0;
        t.exec(TxKind::ReadOnly, &mut |tx| {
            seen = tx.read(0)?;
            Ok(())
        });
        assert_eq!(seen, 4);
        assert_eq!(t.stats().commits, 2);
        assert_eq!(t.stats().ro_commits, 1);
    }

    #[test]
    fn user_abort_rolls_back() {
        let b = Silo::new(1024);
        let mut t = b.register_thread();
        let out = t.exec(TxKind::Update, &mut |tx| {
            tx.write(0, 11)?;
            Err(Abort::User)
        });
        assert_eq!(out, Outcome::UserAborted);
        assert_eq!(b.memory().load(0), 0);
        // TID word must not be left locked.
        assert_eq!(b.inner.tids[0].load(Ordering::Relaxed) & LOCK_BIT, 0);
    }

    #[test]
    fn tid_words_advance_on_commit() {
        let b = Silo::new(1024);
        let mut t = b.register_thread();
        t.exec(TxKind::Update, &mut |tx| tx.write(0, 1));
        let t1 = b.inner.tids[0].load(Ordering::Relaxed);
        t.exec(TxKind::Update, &mut |tx| tx.write(0, 2));
        let t2 = b.inner.tids[0].load(Ordering::Relaxed);
        assert!(t2 > t1, "TID must advance: {t1} -> {t2}");
        assert_eq!(t1 & LOCK_BIT, 0);
        assert_eq!(t2 & LOCK_BIT, 0);
    }

    #[test]
    fn validation_rejects_torn_snapshots() {
        // A reader whose first attempt observes line 0 before and line 16
        // after a concurrent two-line commit must fail validation and
        // retry; the attempt that finally commits sees a consistent pair.
        // (OCC tolerates inconsistent reads *during* execution — the
        // guarantee is that such attempts never pass validation.)
        use std::sync::atomic::AtomicBool;
        let b = Silo::new(256);
        let flag = AtomicBool::new(false);
        crossbeam_utils::thread::scope(|s| {
            let b1 = b.clone();
            let flag1 = &flag;
            s.spawn(move |_| {
                let mut t = b1.register_thread();
                let mut first_attempt = true;
                let (mut a, mut bb) = (0, 0);
                t.exec(TxKind::ReadOnly, &mut |tx| {
                    a = tx.read(0)?;
                    if first_attempt {
                        first_attempt = false;
                        // Signal the writer and wait for it to commit.
                        flag1.store(true, Ordering::SeqCst);
                        while b1.memory().load(0) == a {
                            std::thread::yield_now();
                        }
                    }
                    bb = tx.read(16)?;
                    Ok(())
                });
                assert!(t.stats().aborts_conflict > 0, "first attempt must fail validation");
                assert_eq!(a, bb, "committed attempt saw a torn snapshot");
            });
            let b2 = b.clone();
            let flag2 = &flag;
            s.spawn(move |_| {
                let mut t = b2.register_thread();
                while !flag2.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                t.exec(TxKind::Update, &mut |tx| {
                    tx.write(0, 1)?;
                    tx.write(16, 1)
                });
            });
        })
        .unwrap();
    }

    #[test]
    fn write_skew_is_prevented() {
        const A: Addr = 0;
        const B: Addr = 16;
        for _ in 0..50 {
            let b = Silo::new(256);
            b.memory().store(A, 1);
            b.memory().store(B, 1);
            crossbeam_utils::thread::scope(|s| {
                let b1 = b.clone();
                s.spawn(move |_| {
                    let mut t = b1.register_thread();
                    t.exec(TxKind::Update, &mut |tx| {
                        if tx.read(A)? == 1 {
                            tx.write(B, 0)?;
                        }
                        Ok(())
                    });
                });
                let b2 = b.clone();
                s.spawn(move |_| {
                    let mut t = b2.register_thread();
                    t.exec(TxKind::Update, &mut |tx| {
                        if tx.read(B)? == 1 {
                            tx.write(A, 0)?;
                        }
                        Ok(())
                    });
                });
            })
            .unwrap();
            assert!(b.memory().load(A) + b.memory().load(B) >= 1, "write skew slipped through");
        }
    }

    #[test]
    fn concurrent_increments_serialize() {
        let b = Silo::new(256);
        crossbeam_utils::thread::scope(|s| {
            for _ in 0..4 {
                let b = b.clone();
                s.spawn(move |_| {
                    let mut t = b.register_thread();
                    for _ in 0..500 {
                        tm_api::increment(&mut t, 0);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(b.memory().load(0), 2000);
    }

    #[test]
    fn disjoint_lines_commit_concurrently() {
        let b = Silo::new(16 * 64);
        crossbeam_utils::thread::scope(|s| {
            for i in 0..4u64 {
                let b = b.clone();
                s.spawn(move |_| {
                    let mut t = b.register_thread();
                    for _ in 0..200 {
                        tm_api::increment(&mut t, i * 16);
                    }
                    assert_eq!(t.stats().aborts(), 0, "disjoint lines must not conflict");
                });
            }
        })
        .unwrap();
        for i in 0..4u64 {
            assert_eq!(b.memory().load(i * 16), 200);
        }
    }
}
