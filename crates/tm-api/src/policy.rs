//! Retry budgets governing the fall-back to the single global lock, the
//! abort-aware contention manager, and the quiescence watchdog knobs.

use htm_sim::AbortReason;
use std::time::Duration;

/// How many hardware attempts a transaction gets before the backend takes
/// its SGL fall-back path (Algorithm 2, line 16: `while retries-- > 0`).
///
/// Capacity aborts are treated more pessimistically than conflicts: a
/// transaction that overflowed the TMCAM will usually overflow it again, so
/// each capacity abort consumes `capacity_cost` units of the budget — the
/// standard heuristic in HTM runtimes (e.g. the GCC TM runtime and the
/// paper's artifact).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempt budget per transaction.
    pub budget: u32,
    /// Budget consumed by one capacity abort.
    pub capacity_cost: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { budget: 10, capacity_cost: 5 }
    }
}

impl RetryPolicy {
    /// A policy that never falls back (tests / lock-free backends).
    pub fn never_fallback() -> Self {
        RetryPolicy { budget: u32::MAX, capacity_cost: 1 }
    }

    /// Budget units consumed by an abort of the given kind.
    pub fn cost(&self, reason: AbortReason) -> u32 {
        match reason {
            AbortReason::Capacity => self.capacity_cost,
            _ => 1,
        }
    }
}

/// Mutable retry state for one transaction execution.
#[derive(Debug, Clone, Copy)]
pub struct RetryState {
    remaining: i64,
}

impl RetryState {
    pub fn new(policy: &RetryPolicy) -> Self {
        RetryState { remaining: policy.budget as i64 }
    }

    /// Account one abort; returns `true` while hardware retries remain.
    pub fn on_abort(&mut self, policy: &RetryPolicy, reason: AbortReason) -> bool {
        self.remaining -= policy.cost(reason) as i64;
        self.remaining > 0
    }

    /// Remaining budget (tests/metrics).
    pub fn remaining(&self) -> i64 {
        self.remaining
    }
}

/// Shape of the randomized exponential backoff between hardware retries.
///
/// Back-to-back ROT retries under contention re-collide with the same
/// peers (retry convoys); the contention manager spaces them out with a
/// delay drawn uniformly from `[0, ceiling]`, doubling the ceiling on each
/// consecutive abort of one transaction. Capacity aborts get a larger
/// ceiling (`capacity_factor`×): a transaction that overflowed the TMCAM
/// is headed for the SGL anyway, and hammering the hardware path first
/// only disturbs the threads that still fit.
///
/// The **default is disabled** (`none`): the paper's baseline retries
/// immediately, and on capacity-dominated workloads any inserted delay is
/// dead time the retry budget would have resolved anyway. Opt in with
/// [`BackoffPolicy::exponential`] for oversubscribed or fault-injected
/// runs (the chaos soak does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Ceiling after the first abort, in nanoseconds. `0` disables the
    /// contention manager entirely (no delays, no jitter, no RNG draws).
    pub base_ns: u64,
    /// Upper bound the ceiling saturates at, in nanoseconds.
    pub max_ns: u64,
    /// Ceiling multiplier for capacity aborts.
    pub capacity_factor: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy::none()
    }
}

impl BackoffPolicy {
    /// A policy that never delays (the baseline: retry immediately).
    pub fn none() -> Self {
        BackoffPolicy { base_ns: 0, max_ns: 0, capacity_factor: 1 }
    }

    /// The tuned escalating policy: 256 ns doubling to 64 µs, capacity
    /// aborts escalating 4× faster.
    pub fn exponential() -> Self {
        BackoffPolicy { base_ns: 256, max_ns: 64 << 10, capacity_factor: 4 }
    }

    /// Is any delay ever produced?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.base_ns != 0
    }
}

/// Per-thread contention manager: owns the RNG and the escalating ceiling.
///
/// Strictly off the committed fast path: backends call [`backoff`]
/// (ContentionManager::backoff) only after an abort, and [`reset`]
/// (ContentionManager::reset) when a transaction commits or first starts —
/// a transaction that never aborts never touches the clock.
#[derive(Debug, Clone)]
pub struct ContentionManager {
    policy: BackoffPolicy,
    rng: u64,
    ceiling_ns: u64,
    /// Delays executed (surfaced as `ThreadStats::backoffs`).
    pub backoffs: u64,
}

impl ContentionManager {
    pub fn new(policy: BackoffPolicy, seed: u64) -> Self {
        ContentionManager { policy, rng: seed | 1, ceiling_ns: 0, backoffs: 0 }
    }

    /// Start of a fresh transaction (or a commit): contention evidence is
    /// stale, drop the ceiling back to zero.
    #[inline]
    pub fn reset(&mut self) {
        self.ceiling_ns = 0;
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Account one abort and delay the retry. Returns the delay applied
    /// (ns) so callers can feed wait stats.
    pub fn backoff(&mut self, reason: AbortReason) -> u64 {
        let p = self.policy;
        if p.base_ns == 0 {
            return 0;
        }
        let factor = if reason == AbortReason::Capacity { p.capacity_factor.max(1) } else { 1 };
        self.ceiling_ns = match self.ceiling_ns {
            0 => p.base_ns.saturating_mul(factor).min(p.max_ns),
            c => c.saturating_mul(2).saturating_mul(factor).min(p.max_ns),
        };
        let delay = if self.ceiling_ns == 0 { 0 } else { self.next_rand() % (self.ceiling_ns + 1) };
        if delay > 0 {
            self.backoffs += 1;
            busy_delay_ns(delay);
        }
        delay
    }

    /// Anti-convoy jitter before re-attempting after an SGL episode: a
    /// flat random delay in `[0, max_ns]`, independent of the escalation
    /// ceiling, so the drained waiters don't stampede the lock word in
    /// lockstep.
    pub fn admission_jitter(&mut self, max_ns: u64) -> u64 {
        if max_ns == 0 || !self.policy.enabled() {
            return 0;
        }
        let delay = self.next_rand() % (max_ns + 1);
        if delay > 0 {
            self.backoffs += 1;
            busy_delay_ns(delay);
        }
        delay
    }
}

/// Burn roughly `ns` nanoseconds without sleeping (delays here are far
/// below scheduler granularity; `thread::sleep` would overshoot 100×).
fn busy_delay_ns(ns: u64) {
    let start = std::time::Instant::now();
    let limit = Duration::from_nanos(ns);
    while start.elapsed() < limit {
        std::hint::spin_loop();
    }
}

/// Deadlines for the two fragile waits in the SI-HTM/P8TM commit path.
///
/// `None` disables the respective watchdog (the pre-resilience behavior:
/// wait forever). The defaults are deliberately generous — three orders of
/// magnitude above a healthy wait — so a trip means a peer is genuinely
/// stuck (descheduled for a full scheduling quantum, stalled in a
/// debugger, or wedged), not merely slow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchdog {
    /// Per-peer deadline for the pre-commit quiescence (safety) wait.
    pub quiesce: Option<Duration>,
    /// Deadline for the SGL drain (`all_inactive_except`) wait.
    pub drain: Option<Duration>,
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog {
            quiesce: Some(Duration::from_millis(1000)),
            drain: Some(Duration::from_millis(2000)),
        }
    }
}

impl Watchdog {
    /// No deadlines: wait forever (the paper's idealized scheduler).
    pub fn disabled() -> Self {
        Watchdog { quiesce: None, drain: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflicts_cost_one_unit() {
        let p = RetryPolicy { budget: 3, capacity_cost: 2 };
        let mut s = RetryState::new(&p);
        assert!(s.on_abort(&p, AbortReason::Conflict));
        assert!(s.on_abort(&p, AbortReason::Conflict));
        assert!(!s.on_abort(&p, AbortReason::Conflict), "budget exhausted");
    }

    #[test]
    fn capacity_aborts_burn_budget_faster() {
        let p = RetryPolicy { budget: 10, capacity_cost: 5 };
        let mut s = RetryState::new(&p);
        assert!(s.on_abort(&p, AbortReason::Capacity));
        assert!(!s.on_abort(&p, AbortReason::Capacity));
    }

    #[test]
    fn never_fallback_is_effectively_unbounded() {
        let p = RetryPolicy::never_fallback();
        let mut s = RetryState::new(&p);
        for _ in 0..10_000 {
            assert!(s.on_abort(&p, AbortReason::Conflict));
        }
    }

    #[test]
    fn backoff_escalates_jitters_and_resets() {
        let p = BackoffPolicy { base_ns: 100, max_ns: 1600, capacity_factor: 4 };
        let mut cm = ContentionManager::new(p, 42);
        // Ceilings escalate 100 → 200 → 400 … and saturate at max_ns; each
        // delay is uniform under the ceiling, never above it.
        let mut prev_ceiling = 0;
        for _ in 0..8 {
            let d = cm.backoff(AbortReason::Conflict);
            assert!(d <= 1600, "delay {d} above saturation cap");
            assert!(cm.ceiling_ns >= prev_ceiling);
            prev_ceiling = cm.ceiling_ns;
        }
        assert_eq!(cm.ceiling_ns, 1600, "ceiling must saturate at max_ns");
        cm.reset();
        assert_eq!(cm.ceiling_ns, 0, "reset drops the ceiling");
        // Capacity aborts escalate capacity_factor x faster.
        cm.backoff(AbortReason::Capacity);
        assert_eq!(cm.ceiling_ns, 400);
    }

    #[test]
    fn disabled_backoff_is_free() {
        assert_eq!(BackoffPolicy::default(), BackoffPolicy::none(), "default must be the baseline");
        let mut cm = ContentionManager::new(BackoffPolicy::none(), 7);
        for _ in 0..100 {
            assert_eq!(cm.backoff(AbortReason::Capacity), 0);
        }
        assert_eq!(cm.backoffs, 0);
        assert_eq!(cm.admission_jitter(0), 0);
        assert_eq!(cm.admission_jitter(500), 0, "jitter must follow the policy switch");
    }

    #[test]
    fn admission_jitter_bounded() {
        let mut cm = ContentionManager::new(BackoffPolicy::exponential(), 99);
        for _ in 0..100 {
            assert!(cm.admission_jitter(500) <= 500);
        }
    }

    #[test]
    fn watchdog_defaults_are_armed_and_generous() {
        let w = Watchdog::default();
        assert!(w.quiesce.unwrap() >= std::time::Duration::from_millis(100));
        assert!(w.drain.unwrap() >= w.quiesce.unwrap());
        assert_eq!(Watchdog::disabled().quiesce, None);
    }
}
