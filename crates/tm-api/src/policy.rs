//! Retry budgets governing the fall-back to the single global lock.

use htm_sim::AbortReason;

/// How many hardware attempts a transaction gets before the backend takes
/// its SGL fall-back path (Algorithm 2, line 16: `while retries-- > 0`).
///
/// Capacity aborts are treated more pessimistically than conflicts: a
/// transaction that overflowed the TMCAM will usually overflow it again, so
/// each capacity abort consumes `capacity_cost` units of the budget — the
/// standard heuristic in HTM runtimes (e.g. the GCC TM runtime and the
/// paper's artifact).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempt budget per transaction.
    pub budget: u32,
    /// Budget consumed by one capacity abort.
    pub capacity_cost: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { budget: 10, capacity_cost: 5 }
    }
}

impl RetryPolicy {
    /// A policy that never falls back (tests / lock-free backends).
    pub fn never_fallback() -> Self {
        RetryPolicy { budget: u32::MAX, capacity_cost: 1 }
    }

    /// Budget units consumed by an abort of the given kind.
    pub fn cost(&self, reason: AbortReason) -> u32 {
        match reason {
            AbortReason::Capacity => self.capacity_cost,
            _ => 1,
        }
    }
}

/// Mutable retry state for one transaction execution.
#[derive(Debug, Clone, Copy)]
pub struct RetryState {
    remaining: i64,
}

impl RetryState {
    pub fn new(policy: &RetryPolicy) -> Self {
        RetryState { remaining: policy.budget as i64 }
    }

    /// Account one abort; returns `true` while hardware retries remain.
    pub fn on_abort(&mut self, policy: &RetryPolicy, reason: AbortReason) -> bool {
        self.remaining -= policy.cost(reason) as i64;
        self.remaining > 0
    }

    /// Remaining budget (tests/metrics).
    pub fn remaining(&self) -> i64 {
        self.remaining
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflicts_cost_one_unit() {
        let p = RetryPolicy { budget: 3, capacity_cost: 2 };
        let mut s = RetryState::new(&p);
        assert!(s.on_abort(&p, AbortReason::Conflict));
        assert!(s.on_abort(&p, AbortReason::Conflict));
        assert!(!s.on_abort(&p, AbortReason::Conflict), "budget exhausted");
    }

    #[test]
    fn capacity_aborts_burn_budget_faster() {
        let p = RetryPolicy { budget: 10, capacity_cost: 5 };
        let mut s = RetryState::new(&p);
        assert!(s.on_abort(&p, AbortReason::Capacity));
        assert!(!s.on_abort(&p, AbortReason::Capacity));
    }

    #[test]
    fn never_fallback_is_effectively_unbounded() {
        let p = RetryPolicy::never_fallback();
        let mut s = RetryState::new(&p);
        for _ in 0..10_000 {
            assert!(s.on_abort(&p, AbortReason::Conflict));
        }
    }
}
