//! Commit/abort accounting with the paper's abort taxonomy.

use htm_sim::AbortReason;
use std::ops::AddAssign;

/// Per-thread execution statistics.
///
/// The figures of the paper plot, next to throughput, the abort rate
/// discriminated into *transactional* (data conflicts), *non-transactional*
/// (killed by a locked SGL stomping on subscribed transactions) and
/// *capacity* aborts; [`ThreadStats`] keeps exactly those counters, plus
/// bookkeeping useful for the ablation benches.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ThreadStats {
    /// Committed transactions (all paths, including fall-back and RO).
    pub commits: u64,
    /// Of which: read-only fast-path commits.
    pub ro_commits: u64,
    /// Of which: commits executed on the SGL fall-back path.
    pub sgl_commits: u64,
    /// Of which: commits executed on the software-SI fall-back path.
    pub sw_commits: u64,
    /// Transactional aborts (data conflicts).
    pub aborts_conflict: u64,
    /// Non-transactional aborts (SGL-class kills).
    pub aborts_nontx: u64,
    /// Capacity aborts.
    pub aborts_capacity: u64,
    /// Explicit aborts (engine-internal, e.g. validation failures the
    /// backend signals through `tabort.`).
    pub aborts_explicit: u64,
    /// Semantic (application-requested) rollbacks. Not failures.
    pub user_aborts: u64,
    /// Number of quiescence (safety) waits that had to spin at least once.
    pub quiesce_waits: u64,
    /// Thread slots the safety wait had to examine, summed over all
    /// quiescence snapshots. With the active-thread registry this scales
    /// with the number of *running* transactions, not the size of the
    /// machine — the counter exists so tests and benches can verify the
    /// O(active) claim.
    pub quiesce_polled: u64,
    /// SGL acquisitions.
    pub sgl_acquisitions: u64,
    /// Quiescence waits whose per-peer deadline expired: the straggler was
    /// escalated (killed if killable, otherwise the waiter degraded to the
    /// SGL-serialized slow path). Non-zero means some snapshot guarantee
    /// was forfeited to preserve liveness — see DESIGN.md §9.
    pub watchdog_quiesce_trips: u64,
    /// SGL drain waits whose deadline expired (the holder proceeded
    /// serialized without full quiescence of the straggler).
    pub watchdog_drain_trips: u64,
    /// Longest single wait observed at any deadline-protected wait site,
    /// in nanoseconds. Merged with `max`, not summed.
    pub max_wait_ns: u64,
    /// Contention-manager delays executed (abort backoff + SGL admission
    /// jitter). All off the committed fast path.
    pub backoffs: u64,
}

impl ThreadStats {
    /// Record one abort with the hardware-reported reason.
    #[inline]
    pub fn record_abort(&mut self, reason: AbortReason) {
        match reason {
            AbortReason::Conflict => self.aborts_conflict += 1,
            AbortReason::NonTx => self.aborts_nontx += 1,
            AbortReason::Capacity => self.aborts_capacity += 1,
            AbortReason::Explicit => self.aborts_explicit += 1,
        }
    }

    /// Total aborts of all kinds (excluding user rollbacks).
    pub fn aborts(&self) -> u64 {
        self.aborts_conflict + self.aborts_nontx + self.aborts_capacity + self.aborts_explicit
    }

    /// Abort rate as plotted in the figures: aborted attempts over all
    /// attempts, in percent.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.commits + self.aborts();
        if attempts == 0 {
            0.0
        } else {
            self.aborts() as f64 * 100.0 / attempts as f64
        }
    }

    /// Share of all attempts that aborted for `reason`, in percent.
    pub fn abort_share(&self, reason: AbortReason) -> f64 {
        let attempts = self.commits + self.aborts();
        if attempts == 0 {
            return 0.0;
        }
        let n = match reason {
            AbortReason::Conflict => self.aborts_conflict,
            AbortReason::NonTx => self.aborts_nontx,
            AbortReason::Capacity => self.aborts_capacity,
            AbortReason::Explicit => self.aborts_explicit,
        };
        n as f64 * 100.0 / attempts as f64
    }
}

impl AddAssign<&ThreadStats> for ThreadStats {
    fn add_assign(&mut self, rhs: &ThreadStats) {
        self.commits += rhs.commits;
        self.ro_commits += rhs.ro_commits;
        self.sgl_commits += rhs.sgl_commits;
        self.sw_commits += rhs.sw_commits;
        self.aborts_conflict += rhs.aborts_conflict;
        self.aborts_nontx += rhs.aborts_nontx;
        self.aborts_capacity += rhs.aborts_capacity;
        self.aborts_explicit += rhs.aborts_explicit;
        self.user_aborts += rhs.user_aborts;
        self.quiesce_waits += rhs.quiesce_waits;
        self.quiesce_polled += rhs.quiesce_polled;
        self.sgl_acquisitions += rhs.sgl_acquisitions;
        self.watchdog_quiesce_trips += rhs.watchdog_quiesce_trips;
        self.watchdog_drain_trips += rhs.watchdog_drain_trips;
        self.max_wait_ns = self.max_wait_ns.max(rhs.max_wait_ns);
        self.backoffs += rhs.backoffs;
    }
}

/// Cross-shard two-phase-commit accounting (one record per coordinator;
/// sum over executors for the service total). Tracked service-side — the
/// backends never see the protocol, only its per-shard transactions.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TwoPcStats {
    /// Prepare phases entered (one per cross-shard read-write transaction).
    pub prepares: u64,
    /// Transactions whose apply phase unwound; compensating undo restored
    /// every already-applied participant, so nothing partial survived.
    pub aborts: u64,
    /// Apply phases that pinned their remaining participants to the
    /// serialized fall-back path after one participant escalated.
    pub escalations: u64,
    /// Cross-shard read-only transactions (multi-shard `MultiGet`/scan).
    pub ro_multi: u64,
}

impl AddAssign<&TwoPcStats> for TwoPcStats {
    fn add_assign(&mut self, rhs: &TwoPcStats) {
        self.prepares += rhs.prepares;
        self.aborts += rhs.aborts;
        self.escalations += rhs.escalations;
        self.ro_multi += rhs.ro_multi;
    }
}

/// Write-ahead-log and checkpoint accounting (service-side, like
/// [`TwoPcStats`]: the backends never see the log, only the service
/// layer appends to it — strictly after commit, per the DUMBO
/// discipline, so logging can never abort a hardware transaction).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (one per committed update transaction, plus the
    /// 2PC protocol records).
    pub wal_appends: u64,
    /// Bytes appended (framed).
    pub wal_bytes: u64,
    /// Group-commit fsyncs executed.
    pub fsync_batches: u64,
    /// Records those fsyncs made durable (`fsynced_records /
    /// fsync_batches` = mean group-commit batch, the fsync amortization).
    pub fsynced_records: u64,
    /// Checkpoints written (each truncates the covered log).
    pub checkpoints: u64,
    /// Entries captured across all checkpoints.
    pub checkpoint_entries: u64,
    /// Log records replayed by the recovery that produced this
    /// pipeline's backends (0 for a fresh start).
    pub recovery_replayed: u64,
    /// Torn/corrupt tail records dropped by that recovery.
    pub recovery_torn: u64,
    /// Self-check: Sync-mode acks filled before their record was
    /// durable. Must stay 0 — enforced by `--assert-service`.
    pub sync_acks_early: u64,
    /// Requests shed because the WAL halted (simulated power failure):
    /// a write that can no longer be made durable is never acked.
    pub wal_dead_sheds: u64,
    /// Flush attempts repeated after a storage error (each retry rewrites
    /// the batch into a freshly rotated segment — never an fsync retry on
    /// the failed file).
    pub wal_retries: u64,
    /// Degraded shards brought back to `Healthy` by a probe write.
    pub wal_rejoins: u64,
    /// Updates answered `Unavailable` because their shard's log was
    /// degraded (`ReadOnly`/`Failed`). Reads keep being served.
    pub degraded_sheds: u64,
    /// Checkpoint writes that failed (ENOSPC etc.) leaving the previous
    /// checkpoint in place.
    pub checkpoint_failures: u64,
    /// Scrubber passes re-verifying checkpoint + log-tail checksums.
    pub scrub_passes: u64,
    /// Latent corruption the scrubber caught (each triggers an immediate
    /// re-checkpoint from the intact in-memory state).
    pub scrub_corruptions: u64,
}

impl WalStats {
    /// Mean records per fsync — the group-commit amortization factor.
    pub fn mean_group_commit(&self) -> f64 {
        if self.fsync_batches == 0 {
            0.0
        } else {
            self.fsynced_records as f64 / self.fsync_batches as f64
        }
    }
}

impl AddAssign<&WalStats> for WalStats {
    fn add_assign(&mut self, rhs: &WalStats) {
        self.wal_appends += rhs.wal_appends;
        self.wal_bytes += rhs.wal_bytes;
        self.fsync_batches += rhs.fsync_batches;
        self.fsynced_records += rhs.fsynced_records;
        self.checkpoints += rhs.checkpoints;
        self.checkpoint_entries += rhs.checkpoint_entries;
        self.recovery_replayed += rhs.recovery_replayed;
        self.recovery_torn += rhs.recovery_torn;
        self.sync_acks_early += rhs.sync_acks_early;
        self.wal_dead_sheds += rhs.wal_dead_sheds;
        self.wal_retries += rhs.wal_retries;
        self.wal_rejoins += rhs.wal_rejoins;
        self.degraded_sheds += rhs.degraded_sheds;
        self.checkpoint_failures += rhs.checkpoint_failures;
        self.scrub_passes += rhs.scrub_passes;
        self.scrub_corruptions += rhs.scrub_corruptions;
    }
}

/// Sum per-thread statistics into a run total.
pub fn aggregate<'a>(parts: impl IntoIterator<Item = &'a ThreadStats>) -> ThreadStats {
    let mut total = ThreadStats::default();
    for p in parts {
        total += p;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_recording_maps_reasons() {
        let mut s = ThreadStats::default();
        s.record_abort(AbortReason::Conflict);
        s.record_abort(AbortReason::Conflict);
        s.record_abort(AbortReason::NonTx);
        s.record_abort(AbortReason::Capacity);
        s.record_abort(AbortReason::Explicit);
        assert_eq!(s.aborts_conflict, 2);
        assert_eq!(s.aborts_nontx, 1);
        assert_eq!(s.aborts_capacity, 1);
        assert_eq!(s.aborts_explicit, 1);
        assert_eq!(s.aborts(), 5);
    }

    #[test]
    fn abort_rate_is_share_of_attempts() {
        let mut s = ThreadStats::default();
        assert_eq!(s.abort_rate(), 0.0);
        s.commits = 75;
        s.aborts_conflict = 20;
        s.aborts_capacity = 5;
        assert!((s.abort_rate() - 25.0).abs() < 1e-9);
        assert!((s.abort_share(AbortReason::Conflict) - 20.0).abs() < 1e-9);
        assert!((s.abort_share(AbortReason::Capacity) - 5.0).abs() < 1e-9);
        assert_eq!(s.abort_share(AbortReason::NonTx), 0.0);
    }

    #[test]
    fn aggregation_sums_all_fields() {
        let a = ThreadStats {
            commits: 1,
            quiesce_waits: 3,
            max_wait_ns: 500,
            watchdog_quiesce_trips: 1,
            ..ThreadStats::default()
        };
        let b = ThreadStats {
            commits: 2,
            sgl_acquisitions: 1,
            quiesce_polled: 7,
            max_wait_ns: 200,
            backoffs: 4,
            ..ThreadStats::default()
        };
        let t = aggregate([&a, &b]);
        assert_eq!(t.commits, 3);
        assert_eq!(t.quiesce_waits, 3);
        assert_eq!(t.quiesce_polled, 7);
        assert_eq!(t.sgl_acquisitions, 1);
        assert_eq!(t.watchdog_quiesce_trips, 1);
        assert_eq!(t.max_wait_ns, 500, "max_wait_ns merges with max, not sum");
        assert_eq!(t.backoffs, 4);
    }
}
