//! Log-bucketed (HDR-style) latency histogram.
//!
//! Service-tier latency distributions span five orders of magnitude
//! (sub-microsecond cache hits to multi-millisecond SGL convoys), so a
//! linear histogram is either too coarse or too large. [`LatencyHist`]
//! uses the standard HDR compromise: per power-of-two octave, a fixed
//! number of linear sub-buckets, giving a bounded relative error
//! (≤ 1/32 ≈ 3.2 %) over the full `u64` nanosecond range in a few KiB.
//!
//! Recording is a handful of integer ops on thread-local state — no
//! atomics, no allocation after construction. Per-thread histograms are
//! [`merge`](LatencyHist::merge)d into a run total, mirroring how
//! [`ThreadStats`](crate::ThreadStats) aggregates counters.

use std::time::Duration;

/// log2 of the sub-buckets per octave. 5 ⇒ 32 sub-buckets ⇒ ≤3.2 % error.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
/// Values below `SUB` get exact unit buckets; above, 32 per octave.
const BUCKETS: usize = SUB as usize + (64 - SUB_BITS as usize) * SUB as usize;

/// A latency histogram over nanosecond values.
#[derive(Clone)]
pub struct LatencyHist {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn bucket_of(ns: u64) -> usize {
    if ns < SUB {
        return ns as usize;
    }
    let msb = 63 - ns.leading_zeros(); // ≥ SUB_BITS here
    let octave = (msb - SUB_BITS) as usize;
    let sub = ((ns >> (msb - SUB_BITS)) - SUB) as usize;
    SUB as usize + octave * SUB as usize + sub
}

/// Inclusive upper bound of a bucket (percentiles report this bound, so
/// they are conservative: the true quantile is ≤ the reported value).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i < SUB as usize {
        return i as u64;
    }
    let octave = ((i - SUB as usize) / SUB as usize) as u32;
    let sub = ((i - SUB as usize) % SUB as usize) as u64;
    ((SUB + sub + 1) << octave) - 1
}

impl LatencyHist {
    pub fn new() -> Self {
        LatencyHist { counts: Box::new([0; BUCKETS]), count: 0, sum_ns: 0, max_ns: 0 }
    }

    /// Record one sample.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Record one sample given as a [`Duration`].
    #[inline]
    pub fn record(&mut self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Fold another histogram into this one (per-thread → run total).
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact maximum recorded value (not bucket-quantized).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Quantile `q` in `[0, 1]`, in nanoseconds (0 when empty). Reported
    /// as the containing bucket's upper bound: ≤3.2 % above the true
    /// value, never below it.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // The exact max is a tighter bound for the last bucket.
                return bucket_upper(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// The standard report tuple: (p50, p90, p99, p999) in nanoseconds.
    pub fn percentiles(&self) -> (u64, u64, u64, u64) {
        (self.quantile(0.50), self.quantile(0.90), self.quantile(0.99), self.quantile(0.999))
    }
}

impl std::fmt::Debug for LatencyHist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (p50, p90, p99, p999) = self.percentiles();
        f.debug_struct("LatencyHist")
            .field("count", &self.count)
            .field("mean_ns", &self.mean_ns())
            .field("p50_ns", &p50)
            .field("p90_ns", &p90)
            .field("p99_ns", &p99)
            .field("p999_ns", &p999)
            .field("max_ns", &self.max_ns)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHist::new();
        for ns in 0..SUB {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), SUB);
        assert_eq!(h.quantile(0.0), 0);
        // Every unit bucket below SUB is exact.
        assert_eq!(h.quantile(1.0), SUB - 1);
        assert_eq!(h.max_ns(), SUB - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LatencyHist::new();
        for i in 0..20_000u64 {
            // Geometric-ish sweep across many octaves.
            h.record_ns(37 + i * 977);
        }
        for &q in &[0.5, 0.9, 0.99, 0.999] {
            let reported = h.quantile(q) as f64;
            // Recompute the true quantile from the raw formula.
            let rank = ((q * 20_000f64).ceil() as u64).max(1);
            let true_v = (37 + (rank - 1) * 977) as f64;
            assert!(
                reported >= true_v * 0.999 && reported <= true_v * (1.0 + 1.0 / 32.0) + 1.0,
                "q={q}: reported {reported} vs true {true_v}"
            );
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        let mut whole = LatencyHist::new();
        for i in 0..1000u64 {
            let v = (i * i) % 100_000;
            if i % 2 == 0 { &mut a } else { &mut b }.record_ns(v);
            whole.record_ns(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.mean_ns(), whole.mean_ns());
        assert_eq!(a.percentiles(), whole.percentiles());
        assert_eq!(a.max_ns(), whole.max_ns());
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHist::new();
        assert_eq!(h.percentiles(), (0, 0, 0, 0));
        assert_eq!(h.mean_ns(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn quantiles_are_monotone_and_bounded_by_max() {
        let mut h = LatencyHist::new();
        let mut x = 1u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            h.record_ns(x >> 40);
        }
        let (p50, p90, p99, p999) = h.percentiles();
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
        assert!(p999 <= h.max_ns());
    }

    #[test]
    fn duration_recording_saturates() {
        let mut h = LatencyHist::new();
        h.record(Duration::from_micros(3));
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0) >= 3_000 && h.quantile(1.0) <= 3_100);
    }
}
