//! Backend-agnostic transactional-memory API.
//!
//! The paper evaluates four concurrency-control mechanisms over the same
//! workloads: SI-HTM (the contribution), plain HTM with an SGL fall-back,
//! P8TM and Silo. This crate defines the surface they all implement so the
//! hash-map and TPC-C drivers are written once:
//!
//! * [`TmBackend`] — a constructed concurrency-control instance owning the
//!   shared [`txmem::TxMemory`];
//! * [`TmThread`] — a registered worker thread that executes transactions
//!   via [`TmThread::exec`], retrying and falling back per the backend's
//!   policy and recording the abort taxonomy of the paper's figures;
//! * [`Tx`] — the access handle passed to a transaction body
//!   (`read`/`write`/`promote_read`);
//! * [`ThreadStats`] — commits plus aborts discriminated *transactional* /
//!   *non-transactional* / *capacity*, exactly the breakdown plotted in
//!   Figures 6–10.
//!
//! Transaction bodies are closures returning `Result<(), Abort>`; backend
//! aborts must be propagated with `?` so the engine can clean up and retry.
//! A body may also request a semantic rollback ([`Abort::User`]), which is
//! not retried (used by TPC-C's 1 % rolled-back new-orders).

pub mod hist;
pub mod policy;
pub mod stats;

pub use hist::LatencyHist;
pub use policy::{BackoffPolicy, ContentionManager, RetryPolicy, Watchdog};
pub use stats::{ThreadStats, TwoPcStats, WalStats};

pub use htm_sim::AbortReason;
use txmem::{Addr, TxMemory};

/// Why a transaction body stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Abort {
    /// The concurrency-control mechanism aborted the transaction; the
    /// engine retries (or falls back) according to its policy.
    Backend,
    /// The application logic requests a rollback (e.g. TPC-C invalid item).
    /// Not retried.
    User,
}

/// Result of [`TmThread::exec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The body committed (possibly after retries / on the fall-back path).
    Committed,
    /// The body requested a user abort; its effects were rolled back.
    UserAborted,
}

/// Is the transaction declared read-only?
///
/// SI-HTM exploits this declaration for its read-only fast path (§3.3);
/// the declaration is the programmer's/compiler's responsibility, exactly
/// as in the paper. Declaring an updating transaction `ReadOnly` is a
/// correctness bug in the *application* (backends may panic on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxKind {
    ReadOnly,
    Update,
}

/// Access handle passed to transaction bodies.
pub trait Tx {
    /// Transactional read of one 64-bit word.
    fn read(&mut self, addr: Addr) -> Result<u64, Abort>;

    /// Transactional write of one 64-bit word.
    fn write(&mut self, addr: Addr, val: u64) -> Result<(), Abort>;

    /// Read promotion (§2.1): read the word *and* insert it into the write
    /// set, so that SI's write-write conflict detection guards it — the
    /// standard fix for write-skew anomalies. The default implementation
    /// re-writes the value just read.
    fn promote_read(&mut self, addr: Addr) -> Result<u64, Abort> {
        let v = self.read(addr)?;
        self.write(addr, v)?;
        Ok(v)
    }
}

/// A transaction body.
pub type TxBody<'a> = &'a mut dyn FnMut(&mut dyn Tx) -> Result<(), Abort>;

/// A worker thread registered with a backend.
pub trait TmThread: Send {
    /// Execute one transaction to completion: run `body`, retrying on
    /// backend aborts and taking the backend's fall-back path when the
    /// retry budget is exhausted. Statistics are recorded on `self`.
    fn exec(&mut self, kind: TxKind, body: TxBody<'_>) -> Outcome;

    /// Statistics accumulated so far.
    fn stats(&self) -> &ThreadStats;

    /// Drain the statistics (used between warm-up and measurement).
    fn reset_stats(&mut self);

    /// Execute one update transaction directly on the backend's serialized
    /// fall-back path, skipping the optimistic attempts entirely.
    ///
    /// Used by cross-shard two-phase commit: once one participant shard has
    /// escalated to its single-global-lock path, running the remaining
    /// participants optimistically only risks further aborts mid-protocol,
    /// so the coordinator pins them all to the serialized path. Backends
    /// with an SGL (SI-HTM, HTM+SGL, P8TM) override this to acquire the
    /// lock immediately; software backends with no lock path (Silo) fall
    /// back to a normal update execution, which is already abort-free from
    /// the caller's perspective ([`TmThread::exec`] retries internally).
    fn exec_escalated(&mut self, body: TxBody<'_>) -> Outcome {
        self.exec(TxKind::Update, body)
    }
}

/// A constructed concurrency-control instance.
pub trait TmBackend: Send + Sync + 'static {
    type Thread: TmThread;

    /// Human-readable name used in reports ("HTM", "SI-HTM", "P8TM", "Silo").
    fn name(&self) -> &'static str;

    /// Register a worker thread. Call once per OS thread.
    fn register_thread(&self) -> Self::Thread;

    /// The shared memory (for non-transactional population/validation).
    fn memory(&self) -> &TxMemory;
}

/// Convenience: run a read-modify-write increment, the canonical smoke-test
/// transaction.
pub fn increment<T: TmThread + ?Sized>(thread: &mut T, addr: Addr) -> Outcome {
    thread.exec(TxKind::Update, &mut |tx| {
        let v = tx.read(addr)?;
        tx.write(addr, v + 1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NopTx;
    impl Tx for NopTx {
        fn read(&mut self, _addr: Addr) -> Result<u64, Abort> {
            Ok(7)
        }
        fn write(&mut self, _addr: Addr, _val: u64) -> Result<(), Abort> {
            Ok(())
        }
    }

    #[test]
    fn promote_read_default_rewrites_value() {
        let mut tx = NopTx;
        assert_eq!(tx.promote_read(0), Ok(7));
    }

    #[test]
    fn abort_variants_distinguish_retry_semantics() {
        assert_ne!(Abort::Backend, Abort::User);
    }
}
