//! Micro-costs of the P8-HTM simulator: transaction begin/commit, tracked
//! vs untracked reads, writes, suspend/resume and the non-transactional
//! paths. These are the primitive costs every figure is built from.

use criterion::{criterion_group, criterion_main, Criterion};
use htm_sim::{Htm, HtmConfig, NonTxClass, TxMode};
use std::hint::black_box;

fn machine() -> std::sync::Arc<Htm> {
    Htm::new(HtmConfig::default(), 16 * 1024)
}

fn bench_tx_lifecycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("lifecycle");
    g.sample_size(30);

    let htm = machine();
    let mut t = htm.register_thread();
    g.bench_function("empty_htm_tx", |b| {
        b.iter(|| {
            t.begin(TxMode::Htm);
            t.commit().unwrap();
        })
    });
    g.bench_function("empty_rot_tx", |b| {
        b.iter(|| {
            t.begin(TxMode::Rot);
            t.commit().unwrap();
        })
    });
    g.bench_function("suspend_resume", |b| {
        b.iter(|| {
            t.begin(TxMode::Rot);
            t.suspend();
            t.resume().unwrap();
            t.commit().unwrap();
        })
    });
    g.finish();
}

fn bench_reads(c: &mut Criterion) {
    let mut g = c.benchmark_group("reads_64_lines");
    g.sample_size(30);

    let htm = machine();
    let mut t = htm.register_thread();
    g.bench_function("htm_tracked", |b| {
        b.iter(|| {
            t.begin(TxMode::Htm);
            for i in 0..64u64 {
                black_box(t.read(i * 16).unwrap());
            }
            t.commit().unwrap();
        })
    });
    g.bench_function("rot_untracked", |b| {
        b.iter(|| {
            t.begin(TxMode::Rot);
            for i in 0..64u64 {
                black_box(t.read(i * 16).unwrap());
            }
            t.commit().unwrap();
        })
    });
    g.bench_function("non_transactional", |b| {
        b.iter(|| {
            for i in 0..64u64 {
                black_box(t.read_notx(i * 16, NonTxClass::Data));
            }
        })
    });
    g.finish();
}

fn bench_writes(c: &mut Criterion) {
    let mut g = c.benchmark_group("writes_32_lines");
    g.sample_size(30);

    let htm = machine();
    let mut t = htm.register_thread();
    g.bench_function("rot_buffered", |b| {
        b.iter(|| {
            t.begin(TxMode::Rot);
            for i in 0..32u64 {
                t.write(i * 16, i).unwrap();
            }
            t.commit().unwrap();
        })
    });
    g.bench_function("non_transactional", |b| {
        b.iter(|| {
            for i in 0..32u64 {
                t.write_notx(i * 16, i, NonTxClass::Sgl);
            }
        })
    });
    g.finish();
}

fn bench_capacity_abort(c: &mut Criterion) {
    let mut g = c.benchmark_group("capacity");
    g.sample_size(30);

    // The cost of running into the TMCAM wall (65 tracked lines on a
    // 64-line TMCAM) and tearing the transaction down.
    let htm = machine();
    let mut t = htm.register_thread();
    g.bench_function("htm_overflow_abort", |b| {
        b.iter(|| {
            t.begin(TxMode::Htm);
            let mut failed = false;
            for i in 0..65u64 {
                if t.read(i * 16).is_err() {
                    failed = true;
                    break;
                }
            }
            assert!(failed);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tx_lifecycle, bench_reads, bench_writes, bench_capacity_abort);
criterion_main!(benches);
