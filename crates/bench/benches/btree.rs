//! B+-tree index workload across backends: point lookups, range scans
//! (leaf-chain walks — the unbounded-read pattern of IMDB indexes), and
//! the mixed worker.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;
use tm_api::{TmBackend, TmThread, TxKind};
use txmem::LineAlloc;
use workloads::btree::{memory_words, BTreeWorker, TxBTree};

const KEYS: u64 = 20_000;

fn build<B: TmBackend>(b: &B) -> (TxBTree, Arc<LineAlloc>) {
    let alloc = Arc::new(LineAlloc::new(0, b.memory().len() as u64));
    let tree = TxBTree::build(b.memory(), &alloc, 1..=KEYS);
    (tree, alloc)
}

fn bench_point_lookup(c: &mut Criterion) {
    let words = memory_words(KEYS * 2);
    let mut g = c.benchmark_group("btree_lookup");
    g.sample_size(20);
    g.measurement_time(Duration::from_millis(1500));

    fn drive<B: TmBackend>(
        g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
        b: &B,
    ) {
        let (tree, _alloc) = build(b);
        let mut t = b.register_thread();
        let mut k = 0;
        g.bench_function(b.name(), |bench| {
            bench.iter(|| {
                k = k % KEYS + 1;
                t.exec(TxKind::ReadOnly, &mut |tx| {
                    tree.lookup(tx, k)?;
                    Ok(())
                });
            })
        });
    }

    drive(&mut g, &si_htm::SiHtm::with_defaults(words));
    drive(&mut g, &htm_sgl::HtmSgl::with_defaults(words));
    drive(&mut g, &p8tm::P8tm::with_defaults(words));
    drive(&mut g, &silo::Silo::new(words));
    g.finish();
}

fn bench_range_scan(c: &mut Criterion) {
    // 500-entry scans: ~70 leaves ≈ 140 cache lines — beyond the TMCAM,
    // so plain HTM must fall back while SI-HTM reads for free.
    let words = memory_words(KEYS * 2);
    let mut g = c.benchmark_group("btree_range_500");
    g.sample_size(20);
    g.measurement_time(Duration::from_millis(1500));

    fn drive<B: TmBackend>(
        g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
        b: &B,
    ) {
        let (tree, _alloc) = build(b);
        let mut t = b.register_thread();
        let mut from = 0;
        g.bench_function(b.name(), |bench| {
            bench.iter(|| {
                from = from % (KEYS - 600) + 1;
                let mut got = (0, 0);
                t.exec(TxKind::ReadOnly, &mut |tx| {
                    got = tree.range(tx, from, 500)?;
                    Ok(())
                });
                assert_eq!(got.0, 500);
            })
        });
    }

    drive(&mut g, &si_htm::SiHtm::with_defaults(words));
    drive(&mut g, &htm_sgl::HtmSgl::with_defaults(words));
    drive(&mut g, &p8tm::P8tm::with_defaults(words));
    drive(&mut g, &silo::Silo::new(words));
    g.finish();
}

fn bench_mixed_worker(c: &mut Criterion) {
    // 70% lookups / 10% scans / 20% insert-remove, single thread.
    let words = memory_words(KEYS * 2) + 16 * 100_000;
    let mut g = c.benchmark_group("btree_mixed");
    g.sample_size(20);
    g.measurement_time(Duration::from_millis(1500));

    fn drive<B: TmBackend>(
        g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
        b: &B,
    ) {
        let (tree, alloc) = build(b);
        let mut t = b.register_thread();
        let mut w = BTreeWorker::new(tree, Arc::clone(&alloc), KEYS, 0.7, 0.1, 0, 1);
        g.bench_function(b.name(), |bench| bench.iter(|| w.run_op(&mut t)));
    }

    drive(&mut g, &si_htm::SiHtm::with_defaults(words));
    drive(&mut g, &htm_sgl::HtmSgl::with_defaults(words));
    drive(&mut g, &p8tm::P8tm::with_defaults(words));
    drive(&mut g, &silo::Silo::new(words));
    g.finish();
}

criterion_group!(benches, bench_point_lookup, bench_range_scan, bench_mixed_worker);
criterion_main!(benches);
