//! Ablations of SI-HTM's design choices (DESIGN.md §5): quiescence,
//! read-only fast path, the future-work killing alternative, ROT read
//! tracking (paper footnote 1), TMCAM size, and the simulator's cost-model
//! compensation. Two persistent worker threads drive a mixed bank workload
//! (80 % transfers, 20 % full-sweep audits) so concurrency-dependent costs
//! (the safety wait above all) are actually exercised.

use criterion::{criterion_group, criterion_main, Criterion};
use htm_sim::HtmConfig;
use si_htm::{SiHtm, SiHtmConfig};
use std::sync::mpsc;
use std::time::{Duration, Instant};
use tm_api::{TmBackend, TmThread, TxKind};
use workloads::bank::Bank;

const ACCOUNTS: u64 = 64;

/// Two persistent worker threads executing rounds of operations on
/// command. Persistent because hardware-thread registrations are bounded
/// by the machine topology — one pair serves every Criterion sample.
struct Duo {
    cmds: Vec<mpsc::Sender<u64>>,
    done: mpsc::Receiver<()>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Duo {
    fn new(backend: SiHtm, bank: Bank) -> Duo {
        let (done_tx, done) = mpsc::channel();
        let mut cmds = Vec::new();
        let mut handles = Vec::new();
        for worker in 0..2u64 {
            let (cmd_tx, cmd_rx) = mpsc::channel::<u64>();
            cmds.push(cmd_tx);
            let done_tx = done_tx.clone();
            let backend = backend.clone();
            handles.push(std::thread::spawn(move || {
                let mut t = backend.register_thread();
                let mut n = worker;
                while let Ok(iters) = cmd_rx.recv() {
                    if iters == 0 {
                        break;
                    }
                    for _ in 0..iters {
                        n = n.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        if n % 5 == 0 {
                            t.exec(TxKind::ReadOnly, &mut |tx| {
                                bank.audit(tx)?;
                                Ok(())
                            });
                        } else {
                            let from = n % ACCOUNTS;
                            let to = (n >> 8) % ACCOUNTS;
                            if from != to {
                                t.exec(TxKind::Update, &mut |tx| {
                                    bank.transfer(tx, from, to, 1)?;
                                    Ok(())
                                });
                            }
                        }
                    }
                    done_tx.send(()).unwrap();
                }
            }));
        }
        Duo { cmds, done, handles }
    }

    fn run(&self, iters: u64) -> Duration {
        let t0 = Instant::now();
        for c in &self.cmds {
            c.send(iters).unwrap();
        }
        for _ in 0..self.cmds.len() {
            self.done.recv().unwrap();
        }
        t0.elapsed()
    }
}

impl Drop for Duo {
    fn drop(&mut self) {
        for c in &self.cmds {
            let _ = c.send(0);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn variant(
    group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    name: &str,
    htm_config: HtmConfig,
    si_config: SiHtmConfig,
) {
    let backend = SiHtm::new(htm_config, Bank::memory_words(ACCOUNTS), si_config);
    let bank = Bank::build(backend.memory(), 0, ACCOUNTS, 1_000_000);
    let duo = Duo::new(backend, bank);
    group.bench_function(name, |b| b.iter_custom(|iters| duo.run(iters)));
}

fn bench_si_htm_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("si_htm_ablation");
    g.sample_size(15);
    g.measurement_time(Duration::from_millis(1500));
    g.warm_up_time(Duration::from_millis(300));

    let base_htm = HtmConfig::default;
    let base_si = SiHtmConfig::default;

    variant(&mut g, "default", base_htm(), base_si());
    variant(
        &mut g,
        "no_quiescence_UNSAFE",
        base_htm(),
        SiHtmConfig { quiescence: false, ..base_si() },
    );
    variant(
        &mut g,
        "no_ro_fast_path",
        base_htm(),
        SiHtmConfig { ro_fast_path: false, ..base_si() },
    );
    variant(
        &mut g,
        "killing_alternative",
        base_htm(),
        SiHtmConfig { kill_after: Some(500), ..base_si() },
    );
    variant(
        &mut g,
        "rot_read_tracking_5pct",
        HtmConfig { rot_read_tracking: 0.05, ..base_htm() },
        base_si(),
    );
    variant(&mut g, "tmcam_16_lines", HtmConfig { tmcam_lines: 16, ..base_htm() }, base_si());
    variant(&mut g, "tmcam_256_lines", HtmConfig { tmcam_lines: 256, ..base_htm() }, base_si());
    variant(
        &mut g,
        "raw_cost_model",
        HtmConfig { untracked_read_spin: 0, ..base_htm() },
        base_si(),
    );
    g.finish();
}

fn bench_retry_budgets(c: &mut Criterion) {
    // SGL retry-budget sweep on a capacity-hostile workload: updates that
    // write 40 lines on a 64-line TMCAM (fits alone, conflicts co-located).
    let mut g = c.benchmark_group("retry_budget");
    g.sample_size(15);
    g.measurement_time(Duration::from_millis(1500));
    g.warm_up_time(Duration::from_millis(300));

    for budget in [2u32, 10, 40] {
        let si = SiHtmConfig {
            retry: tm_api::RetryPolicy { budget, capacity_cost: budget.max(2) / 2 },
            ..SiHtmConfig::default()
        };
        let backend = SiHtm::new(HtmConfig::default(), 16 * 1024, si);
        let mut t = backend.register_thread();
        g.bench_function(format!("budget_{budget}"), |b| {
            b.iter(|| {
                t.exec(TxKind::Update, &mut |tx| {
                    for i in 0..40u64 {
                        let v = tx.read(i * 16)?;
                        tx.write(i * 16, v + 1)?;
                    }
                    Ok(())
                });
            })
        });
    }
    g.finish();
}

fn bench_lvdir(c: &mut Criterion) {
    // POWER9 LVDIR extension: large HTM read sets with and without it.
    let mut g = c.benchmark_group("lvdir_htm_reads_200_lines");
    g.sample_size(15);
    g.measurement_time(Duration::from_millis(1500));

    for (name, cfg) in [("power8", HtmConfig::default()), ("power9_lvdir", HtmConfig::power9())] {
        let backend = htm_sgl::HtmSgl::new(cfg, 16 * 4096, htm_sgl::HtmSglConfig::default());
        let mut t = backend.register_thread();
        g.bench_function(name, |b| {
            b.iter(|| {
                t.exec(TxKind::Update, &mut |tx| {
                    let mut sum = 0;
                    for i in 0..200u64 {
                        sum += tx.read(i * 16)?;
                    }
                    tx.write(0, sum)
                });
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_si_htm_ablations, bench_retry_budgets, bench_lvdir);
criterion_main!(benches);
