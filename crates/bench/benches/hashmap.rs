//! Per-operation costs of the §4.1 hash-map micro-benchmark, per backend
//! and per footprint regime (the single-thread cross-sections of Figures
//! 6–8; the full thread sweeps live in the `figures` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use tm_api::{TmBackend, TmThread, TxKind};
use workloads::hashmap::{HashMapConfig, TxHashMap};

fn lookup_op<B: TmBackend>(backend: &B, thread: &mut B::Thread, map: TxHashMap, key: u64) {
    let _ = backend;
    thread.exec(TxKind::ReadOnly, &mut |tx| {
        map.lookup(tx, key)?;
        Ok(())
    });
}

fn bench_lookup(c: &mut Criterion) {
    for (regime, chain) in [("large", 200u64), ("small", 50u64)] {
        let cfg = HashMapConfig { buckets: 64, chain, ro_fraction: 1.0 };
        let words = cfg.memory_words(1);
        let mut g = c.benchmark_group(format!("lookup_{regime}"));
        g.sample_size(30);

        {
            let b = si_htm::SiHtm::with_defaults(words);
            let (map, _a) = TxHashMap::build(b.memory(), &cfg);
            let mut t = b.register_thread();
            let mut k = 0;
            g.bench_with_input(BenchmarkId::new("SI-HTM", chain), &chain, |bench, _| {
                bench.iter(|| {
                    k = k % cfg.initial_keys() + 1;
                    lookup_op(&b, &mut t, map, k);
                })
            });
        }
        {
            let b = htm_sgl::HtmSgl::with_defaults(words);
            let (map, _a) = TxHashMap::build(b.memory(), &cfg);
            let mut t = b.register_thread();
            let mut k = 0;
            g.bench_with_input(BenchmarkId::new("HTM", chain), &chain, |bench, _| {
                bench.iter(|| {
                    k = k % cfg.initial_keys() + 1;
                    lookup_op(&b, &mut t, map, k);
                })
            });
        }
        {
            let b = p8tm::P8tm::with_defaults(words);
            let (map, _a) = TxHashMap::build(b.memory(), &cfg);
            let mut t = b.register_thread();
            let mut k = 0;
            g.bench_with_input(BenchmarkId::new("P8TM", chain), &chain, |bench, _| {
                bench.iter(|| {
                    k = k % cfg.initial_keys() + 1;
                    lookup_op(&b, &mut t, map, k);
                })
            });
        }
        {
            let b = silo::Silo::new(words);
            let (map, _a) = TxHashMap::build(b.memory(), &cfg);
            let mut t = b.register_thread();
            let mut k = 0;
            g.bench_with_input(BenchmarkId::new("Silo", chain), &chain, |bench, _| {
                bench.iter(|| {
                    k = k % cfg.initial_keys() + 1;
                    lookup_op(&b, &mut t, map, k);
                })
            });
        }
        g.finish();
    }
}

fn bench_update_cycle(c: &mut Criterion) {
    // One insert + one remove of a fresh key (the update mix of §4.1),
    // against the large-footprint map.
    let cfg = HashMapConfig { buckets: 64, chain: 200, ro_fraction: 0.0 };
    let words = cfg.memory_words(1);
    let mut g = c.benchmark_group("insert_remove_large");
    g.sample_size(20);

    fn cycle<B: TmBackend>(
        g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
        b: &B,
        cfg: &HashMapConfig,
    ) {
        let (map, alloc) = TxHashMap::build(b.memory(), cfg);
        let mut t = b.register_thread();
        let node = alloc.alloc_lines(1);
        let mut key = cfg.initial_keys();
        let alloc = Arc::clone(&alloc);
        let _ = &alloc;
        g.bench_function(b.name(), |bench| {
            bench.iter(|| {
                key += 1;
                t.exec(TxKind::Update, &mut |tx| {
                    map.insert(tx, key, key, node)?;
                    Ok(())
                });
                t.exec(TxKind::Update, &mut |tx| {
                    map.remove(tx, key)?;
                    Ok(())
                });
            })
        });
    }

    cycle(&mut g, &si_htm::SiHtm::with_defaults(words), &cfg);
    cycle(&mut g, &htm_sgl::HtmSgl::with_defaults(words), &cfg);
    cycle(&mut g, &p8tm::P8tm::with_defaults(words), &cfg);
    cycle(&mut g, &silo::Silo::new(words), &cfg);
    g.finish();
}

criterion_group!(benches, bench_lookup, bench_update_cycle);
criterion_main!(benches);
