//! Per-transaction costs of TPC-C on each backend (the single-thread
//! cross-sections of Figures 9–10; full sweeps live in the `figures`
//! binary).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use tm_api::{TmBackend, TmThread, TxKind};
use tpcc::{txns, TpccConfig, TpccLayout, TpccWorker, TxMix};

fn small_layout(mix: TxMix) -> Arc<TpccLayout> {
    // A reduced scale keeps population cheap while the transaction shapes
    // (footprints per type) stay spec-like.
    let mut cfg = TpccConfig::paper(1, mix);
    cfg.items = 10_000;
    cfg.customers_per_d = 300;
    cfg.initial_orders = 300;
    cfg.delivered_prefix = 210;
    cfg.order_ring = 65_536; // headroom: benches run many new-orders
    Arc::new(TpccLayout::new(cfg))
}

fn bench_tx_types_on_si_htm(c: &mut Criterion) {
    let layout = small_layout(TxMix::standard());
    let b = si_htm::SiHtm::with_defaults(layout.memory_words());
    layout.populate(b.memory());
    let mut t = b.register_thread();
    let mut rng = SmallRng::seed_from_u64(42);

    let mut g = c.benchmark_group("si_htm_tx_types");
    g.sample_size(30);

    g.bench_function("new_order", |bench| {
        let mut date = 0;
        bench.iter(|| {
            date += 1;
            let mut input = txns::gen_new_order(&layout, &mut rng, 0, date);
            input.rollback = false;
            t.exec(TxKind::Update, &mut |tx| {
                txns::new_order(&layout, &input, tx)?;
                Ok(())
            });
        })
    });
    g.bench_function("payment", |bench| {
        bench.iter(|| {
            let input = txns::gen_payment(&layout, &mut rng, 0);
            t.exec(TxKind::Update, &mut |tx| txns::payment(&layout, &input, tx));
        })
    });
    g.bench_function("order_status", |bench| {
        bench.iter(|| {
            let input = txns::gen_order_status(&layout, &mut rng, 0);
            t.exec(TxKind::ReadOnly, &mut |tx| {
                txns::order_status(&layout, &input, tx)?;
                Ok(())
            });
        })
    });
    g.bench_function("stock_level", |bench| {
        bench.iter(|| {
            let input = txns::gen_stock_level(&layout, &mut rng, 0);
            t.exec(TxKind::ReadOnly, &mut |tx| {
                txns::stock_level(&layout, &input, tx)?;
                Ok(())
            });
        })
    });
    g.finish();
}

fn bench_mix_per_backend(c: &mut Criterion) {
    for (name, mix) in
        [("standard", TxMix::standard()), ("read_dominated", TxMix::read_dominated())]
    {
        let mut g = c.benchmark_group(format!("tpcc_mix_{name}"));
        g.sample_size(20);

        fn drive<B: TmBackend>(
            g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
            b: &B,
            layout: &Arc<TpccLayout>,
        ) {
            layout.populate(b.memory());
            let mut t = b.register_thread();
            let mut w = TpccWorker::new(Arc::clone(layout), 0);
            g.bench_function(b.name(), |bench| bench.iter(|| w.run_op(&mut t)));
        }

        let layout = small_layout(mix);
        drive(&mut g, &si_htm::SiHtm::with_defaults(layout.memory_words()), &layout);
        drive(&mut g, &htm_sgl::HtmSgl::with_defaults(layout.memory_words()), &layout);
        drive(&mut g, &p8tm::P8tm::with_defaults(layout.memory_words()), &layout);
        drive(&mut g, &silo::Silo::new(layout.memory_words()), &layout);
        g.finish();
    }
}

criterion_group!(benches, bench_tx_types_on_si_htm, bench_mix_per_backend);
criterion_main!(benches);
