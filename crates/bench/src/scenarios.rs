//! The experiment grid of the paper's evaluation section, as data.

use tpcc::{TpccConfig, TxMix};
use workloads::hashmap::HashMapConfig;

/// Which workload a scenario drives.
#[derive(Debug, Clone)]
pub enum Workload {
    HashMap(HashMapConfig),
    Tpcc(TpccConfig),
}

/// One named sub-plot of a figure.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Figure number in the paper (6–10).
    pub figure: u32,
    /// Short scenario id used in CSV output.
    pub id: &'static str,
    /// Human description matching the figure caption.
    pub caption: &'static str,
    pub workload: Workload,
    /// Backends plotted in this figure.
    pub backends: &'static [crate::Backend],
}

use crate::Backend::{self, *};

const HASHMAP_BACKENDS: &[Backend] = &[Htm, SiHtm];
const TPCC_BACKENDS: &[Backend] = &[Htm, SiHtm, P8tm, Silo];

/// Every sub-plot of Figures 6–10, in paper order.
pub fn all_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            figure: 6,
            id: "fig6-low",
            caption: "Hash-map 90% large read-only txs, low contention",
            workload: Workload::HashMap(HashMapConfig::paper(true, 0.9, false)),
            backends: HASHMAP_BACKENDS,
        },
        Scenario {
            figure: 6,
            id: "fig6-high",
            caption: "Hash-map 90% large read-only txs, high contention",
            workload: Workload::HashMap(HashMapConfig::paper(true, 0.9, true)),
            backends: HASHMAP_BACKENDS,
        },
        Scenario {
            figure: 7,
            id: "fig7-low",
            caption: "Hash-map 50% large read-only txs, low contention",
            workload: Workload::HashMap(HashMapConfig::paper(true, 0.5, false)),
            backends: HASHMAP_BACKENDS,
        },
        Scenario {
            figure: 7,
            id: "fig7-high",
            caption: "Hash-map 50% large read-only txs, high contention",
            workload: Workload::HashMap(HashMapConfig::paper(true, 0.5, true)),
            backends: HASHMAP_BACKENDS,
        },
        Scenario {
            figure: 8,
            id: "fig8-low",
            caption: "Hash-map 90% small txs, low contention",
            workload: Workload::HashMap(HashMapConfig::paper(false, 0.9, false)),
            backends: HASHMAP_BACKENDS,
        },
        Scenario {
            figure: 8,
            id: "fig8-high",
            caption: "Hash-map 90% small txs, high contention",
            workload: Workload::HashMap(HashMapConfig::paper(false, 0.9, true)),
            backends: HASHMAP_BACKENDS,
        },
        Scenario {
            figure: 9,
            id: "fig9-low",
            caption: "TPC-C standard mix (-s4 -d4 -o4 -p43 -r45), low contention",
            workload: Workload::Tpcc(TpccConfig::low_contention(TxMix::standard())),
            backends: TPCC_BACKENDS,
        },
        Scenario {
            figure: 9,
            id: "fig9-high",
            caption: "TPC-C standard mix (-s4 -d4 -o4 -p43 -r45), high contention",
            workload: Workload::Tpcc(TpccConfig::high_contention(TxMix::standard())),
            backends: TPCC_BACKENDS,
        },
        Scenario {
            figure: 10,
            id: "fig10-low",
            caption: "TPC-C read-dominated mix (-s4 -d4 -o80 -p4 -r8), low contention",
            workload: Workload::Tpcc(TpccConfig::low_contention(TxMix::read_dominated())),
            backends: TPCC_BACKENDS,
        },
        Scenario {
            figure: 10,
            id: "fig10-high",
            caption: "TPC-C read-dominated mix (-s4 -d4 -o80 -p4 -r8), high contention",
            workload: Workload::Tpcc(TpccConfig::high_contention(TxMix::read_dominated())),
            backends: TPCC_BACKENDS,
        },
    ]
}

/// Scenarios belonging to one figure.
pub fn figure(n: u32) -> Vec<Scenario> {
    all_scenarios().into_iter().filter(|s| s.figure == n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_figures_6_to_10() {
        let all = all_scenarios();
        assert_eq!(all.len(), 10);
        for f in 6..=10 {
            assert_eq!(figure(f).len(), 2, "figure {f} has low+high sub-plots");
        }
        assert!(figure(11).is_empty());
    }

    #[test]
    fn tpcc_figures_use_all_four_backends() {
        for s in figure(9).iter().chain(figure(10).iter()) {
            assert_eq!(s.backends.len(), 4);
        }
        for s in figure(6) {
            assert_eq!(s.backends.len(), 2);
        }
    }

    #[test]
    fn scenario_parameters_match_the_paper() {
        let all = all_scenarios();
        let fig6_low = &all[0];
        match &fig6_low.workload {
            Workload::HashMap(c) => {
                assert_eq!(c.buckets, 1000);
                assert_eq!(c.chain, 200);
                assert!((c.ro_fraction - 0.9).abs() < 1e-9);
            }
            _ => panic!("fig6 is a hash-map figure"),
        }
        match &all[7].workload {
            Workload::Tpcc(c) => {
                assert_eq!(c.warehouses, 1, "fig9-high is single-warehouse");
                assert_eq!(c.mix, TxMix::standard());
            }
            _ => panic!("fig9 is a TPC-C figure"),
        }
    }
}
