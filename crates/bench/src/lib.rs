//! Benchmark harness regenerating the paper's evaluation (Figures 6–10).
//!
//! The `figures` binary drives full thread sweeps
//! (1,2,4,8,16,32,40,80 on the virtual 10-core SMT-8 machine) and prints
//! the same series the paper plots: throughput plus the abort breakdown
//! (transactional / non-transactional / capacity). The Criterion benches
//! under `benches/` measure per-operation costs and the ablations.
//!
//! Every experiment is described by a [`Scenario`] so the binary, the
//! benches and the shape checks share one source of truth.

pub mod scenarios;
pub mod schema;

pub use scenarios::*;

use htm_sim::HtmConfig;
use std::sync::Arc;
use std::time::Duration;
use tm_api::TmBackend;
use tpcc::{TpccConfig, TpccLayout, TpccWorker};
use workloads::driver::{run, RunConfig, RunReport};
use workloads::hashmap::{HashMapConfig, HashMapWorker, TxHashMap};

/// The four concurrency-control mechanisms of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    Htm,
    SiHtm,
    P8tm,
    Silo,
}

impl Backend {
    pub const ALL: [Backend; 4] = [Backend::Htm, Backend::SiHtm, Backend::P8tm, Backend::Silo];

    pub fn name(self) -> &'static str {
        match self {
            Backend::Htm => "HTM",
            Backend::SiHtm => "SI-HTM",
            Backend::P8tm => "P8TM",
            Backend::Silo => "Silo",
        }
    }

    pub fn parse(s: &str) -> Option<Backend> {
        match s.to_ascii_lowercase().as_str() {
            "htm" => Some(Backend::Htm),
            "si-htm" | "sihtm" | "si" => Some(Backend::SiHtm),
            "p8tm" => Some(Backend::P8tm),
            "silo" => Some(Backend::Silo),
            _ => None,
        }
    }
}

/// One measured point of a figure.
#[derive(Debug, Clone)]
pub struct Point {
    pub backend: &'static str,
    pub threads: usize,
    pub throughput: f64,
    /// Abort shares in percent of attempts.
    pub abort_tx: f64,
    pub abort_nontx: f64,
    pub abort_capacity: f64,
    pub report: RunReport,
    /// Per-transaction-type commit counts (TPC-C points only; includes
    /// warm-up — use for mix-share verification, not throughput).
    pub mix: Option<tpcc::worker::MixCounters>,
}

impl Point {
    fn new(backend: &'static str, report: RunReport) -> Point {
        use tm_api::AbortReason::*;
        Point {
            backend,
            threads: report.threads,
            throughput: report.throughput(),
            abort_tx: report.total.abort_share(Conflict) + report.total.abort_share(Explicit),
            abort_nontx: report.total.abort_share(NonTx),
            abort_capacity: report.total.abort_share(Capacity),
            report,
            mix: None,
        }
    }

    /// CSV row matching [`Point::csv_header`].
    pub fn csv(&self, scenario: &str) -> String {
        format!(
            "{scenario},{},{},{:.0},{:.2},{:.2},{:.2},{},{},{}",
            self.backend,
            self.threads,
            self.throughput,
            self.abort_tx,
            self.abort_nontx,
            self.abort_capacity,
            self.report.total.commits,
            self.report.total.sgl_commits,
            self.report.total.quiesce_waits,
        )
    }

    pub fn csv_header() -> &'static str {
        "scenario,backend,threads,tx_per_s,abort_tx_pct,abort_nontx_pct,abort_capacity_pct,\
         commits,sgl_commits,quiesce_waits"
    }
}

/// The paper's thread axis (10 cores, SMT 1–8).
pub const PAPER_THREADS: [usize; 8] = [1, 2, 4, 8, 16, 32, 40, 80];

/// Run one hash-map point: build a fresh machine + map, drive the mix.
pub fn hashmap_point(
    backend: Backend,
    cfg: &HashMapConfig,
    threads: usize,
    warmup: Duration,
    duration: Duration,
) -> Point {
    hashmap_point_with(backend, HtmConfig::default(), cfg, threads, warmup, duration)
}

/// [`hashmap_point`] with an explicit machine configuration — the hook the
/// ablation benches use (directory kind, LVDIR, cost-model knobs). `Silo`
/// bypasses the simulated HTM entirely and ignores `htm_cfg`.
pub fn hashmap_point_with(
    backend: Backend,
    htm_cfg: HtmConfig,
    cfg: &HashMapConfig,
    threads: usize,
    warmup: Duration,
    duration: Duration,
) -> Point {
    let words = cfg.memory_words(threads);
    let run_cfg = RunConfig::new(threads, warmup, duration);

    fn drive<B: TmBackend>(b: &B, cfg: &HashMapConfig, run_cfg: &RunConfig) -> Point {
        let (map, alloc) = TxHashMap::build(b.memory(), cfg);
        let threads = run_cfg.threads;
        let report = run(b, run_cfg, |i| {
            let mut w = HashMapWorker::new(map, cfg.clone(), Arc::clone(&alloc), i, threads);
            move |t: &mut B::Thread| w.run_op(t)
        });
        Point::new(b.name(), report)
    }

    match backend {
        Backend::Htm => {
            drive(&htm_sgl::HtmSgl::new(htm_cfg, words, Default::default()), cfg, &run_cfg)
        }
        Backend::SiHtm => {
            drive(&si_htm::SiHtm::new(htm_cfg, words, Default::default()), cfg, &run_cfg)
        }
        Backend::P8tm => drive(&p8tm::P8tm::new(htm_cfg, words, Default::default()), cfg, &run_cfg),
        Backend::Silo => drive(&silo::Silo::new(words), cfg, &run_cfg),
    }
}

/// Run one TPC-C point: build a fresh machine + database, drive the mix.
/// Afterwards the database consistency conditions are re-checked (a cheap
/// end-to-end serialisation audit of the whole run).
pub fn tpcc_point(
    backend: Backend,
    cfg: &TpccConfig,
    threads: usize,
    warmup: Duration,
    duration: Duration,
) -> Point {
    let layout = Arc::new(TpccLayout::new(cfg.clone()));
    let words = layout.memory_words();
    let run_cfg = RunConfig::new(threads, warmup, duration);

    fn drive<B: TmBackend>(b: &B, layout: &Arc<TpccLayout>, run_cfg: &RunConfig) -> Point {
        layout.populate(b.memory());
        let mix = Arc::new(std::sync::Mutex::new(tpcc::worker::MixCounters::default()));
        let report = run(b, run_cfg, |i| {
            let mut w = TpccWorker::new(Arc::clone(layout), i).with_sink(Arc::clone(&mix));
            move |t: &mut B::Thread| w.run_op(t)
        });
        layout
            .check_consistency(b.memory())
            .unwrap_or_else(|e| panic!("TPC-C consistency violated after run: {e}"));
        let mut p = Point::new(b.name(), report);
        p.mix = Some(mix.lock().unwrap().clone());
        p
    }

    match backend {
        Backend::Htm => drive(
            &htm_sgl::HtmSgl::new(HtmConfig::default(), words, Default::default()),
            &layout,
            &run_cfg,
        ),
        Backend::SiHtm => drive(
            &si_htm::SiHtm::new(HtmConfig::default(), words, Default::default()),
            &layout,
            &run_cfg,
        ),
        Backend::P8tm => drive(
            &p8tm::P8tm::new(HtmConfig::default(), words, Default::default()),
            &layout,
            &run_cfg,
        ),
        Backend::Silo => drive(&silo::Silo::new(words), &layout, &run_cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parse_roundtrip() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
        assert_eq!(Backend::parse("nope"), None);
    }

    #[test]
    fn hashmap_point_smoke() {
        let cfg = HashMapConfig { buckets: 8, chain: 4, ro_fraction: 0.9 };
        for b in Backend::ALL {
            let p = hashmap_point(b, &cfg, 2, Duration::from_millis(10), Duration::from_millis(50));
            assert!(p.throughput > 0.0, "{} produced no throughput", p.backend);
        }
    }

    #[test]
    fn tpcc_point_smoke() {
        let cfg = TpccConfig::tiny(tpcc::TxMix::standard());
        for b in Backend::ALL {
            let p = tpcc_point(b, &cfg, 2, Duration::from_millis(10), Duration::from_millis(50));
            assert!(p.throughput > 0.0, "{} produced no TPC-C throughput", p.backend);
        }
    }

    #[test]
    fn csv_row_is_well_formed() {
        let p = hashmap_point(
            Backend::SiHtm,
            &HashMapConfig { buckets: 4, chain: 2, ro_fraction: 0.5 },
            1,
            Duration::from_millis(5),
            Duration::from_millis(20),
        );
        let row = p.csv("test");
        assert_eq!(row.split(',').count(), Point::csv_header().split(',').count());
        assert!(row.starts_with("test,SI-HTM,1,"));
    }
}
