//! Versioned envelopes for the JSON artifacts the bench binaries emit.
//!
//! Every artifact is written as
//!
//! ```json
//! {"schema": "<name>", "schema_version": <n>, "rows": [ ... ]}
//! ```
//!
//! so a consumer (CI assertions, plotting scripts, later PRs) can tell
//! *which* shape it is holding before it indexes into rows. [`load`]
//! rejects unknown names and versions instead of silently misreading a
//! stale artifact — the failure mode this module exists to close: a row
//! field changes meaning, an old file lingers in a workspace, and a
//! plot quietly graphs the wrong column.
//!
//! Parsing is a two-field scan, not a JSON parser: the envelope is
//! machine-written on the line above, both fields are emitted first, and
//! the bench stack deliberately has no serde. [`Artifact::wrap`] and
//! [`load`] are inverse by construction and tested as such.

use std::fmt;
use std::path::Path;

/// One versioned artifact kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Artifact {
    /// Schema name stamped into the envelope.
    pub name: &'static str,
    /// Current writer version. Bump when a row field is added, removed,
    /// or changes meaning.
    pub version: u32,
}

/// `BENCH_1.json` — directory-ablation grid. v2 added the per-op latency
/// percentile fields (`lat_p50_ns` … `lat_p999_ns`, `lat_mean_ns`).
pub const BENCH_1: Artifact = Artifact { name: "bench_directory_ablation", version: 2 };

/// `CHAOS_SOAK.json` — chaos-soak cells.
pub const CHAOS_SOAK: Artifact = Artifact { name: "chaos_soak", version: 1 };

/// `BENCH_TXKV.json` — txkv service-layer bench (per-op-class SLOs).
///
/// v2 added sharding: `shards`, `cross_shard_pct`, `tick_us` (the
/// effective open-loop arrival tick — e2e percentiles are only
/// meaningful down to this quantum), `ro_replies_per_sec`,
/// `quiesce_waits`, and the `twopc_*` counters (cross-shard two-phase
/// commit prepares / aborts / escalations / multi-shard reads).
///
/// v3 added durability: the `durability` column (`off` / `async` /
/// `sync` — which ack-vs-fsync contract the cell ran under) and the WAL
/// counters `wal_appends`, `wal_fsync_batches`, `wal_mean_group_commit`,
/// `wal_checkpoints`, `wal_sync_acks_early` (must be 0: a `sync` ack
/// may never precede its fsync), and `wal_dead_sheds`. Comparing
/// `replies_per_sec` across `durability` values at fixed rate is the
/// Sync-vs-Off overhead headline (`txkv_bench --durability-sweep`).
///
/// Reading `ro_batch_aborts` is backend-specific by design:
///
/// | backend | expectation                                             |
/// |---------|---------------------------------------------------------|
/// | SI-HTM  | **must be 0** — the RO fast path never aborts (§3.3),   |
/// |         | durable or not (logging sits outside transactions)      |
/// | P8TM    | may abort; `ro_commits > 0` shows the RO path was taken |
/// | HTM+SGL | RO batches are ordinary transactions; aborts are normal |
/// | Silo    | OCC validation may fail and retry; aborts are normal    |
///
/// `txkv_bench --assert-service` enforces exactly these expectations.
///
/// v4 added the typed-workload columns: every row carries `workload`
/// (`kv` for the generic KV mixes, `tpcc` for `--tpcc-service` cells)
/// and `tx_class` (`all` on kv rows; on tpcc rows the TPC-C transaction
/// class — `new_order`, `payment`, `order_status`, `delivery`,
/// `stock_level` — one row per class, with that class's e2e/service
/// percentiles from the pipeline's per-procedure histograms). tpcc rows
/// also carry `mix` (`standard` / `read_dominated`), `acked`,
/// `user_aborts`, `index_hits` and `lastname_acks` (the secondary-index
/// evidence: hits must cover every by-last-name selection).
///
/// v5 added storage-fault health: `storage_faults` (whether the cell
/// ran with an armed injector), `health` (worst final per-shard storage
/// health — `healthy` / `retrying` / `read_only` / `failed`) and the
/// counters `wal_retries` (flush rewrites into rotated segments),
/// `degraded_sheds` (updates answered the typed `Unavailable`),
/// `wal_rejoins` (probe-write recoveries), `scrub_passes` /
/// `scrub_corruptions` (latent-corruption scrubber) and
/// `ckpt_failures`. Under `--storage-faults`, `--assert-service` still
/// gates `wal_sync_acks_early == 0` — degraded shards shed, they never
/// ack early.
///
/// v6 added the network columns. Every kv row now carries
/// `offered_per_sec`: offered load (accepted + refused submissions) over
/// the *arrival window only* — the old habit of dividing by `wall`
/// (which includes backend/WAL warm-up and the shutdown drain) badly
/// under-reported offered rate on short runs. `txkv_bench --net tcp|uds`
/// adds per-tenant rows with `mode: "net"`: `transport` (`tcp` / `uds`),
/// `phase` (`solo` — the protected tenant alone, the SLO baseline — or
/// `contended` — the same load plus a noisy neighbor flooding open-loop
/// past saturation), `tenant`, `priority`, `protected`, and that
/// tenant's server-edge admission/answer accounting (`offered`,
/// `accepted`, `answered`, `shed`, `refused_quota`, `refused_pressure`,
/// `refused_backend`) plus receive-to-reply `e2e_p50_ns` / `e2e_p99_ns`
/// / `e2e_p999_ns`. The contended protected row also carries
/// `solo_p99_ns` (its phase-`solo` baseline); `--assert-service` gates
/// the noisy-neighbor SLO on exactly these two columns (contended p99 ≤
/// 1.5× solo p99, with a small absolute floor for scheduler noise),
/// alongside answered-or-shed (`accepted == answered + shed` at the
/// wire, dropped connections included) and zero starved executors.
pub const BENCH_TXKV: Artifact = Artifact { name: "bench_txkv", version: 6 };

/// `STORAGE_SOAK.json` — storage-fault soak cells (`storage_soak`): one
/// row per backend × fault plan with serve/shed/ack counts, health
/// transitions and the acked-write-survival verdict.
pub const STORAGE_SOAK: Artifact = Artifact { name: "storage_soak", version: 1 };

impl Artifact {
    /// Wrap a JSON array of rows in the versioned envelope.
    pub fn wrap(&self, rows_json: &str) -> String {
        format!(
            "{{\"schema\": \"{}\", \"schema_version\": {}, \"rows\": {}}}\n",
            self.name,
            self.version,
            rows_json.trim_end()
        )
    }

    /// Wrap and write to `path`.
    pub fn write(&self, path: impl AsRef<Path>, rows_json: &str) -> std::io::Result<()> {
        std::fs::write(path, self.wrap(rows_json))
    }
}

/// Why a document was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// No `"schema"` field — pre-envelope artifact (or not ours).
    MissingSchema,
    /// No `"schema_version"` field.
    MissingVersion,
    /// Envelope names a different artifact.
    WrongSchema { expected: &'static str, found: String },
    /// Right artifact, unknown version (newer writer, or ancient file).
    UnknownVersion { schema: &'static str, supported: u32, found: u32 },
    /// Envelope present but no `"rows"` array.
    MissingRows,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::MissingSchema => write!(f, "no \"schema\" field (pre-envelope artifact?)"),
            SchemaError::MissingVersion => write!(f, "no \"schema_version\" field"),
            SchemaError::WrongSchema { expected, found } => {
                write!(f, "schema mismatch: expected \"{expected}\", found \"{found}\"")
            }
            SchemaError::UnknownVersion { schema, supported, found } => {
                write!(f, "unknown {schema} version {found} (this build reads version {supported})")
            }
            SchemaError::MissingRows => write!(f, "envelope has no \"rows\" array"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// Extract the string value following `"<key>":` in `doc`.
fn scan_string<'d>(doc: &'d str, key: &str) -> Option<&'d str> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Extract the unsigned integer following `"<key>":` in `doc`.
fn scan_u32(doc: &str, key: &str) -> Option<u32> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let digits: String =
        doc[at..].trim_start().chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Validate `doc` against `expected` and return the rows payload
/// (everything from the `[` of `"rows"` to the closing `]`, exclusive of
/// the envelope's final `}`).
pub fn validate<'d>(doc: &'d str, expected: &Artifact) -> Result<&'d str, SchemaError> {
    let name = scan_string(doc, "schema").ok_or(SchemaError::MissingSchema)?;
    if name != expected.name {
        return Err(SchemaError::WrongSchema { expected: expected.name, found: name.to_string() });
    }
    let version = scan_u32(doc, "schema_version").ok_or(SchemaError::MissingVersion)?;
    if version != expected.version {
        return Err(SchemaError::UnknownVersion {
            schema: expected.name,
            supported: expected.version,
            found: version,
        });
    }
    let needle = "\"rows\":";
    let at = doc.find(needle).ok_or(SchemaError::MissingRows)?;
    let rows = doc[at + needle.len()..].trim_start();
    if !rows.starts_with('[') {
        return Err(SchemaError::MissingRows);
    }
    // The envelope object closes after the array: drop the final `}`.
    let end = rows.rfind(']').ok_or(SchemaError::MissingRows)?;
    Ok(&rows[..=end])
}

/// Read `path` and [`validate`] it; returns the rows payload.
pub fn load(path: impl AsRef<Path>, expected: &Artifact) -> Result<String, String> {
    let path = path.as_ref();
    let doc = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    match validate(&doc, expected) {
        Ok(rows) => Ok(rows.to_string()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROWS: &str = "[\n  {\"x\": 1},\n  {\"x\": 2}\n]";

    #[test]
    fn wrap_then_validate_roundtrips() {
        let doc = BENCH_TXKV.wrap(ROWS);
        let rows = validate(&doc, &BENCH_TXKV).expect("own envelope must validate");
        assert_eq!(rows, ROWS);
    }

    #[test]
    fn pre_envelope_documents_are_refused() {
        assert_eq!(validate(ROWS, &BENCH_1), Err(SchemaError::MissingSchema));
    }

    #[test]
    fn wrong_schema_name_is_refused() {
        let doc = CHAOS_SOAK.wrap(ROWS);
        assert_eq!(
            validate(&doc, &BENCH_1),
            Err(SchemaError::WrongSchema {
                expected: BENCH_1.name,
                found: CHAOS_SOAK.name.to_string()
            })
        );
    }

    #[test]
    fn unknown_versions_are_refused_in_both_directions() {
        let newer = Artifact { name: BENCH_1.name, version: BENCH_1.version + 1 };
        assert_eq!(
            validate(&newer.wrap(ROWS), &BENCH_1),
            Err(SchemaError::UnknownVersion {
                schema: BENCH_1.name,
                supported: BENCH_1.version,
                found: BENCH_1.version + 1,
            })
        );
        let older = Artifact { name: BENCH_1.name, version: 1 };
        assert!(matches!(
            validate(&older.wrap(ROWS), &BENCH_1),
            Err(SchemaError::UnknownVersion { found: 1, .. })
        ));
    }

    #[test]
    fn missing_version_and_rows_are_refused() {
        let doc = format!("{{\"schema\": \"{}\", \"rows\": []}}", BENCH_1.name);
        assert_eq!(validate(&doc, &BENCH_1), Err(SchemaError::MissingVersion));
        let doc = format!(
            "{{\"schema\": \"{}\", \"schema_version\": {}}}",
            BENCH_1.name, BENCH_1.version
        );
        assert_eq!(validate(&doc, &BENCH_1), Err(SchemaError::MissingRows));
    }

    #[test]
    fn load_reads_what_write_wrote() {
        let dir = std::env::temp_dir().join("txkv_schema_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");
        BENCH_TXKV.write(&path, ROWS).unwrap();
        assert_eq!(load(&path, &BENCH_TXKV).unwrap(), ROWS);
        let err = load(&path, &CHAOS_SOAK).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
