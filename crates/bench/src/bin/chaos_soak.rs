//! Chaos soak: sweep every backend × injection rate × workload under the
//! runtime fault injector and assert liveness plus workload invariants.
//!
//! Each cell installs a [`ChaosConfig`] (random capacity/conflict aborts at
//! access and commit points, randomized stalls inside the quiescence /
//! commit windows), drives a bank or B+-tree workload on real OS threads
//! through the standard run harness, then checks:
//!
//! - **Liveness**: the cell finishes within a generous deadline (the run
//!   executes on a monitor-observed thread; a hang is reported, the failing
//!   configuration is dumped to `CHAOS_FAILURE.json`, and the process exits
//!   non-zero — it does not wedge CI).
//! - **Invariants**: bank total balance conserved and every audit saw a
//!   consistent snapshot; B+-tree structural audit passes.
//!
//! Results land in `CHAOS_SOAK.json` (one row per cell, including the
//! watchdog / backoff / injection counters so a soak that only survived by
//! degrading to the SGL is visible as such).
//!
//! Usage: `cargo run --release --bin chaos_soak [-- --smoke]`
//! (`--smoke` is the short CI variant: fewer rates, shorter cells).

use bench::Backend;
use htm_sim::HtmConfig;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tm_api::{BackoffPolicy, TmBackend};
use txmem::hooks::chaos::{self, ChaosConfig, ChaosReport};
use txmem::LineAlloc;
use workloads::bank::{Bank, BankWorker};
use workloads::btree::{self, BTreeWorker, TxBTree};
use workloads::driver::{run, RunConfig, RunReport};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workload {
    Bank,
    BTree,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Bank => "bank",
            Workload::BTree => "btree",
        }
    }
}

#[derive(Debug, Clone)]
struct Cell {
    backend: Backend,
    workload: Workload,
    rate: f64,
    threads: usize,
    warmup: Duration,
    duration: Duration,
}

impl Cell {
    fn chaos_config(&self, index: usize) -> ChaosConfig {
        ChaosConfig {
            seed: 0xC405 ^ (index as u64).wrapping_mul(0x9E37_79B9),
            abort_access: self.rate,
            abort_commit: self.rate / 2.0,
            capacity_share: 0.5,
            stall: self.rate,
            stall_max_us: 20,
            panic: 0.0,
        }
    }

    fn json(&self) -> String {
        format!(
            "\"backend\": \"{}\", \"workload\": \"{}\", \"rate\": {}, \"threads\": {}",
            self.backend.name(),
            self.workload.name(),
            self.rate,
            self.threads
        )
    }
}

struct CellOutcome {
    report: RunReport,
    chaos: ChaosReport,
    invariant_err: Option<String>,
}

/// Drive one cell's workload on `backend` and check its invariant.
fn drive<B: TmBackend>(backend: &B, cell: &Cell) -> (RunReport, Option<String>) {
    let run_cfg = RunConfig::new(cell.threads, cell.warmup, cell.duration);
    match cell.workload {
        Workload::Bank => {
            const ACCOUNTS: u64 = 64;
            const INITIAL: u64 = 1000;
            let bank = Bank::build(backend.memory(), 0, ACCOUNTS, INITIAL);
            let expected = ACCOUNTS * INITIAL;
            let broken = Arc::new(AtomicBool::new(false));
            let report = run(backend, &run_cfg, |i| {
                let mut w = BankWorker::new(bank, 0.2, expected, 0xBA2C ^ i as u64);
                let broken = Arc::clone(&broken);
                move |t: &mut B::Thread| {
                    w.run_op(t);
                    if w.broken_audits != 0 {
                        broken.store(true, Ordering::Relaxed);
                    }
                }
            });
            let total = bank.total(backend.memory());
            let err = if total != expected {
                Some(format!("bank total drifted: {total} != {expected}"))
            } else if broken.load(Ordering::Relaxed) {
                Some("bank audit observed an inconsistent snapshot".to_string())
            } else {
                None
            };
            (report, err)
        }
        Workload::BTree => {
            const KEYS: u64 = 512;
            let alloc = Arc::new(LineAlloc::new(0, backend.memory().len() as u64));
            let tree = TxBTree::build(backend.memory(), &alloc, 1..=KEYS);
            let threads = cell.threads;
            let report = run(backend, &run_cfg, |i| {
                let mut w = BTreeWorker::new(tree, Arc::clone(&alloc), KEYS, 0.5, 0.1, i, threads)
                    .with_scan_limit(64);
                move |t: &mut B::Thread| w.run_op(t)
            });
            // `audit` panics on any structural violation; the monitor thread
            // turns that panic into a reported cell failure.
            let keys = tree.audit(backend.memory());
            let err = if keys.is_empty() {
                Some("btree audit returned an empty tree".to_string())
            } else {
                None
            };
            (report, err)
        }
    }
}

fn run_cell(cell: &Cell) -> (RunReport, Option<String>) {
    let words = match cell.workload {
        Workload::Bank => Bank::memory_words(64),
        Workload::BTree => btree::memory_words(512 * 4),
    };
    // The soak opts into the contention manager (default-off on the bench
    // path): injected abort storms are exactly the regime it exists for.
    let backoff = BackoffPolicy::exponential();
    match cell.backend {
        Backend::Htm => {
            let cfg = htm_sgl::HtmSglConfig { backoff, ..Default::default() };
            drive(&htm_sgl::HtmSgl::new(HtmConfig::default(), words, cfg), cell)
        }
        Backend::SiHtm => {
            let cfg = si_htm::SiHtmConfig { backoff, ..Default::default() };
            drive(&si_htm::SiHtm::new(HtmConfig::default(), words, cfg), cell)
        }
        Backend::P8tm => {
            let cfg = p8tm::P8tmConfig { backoff, ..Default::default() };
            drive(&p8tm::P8tm::new(HtmConfig::default(), words, cfg), cell)
        }
        Backend::Silo => {
            let cfg = silo::SiloConfig { backoff, ..Default::default() };
            drive(&silo::Silo::with_config(words, cfg), cell)
        }
    }
}

/// Execute a cell under a liveness monitor: the run happens on a spawned
/// thread; if it neither finishes nor panics before `deadline`, the cell is
/// declared hung.
fn monitored(cell: Cell, index: usize, deadline: Duration) -> Result<CellOutcome, String> {
    let guard = chaos::install(cell.chaos_config(index));
    let worker = {
        let cell = cell.clone();
        std::thread::spawn(move || run_cell(&cell))
    };
    let t0 = Instant::now();
    while !worker.is_finished() {
        if t0.elapsed() > deadline {
            // The hung worker cannot be reclaimed; the caller writes the
            // failure artifact and exits, which tears it down.
            std::mem::forget(guard);
            return Err(format!("cell hung (no completion within {deadline:?})"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let chaos_report = guard.report();
    drop(guard);
    match worker.join() {
        Ok((report, invariant_err)) => {
            Ok(CellOutcome { report, chaos: chaos_report, invariant_err })
        }
        Err(p) => {
            let msg = p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(format!("cell panicked: {msg}"))
        }
    }
}

fn outcome_json(o: &CellOutcome) -> String {
    let t = &o.report.total;
    format!(
        "\"throughput\": {:.0}, \"commits\": {}, \"aborts\": {}, \"sgl_commits\": {}, \
         \"sgl_acquisitions\": {}, \"starved_threads\": {}, \"watchdog_quiesce_trips\": {}, \
         \"watchdog_drain_trips\": {}, \"backoffs\": {}, \"injected_aborts\": {}, \
         \"injected_stalls\": {}",
        o.report.throughput(),
        t.commits,
        t.aborts(),
        t.sgl_commits,
        t.sgl_acquisitions,
        o.report.starved_threads,
        t.watchdog_quiesce_trips,
        t.watchdog_drain_trips,
        t.backoffs,
        o.chaos.injected_aborts,
        o.chaos.injected_stalls,
    )
}

fn fail(cell: &Cell, detail: &str, outcome: Option<&CellOutcome>) -> ! {
    let mut body = format!("{{{}, \"failure\": {:?}", cell.json(), detail);
    if let Some(o) = outcome {
        let _ = write!(body, ", {}", outcome_json(o));
    }
    body.push_str("}\n");
    std::fs::write("CHAOS_FAILURE.json", &body).expect("write CHAOS_FAILURE.json");
    eprintln!("FAIL {} {} rate={}: {detail}", cell.backend.name(), cell.workload.name(), cell.rate);
    eprintln!("failing configuration written to CHAOS_FAILURE.json");
    std::process::exit(1);
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rates: &[f64] = if smoke { &[0.005, 0.05] } else { &[0.001, 0.01, 0.05] };
    let (threads, warmup, duration, deadline) = if smoke {
        (4, Duration::from_millis(20), Duration::from_millis(60), Duration::from_secs(20))
    } else {
        (8, Duration::from_millis(20), Duration::from_millis(350), Duration::from_secs(30))
    };

    let mut cells = Vec::new();
    for &backend in &Backend::ALL {
        for &rate in rates {
            for workload in [Workload::Bank, Workload::BTree] {
                cells.push(Cell { backend, workload, rate, threads, warmup, duration });
            }
        }
    }

    let mut json = String::from("[\n");
    let t0 = Instant::now();
    for (index, cell) in cells.iter().enumerate() {
        match monitored(cell.clone(), index, deadline) {
            Ok(outcome) => {
                if let Some(err) = &outcome.invariant_err {
                    fail(cell, err, Some(&outcome));
                }
                if outcome.report.total.commits == 0 {
                    fail(cell, "no forward progress (zero commits)", Some(&outcome));
                }
                println!(
                    "ok   {:6} {:5} rate={:<5} {:>9.0} tx/s  commits={} injected_aborts={} \
                     stalls={} sgl={} wd={}",
                    cell.backend.name(),
                    cell.workload.name(),
                    cell.rate,
                    outcome.report.throughput(),
                    outcome.report.total.commits,
                    outcome.chaos.injected_aborts,
                    outcome.chaos.injected_stalls,
                    outcome.report.total.sgl_commits,
                    outcome.report.total.watchdog_quiesce_trips
                        + outcome.report.total.watchdog_drain_trips,
                );
                let sep = if index + 1 == cells.len() { "\n" } else { ",\n" };
                let _ = write!(json, "  {{{}, {}}}{sep}", cell.json(), outcome_json(&outcome));
            }
            Err(detail) => fail(cell, &detail, None),
        }
    }
    json.push(']');
    bench::schema::CHAOS_SOAK.write("CHAOS_SOAK.json", &json).expect("write CHAOS_SOAK.json");
    println!(
        "chaos soak passed: {} cells ({} backends x {} rates x 2 workloads) in {:.1?} -> CHAOS_SOAK.json",
        cells.len(),
        Backend::ALL.len(),
        rates.len(),
        t0.elapsed()
    );
}
