//! txkv service bench: open-loop and closed-loop load against the
//! [`txkv::Pipeline`] on every backend, reporting per-op-class latency
//! SLOs (e2e p50/p90/p99/p999 + service p50/p99) and the RO-batching
//! counters, plus a deliberate overload phase proving admission control
//! sheds with a typed error instead of growing the queue.
//!
//! Modes, per backend:
//!
//! * **open** — fixed-arrival-rate load, 90 % of ops read-only. Arrivals
//!   are paced on a fine tick (`max(1/rate, 200 µs)`, recorded as
//!   `tick_us` in the artifact row) so e2e percentiles measure the
//!   service, not arrival quantization. Latency is recorded by the
//!   pipeline at reply time, so the generator never blocks on
//!   completions — a real open loop.
//! * **closed** — classic blocking request/reply clients.
//! * **overload** — a full-speed flood against a tiny admission queue;
//!   asserts `Overloaded` rejections happen and queue depth stays
//!   bounded.
//! * **sweep** (`--sweep`) — SI-HTM shard-count × cross-shard-mix grid at
//!   *saturating* open-loop rate: the scale-out headline. Each cell
//!   reports `ro_replies_per_sec`; 4 shards at the same executor count
//!   must beat 1 shard ≥ 2.5× on read-only throughput (asserted under
//!   `--assert-service`), with the cross-shard 2PC penalty measured at
//!   0/1/10 % mix.
//!
//! `--shards N` partitions the keyspace over N independent backend
//! instances (range map, one quiescence domain each); `--cross-shard-pct P`
//! makes P % of generated ops cross-shard conserving transfers (2PC).
//!
//! `--durability off|async|sync` runs every cell over a live per-shard
//! WAL (`txkv::durability`): commit-ordered appends with group-commit
//! fsync, `sync` delaying each update's reply until its record is
//! durable. `--durability-sweep` adds an SI-HTM open-loop leg at each of
//! the three modes — same arrival rate — so the artifact reports the
//! Sync-vs-Off overhead directly.
//!
//! * **tpcc-service** (`--tpcc-service`) — TPC-C through the service
//!   pipeline via the typed `txkv-schema` layer (`tpcc::service`): both
//!   paper mixes per backend over a 2-shard placement, the 60 %
//!   select-by-last-name rule served by the `CUST_LAST` secondary index.
//!   Emits one artifact row per transaction class with that class's
//!   e2e/service percentiles from the pipeline's per-procedure
//!   histograms. Replaces the kv modes for the run.
//!
//! * **net** (`--net tcp|uds`) — the `txkv-net` loopback soak, replacing
//!   the kv modes: a solo protected-tenant baseline, then the same load
//!   with a noisy neighbor flooding open-loop far past its per-tenant
//!   quota. Emits per-tenant schema-v6 rows; `--assert-service` gates
//!   answered-or-shed at the wire, zero starved executors, typed
//!   per-tenant throttling of the noisy tenant, and the protected
//!   tenant's contended p99 within 1.5× of its solo baseline (with a
//!   2 ms absolute floor below which the ratio measures scheduler
//!   noise). A violation writes `NET_FAILURE.json`.
//! * **`--listen ADDR` / `--listen-uds PATH`** — standalone server:
//!   serve a fresh SI-HTM pipeline over the wire until stdin closes.
//! * **`--connect ADDR` / `--connect-uds PATH`** — standalone client:
//!   closed-loop load as `--tenant N --token T`, reporting
//!   client-observed round-trip percentiles.
//!
//! Results go to `BENCH_TXKV.json` in the versioned `bench::schema`
//! envelope (v6: adds `offered_per_sec` — offered load over the arrival
//! window only, excluding warm-up and drain — and the per-tenant net
//! rows; v5 added the storage-fault health columns — see
//! `bench::schema`; v4 added `workload` and `tx_class`; v3 added the
//! `durability` column and `wal_*` counters; v2 added `shards`,
//! `cross_shard_pct`, `tick_us`, `ro_replies_per_sec` and the `twopc_*`
//! counters). With
//! `--assert-service` the run enforces the service-level acceptance
//! checks (no starved executors, RO batching engaged, backend-appropriate
//! RO-abort expectations — see `bench::schema` — overload sheds typed,
//! cross-shard 2PC clean when chaos is off, and on durable runs: WAL
//! appends happened, fsyncs happened, no sync ack ever preceded its
//! fsync, no dead-log sheds); a violation writes
//! `TXKV_FAILURE.json` and exits non-zero, mirroring the chaos-soak
//! failure-artifact pattern. `--chaos` arms the runtime fault injector
//! for the open-loop phase and checks liveness under a deadline.
//!
//! `--storage-faults` arms the *storage* fault injector
//! (`txkv::durability::storage`) for the whole run: probabilistic fsync
//! failures, short writes, bit corruption and I/O stalls on the WAL
//! segment files of every durable cell. Rows then carry the schema-v5
//! health columns (`health`, `wal_retries`, `degraded_sheds`,
//! `wal_rejoins`, `scrub_*`, `ckpt_failures`), and `--assert-service`
//! keeps gating `wal_sync_acks_early == 0` — a degraded shard sheds
//! with a typed `Unavailable`, it never acks early. Requires a durable
//! mode (`--durability async|sync` or `--durability-sweep`).
//!
//! Usage: `cargo run --release --bin txkv_bench [-- --quick] [--smoke]
//!         [--backends si-htm,htm] [--rate N] [--duration-ms N]
//!         [--shards N] [--cross-shard-pct P] [--sweep] [--tpcc-service]
//!         [--durability off|async|sync] [--durability-sweep]
//!         [--net tcp|uds] [--listen ADDR] [--listen-uds PATH]
//!         [--connect ADDR] [--connect-uds PATH] [--tenant N] [--token T]
//!         [--chaos] [--storage-faults] [--assert-service]`

use bench::{schema, Backend};
use htm_sim::HtmConfig;
use std::fmt::Write as _;
use std::time::{Duration, Instant};
use tm_api::{BackoffPolicy, TmBackend};
use tpcc::service::{self, MixOutcome, TxClass};
use tpcc::{TpccConfig, TxMix};
use txkv::durability::storage as storage_faults;
use txkv::shard::build_domains;
use txkv::{
    DurabilityConfig, DurabilityMode, FaultPlan, FaultTarget, KvError, KvOp, Pipeline,
    PipelineConfig, ServiceReport, ShardMap, WalSet,
};
use txkv_net::{NetClient, NetReport, NetServer, NetServerConfig, ShedConfig, TenantSpec};
use txkv_schema::index_hits;
use txmem::hooks::chaos::{self, ChaosConfig};
use workloads::btree;

const KEYS: u64 = 4096;

#[derive(Clone)]
struct Args {
    quick: bool,
    chaos: bool,
    assert_service: bool,
    sweep: bool,
    backends: Vec<Backend>,
    /// Open-loop total arrival rate, requests/second.
    rate: u64,
    /// Open-loop measurement window.
    duration: Duration,
    /// Closed-loop client threads and requests per client.
    closed_clients: usize,
    closed_ops: u64,
    executors: usize,
    /// Independent backend instances the keyspace is partitioned over.
    shards: usize,
    /// Percent of generated ops that are cross-shard transfers (2PC).
    cross_pct: u64,
    /// Percent of generated ops that are wide strided `MultiPut` ingests
    /// whose write set overflows the TMCAM — each one degrades to the
    /// SGL and serializes its whole domain (sweep cells only).
    ingest_pct: u64,
    /// Ack-vs-fsync contract every cell runs under.
    durability: DurabilityMode,
    /// Add the SI-HTM Off/Async/Sync overhead legs.
    durability_sweep: bool,
    /// Arm the storage fault injector against every cell's WAL segments.
    storage_faults: bool,
    /// Run TPC-C through the typed service layer instead of the kv modes.
    tpcc_service: bool,
    /// Run the network soak over this transport instead of the kv modes:
    /// a solo protected-tenant baseline, then the same load with a noisy
    /// neighbor flooding open-loop past saturation (`tcp` | `uds`).
    net: Option<String>,
    /// Standalone server: serve the pipeline over TCP at this address
    /// until stdin closes.
    listen: Option<String>,
    /// Standalone server: additionally (or only) serve over this UDS path.
    listen_uds: Option<String>,
    /// Standalone client: closed-loop load against a remote TCP server.
    connect: Option<String>,
    /// Standalone client: closed-loop load against a remote UDS server.
    connect_uds: Option<String>,
    /// Tenant credentials for `--connect`.
    tenant: u64,
    token: u64,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| argv.iter().any(|a| a == f);
    let val = |f: &str| {
        argv.iter().position(|a| a == f).and_then(|i| argv.get(i + 1)).map(|s| s.as_str())
    };
    let quick = has("--quick") || has("--smoke");
    let mut backends: Vec<Backend> = Backend::ALL.to_vec();
    if has("--smoke") {
        backends = vec![Backend::SiHtm, Backend::Htm];
    }
    if let Some(list) = val("--backends") {
        backends = list
            .split(',')
            .map(|s| Backend::parse(s).unwrap_or_else(|| panic!("unknown backend '{s}'")))
            .collect();
    }
    let rate = val("--rate")
        .map(|s| s.parse().expect("--rate takes an integer"))
        .unwrap_or(if quick { 10_000 } else { 20_000 });
    let duration = Duration::from_millis(
        val("--duration-ms")
            .map(|s| s.parse().expect("--duration-ms takes an integer"))
            .unwrap_or(if quick { 400 } else { 2_000 }),
    );
    let shards =
        val("--shards").map(|s| s.parse().expect("--shards takes an integer")).unwrap_or(1usize);
    assert!(shards > 0 && KEYS.is_multiple_of(shards as u64), "--shards must divide {KEYS}");
    let cross_pct = val("--cross-shard-pct")
        .map(|s| s.parse().expect("--cross-shard-pct takes an integer"))
        .unwrap_or(0u64);
    assert!(cross_pct <= 100, "--cross-shard-pct is a percentage");
    Args {
        quick,
        chaos: has("--chaos"),
        assert_service: has("--assert-service"),
        sweep: has("--sweep"),
        backends,
        rate,
        duration,
        closed_clients: 4,
        closed_ops: if quick { 500 } else { 2_000 },
        executors: if quick { 2 } else { 4 },
        shards,
        cross_pct,
        ingest_pct: val("--ingest-pct")
            .map(|s| s.parse().expect("--ingest-pct takes an integer"))
            .unwrap_or(0),
        durability: match val("--durability") {
            None | Some("off") => DurabilityMode::Off,
            Some("async") => DurabilityMode::Async,
            Some("sync") => DurabilityMode::Sync,
            Some(other) => panic!("unknown durability mode '{other}' (off | async | sync)"),
        },
        durability_sweep: has("--durability-sweep"),
        storage_faults: has("--storage-faults"),
        tpcc_service: has("--tpcc-service"),
        net: val("--net").map(|s| {
            assert!(s == "tcp" || s == "uds", "--net takes tcp or uds");
            s.to_string()
        }),
        listen: val("--listen").map(str::to_string),
        listen_uds: val("--listen-uds").map(str::to_string),
        connect: val("--connect").map(str::to_string),
        connect_uds: val("--connect-uds").map(str::to_string),
        tenant: val("--tenant").map(|s| s.parse().expect("--tenant takes an integer")).unwrap_or(1),
        token: val("--token")
            .map(|s| s.parse().expect("--token takes an integer"))
            .unwrap_or(NET_PROT_TOKEN),
    }
}

// ------------------------------------------------------------- load mix

/// xorshift64* — deterministic, dependency-free op stream.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Keys per shard-range under the bench's range partitioning. Each shard
/// owns `[s*kps, (s+1)*kps)` and only the first half is populated, so
/// delete-of-absent-key traffic stays shard-local too.
fn keys_per_shard(shards: usize) -> u64 {
    2 * KEYS / shards as u64
}

/// 90 % read-only (80 get / 5 multi-get / 5 scan), 10 % updates — all
/// shard-local — except that with probability `cross_pct` % the op is a
/// cross-shard conserving transfer (a 2PC `MultiAdd` between two distinct
/// shards). Scans are 32-key-aligned so they never straddle a shard
/// boundary under the bench's range map.
fn gen_op(rng: &mut u64, args: &Args) -> KvOp {
    let (shards, cross_pct) = (args.shards as u64, args.cross_pct);
    let kps = keys_per_shard(shards as usize);
    let loaded = kps / 2;
    if args.ingest_pct > 0 && next_rand(rng) % 1000 < args.ingest_pct * 10 {
        // Bulk ingest: 64 strided blind writes inside one shard. The
        // write set overflows the 64-line TMCAM, so the transaction
        // exhausts its retry budget and falls back to the SGL — which
        // stalls every RO batch in that shard's *domain*. With one shard
        // the whole service serializes behind it; with N shards the
        // blast radius is 1/N of the executors (the scale-out headline).
        let base = (next_rand(rng) % shards) * kps;
        let start = next_rand(rng) % loaded;
        let pairs = (0..64).map(|i| (base + (start + i * 61) % loaded, next_rand(rng))).collect();
        return KvOp::MultiPut { pairs };
    }
    if shards > 1 && next_rand(rng) % 100 < cross_pct {
        let s1 = next_rand(rng) % shards;
        let s2 = (s1 + 1 + next_rand(rng) % (shards - 1)) % shards;
        let k1 = s1 * kps + next_rand(rng) % loaded;
        let k2 = s2 * kps + next_rand(rng) % loaded;
        return KvOp::MultiAdd { deltas: vec![(k1, -1), (k2, 1)] };
    }
    let base = (next_rand(rng) % shards) * kps;
    let key = base + next_rand(rng) % loaded;
    match next_rand(rng) % 1000 {
        0..=799 => KvOp::Get { key },
        800..=849 => {
            let keys = (0..4).map(|i| base + ((key - base) + i * 37) % loaded).collect();
            KvOp::MultiGet { keys }
        }
        850..=899 => KvOp::ScanPrefix { prefix: key >> 5, shift: 5, limit: 32 },
        900..=949 => KvOp::Put { key, val: next_rand(rng) },
        950..=969 => KvOp::Cas { key, expect: Some(key), new: key },
        970..=989 => {
            let other = base + ((key - base) + 1 + next_rand(rng) % (loaded - 1)) % loaded;
            KvOp::MultiAdd { deltas: vec![(key, -1), (other, 1)] }
        }
        // Mostly-absent keys: the unpopulated upper half of the shard.
        _ => KvOp::Delete { key: base + loaded + next_rand(rng) % loaded },
    }
}

// ------------------------------------------------------------ the modes

struct ModeOut {
    report: ServiceReport,
    submitted: u64,
    rejected: u64,
    wall: Duration,
    /// Submission window only: from the first arrival to the last, before
    /// the pipeline drains. Offered load is `(submitted + rejected) /
    /// arrival` — dividing by `wall` (which includes backend/WAL warm-up
    /// before the loop and the shutdown drain after it) under-reports
    /// offered rate badly on short network runs.
    arrival: Duration,
    /// Effective open-loop arrival tick, µs (0 for non-paced modes).
    tick_us: u64,
}

impl ModeOut {
    /// Offered load over the arrival window (accepted + refused), per sec.
    fn offered_per_sec(&self) -> f64 {
        (self.submitted + self.rejected) as f64 / self.arrival.as_secs_f64().max(1e-9)
    }
}

fn pipeline_cfg(args: &Args) -> PipelineConfig {
    PipelineConfig {
        executors: args.executors,
        multi_key_max: if args.ingest_pct > 0 { 64 } else { PipelineConfig::new().multi_key_max },
        backoff: if args.chaos { BackoffPolicy::exponential() } else { BackoffPolicy::none() },
        idle_jitter_ns: if args.chaos { 500 } else { 0 },
        ..PipelineConfig::new()
    }
}

fn memory_words() -> usize {
    btree::memory_words(KEYS * 8)
}

fn shard_map(args: &Args) -> ShardMap {
    ShardMap::range(args.shards, keys_per_shard(args.shards))
}

/// Populated entries: the first half of every shard's key range, value =
/// key (so CAS with `expect = Some(key)` succeeds until a Put mutates).
fn entries(shards: usize) -> impl Iterator<Item = (u64, u64)> + Clone {
    let kps = keys_per_shard(shards);
    (0..shards as u64).flat_map(move |s| s * kps..s * kps + kps / 2).map(|k| (k, k))
}

/// Open loop: submissions arrive on the clock, never waiting for replies.
/// Pacing is per-arrival with a tick of `max(1/rate, 200 µs)` — fine
/// enough that arrival quantization no longer dominates e2e p90 (the old
/// 1 ms tick put ~1.3 ms of pure batching noise on every percentile).
fn open_loop<B: TmBackend>(pipeline: Pipeline<B>, args: &Args) -> ModeOut {
    let interval_ns = (1_000_000_000u64 / args.rate.max(1)).max(1);
    let tick_ns = interval_ns.max(200_000);
    let per_tick = (tick_ns / interval_ns).max(1);
    let tick = Duration::from_nanos(tick_ns);
    let t0 = Instant::now();
    let (mut submitted, mut rejected) = (0u64, 0u64);
    let client = pipeline.client();
    let mut rng = 0x0B16_5EED ^ args.rate ^ ((args.shards as u64) << 32);
    let mut tick_no = 0u32;
    while t0.elapsed() < args.duration {
        for _ in 0..per_tick {
            match client.submit(gen_op(&mut rng, args)) {
                Ok(pending) => {
                    drop(pending); // fire and forget: latency recorded at reply
                    submitted += 1;
                }
                // A degraded shard refuses updates with a typed error at
                // admission; under --storage-faults that is the designed
                // answer, counted with the overload rejections.
                Err(KvError::Overloaded { .. }) | Err(KvError::Unavailable { .. }) => rejected += 1,
                Err(e) => panic!("open-loop submit failed: {e}"),
            }
        }
        tick_no += 1;
        let next_edge = tick * tick_no;
        let elapsed = t0.elapsed();
        if next_edge > elapsed {
            std::thread::sleep(next_edge - elapsed);
        }
    }
    let arrival = t0.elapsed();
    let report = pipeline.shutdown();
    ModeOut { report, submitted, rejected, wall: t0.elapsed(), arrival, tick_us: tick_ns / 1000 }
}

/// Closed loop: blocking clients, one outstanding request each.
fn closed_loop<B: TmBackend>(pipeline: Pipeline<B>, args: &Args) -> ModeOut {
    let t0 = Instant::now();
    let mut submitted = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.closed_clients)
            .map(|c| {
                let client = pipeline.client();
                let ops = args.closed_ops;
                s.spawn(move || {
                    let mut rng = 0xC105ED ^ (c as u64 + 1);
                    let mut done = 0u64;
                    while done < ops {
                        match client.call(gen_op(&mut rng, args)) {
                            Ok(_) => done += 1,
                            // Answered-or-shed: a typed Unavailable from a
                            // degraded shard is an answer, not a hang.
                            Err(KvError::Unavailable { .. }) => done += 1,
                            Err(KvError::Overloaded { .. }) => std::thread::yield_now(),
                            Err(e) => panic!("closed-loop call failed: {e}"),
                        }
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            submitted += h.join().expect("closed-loop client");
        }
    });
    let arrival = t0.elapsed();
    let report = pipeline.shutdown();
    ModeOut { report, submitted, rejected: 0, wall: t0.elapsed(), arrival, tick_us: 0 }
}

/// Overload: full-speed flood against a tiny queue on one executor. The
/// point is the *admission* behavior, not throughput.
fn overload<B: TmBackend>(pipeline: Pipeline<B>, args: &Args) -> ModeOut {
    let client = pipeline.client();
    let t0 = Instant::now();
    let (mut submitted, mut rejected) = (0u64, 0u64);
    let mut rng = 0x0E_410AD;
    let floods = if args.quick { 50_000 } else { 200_000 };
    let cap = 64 * args.shards + 64; // per-queue bound × shard queues + xqueue
    for i in 0..floods {
        match client.submit(gen_op(&mut rng, args)) {
            Ok(p) => {
                drop(p);
                submitted += 1;
            }
            Err(KvError::Overloaded { .. }) | Err(KvError::Unavailable { .. }) => rejected += 1,
            Err(e) => panic!("overload submit failed: {e}"),
        }
        if i % 1024 == 0 {
            let (ro, rw) = client.queue_depths();
            assert!(ro <= cap && rw <= cap, "queue depth exceeded its cap: ro={ro} rw={rw}");
        }
    }
    let arrival = t0.elapsed();
    let report = pipeline.shutdown();
    ModeOut { report, submitted, rejected, wall: t0.elapsed(), arrival, tick_us: 0 }
}

// -------------------------------------------------- dispatch + checking

/// Fresh WAL directory for one durable bench cell.
fn wal_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "txkv-bench-wal-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn run_mode(backend: Backend, mode: &str, args: &Args) -> ModeOut {
    let words = memory_words();
    let backoff = if args.chaos { BackoffPolicy::exponential() } else { BackoffPolicy::default() };
    macro_rules! dispatch {
        ($mk:expr) => {{
            let cfg = match mode {
                "overload" => PipelineConfig {
                    executors: 1,
                    ro_queue_cap: 64,
                    rw_queue_cap: 64,
                    ..pipeline_cfg(args)
                },
                _ => pipeline_cfg(args),
            };
            let map = shard_map(args);
            let domains = build_domains(&map, $mk, 0, words as u64, entries(args.shards));
            let dir = (args.durability != DurabilityMode::Off).then(wal_dir);
            let pipeline = match &dir {
                None => Pipeline::start_sharded(domains, map, cfg),
                Some(dir) => {
                    let dcfg = DurabilityConfig {
                        group_commit_max: 32,
                        checkpoint_every: 2048,
                        ..DurabilityConfig::new(args.durability, dir)
                    };
                    let wal = WalSet::open(&dcfg, args.shards).expect("bench WAL open");
                    // Make the populated keyspace durable up front, as a
                    // base checkpoint per shard: the on-disk state stays
                    // recoverable from the first appended record on.
                    for s in 0..args.shards {
                        let ents: Vec<(u64, u64)> =
                            entries(args.shards).filter(|&(k, _)| map.shard_of(k) == s).collect();
                        // The --storage-faults plan targets segment files
                        // only, but an injected stall can still land here;
                        // a failed seed checkpoint is non-fatal under
                        // faults (the bench never recovers this dir).
                        let seeded = wal.install_checkpoint(s, &ents);
                        if !args.storage_faults {
                            seeded.expect("bench WAL seed checkpoint");
                        }
                    }
                    Pipeline::start_durable(domains, map, cfg, wal)
                }
            };
            let out = match mode {
                "open" | "sweep" => open_loop(pipeline, args),
                "closed" => closed_loop(pipeline, args),
                "overload" => overload(pipeline, args),
                _ => unreachable!(),
            };
            if let Some(dir) = dir {
                let _ = std::fs::remove_dir_all(dir);
            }
            out
        }};
    }
    match backend {
        Backend::Htm => {
            let cfg = htm_sgl::HtmSglConfig { backoff, ..Default::default() };
            dispatch!(|_s| htm_sgl::HtmSgl::new(HtmConfig::default(), words, cfg.clone()))
        }
        Backend::SiHtm => {
            let cfg = si_htm::SiHtmConfig { backoff, ..Default::default() };
            dispatch!(|_s| si_htm::SiHtm::new(HtmConfig::default(), words, cfg.clone()))
        }
        Backend::P8tm => {
            let cfg = p8tm::P8tmConfig { backoff, ..Default::default() };
            dispatch!(|_s| p8tm::P8tm::new(HtmConfig::default(), words, cfg.clone()))
        }
        Backend::Silo => {
            let cfg = silo::SiloConfig { backoff, ..Default::default() };
            dispatch!(|_s| silo::Silo::with_config(words, cfg.clone()))
        }
    }
}

/// Run one (backend, mode) cell on a watched thread: a hang past the
/// deadline is a failure with an artifact, not a wedged process.
fn monitored(backend: Backend, mode: &'static str, args: &Args) -> Result<ModeOut, String> {
    let deadline = args.duration * 3 + Duration::from_secs(60);
    let worker = {
        let args = args.clone();
        std::thread::spawn(move || run_mode(backend, mode, &args))
    };
    let t0 = Instant::now();
    while !worker.is_finished() {
        if t0.elapsed() > deadline {
            return Err(format!("cell hung (no completion within {deadline:?})"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    worker.join().map_err(|p| {
        let msg = p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string());
        format!("cell panicked: {msg}")
    })
}

fn fail(backend: Backend, mode: &str, detail: &str, out: Option<&ModeOut>) -> ! {
    let mut body = format!(
        "{{\"backend\": \"{}\", \"mode\": \"{mode}\", \"failure\": {:?}",
        backend.name(),
        detail
    );
    if let Some(o) = out {
        let _ = write!(
            body,
            ", \"replies\": {}, \"shed\": {}, \"overloaded\": {}, \"ro_batches\": {}, \
             \"ro_batch_aborts\": {}, \"starved_executors\": {}, \"shards\": {}, \
             \"twopc_prepares\": {}, \"twopc_aborts\": {}",
            o.report.replies,
            o.report.shed,
            o.report.overloaded,
            o.report.ro_batches,
            o.report.ro_batch_aborts,
            o.report.starved_executors,
            o.report.shards,
            o.report.twopc.prepares,
            o.report.twopc.aborts,
        );
    }
    body.push_str("}\n");
    std::fs::write("TXKV_FAILURE.json", &body).expect("write TXKV_FAILURE.json");
    eprintln!("FAIL {} {mode}: {detail}", backend.name());
    eprintln!("failing configuration written to TXKV_FAILURE.json");
    std::process::exit(1);
}

/// The service-level acceptance checks behind `--assert-service`.
fn check(backend: Backend, mode: &str, out: &ModeOut, args: &Args) -> Result<(), String> {
    let r = &out.report;
    if r.panicked_executors != 0 {
        return Err(format!("{} executors panicked", r.panicked_executors));
    }
    if r.replies == 0 {
        return Err("no requests served".into());
    }
    // Cross-shard invariants hold in every mode that generates 2PC work.
    if args.shards > 1 && args.cross_pct > 0 && mode != "overload" {
        if r.twopc.prepares == 0 {
            return Err("cross-shard mix requested but no 2PC transaction ran".into());
        }
        if !args.chaos && !args.storage_faults && r.twopc.aborts != 0 {
            return Err(format!(
                "{} 2PC aborts without chaos (compensation must never trigger)",
                r.twopc.aborts
            ));
        }
    }
    // Durable-run invariants: the log was actually written, fsyncs
    // happened, no sync ack ever preceded its fsync, and nothing was
    // shed for a dead log (the bench scripts no crash).
    if r.durability != "off" {
        if r.wal.wal_appends == 0 {
            return Err("durable run logged no WAL appends".into());
        }
        if r.wal.fsync_batches == 0 {
            return Err("durable run never fsynced".into());
        }
        if r.wal.sync_acks_early != 0 {
            return Err(format!(
                "{} sync ack(s) delivered before the record was durable",
                r.wal.sync_acks_early
            ));
        }
        if r.wal.wal_dead_sheds != 0 {
            return Err(format!(
                "{} request(s) shed for a dead log without a scripted crash",
                r.wal.wal_dead_sheds
            ));
        }
        // Degradation is only legitimate when storage faults are armed:
        // on a clean disk every shard must finish Healthy with zero
        // retries, sheds, or scrubber catches.
        if !args.storage_faults {
            if r.shard_health.iter().any(|&h| h != "healthy") {
                return Err(format!(
                    "shard health {:?} on a clean disk (must all be healthy)",
                    r.shard_health
                ));
            }
            if r.wal.wal_retries + r.wal.degraded_sheds + r.wal.scrub_corruptions != 0 {
                return Err(format!(
                    "clean disk but {} flush retries / {} degraded sheds / {} scrub corruptions",
                    r.wal.wal_retries, r.wal.degraded_sheds, r.wal.scrub_corruptions
                ));
            }
        }
    }
    match mode {
        "open" | "sweep" => {
            if r.starved_executors != 0 && args.shards < args.executors {
                return Err(format!(
                    "{} starved executors under open-loop load",
                    r.starved_executors
                ));
            }
            if r.ro_batches == 0 {
                return Err("no RO batches formed".into());
            }
            // Chaos stalls distort arrival bursts; batching amortization
            // is only asserted on the clean run.
            if !args.chaos && r.mean_ro_batch() <= 1.0 {
                return Err(format!("RO batching never engaged (mean {:.2})", r.mean_ro_batch()));
            }
            // Backend-appropriate RO-abort expectations (see the
            // BENCH_TXKV schema notes): SI-HTM's RO fast path never
            // aborts; P8TM's RO path must at least be *taken* (it can
            // abort and retry); HTM/Silo run RO work as ordinary
            // transactions, so aborts are legal and merely reported.
            match backend {
                Backend::SiHtm => {
                    if r.ro_batch_aborts != 0 {
                        return Err(format!(
                            "SI-HTM RO fast path aborted {} times (must be 0)",
                            r.ro_batch_aborts
                        ));
                    }
                }
                Backend::P8tm => {
                    if r.backend_stats.ro_commits == 0 {
                        return Err("P8TM served RO batches without its RO path".into());
                    }
                }
                Backend::Htm | Backend::Silo => {}
            }
        }
        "overload" if out.rejected == 0 => {
            return Err("overload flood was never shed with Overloaded".into());
        }
        _ => {}
    }
    Ok(())
}

// ------------------------------------------------------------- reporting

fn host_cpus() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn ro_replies(r: &ServiceReport) -> u64 {
    r.class.iter().filter(|cl| cl.class.read_only()).map(|cl| cl.count()).sum()
}

/// Worst final per-shard storage health (schema-v5 `health` column):
/// `healthy` when the cell ran without a WAL.
fn worst_health(r: &ServiceReport) -> &'static str {
    let rank = |h: &str| match h {
        "healthy" => 0,
        "retrying" => 1,
        "read_only" => 2,
        _ => 3,
    };
    r.shard_health.iter().copied().max_by_key(|h| rank(h)).unwrap_or("healthy")
}

fn row_json(backend: Backend, mode: &str, out: &ModeOut, args: &Args) -> String {
    let r = &out.report;
    let s = &r.backend_stats;
    let mut classes = String::from("{");
    let mut first = true;
    for cl in &r.class {
        if cl.count() == 0 {
            continue;
        }
        let (p50, p90, p99, p999) = cl.e2e.percentiles();
        let (s50, _, s99, _) = cl.service.percentiles();
        let _ = write!(
            classes,
            "{}\"{}\": {{\"count\": {}, \"e2e_p50_ns\": {p50}, \"e2e_p90_ns\": {p90}, \
             \"e2e_p99_ns\": {p99}, \"e2e_p999_ns\": {p999}, \"service_p50_ns\": {s50}, \
             \"service_p99_ns\": {s99}}}",
            if first { "" } else { ", " },
            cl.class.name(),
            cl.count(),
        );
        first = false;
    }
    classes.push('}');
    format!(
        "{{\"backend\": \"{}\", \"mode\": \"{mode}\", \"workload\": \"kv\", \"tx_class\": \"all\", \
         \"rate\": {}, \"duration_ms\": {}, \
         \"executors\": {}, \"shards\": {}, \"cross_shard_pct\": {}, \"tick_us\": {}, \"host_cpus\": {}, \
         \"chaos\": {}, \"durability\": \"{}\", \"submitted\": {}, \"rejected\": {}, \
         \"offered_per_sec\": {:.0}, \
         \"replies\": {}, \"shed\": {}, \"overloaded\": {}, \"replies_per_sec\": {:.0}, \
         \"ro_replies_per_sec\": {:.0}, \
         \"ro_batches\": {}, \"ro_batch_ops\": {}, \"mean_ro_batch\": {:.2}, \
         \"max_ro_batch\": {}, \"ro_batch_aborts\": {}, \"starved_executors\": {}, \
         \"executor_backoffs\": {}, \"commits\": {}, \"ro_commits\": {}, \"sgl_commits\": {}, \
         \"aborts\": {}, \"user_aborts\": {}, \"quiesce_waits\": {}, \
         \"twopc_prepares\": {}, \"twopc_aborts\": {}, \"twopc_escalations\": {}, \
         \"twopc_ro_multi\": {}, \
         \"wal_appends\": {}, \"wal_fsync_batches\": {}, \"wal_mean_group_commit\": {:.2}, \
         \"wal_checkpoints\": {}, \"wal_sync_acks_early\": {}, \"wal_dead_sheds\": {}, \
         \"storage_faults\": {}, \"health\": \"{}\", \"wal_retries\": {}, \
         \"degraded_sheds\": {}, \"wal_rejoins\": {}, \"scrub_passes\": {}, \
         \"scrub_corruptions\": {}, \"ckpt_failures\": {}, \
         \"classes\": {classes}}}",
        backend.name(),
        if mode == "open" || mode == "sweep" { args.rate } else { 0 },
        out.wall.as_millis(),
        r.executors,
        r.shards,
        args.cross_pct,
        out.tick_us,
        host_cpus(),
        args.chaos,
        r.durability,
        out.submitted,
        out.rejected,
        out.offered_per_sec(),
        r.replies,
        r.shed,
        r.overloaded,
        r.replies as f64 / out.wall.as_secs_f64(),
        ro_replies(r) as f64 / out.wall.as_secs_f64(),
        r.ro_batches,
        r.ro_batch_ops,
        r.mean_ro_batch(),
        r.max_ro_batch,
        r.ro_batch_aborts,
        r.starved_executors,
        r.executor_backoffs,
        s.commits,
        s.ro_commits,
        s.sgl_commits,
        s.aborts(),
        s.user_aborts,
        s.quiesce_waits,
        r.twopc.prepares,
        r.twopc.aborts,
        r.twopc.escalations,
        r.twopc.ro_multi,
        r.wal.wal_appends,
        r.wal.fsync_batches,
        r.wal.mean_group_commit(),
        r.wal.checkpoints,
        r.wal.sync_acks_early,
        r.wal.wal_dead_sheds,
        args.storage_faults,
        worst_health(r),
        r.wal.wal_retries,
        r.wal.degraded_sheds,
        r.wal.wal_rejoins,
        r.wal.scrub_passes,
        r.wal.scrub_corruptions,
        r.wal.checkpoint_failures,
    )
}

fn print_cell(backend: Backend, mode: &str, args: &Args, out: &ModeOut) {
    let r = &out.report;
    println!(
        "{:>6} {:>8} (shards {}, cross {:>2}%): {:>8} replies ({:>9.0}/s, RO {:>9.0}/s), \
         shed {}, overloaded {}, RO batches {} (mean {:.1}, max {}, aborts {}), \
         2PC {}p/{}a/{}e, starved {}",
        backend.name(),
        mode,
        r.shards,
        args.cross_pct,
        r.replies,
        r.replies as f64 / out.wall.as_secs_f64(),
        ro_replies(r) as f64 / out.wall.as_secs_f64(),
        r.shed,
        r.overloaded,
        r.ro_batches,
        r.mean_ro_batch(),
        r.max_ro_batch,
        r.ro_batch_aborts,
        r.twopc.prepares,
        r.twopc.aborts,
        r.twopc.escalations,
        r.starved_executors,
    );
    if r.durability != "off" {
        println!(
            "         wal[{}]: {} appends, {} fsync batches (mean group {:.1}), \
             {} checkpoints, {} early sync acks",
            r.durability,
            r.wal.wal_appends,
            r.wal.fsync_batches,
            r.wal.mean_group_commit(),
            r.wal.checkpoints,
            r.wal.sync_acks_early,
        );
    }
    let w = &r.wal;
    if w.wal_retries + w.degraded_sheds + w.wal_rejoins + w.scrub_corruptions > 0 {
        println!(
            "         health {:?} (worst {}): {} flush retries, {} degraded sheds, \
             {} rejoins, {} ckpt failures; scrub {} passes / {} corruptions",
            r.shard_health,
            worst_health(r),
            w.wal_retries,
            w.degraded_sheds,
            w.wal_rejoins,
            w.checkpoint_failures,
            w.scrub_passes,
            w.scrub_corruptions,
        );
    }
    for cl in &r.class {
        if cl.count() == 0 {
            continue;
        }
        let (p50, _, p99, p999) = cl.e2e.percentiles();
        println!(
            "         {:<9} n={:<8} e2e p50/p99/p999 = {}/{}/{} ns",
            cl.class.name(),
            cl.count(),
            p50,
            p99,
            p999
        );
    }
}

fn run_cell(backend: Backend, mode: &'static str, args: &Args, rows: &mut Vec<String>) -> ModeOut {
    match monitored(backend, mode, args) {
        Ok(out) => {
            print_cell(backend, mode, args, &out);
            if args.assert_service {
                if let Err(detail) = check(backend, mode, &out, args) {
                    fail(backend, mode, &detail, Some(&out));
                }
            }
            rows.push(row_json(backend, mode, &out, args));
            out
        }
        Err(detail) => fail(backend, mode, &detail, None),
    }
}

/// The scale-out grid: SI-HTM at a saturating arrival rate, shards ×
/// cross-shard mix. Returns `(shards, cross_pct, ro_replies_per_sec)`
/// per cell for the scaling assertion.
fn run_sweep(args: &Args, rows: &mut Vec<String>) -> Vec<(usize, u64, f64)> {
    let shard_counts: &[usize] = if args.quick { &[1, 4] } else { &[1, 2, 4] };
    let mixes: &[u64] = if args.quick { &[0, 10] } else { &[0, 1, 10] };
    let mut cells = Vec::new();
    for &shards in shard_counts {
        for &cross in mixes {
            if shards == 1 && cross > 0 {
                continue; // no cross-shard work exists with one shard
            }
            let cell_args = Args {
                shards,
                cross_pct: cross,
                rate: if args.quick { 400_000 } else { 600_000 },
                duration: if args.quick {
                    Duration::from_millis(500)
                } else {
                    Duration::from_millis(1_500)
                },
                executors: 16,
                sweep: true,
                ..args.clone()
            };
            let out = run_cell(Backend::SiHtm, "sweep", &cell_args, rows);
            let ro_rate = ro_replies(&out.report) as f64 / out.wall.as_secs_f64();
            cells.push((shards, cross, ro_rate));
        }
    }
    cells
}

/// The durability cost legs: SI-HTM open loop at Off / Async / Sync,
/// same arrival rate — the per-row `durability` column plus
/// `replies_per_sec` is the Sync-vs-Off overhead headline. On SI-HTM the
/// RO fast path must stay abort-free in every mode (logging sits
/// strictly after commit, outside the transactions), which
/// `--assert-service` enforces per cell.
fn run_durability_sweep(args: &Args, rows: &mut Vec<String>) {
    let mut rates: Vec<(DurabilityMode, f64)> = Vec::new();
    for mode in [DurabilityMode::Off, DurabilityMode::Async, DurabilityMode::Sync] {
        let cell_args = Args { durability: mode, sweep: false, ..args.clone() };
        let out = run_cell(Backend::SiHtm, "open", &cell_args, rows);
        rates.push((mode, out.report.replies as f64 / out.wall.as_secs_f64()));
    }
    let off = rates[0].1;
    for &(mode, rate) in &rates[1..] {
        println!(
            "durability: {:>5} {:>9.0} replies/s = {:.1}% of off ({:.0}/s)",
            mode.name(),
            rate,
            100.0 * rate / off.max(1.0),
            off
        );
    }
}

// ---------------------------------------------------- tpcc-service mode

/// TPC-C scale for the service cells: `tiny` for `--quick`, a deeper
/// 4-warehouse configuration otherwise; both with the spec's 60 %
/// select-by-last-name rule so the secondary index is on the hot path.
fn tpcc_cfg(quick: bool, mix: TxMix) -> TpccConfig {
    let mut cfg = TpccConfig::tiny(mix);
    if !quick {
        cfg.warehouses = 4;
        cfg.districts_per_w = 4;
        cfg.customers_per_d = 64;
        cfg.items = 256;
        cfg.order_ring = 128;
        cfg.initial_orders = 48;
        cfg.delivered_prefix = 32;
        cfg.history_ring = 64;
    }
    cfg.by_lastname_pct = 60;
    cfg
}

/// Registered-procedure pipelines size executor scratches for
/// `PROC_WRITE_MAX`-key write sets; the arena must be deep enough to
/// fund them all at startup (see `txkv::proc`).
const TPCC_WORDS: u64 = 1 << 20;

struct TpccOut {
    report: ServiceReport,
    mix: MixOutcome,
    wall: Duration,
    /// Secondary-index hits during the measured mix (schema-layer
    /// counter): must cover every by-last-name selection.
    index_hits: u64,
}

fn run_tpcc<B: TmBackend>(mut mk: impl FnMut(usize) -> B, args: &Args, mix: TxMix) -> TpccOut {
    let cfg = tpcc_cfg(args.quick, mix);
    let shards = if args.shards > 1 { args.shards } else { 2 };
    let map = service::shard_map(&cfg, shards);
    let domains = build_domains(&map, &mut mk, 0, TPCC_WORDS, std::iter::empty());
    service::load_items(&domains, &cfg);
    let pcfg =
        PipelineConfig { executors: args.executors, multi_key_max: 32, ..PipelineConfig::new() };
    let pipeline = Pipeline::start_with(domains, map, pcfg, None, Some(service::registry(&cfg)));
    let client = pipeline.client();
    let pop = service::populate(&cfg);
    service::load_warehouses(&client, &cfg, &pop, 32);
    let (clients, ops) = if args.quick { (4, 300) } else { (8, 1_500) };
    let hits0 = index_hits();
    let t0 = Instant::now();
    let out =
        service::run_mix(&client, &cfg, &pop, clients, ops, 0xBE9C ^ mix.new_order as u64, None);
    let wall = t0.elapsed();
    let hits = index_hits() - hits0;
    let report = pipeline.shutdown();
    TpccOut { report, mix: out, wall, index_hits: hits }
}

/// The per-class acceptance checks behind `--assert-service` in
/// tpcc-service mode: every class commits and records latency, nothing
/// sheds, the last-name path is index-served, cross-shard work took the
/// 2PC path, the read-only classes rode the RO batch path, and every
/// class meets a (generous, hardware-independent) service-p99 ceiling.
fn check_tpcc(backend: Backend, t: &TpccOut) -> Result<(), String> {
    let r = &t.report;
    if r.panicked_executors != 0 {
        return Err(format!("{} executors panicked", r.panicked_executors));
    }
    if t.mix.shed != 0 {
        return Err(format!("{} request(s) shed without a crash", t.mix.shed));
    }
    for cls in TxClass::ALL {
        if t.mix.acked[cls.index()] == 0 {
            return Err(format!("{} never committed", cls.name()));
        }
        let lat = r
            .procs
            .iter()
            .find(|p| p.proc == cls.proc_id())
            .ok_or_else(|| format!("no latency row for {}", cls.name()))?;
        if lat.count() == 0 {
            return Err(format!("no recorded latency for {}", cls.name()));
        }
        let (_, _, e99, _) = lat.e2e.percentiles();
        let (_, _, s99, _) = lat.service.percentiles();
        if s99 > 250_000_000 {
            return Err(format!(
                "{} service p99 {s99} ns breaches the 250 ms class SLO",
                cls.name()
            ));
        }
        if e99 > 1_000_000_000 {
            return Err(format!("{} e2e p99 {e99} ns breaches the 1 s class SLO", cls.name()));
        }
    }
    if t.mix.lastname_acks == 0 {
        return Err("the 60 % by-name rule never fired".into());
    }
    if t.index_hits < t.mix.lastname_acks {
        return Err(format!(
            "{} by-name selections but only {} index hits — the last-name path is \
             not index-served",
            t.mix.lastname_acks, t.index_hits
        ));
    }
    if r.twopc.prepares == 0 {
        return Err("no cross-shard 2PC ran (remote payments / order lines)".into());
    }
    if r.ro_batch_ops == 0 {
        return Err("order-status/stock-level never rode the RO batch path".into());
    }
    if matches!(backend, Backend::SiHtm) && r.ro_batch_aborts != 0 {
        return Err(format!("SI-HTM RO fast path aborted {} times (must be 0)", r.ro_batch_aborts));
    }
    Ok(())
}

/// One artifact row per transaction class (schema v4 `tx_class`).
fn tpcc_rows(backend: Backend, mix_name: &str, t: &TpccOut, rows: &mut Vec<String>) {
    let r = &t.report;
    for cls in TxClass::ALL {
        let Some(lat) = r.procs.iter().find(|p| p.proc == cls.proc_id()) else {
            continue;
        };
        let (p50, p90, p99, p999) = lat.e2e.percentiles();
        let (s50, _, s99, _) = lat.service.percentiles();
        rows.push(format!(
            "{{\"backend\": \"{}\", \"mode\": \"tpcc-service\", \"workload\": \"tpcc\", \
             \"tx_class\": \"{}\", \"mix\": \"{mix_name}\", \"shards\": {}, \"executors\": {}, \
             \"duration_ms\": {}, \"host_cpus\": {}, \"durability\": \"{}\", \"count\": {}, \
             \"acked\": {}, \"user_aborts\": {}, \"e2e_p50_ns\": {p50}, \"e2e_p90_ns\": {p90}, \
             \"e2e_p99_ns\": {p99}, \"e2e_p999_ns\": {p999}, \"service_p50_ns\": {s50}, \
             \"service_p99_ns\": {s99}, \"replies_per_sec\": {:.0}, \"index_hits\": {}, \
             \"lastname_acks\": {}, \"twopc_prepares\": {}, \"twopc_aborts\": {}, \
             \"ro_batch_ops\": {}, \"ro_batch_aborts\": {}}}",
            backend.name(),
            cls.name(),
            r.shards,
            r.executors,
            t.wall.as_millis(),
            host_cpus(),
            r.durability,
            lat.count(),
            t.mix.acked[cls.index()],
            t.mix.user_aborted[cls.index()],
            r.replies as f64 / t.wall.as_secs_f64(),
            t.index_hits,
            t.mix.lastname_acks,
            r.twopc.prepares,
            r.twopc.aborts,
            r.ro_batch_ops,
            r.ro_batch_aborts,
        ));
    }
}

fn run_tpcc_cell(
    backend: Backend,
    mix_name: &'static str,
    mix: TxMix,
    args: &Args,
    rows: &mut Vec<String>,
) {
    let words = TPCC_WORDS as usize;
    let t = match backend {
        Backend::Htm => run_tpcc(|_s| htm_sgl::HtmSgl::with_defaults(words), args, mix),
        Backend::SiHtm => run_tpcc(|_s| si_htm::SiHtm::with_defaults(words), args, mix),
        Backend::P8tm => run_tpcc(|_s| p8tm::P8tm::with_defaults(words), args, mix),
        Backend::Silo => run_tpcc(|_s| silo::Silo::with_defaults(words), args, mix),
    };
    let r = &t.report;
    println!(
        "{:>6} tpcc/{:<14} (shards {}): {:>7} replies ({:>7.0}/s), 2PC {}p/{}a, \
         RO-batch ops {}, index hits {} (by-name acks {})",
        backend.name(),
        mix_name,
        r.shards,
        r.replies,
        r.replies as f64 / t.wall.as_secs_f64(),
        r.twopc.prepares,
        r.twopc.aborts,
        r.ro_batch_ops,
        t.index_hits,
        t.mix.lastname_acks,
    );
    for cls in TxClass::ALL {
        if let Some(lat) = r.procs.iter().find(|p| p.proc == cls.proc_id()) {
            let (p50, _, p99, _) = lat.e2e.percentiles();
            let (s50, _, s99, _) = lat.service.percentiles();
            println!(
                "         {:<12} n={:<7} e2e p50/p99 = {}/{} ns, service p50/p99 = {}/{} ns",
                cls.name(),
                lat.count(),
                p50,
                p99,
                s50,
                s99
            );
        }
    }
    if args.assert_service {
        if let Err(detail) = check_tpcc(backend, &t) {
            fail(backend, "tpcc-service", &detail, None);
        }
    }
    tpcc_rows(backend, mix_name, &t, rows);
}

// ---------------------------------------------------------- network soak

/// The loopback soak's demo tenants (also what `--listen` serves):
/// tenant 1 is protected (priority 0, generous quota), tenant 2 is the
/// noisy neighbor — a modest contract it will flood far past.
const NET_PROT: u64 = 1;
const NET_PROT_TOKEN: u64 = 0x70726f74; // "prot"
const NET_NOISY: u64 = 2;
const NET_NOISY_TOKEN: u64 = 0x6e6f6973; // "nois"

fn net_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            id: NET_PROT,
            token: NET_PROT_TOKEN,
            priority: 0,
            rate: 5_000_000,
            burst: 5_000_000,
        },
        TenantSpec { id: NET_NOISY, token: NET_NOISY_TOKEN, priority: 2, rate: 5_000, burst: 500 },
    ]
}

fn net_uds_path() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "txkv-bench-net-{}-{}.sock",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn net_server_config(transport: &str) -> NetServerConfig {
    NetServerConfig {
        tcp: (transport == "tcp").then(|| "127.0.0.1:0".to_string()),
        uds: (transport == "uds").then(net_uds_path),
        window: 128,
        tenants: net_tenants(),
        shed: ShedConfig::new(),
    }
}

fn net_connect(server: &NetServer, tenant: u64, token: u64) -> NetClient {
    match server.tcp_addr() {
        Some(addr) => NetClient::connect_tcp(addr, tenant, token),
        None => NetClient::connect_uds(server.uds_path().expect("a listener"), tenant, token),
    }
    .expect("bench net connect")
}

struct NetPhaseOut {
    report: ServiceReport,
    net: NetReport,
    wall: Duration,
    /// Requests the noisy floods pushed onto the wire (contended only).
    noisy_submitted: u64,
}

fn net_tenant(net: &NetReport, id: u64) -> &txkv_net::TenantReport {
    net.tenants.iter().find(|t| t.tenant == id).expect("tenant in net report")
}

/// The protected tenant's lightly paced closed loop: its offered load is
/// identical in both phases, so its server-edge e2e percentiles compare
/// directly. Every call must be answered — a refusal or a shed of the
/// protected tenant is a bench failure, phase-independent.
fn net_protected_load(server: &NetServer, args: &Args) {
    let client = net_connect(server, NET_PROT, NET_PROT_TOKEN);
    let ops = args.closed_ops;
    let mut rng = 0x9e7_5eed;
    for _ in 0..ops {
        match client.call(&gen_op(&mut rng, args)) {
            Ok(txkv::KvReply::Shed) => panic!("protected tenant's request was shed"),
            Ok(_) => {}
            Err(e) => panic!("protected tenant refused/errored: {e}"),
        }
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// One noisy connection flooding open-loop: fire-and-forget submissions
/// as fast as the window admits. Refusals come back as frames and are
/// counted server-side; the flood itself never waits for them.
fn net_noisy_flood(
    server: &NetServer,
    args: &Args,
    stop: &std::sync::atomic::AtomicBool,
    submitted: &std::sync::atomic::AtomicU64,
) {
    use std::sync::atomic::Ordering;
    let client = net_connect(server, NET_NOISY, NET_NOISY_TOKEN);
    let mut rng = 0x5015_E0F5;
    while !stop.load(Ordering::Relaxed) {
        match client.submit(&gen_op(&mut rng, args)) {
            Ok(pending) => {
                drop(pending); // open loop: the reply (or refusal) is the server's problem
                submitted.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => break, // server going away: the phase is over
        }
    }
}

/// One soak phase over a fresh pipeline + server: the protected tenant's
/// paced closed loop, plus (contended) two noisy connections flooding
/// open-loop as fast as their windows admit — far past the noisy
/// tenant's 5 k/s contract, so per-tenant admission (not the backend
/// queue) is what answers.
fn run_net_phase(args: &Args, transport: &str, contended: bool) -> NetPhaseOut {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    let backoff = if args.chaos { BackoffPolicy::exponential() } else { BackoffPolicy::default() };
    let words = memory_words();
    let map = shard_map(args);
    let cfg = si_htm::SiHtmConfig { backoff, ..Default::default() };
    let domains = build_domains(
        &map,
        |_s| si_htm::SiHtm::new(HtmConfig::default(), words, cfg.clone()),
        0,
        words as u64,
        entries(args.shards),
    );
    let pipeline = Pipeline::start_sharded(domains, map, pipeline_cfg(args));
    let server =
        NetServer::start(pipeline.client(), net_server_config(transport)).expect("net server");
    let t0 = Instant::now();
    let stop = AtomicBool::new(false);
    let noisy_submitted = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..if contended { 2 } else { 0 } {
            s.spawn(|| net_noisy_flood(&server, args, &stop, &noisy_submitted));
        }
        net_protected_load(&server, args);
        // Keep the flood running a beat past the protected loop so the
        // contention covers its whole measurement window.
        std::thread::sleep(Duration::from_millis(100));
        stop.store(true, Ordering::Relaxed);
    });
    // Order matters: drain the pipeline first (every in-flight slot is
    // filled, so every frame reaches a connection buffer), then stop the
    // server and take the wire-level books.
    let report = pipeline.shutdown();
    let net = server.shutdown();
    NetPhaseOut {
        report,
        net,
        wall: t0.elapsed(),
        noisy_submitted: noisy_submitted.load(Ordering::Relaxed),
    }
}

/// Scheduler-noise floor for the p99 ratio gate: below this absolute
/// latency the 1.5× comparison measures the OS, not the service.
const NET_P99_FLOOR_NS: u64 = 2_000_000;

/// The `--assert-service` gates for the network soak (ISSUE acceptance):
/// answered-or-shed at the wire, zero starved executors, the noisy
/// tenant typed-refused per-tenant, and the protected tenant's contended
/// p99 within 1.5× of its solo baseline.
fn check_net(transport: &str, solo: &NetPhaseOut, contended: &NetPhaseOut) -> Result<(), String> {
    for (phase, out) in [("solo", solo), ("contended", contended)] {
        if out.report.panicked_executors != 0 {
            return Err(format!("{phase}: {} executors panicked", out.report.panicked_executors));
        }
        if out.report.starved_executors != 0 {
            return Err(format!("{phase}: {} starved executors", out.report.starved_executors));
        }
        if out.net.accepted != out.net.answered() {
            return Err(format!(
                "{phase}: answered-or-shed broken at the wire: accepted {} != answered {} \
                 (replies_to_dead {})",
                out.net.accepted,
                out.net.answered(),
                out.net.replies_to_dead
            ));
        }
        let prot = net_tenant(&out.net, NET_PROT);
        if prot.refused() != 0 {
            return Err(format!("{phase}: protected tenant refused {} times", prot.refused()));
        }
        if prot.shed != 0 {
            return Err(format!("{phase}: protected tenant shed {} times", prot.shed));
        }
        if prot.answered == 0 {
            return Err(format!("{phase}: protected tenant was never served over {transport}"));
        }
    }
    let noisy = net_tenant(&contended.net, NET_NOISY);
    if noisy.refused_quota + noisy.refused_pressure == 0 {
        return Err(format!(
            "noisy tenant was never throttled ({} submitted, {} accepted)",
            contended.noisy_submitted, noisy.accepted
        ));
    }
    if noisy.answered == 0 {
        return Err("throttling blackholed the noisy tenant (within-quota load must serve)".into());
    }
    let solo_p99 = net_tenant(&solo.net, NET_PROT).e2e.quantile(0.99);
    let cont_p99 = net_tenant(&contended.net, NET_PROT).e2e.quantile(0.99);
    let ceiling = ((solo_p99 as f64 * 1.5) as u64).max(NET_P99_FLOOR_NS);
    if cont_p99 > ceiling {
        return Err(format!(
            "protected tenant p99 {cont_p99} ns under contention exceeds 1.5× its solo \
             baseline {solo_p99} ns (ceiling {ceiling} ns): the noisy neighbor leaked through"
        ));
    }
    Ok(())
}

fn fail_net(
    transport: &str,
    detail: &str,
    solo: Option<&NetPhaseOut>,
    cont: Option<&NetPhaseOut>,
) -> ! {
    let mut body =
        format!("{{\"mode\": \"net\", \"transport\": \"{transport}\", \"failure\": {detail:?}");
    for (phase, out) in [("solo", solo), ("contended", cont)] {
        let Some(o) = out else { continue };
        let _ = write!(
            body,
            ", \"{phase}\": {{\"requests\": {}, \"accepted\": {}, \"answered\": {}, \
             \"refused_quota\": {}, \"refused_pressure\": {}, \"refused_backend\": {}, \
             \"replies_to_dead\": {}, \"proto_errors\": {}, \"starved_executors\": {}, \
             \"noisy_submitted\": {}}}",
            o.net.requests,
            o.net.accepted,
            o.net.answered(),
            o.net.refused_quota,
            o.net.refused_pressure,
            o.net.refused_backend,
            o.net.replies_to_dead,
            o.net.proto_errors,
            o.report.starved_executors,
            o.noisy_submitted,
        );
    }
    body.push_str("}\n");
    std::fs::write("NET_FAILURE.json", &body).expect("write NET_FAILURE.json");
    eprintln!("FAIL net/{transport}: {detail}");
    eprintln!("failing configuration written to NET_FAILURE.json");
    std::process::exit(1);
}

/// One schema-v6 net row: a tenant's wire-level accounting in one phase.
fn net_row(
    transport: &str,
    phase: &str,
    out: &NetPhaseOut,
    t: &txkv_net::TenantReport,
    solo_p99: u64,
    args: &Args,
) -> String {
    let (p50, _, p99, p999) = t.e2e.percentiles();
    format!(
        "{{\"backend\": \"si-htm\", \"mode\": \"net\", \"workload\": \"kv\", \"tx_class\": \"all\", \
         \"transport\": \"{transport}\", \"phase\": \"{phase}\", \"tenant\": {}, \
         \"priority\": {}, \"protected\": {}, \"duration_ms\": {}, \"host_cpus\": {}, \
         \"chaos\": {}, \"offered\": {}, \"accepted\": {}, \"answered\": {}, \"shed\": {}, \
         \"refused_quota\": {}, \"refused_pressure\": {}, \"refused_backend\": {}, \
         \"offered_per_sec\": {:.0}, \"replies_to_dead\": {}, \"proto_errors\": {}, \
         \"e2e_p50_ns\": {p50}, \"e2e_p99_ns\": {p99}, \"e2e_p999_ns\": {p999}, \
         \"solo_p99_ns\": {solo_p99}}}",
        t.tenant,
        t.priority,
        t.priority == 0,
        out.wall.as_millis(),
        host_cpus(),
        args.chaos,
        t.offered,
        t.accepted,
        t.answered,
        t.shed,
        t.refused_quota,
        t.refused_pressure,
        t.refused_backend,
        t.offered as f64 / out.wall.as_secs_f64().max(1e-9),
        out.net.replies_to_dead,
        out.net.proto_errors,
    )
}

fn print_net_phase(transport: &str, phase: &str, out: &NetPhaseOut) {
    println!(
        "si-htm net/{transport} {phase:>9}: {} requests, {} accepted, {} answered, \
         {} refused (quota {} / pressure {} / backend {}), {} to-dead, starved {}",
        out.net.requests,
        out.net.accepted,
        out.net.answered(),
        out.net.refused_quota + out.net.refused_pressure + out.net.refused_backend,
        out.net.refused_quota,
        out.net.refused_pressure,
        out.net.refused_backend,
        out.net.replies_to_dead,
        out.report.starved_executors,
    );
    for t in &out.net.tenants {
        let (p50, _, p99, _) = t.e2e.percentiles();
        println!(
            "         tenant {} (prio {}): offered {:>8}, answered {:>8}, refused {:>8}, \
             e2e p50/p99 = {}/{} ns",
            t.tenant,
            t.priority,
            t.offered,
            t.answered,
            t.refused(),
            p50,
            p99,
        );
    }
}

/// The `--net` soak: solo baseline then contended run, on a watched
/// thread each (a wedged reactor or executor is a failure artifact, not
/// a hung CI job).
fn run_net(args: &Args, rows: &mut Vec<String>) {
    let transport = args.net.clone().expect("run_net needs --net");
    let run = |contended: bool| -> NetPhaseOut {
        let (args, tr) = (args.clone(), transport.clone());
        let worker = std::thread::spawn(move || run_net_phase(&args, &tr, contended));
        let deadline = Instant::now() + Duration::from_secs(120);
        while !worker.is_finished() {
            if Instant::now() > deadline {
                fail_net(&transport, "net phase hung (no completion within 120s)", None, None);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        match worker.join() {
            Ok(out) => out,
            Err(p) => {
                let msg = p
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                fail_net(&transport, &format!("net phase panicked: {msg}"), None, None)
            }
        }
    };
    let solo = run(false);
    print_net_phase(&transport, "solo", &solo);
    let contended = run(true);
    print_net_phase(&transport, "contended", &contended);
    let solo_p99 = net_tenant(&solo.net, NET_PROT).e2e.quantile(0.99);
    let cont_p99 = net_tenant(&contended.net, NET_PROT).e2e.quantile(0.99);
    println!(
        "net/{transport}: protected p99 solo {solo_p99} ns → contended {cont_p99} ns \
         ({:.2}×), noisy throttled {} of {} offered",
        cont_p99 as f64 / solo_p99.max(1) as f64,
        net_tenant(&contended.net, NET_NOISY).refused(),
        net_tenant(&contended.net, NET_NOISY).offered,
    );
    if args.assert_service {
        if let Err(detail) = check_net(&transport, &solo, &contended) {
            fail_net(&transport, &detail, Some(&solo), Some(&contended));
        }
    }
    rows.push(net_row(&transport, "solo", &solo, net_tenant(&solo.net, NET_PROT), solo_p99, args));
    for t in &contended.net.tenants {
        rows.push(net_row(&transport, "contended", &contended, t, solo_p99, args));
    }
}

// ------------------------------------------------- standalone net modes

/// `--listen`: serve a fresh SI-HTM pipeline over TCP and/or UDS until
/// stdin closes, then print both reports. The demo tenants are printed
/// so a `--connect` peer knows what to authenticate as.
fn run_listen(args: &Args) {
    let cfg = NetServerConfig {
        tcp: args.listen.clone(),
        uds: args.listen_uds.clone().map(Into::into),
        window: 128,
        tenants: net_tenants(),
        shed: ShedConfig::new(),
    };
    let backoff = BackoffPolicy::default();
    let words = memory_words();
    let map = shard_map(args);
    let scfg = si_htm::SiHtmConfig { backoff, ..Default::default() };
    let domains = build_domains(
        &map,
        |_s| si_htm::SiHtm::new(HtmConfig::default(), words, scfg.clone()),
        0,
        words as u64,
        entries(args.shards),
    );
    let pipeline = Pipeline::start_sharded(domains, map, pipeline_cfg(args));
    let server = NetServer::start(pipeline.client(), cfg).expect("net server");
    if let Some(addr) = server.tcp_addr() {
        println!("listening tcp {addr}");
    }
    if let Some(path) = server.uds_path() {
        println!("listening uds {}", path.display());
    }
    println!(
        "tenants: {NET_PROT} (token {NET_PROT_TOKEN}, protected), \
         {NET_NOISY} (token {NET_NOISY_TOKEN}, 5k/s quota); close stdin to stop"
    );
    let mut sink = String::new();
    while std::io::stdin().read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
        sink.clear();
    }
    let report = pipeline.shutdown();
    let net = server.shutdown();
    println!(
        "served {} replies ({} shed); wire: {} requests, {} accepted, {} answered, {} refused",
        report.replies,
        report.shed,
        net.requests,
        net.accepted,
        net.answered(),
        net.refused_quota + net.refused_pressure + net.refused_backend,
    );
}

/// `--connect`: closed-loop clients against a remote server, reporting
/// client-observed latency (the full wire round trip, unlike the
/// server-edge histograms in the loopback soak).
fn run_connect(args: &Args) {
    let connect = || -> NetClient {
        match (&args.connect, &args.connect_uds) {
            (Some(addr), _) => NetClient::connect_tcp(addr.as_str(), args.tenant, args.token),
            (None, Some(path)) => NetClient::connect_uds(path, args.tenant, args.token),
            (None, None) => unreachable!(),
        }
        .expect("connect to remote server")
    };
    let mut hist = tm_api::LatencyHist::new();
    let (mut ok, mut refused) = (0u64, 0u64);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.closed_clients)
            .map(|c| {
                let client = connect();
                let ops = args.closed_ops;
                s.spawn(move || {
                    let mut hist = tm_api::LatencyHist::new();
                    let mut rng = 0xC0_44EC7 ^ (c as u64 + 1);
                    let (mut ok, mut refused) = (0u64, 0u64);
                    for _ in 0..ops {
                        let op_t0 = Instant::now();
                        match client.call(&gen_op(&mut rng, args)) {
                            Ok(_) => {
                                hist.record(op_t0.elapsed());
                                ok += 1;
                            }
                            Err(txkv_net::NetError::Refused(_)) => refused += 1,
                            Err(e) => panic!("remote call failed: {e}"),
                        }
                    }
                    (hist, ok, refused)
                })
            })
            .collect();
        for h in handles {
            let (h_hist, h_ok, h_refused) = h.join().expect("connect client");
            hist.merge(&h_hist);
            ok += h_ok;
            refused += h_refused;
        }
    });
    let wall = t0.elapsed();
    let (p50, p90, p99, p999) = hist.percentiles();
    println!(
        "tenant {}: {} ok, {} refused in {:?} ({:.0}/s); \
         client e2e p50/p90/p99/p999 = {p50}/{p90}/{p99}/{p999} ns",
        args.tenant,
        ok,
        refused,
        wall,
        ok as f64 / wall.as_secs_f64().max(1e-9),
    );
}

fn main() {
    let args = parse_args();
    if args.listen.is_some() || args.listen_uds.is_some() {
        run_listen(&args);
        return;
    }
    if args.connect.is_some() || args.connect_uds.is_some() {
        run_connect(&args);
        return;
    }
    if args.storage_faults {
        assert!(
            args.durability != DurabilityMode::Off || args.durability_sweep,
            "--storage-faults needs a WAL to fault: add --durability async|sync \
             (or --durability-sweep)"
        );
    }
    let fault_guard = args.storage_faults.then(|| {
        // Probabilistic bad-disk weather over every durable cell's WAL
        // segment files (the bench's own temp dirs only, via the tag):
        // occasional fsync failures and short writes exercise the
        // rotate-and-rewrite retry path, bit corruption feeds the
        // scrubber, stalls stretch group-commit windows. Checkpoint
        // files are left alone so cell setup stays deterministic.
        storage_faults::install(
            FaultPlan {
                target: FaultTarget::Segment,
                sync_fail_p: 0.002,
                short_write_p: 0.001,
                corrupt_p: 0.0005,
                stall_p: 0.002,
                stall_max_us: 50,
                ..FaultPlan::default()
            }
            .tagged("txkv-bench-wal-")
            .seeded(0x51F7),
        )
    });
    let chaos_guard = args.chaos.then(|| {
        chaos::install(ChaosConfig {
            seed: 0x7C4F,
            abort_access: 0.002,
            abort_commit: 0.001,
            capacity_share: 0.5,
            stall: 0.002,
            stall_max_us: 20,
            panic: 0.0,
        })
    });

    let mut rows = Vec::new();
    if args.net.is_some() {
        // The network soak replaces the in-process kv modes for the run.
        run_net(&args, &mut rows);
    } else if args.tpcc_service {
        // TPC-C through the typed service layer replaces the kv modes.
        for &backend in &args.backends {
            for (mix_name, mix) in
                [("standard", TxMix::standard()), ("read_dominated", TxMix::read_dominated())]
            {
                run_tpcc_cell(backend, mix_name, mix, &args, &mut rows);
            }
        }
    } else {
        let modes: &[&'static str] = &["open", "closed", "overload"];
        for &backend in &args.backends {
            for &mode in modes {
                run_cell(backend, mode, &args, &mut rows);
            }
        }
    }
    if args.durability_sweep {
        run_durability_sweep(&args, &mut rows);
    }
    if args.sweep {
        let cells = run_sweep(&args, &mut rows);
        let base = cells.iter().find(|&&(s, c, _)| s == 1 && c == 0).map(|&(_, _, r)| r);
        let four = cells.iter().find(|&&(s, c, _)| s == 4 && c == 0).map(|&(_, _, r)| r);
        if let (Some(base), Some(four)) = (base, four) {
            let ratio = four / base.max(1.0);
            let cpus = host_cpus();
            println!("sweep: RO scaling 1→4 shards = {ratio:.2}× ({cpus} host cpus)");
            // The scale-out claim needs hardware that can express it: with
            // 4 shards' executors folded onto fewer than 4 cores, the OS
            // time-slices the domains and wall-clock speedup is bounded at
            // 1× regardless of how much coordination sharding removed (the
            // isolation still shows in the per-shard quiesce counters).
            // Assert the ratio only where it is measurable; everywhere,
            // assert sharding does not *regress* throughput.
            if args.assert_service {
                if cpus >= 4 && ratio < 2.5 {
                    fail(
                        Backend::SiHtm,
                        "sweep",
                        &format!(
                            "4-shard RO throughput only {ratio:.2}× the 1-shard figure \
                             (< 2.5× on a {cpus}-cpu host)"
                        ),
                        None,
                    );
                }
                if ratio < 0.7 {
                    fail(
                        Backend::SiHtm,
                        "sweep",
                        &format!("sharding regressed RO throughput to {ratio:.2}× (< 0.7×)"),
                        None,
                    );
                }
            }
        }
    }
    if let Some(guard) = chaos_guard {
        let report = guard.report();
        println!(
            "chaos: injected {} aborts, {} stalls",
            report.injected_aborts, report.injected_stalls
        );
    }
    if let Some(guard) = fault_guard {
        let f = guard.report();
        println!(
            "storage faults: {} fsync failures, {} short writes, {} corruptions, {} stalls",
            f.sync_fails, f.short_writes, f.corruptions, f.stalls
        );
    }

    let mut json = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(json, "  {row}{sep}");
    }
    json.push(']');
    let out = "BENCH_TXKV.json";
    schema::BENCH_TXKV.write(out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");
}
