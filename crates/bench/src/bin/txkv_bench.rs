//! txkv service bench: open-loop and closed-loop load against the
//! [`txkv::Pipeline`] on every backend, reporting per-op-class latency
//! SLOs (e2e p50/p90/p99/p999 + service p50/p99) and the RO-batching
//! counters, plus a deliberate overload phase proving admission control
//! sheds with a typed error instead of growing the queue.
//!
//! Modes, per backend:
//!
//! * **open** — fixed-arrival-rate load (arrivals are generated in 1 ms
//!   ticks, `rate/1000` submissions per tick, fire-and-forget), 90 % of
//!   ops read-only. Latency is recorded by the pipeline at reply time,
//!   so the generator never blocks on completions — a real open loop.
//! * **closed** — classic blocking request/reply clients.
//! * **overload** — a full-speed flood against a tiny admission queue;
//!   asserts `Overloaded` rejections happen and queue depth stays
//!   bounded.
//!
//! Results go to `BENCH_TXKV.json` in the versioned `bench::schema`
//! envelope. With `--assert-service` the run enforces the service-level
//! acceptance checks (no starved executors, RO batching engaged, zero
//! RO aborts on SI-HTM, overload sheds typed); a violation writes
//! `TXKV_FAILURE.json` and exits non-zero, mirroring the chaos-soak
//! failure-artifact pattern. `--chaos` arms the runtime fault injector
//! for the open-loop phase and checks liveness under a deadline.
//!
//! Usage: `cargo run --release --bin txkv_bench [-- --quick] [--smoke]
//!         [--backends si-htm,htm] [--rate N] [--duration-ms N]
//!         [--chaos] [--assert-service]`

use bench::{schema, Backend};
use htm_sim::HtmConfig;
use std::fmt::Write as _;
use std::time::{Duration, Instant};
use tm_api::{BackoffPolicy, TmBackend};
use txkv::{KvError, KvOp, KvStore, Pipeline, PipelineConfig, ServiceReport};
use txmem::hooks::chaos::{self, ChaosConfig};
use workloads::btree;

const KEYS: u64 = 4096;

#[derive(Clone)]
struct Args {
    quick: bool,
    chaos: bool,
    assert_service: bool,
    backends: Vec<Backend>,
    /// Open-loop total arrival rate, requests/second.
    rate: u64,
    /// Open-loop measurement window.
    duration: Duration,
    /// Closed-loop client threads and requests per client.
    closed_clients: usize,
    closed_ops: u64,
    executors: usize,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| argv.iter().any(|a| a == f);
    let val = |f: &str| {
        argv.iter().position(|a| a == f).and_then(|i| argv.get(i + 1)).map(|s| s.as_str())
    };
    let quick = has("--quick") || has("--smoke");
    let mut backends: Vec<Backend> = Backend::ALL.to_vec();
    if has("--smoke") {
        backends = vec![Backend::SiHtm, Backend::Htm];
    }
    if let Some(list) = val("--backends") {
        backends = list
            .split(',')
            .map(|s| Backend::parse(s).unwrap_or_else(|| panic!("unknown backend '{s}'")))
            .collect();
    }
    let rate = val("--rate")
        .map(|s| s.parse().expect("--rate takes an integer"))
        .unwrap_or(if quick { 10_000 } else { 20_000 });
    let duration = Duration::from_millis(
        val("--duration-ms")
            .map(|s| s.parse().expect("--duration-ms takes an integer"))
            .unwrap_or(if quick { 400 } else { 2_000 }),
    );
    Args {
        quick,
        chaos: has("--chaos"),
        assert_service: has("--assert-service"),
        backends,
        rate,
        duration,
        closed_clients: 4,
        closed_ops: if quick { 500 } else { 2_000 },
        executors: if quick { 2 } else { 4 },
    }
}

// ------------------------------------------------------------- load mix

/// xorshift64* — deterministic, dependency-free op stream.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// 90 % read-only (80 get / 5 multi-get / 5 scan), 10 % updates.
fn gen_op(rng: &mut u64) -> KvOp {
    let key = next_rand(rng) % KEYS;
    match next_rand(rng) % 1000 {
        0..=799 => KvOp::Get { key },
        800..=849 => {
            let keys = (0..4).map(|i| (key + i * 37) % KEYS).collect();
            KvOp::MultiGet { keys }
        }
        850..=899 => KvOp::ScanPrefix { prefix: key >> 5, shift: 5, limit: 32 },
        900..=949 => KvOp::Put { key, val: next_rand(rng) },
        950..=969 => KvOp::Cas { key, expect: Some(key), new: key },
        970..=989 => {
            let other = (key + 1 + next_rand(rng) % (KEYS - 1)) % KEYS;
            KvOp::MultiAdd { deltas: vec![(key, -1), (other, 1)] }
        }
        _ => KvOp::Delete { key: KEYS + next_rand(rng) % KEYS }, // mostly absent keys
    }
}

// ------------------------------------------------------------ the modes

struct ModeOut {
    report: ServiceReport,
    submitted: u64,
    rejected: u64,
    wall: Duration,
}

fn pipeline_cfg(args: &Args) -> PipelineConfig {
    PipelineConfig {
        executors: args.executors,
        backoff: if args.chaos { BackoffPolicy::exponential() } else { BackoffPolicy::none() },
        idle_jitter_ns: if args.chaos { 500 } else { 0 },
        ..PipelineConfig::new()
    }
}

fn build_store<B: TmBackend>(backend: &B, words: u64) -> KvStore {
    KvStore::create_with(backend.memory(), 0, words, (0..KEYS).map(|k| (k, k)))
}

fn memory_words() -> usize {
    btree::memory_words(KEYS * 8)
}

/// Open loop: submissions arrive on the clock, never waiting for replies.
fn open_loop<B: TmBackend>(backend: B, args: &Args) -> ModeOut {
    let words = memory_words();
    let store = build_store(&backend, words as u64);
    let pipeline = Pipeline::start(backend, store, pipeline_cfg(args));
    let tick = Duration::from_millis(1);
    let per_tick = (args.rate / 1000).max(1);
    let t0 = Instant::now();
    let (mut submitted, mut rejected) = (0u64, 0u64);
    let client = pipeline.client();
    let mut rng = 0x0B16_5EED ^ args.rate;
    let mut tick_no = 0u32;
    while t0.elapsed() < args.duration {
        // Burst this tick's arrivals, then sleep to the next tick edge:
        // a fixed-rate arrival process with 1 ms granularity.
        for _ in 0..per_tick {
            match client.submit(gen_op(&mut rng)) {
                Ok(pending) => {
                    drop(pending); // fire and forget: latency recorded at reply
                    submitted += 1;
                }
                Err(KvError::Overloaded) => rejected += 1,
                Err(e) => panic!("open-loop submit failed: {e}"),
            }
        }
        tick_no += 1;
        let next_edge = tick * tick_no;
        let elapsed = t0.elapsed();
        if next_edge > elapsed {
            std::thread::sleep(next_edge - elapsed);
        }
    }
    let report = pipeline.shutdown();
    ModeOut { report, submitted, rejected, wall: t0.elapsed() }
}

/// Closed loop: blocking clients, one outstanding request each.
fn closed_loop<B: TmBackend>(backend: B, args: &Args) -> ModeOut {
    let words = memory_words();
    let store = build_store(&backend, words as u64);
    let pipeline = Pipeline::start(backend, store, pipeline_cfg(args));
    let t0 = Instant::now();
    let mut submitted = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.closed_clients)
            .map(|c| {
                let client = pipeline.client();
                let ops = args.closed_ops;
                s.spawn(move || {
                    let mut rng = 0xC105ED ^ (c as u64 + 1);
                    let mut done = 0u64;
                    while done < ops {
                        match client.call(gen_op(&mut rng)) {
                            Ok(_) => done += 1,
                            Err(KvError::Overloaded) => std::thread::yield_now(),
                            Err(e) => panic!("closed-loop call failed: {e}"),
                        }
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            submitted += h.join().expect("closed-loop client");
        }
    });
    let report = pipeline.shutdown();
    ModeOut { report, submitted, rejected: 0, wall: t0.elapsed() }
}

/// Overload: full-speed flood against a tiny queue on one executor. The
/// point is the *admission* behavior, not throughput.
fn overload<B: TmBackend>(backend: B, args: &Args) -> ModeOut {
    let words = memory_words();
    let store = build_store(&backend, words as u64);
    let cfg =
        PipelineConfig { executors: 1, ro_queue_cap: 64, rw_queue_cap: 64, ..pipeline_cfg(args) };
    let pipeline = Pipeline::start(backend, store, cfg);
    let client = pipeline.client();
    let t0 = Instant::now();
    let (mut submitted, mut rejected) = (0u64, 0u64);
    let mut rng = 0x0E_410AD;
    let floods = if args.quick { 50_000 } else { 200_000 };
    for i in 0..floods {
        match client.submit(gen_op(&mut rng)) {
            Ok(p) => {
                drop(p);
                submitted += 1;
            }
            Err(KvError::Overloaded) => rejected += 1,
            Err(e) => panic!("overload submit failed: {e}"),
        }
        if i % 1024 == 0 {
            let (ro, rw) = client.queue_depths();
            assert!(ro <= 64 && rw <= 64, "queue depth exceeded its cap: ro={ro} rw={rw}");
        }
    }
    let report = pipeline.shutdown();
    ModeOut { report, submitted, rejected, wall: t0.elapsed() }
}

// -------------------------------------------------- dispatch + checking

fn run_mode(backend: Backend, mode: &str, args: &Args) -> ModeOut {
    let words = memory_words();
    let backoff = if args.chaos { BackoffPolicy::exponential() } else { BackoffPolicy::default() };
    macro_rules! dispatch {
        ($b:expr) => {
            match mode {
                "open" => open_loop($b, args),
                "closed" => closed_loop($b, args),
                "overload" => overload($b, args),
                _ => unreachable!(),
            }
        };
    }
    match backend {
        Backend::Htm => {
            let cfg = htm_sgl::HtmSglConfig { backoff, ..Default::default() };
            dispatch!(htm_sgl::HtmSgl::new(HtmConfig::default(), words, cfg))
        }
        Backend::SiHtm => {
            let cfg = si_htm::SiHtmConfig { backoff, ..Default::default() };
            dispatch!(si_htm::SiHtm::new(HtmConfig::default(), words, cfg))
        }
        Backend::P8tm => {
            let cfg = p8tm::P8tmConfig { backoff, ..Default::default() };
            dispatch!(p8tm::P8tm::new(HtmConfig::default(), words, cfg))
        }
        Backend::Silo => {
            let cfg = silo::SiloConfig { backoff, ..Default::default() };
            dispatch!(silo::Silo::with_config(words, cfg))
        }
    }
}

/// Run one (backend, mode) cell on a watched thread: a hang past the
/// deadline is a failure with an artifact, not a wedged process.
fn monitored(backend: Backend, mode: &'static str, args: &Args) -> Result<ModeOut, String> {
    let deadline = args.duration * 3 + Duration::from_secs(30);
    let worker = {
        let args = args.clone();
        std::thread::spawn(move || run_mode(backend, mode, &args))
    };
    let t0 = Instant::now();
    while !worker.is_finished() {
        if t0.elapsed() > deadline {
            return Err(format!("cell hung (no completion within {deadline:?})"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    worker.join().map_err(|p| {
        let msg = p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string());
        format!("cell panicked: {msg}")
    })
}

fn fail(backend: Backend, mode: &str, detail: &str, out: Option<&ModeOut>) -> ! {
    let mut body = format!(
        "{{\"backend\": \"{}\", \"mode\": \"{mode}\", \"failure\": {:?}",
        backend.name(),
        detail
    );
    if let Some(o) = out {
        let _ = write!(
            body,
            ", \"replies\": {}, \"shed\": {}, \"overloaded\": {}, \"ro_batches\": {}, \
             \"ro_batch_aborts\": {}, \"starved_executors\": {}",
            o.report.replies,
            o.report.shed,
            o.report.overloaded,
            o.report.ro_batches,
            o.report.ro_batch_aborts,
            o.report.starved_executors,
        );
    }
    body.push_str("}\n");
    std::fs::write("TXKV_FAILURE.json", &body).expect("write TXKV_FAILURE.json");
    eprintln!("FAIL {} {mode}: {detail}", backend.name());
    eprintln!("failing configuration written to TXKV_FAILURE.json");
    std::process::exit(1);
}

/// The service-level acceptance checks behind `--assert-service`.
fn check(backend: Backend, mode: &str, out: &ModeOut, args: &Args) -> Result<(), String> {
    let r = &out.report;
    if r.panicked_executors != 0 {
        return Err(format!("{} executors panicked", r.panicked_executors));
    }
    if r.replies == 0 {
        return Err("no requests served".into());
    }
    match mode {
        "open" => {
            if r.starved_executors != 0 {
                return Err(format!(
                    "{} starved executors under open-loop load",
                    r.starved_executors
                ));
            }
            if r.ro_batches == 0 {
                return Err("no RO batches formed".into());
            }
            // Chaos stalls distort arrival bursts; batching amortization
            // is only asserted on the clean run.
            if !args.chaos && r.mean_ro_batch() <= 1.0 {
                return Err(format!("RO batching never engaged (mean {:.2})", r.mean_ro_batch()));
            }
            if backend == Backend::SiHtm && r.ro_batch_aborts != 0 {
                return Err(format!(
                    "SI-HTM RO fast path aborted {} times (must be 0)",
                    r.ro_batch_aborts
                ));
            }
        }
        "overload" if out.rejected == 0 => {
            return Err("overload flood was never shed with Overloaded".into());
        }
        _ => {}
    }
    Ok(())
}

// ------------------------------------------------------------- reporting

fn row_json(backend: Backend, mode: &str, out: &ModeOut, args: &Args) -> String {
    let r = &out.report;
    let s = &r.backend_stats;
    let mut classes = String::from("{");
    let mut first = true;
    for cl in &r.class {
        if cl.count() == 0 {
            continue;
        }
        let (p50, p90, p99, p999) = cl.e2e.percentiles();
        let (s50, _, s99, _) = cl.service.percentiles();
        let _ = write!(
            classes,
            "{}\"{}\": {{\"count\": {}, \"e2e_p50_ns\": {p50}, \"e2e_p90_ns\": {p90}, \
             \"e2e_p99_ns\": {p99}, \"e2e_p999_ns\": {p999}, \"service_p50_ns\": {s50}, \
             \"service_p99_ns\": {s99}}}",
            if first { "" } else { ", " },
            cl.class.name(),
            cl.count(),
        );
        first = false;
    }
    classes.push('}');
    format!(
        "{{\"backend\": \"{}\", \"mode\": \"{mode}\", \"rate\": {}, \"duration_ms\": {}, \
         \"executors\": {}, \"chaos\": {}, \"submitted\": {}, \"rejected\": {}, \
         \"replies\": {}, \"shed\": {}, \"overloaded\": {}, \"replies_per_sec\": {:.0}, \
         \"ro_batches\": {}, \"ro_batch_ops\": {}, \"mean_ro_batch\": {:.2}, \
         \"max_ro_batch\": {}, \"ro_batch_aborts\": {}, \"starved_executors\": {}, \
         \"executor_backoffs\": {}, \"commits\": {}, \"ro_commits\": {}, \"sgl_commits\": {}, \
         \"aborts\": {}, \"user_aborts\": {}, \"classes\": {classes}}}",
        backend.name(),
        if mode == "open" { args.rate } else { 0 },
        out.wall.as_millis(),
        r.executors,
        args.chaos,
        out.submitted,
        out.rejected,
        r.replies,
        r.shed,
        r.overloaded,
        r.replies as f64 / out.wall.as_secs_f64(),
        r.ro_batches,
        r.ro_batch_ops,
        r.mean_ro_batch(),
        r.max_ro_batch,
        r.ro_batch_aborts,
        r.starved_executors,
        r.executor_backoffs,
        s.commits,
        s.ro_commits,
        s.sgl_commits,
        s.aborts(),
        s.user_aborts,
    )
}

fn main() {
    let args = parse_args();
    let chaos_guard = args.chaos.then(|| {
        chaos::install(ChaosConfig {
            seed: 0x7C4F,
            abort_access: 0.002,
            abort_commit: 0.001,
            capacity_share: 0.5,
            stall: 0.002,
            stall_max_us: 20,
            panic: 0.0,
        })
    });

    let modes: &[&'static str] = &["open", "closed", "overload"];
    let mut rows = Vec::new();
    for &backend in &args.backends {
        for &mode in modes {
            match monitored(backend, mode, &args) {
                Ok(out) => {
                    let r = &out.report;
                    println!(
                        "{:>6} {:>8}: {:>8} replies ({:>9.0}/s), shed {}, overloaded {}, \
                         RO batches {} (mean {:.1}, max {}, aborts {}), starved {}",
                        backend.name(),
                        mode,
                        r.replies,
                        r.replies as f64 / out.wall.as_secs_f64(),
                        r.shed,
                        r.overloaded,
                        r.ro_batches,
                        r.mean_ro_batch(),
                        r.max_ro_batch,
                        r.ro_batch_aborts,
                        r.starved_executors,
                    );
                    for cl in &r.class {
                        if cl.count() == 0 {
                            continue;
                        }
                        let (p50, _, p99, p999) = cl.e2e.percentiles();
                        println!(
                            "         {:<9} n={:<8} e2e p50/p99/p999 = {}/{}/{} ns",
                            cl.class.name(),
                            cl.count(),
                            p50,
                            p99,
                            p999
                        );
                    }
                    if args.assert_service {
                        if let Err(detail) = check(backend, mode, &out, &args) {
                            fail(backend, mode, &detail, Some(&out));
                        }
                    }
                    rows.push(row_json(backend, mode, &out, &args));
                }
                Err(detail) => fail(backend, mode, &detail, None),
            }
        }
    }
    if let Some(guard) = chaos_guard {
        let report = guard.report();
        println!(
            "chaos: injected {} aborts, {} stalls",
            report.injected_aborts, report.injected_stalls
        );
    }

    let mut json = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(json, "  {row}{sep}");
    }
    json.push(']');
    let out = "BENCH_TXKV.json";
    schema::BENCH_TXKV.write(out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");
}
